// CoverageState algebra, served sets, and the Lemma 1 non-submodularity
// construction reproduced as an executable proof.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cover/coverage_state.h"
#include "cover/served_sets.h"
#include "test_util.h"

namespace tq {
namespace {

TEST(CoverageState, AddAndTotalUnionSemantics) {
  // One user, two points. Facility A serves only the source, facility B only
  // the destination: alone each scores 0, together they score 1 (Scenario 1
  // union semantics per Lemma 1's proof).
  TrajectorySet users;
  const Point u0[] = {{0, 0}, {100, 0}};
  users.Add(u0);
  const ServiceEvaluator eval(&users, ServiceModel::Endpoints(10));

  FacilityServedSet fa;
  fa.id = 0;
  DynamicBitset ma(2);
  ma.Set(0);
  fa.served.emplace_back(0u, ma);
  FacilityServedSet fb;
  fb.id = 1;
  DynamicBitset mb(2);
  mb.Set(1);
  fb.served.emplace_back(0u, mb);

  CoverageState state(&eval);
  EXPECT_DOUBLE_EQ(state.MarginalGain(fa), 0.0);
  state.Add(fa);
  EXPECT_DOUBLE_EQ(state.total(), 0.0);
  EXPECT_EQ(state.users_served(), 0u);
  // Now B completes the pair: marginal gain 1.
  EXPECT_DOUBLE_EQ(state.MarginalGain(fb), 1.0);
  state.Add(fb);
  EXPECT_DOUBLE_EQ(state.total(), 1.0);
  EXPECT_EQ(state.users_served(), 1u);
}

TEST(CoverageState, MarginalGainMatchesRecompute) {
  Rng rng(901);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 200, 2, 6, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 10, w);
  for (const ServiceModel& model : testing::AllModels(250.0)) {
    const ServiceEvaluator eval(&users, model);
    const FacilityCatalog catalog(&facs, model.psi);
    TQTreeOptions opt;
    opt.model = model;
    TQTree tree(&users, opt);

    std::vector<FacilityServedSet> sets;
    for (uint32_t f = 0; f < facs.size(); ++f) {
      sets.push_back(CollectServedSetTQ(&tree, catalog, eval, f));
    }
    CoverageState state(&eval);
    double running = 0.0;
    for (const auto& fs : sets) {
      const double gain = state.MarginalGain(fs);
      state.Add(fs);
      running += gain;
      EXPECT_NEAR(state.total(), running, 1e-6) << model.ToString();
    }
  }
}

TEST(ServedSets, SingleFacilitySoMatchesOracle) {
  Rng rng(903);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 250, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  for (const ServiceModel& model : testing::AllModels(200.0)) {
    const ServiceEvaluator eval(&users, model);
    const FacilityCatalog catalog(&facs, model.psi);
    TQTreeOptions opt;
    opt.model = model;
    TQTree tree(&users, opt);
    PointQuadtree pq(users.BoundingBox().Expanded(1.0), 32);
    pq.InsertAll(users);
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const FacilityServedSet via_tq =
          CollectServedSetTQ(&tree, catalog, eval, f);
      const FacilityServedSet via_bl =
          CollectServedSetBaseline(pq, catalog, eval, f);
      const double oracle =
          testing::BruteForceSO(users, facs.points(f), model);
      EXPECT_NEAR(via_tq.so, oracle, 1e-6) << model.ToString();
      EXPECT_NEAR(via_bl.so, oracle, 1e-6) << model.ToString();
      EXPECT_EQ(via_tq.served.size(), via_bl.served.size());
    }
  }
}

TEST(ServedSets, CacheCollectsLazily) {
  Rng rng(905);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 6, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&users, opt);
  ServedSetCache cache(&tree, &catalog, &eval);
  EXPECT_EQ(cache.collected(), 0u);
  (void)cache.Get(3);
  (void)cache.Get(3);
  (void)cache.Get(7);
  EXPECT_EQ(cache.collected(), 2u);
  EXPECT_EQ(cache.Get(3).id, 3u);
}

// Executable version of Lemma 1: service under union coverage violates the
// diminishing-returns inequality g(A∪x)−g(A) ≥ g(B∪x)−g(B) for A ⊆ B.
TEST(Lemma1, ServiceFunctionIsNonSubmodular) {
  // Layout (ψ = 10):
  //   user u: source (0,0), destination (1000,0).
  //   facility a: stop far from u entirely                  → A = {a}
  //   facility b: stop at the source only                   → B = {a, b}
  //   facility x: stop at the destination only.
  TrajectorySet users;
  const Point u0[] = {{0, 0}, {1000, 0}};
  users.Add(u0);
  TrajectorySet facs;
  const Point fa[] = {{5000, 5000}};
  const Point fb[] = {{0, 5}};
  const Point fx[] = {{1000, 5}};
  facs.Add(fa);
  facs.Add(fb);
  facs.Add(fx);
  const ServiceModel model = ServiceModel::Endpoints(10.0);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&users, opt);

  auto so_of = [&](std::vector<FacilityId> group) {
    CoverageState state(&eval);
    for (const FacilityId f : group) {
      state.Add(CollectServedSetTQ(&tree, catalog, eval, f));
    }
    return state.total();
  };

  const double g_A = so_of({0});           // 0
  const double g_Ax = so_of({0, 2});       // still 0: source unserved
  const double g_B = so_of({0, 1});        // 0: destination unserved
  const double g_Bx = so_of({0, 1, 2});    // 1: b serves source, x dest
  EXPECT_DOUBLE_EQ(g_A, 0.0);
  EXPECT_DOUBLE_EQ(g_Ax, 0.0);
  EXPECT_DOUBLE_EQ(g_B, 0.0);
  EXPECT_DOUBLE_EQ(g_Bx, 1.0);
  // Submodularity would require (g_Ax − g_A) ≥ (g_Bx − g_B); here 0 < 1.
  EXPECT_LT(g_Ax - g_A, g_Bx - g_B);
}

TEST(CoverageState, ClearResets) {
  TrajectorySet users;
  const Point u0[] = {{0, 0}, {10, 0}};
  users.Add(u0);
  const ServiceEvaluator eval(&users, ServiceModel::Endpoints(5));
  FacilityServedSet fs;
  fs.id = 0;
  DynamicBitset m(2);
  m.Set(0);
  m.Set(1);
  fs.served.emplace_back(0u, m);
  CoverageState state(&eval);
  state.Add(fs);
  EXPECT_DOUBLE_EQ(state.total(), 1.0);
  state.Clear();
  EXPECT_DOUBLE_EQ(state.total(), 0.0);
  EXPECT_EQ(state.users_served(), 0u);
}

}  // namespace
}  // namespace tq
