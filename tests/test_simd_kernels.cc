// Bit-identity agreement suite for the vectorized service-value kernels
// (common/simd.h and everything built on it).
//
// Every vectorized path in the engine retains its scalar reference in the
// same binary: simd::* vs simd::scalar::*, StopGrid::Serves/ServesBatch vs
// ServesScalar, ServiceEvaluator::Evaluate/EvaluateDetail vs the *Scalar
// twins, Corridor::Reaches vs ReachesScalar, and TQTree::UpperBound (SoA
// arena + wide kernels) vs UpperBoundScalarReference (node pages + scalar
// kernels). These tests hold each pair bit-for-bit equal — EXPECT_EQ on the
// raw double bits, never a tolerance — across scenarios × normalizations ×
// edge shapes (1-point and 2-point trajectories, segment scenarios on
// length-<2 inputs, spans crossing and not crossing 64-bit mask words, exact
// ψ-threshold distances). The suite runs in every CI cell: baseline,
// -march=x86-64-v3, forced-scalar (-DTQ_SIMD=scalar), ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "datagen/presets.h"
#include "geom/distance.h"
#include "service/accumulator.h"
#include "service/evaluator.h"
#include "service/models.h"
#include "service/stop_grid.h"
#include "tqtree/tq_tree.h"

namespace tq {
namespace {

#define EXPECT_BIT_EQ(a, b)                        \
  EXPECT_EQ(std::bit_cast<uint64_t>(double{(a)}),  \
            std::bit_cast<uint64_t>(double{(b)}))  \
      << "values: " << (a) << " vs " << (b)

std::vector<ServiceModel> AllModels(double psi) {
  std::vector<ServiceModel> models;
  models.push_back(ServiceModel::Endpoints(psi));
  for (const auto norm : {Normalization::kPerUser, Normalization::kNone}) {
    models.push_back(ServiceModel::PointCount(psi, norm));
    models.push_back(ServiceModel::Length(psi, norm));
  }
  return models;
}

// Users with deliberately awkward shapes: 1 point (MaskSize 0 under
// kLength), 2 points, a few dozen, exactly 64, 65 (mask spills into a second
// word), and 130 (tail bits past 64-alignment in the third word).
TrajectorySet EdgeShapeUsers(uint64_t seed) {
  Rng rng(seed);
  TrajectorySet users;
  for (const size_t n : {1u, 2u, 3u, 5u, 31u, 64u, 65u, 130u}) {
    std::vector<Point> pts;
    Point p{rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)};
    for (size_t i = 0; i < n; ++i) {
      pts.push_back(p);
      p.x += rng.NextUniform(-120, 120);
      p.y += rng.NextUniform(-120, 120);
    }
    users.Add(pts);
  }
  return users;
}

std::vector<Point> RandomStops(Rng& rng, size_t n) {
  std::vector<Point> stops;
  for (size_t i = 0; i < n; ++i) {
    stops.push_back({rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)});
  }
  return stops;
}

TEST(SimdKernels, LanePredicatesAgreeWithScalarReference) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    double xs[4];
    double ys[4];
    double pts[8];
    for (int i = 0; i < 4; ++i) {
      xs[i] = rng.NextUniform(-100, 100);
      ys[i] = rng.NextUniform(-100, 100);
      pts[2 * i] = rng.NextUniform(-100, 100);
      pts[2 * i + 1] = rng.NextUniform(-100, 100);
    }
    const double px = rng.NextUniform(-100, 100);
    const double py = rng.NextUniform(-100, 100);
    const double psi2 = rng.NextUniform(0, 400);
    EXPECT_EQ(simd::LanesWithinPsi2(xs, ys, px, py, psi2),
              simd::scalar::LanesWithinPsi2(xs, ys, px, py, psi2));
    const double min_x = rng.NextUniform(-100, 50);
    const double min_y = rng.NextUniform(-100, 50);
    const double max_x = min_x + rng.NextUniform(0, 100);
    const double max_y = min_y + rng.NextUniform(0, 100);
    EXPECT_EQ(simd::LanesInRect(pts, min_x, min_y, max_x, max_y),
              simd::scalar::LanesInRect(pts, min_x, min_y, max_x, max_y));
    EXPECT_EQ(
        simd::LanesDiskReachRect(pts, min_x, min_y, max_x, max_y, psi2),
        simd::scalar::LanesDiskReachRect(pts, min_x, min_y, max_x, max_y,
                                         psi2));
  }
}

TEST(SimdKernels, LanePredicatesAgreeAtExactThreshold) {
  // 3-4-5 triangle: d² is exactly 25, and ψ² = 25 is exactly representable,
  // so <= sits precisely on the boundary. One ulp either side must flip both
  // implementations together.
  const double xs[4] = {3.0, 3.0, std::nextafter(3.0, 4.0),
                        std::nextafter(3.0, 0.0)};
  const double ys[4] = {4.0, 4.0, 4.0, 4.0};
  for (const double psi2 :
       {25.0, std::nextafter(25.0, 0.0), std::nextafter(25.0, 26.0)}) {
    EXPECT_EQ(simd::LanesWithinPsi2(xs, ys, 0.0, 0.0, psi2),
              simd::scalar::LanesWithinPsi2(xs, ys, 0.0, 0.0, psi2));
  }
  // Rect reach with the point exactly ψ away from the rect edge.
  const double pts[8] = {-3.0, -4.0, -3.0, 4.0, 3.0, -4.0, 0.0, 0.0};
  for (const double psi2 :
       {25.0, std::nextafter(25.0, 0.0), std::nextafter(25.0, 26.0)}) {
    EXPECT_EQ(simd::LanesDiskReachRect(pts, 0.0, 0.0, 10.0, 10.0, psi2),
              simd::scalar::LanesDiskReachRect(pts, 0.0, 0.0, 10.0, 10.0,
                                               psi2));
  }
}

TEST(SimdKernels, ServesAndBatchAgreeWithScalarAcrossShapes) {
  Rng rng(11);
  for (const double psi : {40.0, 150.0, 600.0}) {
    const StopGrid grid(RandomStops(rng, 80), psi);
    // Span lengths around every boundary the mask code cares about: lane
    // remainders (mod 4) and word boundaries (mod 64).
    for (const size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u, 130u}) {
      std::vector<Point> probes;
      for (size_t i = 0; i < n; ++i) {
        probes.push_back(
            {rng.NextUniform(-200, 5200), rng.NextUniform(-200, 5200)});
      }
      std::vector<uint64_t> mask((n + 63) / 64 + 1, ~uint64_t{0});
      grid.ServesBatch(probes, mask.data());
      for (size_t i = 0; i < n; ++i) {
        const bool batch_bit = (mask[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(grid.Serves(probes[i]), grid.ServesScalar(probes[i]));
        EXPECT_EQ(batch_bit, grid.ServesScalar(probes[i]))
            << "point " << i << " of " << n;
      }
      // Tail bits at and beyond n must be zeroed, not leaked.
      for (size_t i = n; i < ((n + 63) / 64) * 64; ++i) {
        EXPECT_EQ((mask[i >> 6] >> (i & 63)) & 1, 0u) << "tail bit " << i;
      }
    }
  }
}

TEST(SimdKernels, ServesBatchExactThresholdPoint) {
  // A probe exactly ψ from the only stop: served under <=, and every path
  // must agree on it.
  const std::vector<Point> stops = {{1000.0, 1000.0}};
  const StopGrid grid(stops, 5.0);
  const std::vector<Point> probes = {
      {1003.0, 1004.0},                            // d² = 25 = ψ² exactly
      {std::nextafter(1003.0, 1004.0), 1004.0},    // one ulp outside
      {1003.0, std::nextafter(1004.0, 1000.0)},    // inside
      {1000.0, 1000.0},
  };
  uint64_t mask = ~uint64_t{0};
  grid.ServesBatch(probes, &mask);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(((mask >> i) & 1) != 0, grid.ServesScalar(probes[i])) << i;
    EXPECT_EQ(grid.Serves(probes[i]), grid.ServesScalar(probes[i])) << i;
  }
  EXPECT_TRUE(grid.ServesScalar(probes[0]));
  EXPECT_FALSE(grid.ServesScalar(probes[1]));
}

TEST(SimdKernels, EvaluateAgreesBitForBitAcrossModels) {
  const TrajectorySet users = EdgeShapeUsers(23);
  Rng rng(29);
  for (const double psi : {60.0, 200.0}) {
    const StopGrid grid(RandomStops(rng, 50), psi);
    for (const ServiceModel& model : AllModels(psi)) {
      const ServiceEvaluator eval(&users, model);
      for (uint32_t u = 0; u < users.size(); ++u) {
        EXPECT_BIT_EQ(eval.Evaluate(u, grid), eval.EvaluateScalar(u, grid))
            << "user " << u << " model " << model.ToString();
      }
    }
  }
}

TEST(SimdKernels, EvaluateDetailMasksIdenticalAndConsistent) {
  const TrajectorySet users = EdgeShapeUsers(31);
  Rng rng(37);
  for (const double psi : {60.0, 200.0}) {
    const StopGrid grid(RandomStops(rng, 50), psi);
    for (const ServiceModel& model : AllModels(psi)) {
      const ServiceEvaluator eval(&users, model);
      for (uint32_t u = 0; u < users.size(); ++u) {
        const ServeDetail batch = eval.EvaluateDetail(u, grid);
        const ServeDetail scalar = eval.EvaluateDetailScalar(u, grid);
        EXPECT_EQ(batch.mask, scalar.mask)
            << "user " << u << " model " << model.ToString();
        EXPECT_EQ(batch.mask.size(), eval.MaskSize(u));
        // The mask must reproduce the direct evaluation exactly.
        EXPECT_BIT_EQ(eval.ValueOfMask(u, batch.mask), eval.Evaluate(u, grid))
            << "user " << u << " model " << model.ToString();
      }
    }
  }
}

TEST(SimdKernels, CorridorReachesAgreesWithScalar) {
  Rng rng(41);
  for (const size_t num_stops : {0u, 1u, 2u, 3u, 4u, 5u, 9u, 40u}) {
    const std::vector<Point> stops = RandomStops(rng, num_stops);
    const ZIndex::Corridor corridor{stops, 120.0, Rect::Of(0, 0, 1, 1)};
    for (int trial = 0; trial < 300; ++trial) {
      const double min_x = rng.NextUniform(-500, 5000);
      const double min_y = rng.NextUniform(-500, 5000);
      const Rect r = Rect::Of(min_x, min_y, min_x + rng.NextUniform(0, 800),
                              min_y + rng.NextUniform(0, 800));
      EXPECT_EQ(corridor.Reaches(r), corridor.ReachesScalar(r));
    }
  }
}

TEST(SimdKernels, TreeUpperBoundMatchesScalarReferenceBitForBit) {
  const TrajectorySet users = presets::NyfCheckins(400);
  const TrajectorySet routes = presets::NyBusRoutes(12, 24);
  for (const TrajMode mode : {TrajMode::kWhole, TrajMode::kSegmented}) {
    for (const ServiceModel& model : AllModels(400.0)) {
      TQTreeOptions opt;
      opt.beta = 16;
      opt.mode = mode;
      opt.model = model;
      TQTree tree(&users, opt);
      tree.BuildAllZIndexes();
      for (uint32_t f = 0; f < routes.size(); ++f) {
        const StopGrid grid(routes.points(f), model.psi);
        // Arena + wide kernels vs node pages + scalar kernels: one shared
        // traversal template, so the bounds must match to the bit.
        EXPECT_BIT_EQ(tree.UpperBound(grid),
                      tree.UpperBoundScalarReference(grid))
            << "facility " << f << " model " << model.ToString();
      }
    }
  }
}

TEST(SimdKernels, TreeUpperBoundAgreesAfterMutationAndRefreeze) {
  TrajectorySet users = presets::NyfCheckins(300);
  const TrajectorySet routes = presets::NyBusRoutes(6, 20);
  const ServiceModel model = ServiceModel::PointCount(400.0);
  TQTreeOptions opt;
  opt.beta = 16;
  opt.model = model;
  TQTree tree(&users, opt);
  tree.BuildAllZIndexes();
  const StopGrid grid(routes.points(0), model.psi);
  EXPECT_BIT_EQ(tree.UpperBound(grid), tree.UpperBoundScalarReference(grid));
  // Mutations invalidate the SoA arena; the page fallback path must agree
  // with the scalar reference too, and so must the rebuilt arena.
  tree.Remove(0);
  EXPECT_BIT_EQ(tree.UpperBound(grid), tree.UpperBoundScalarReference(grid));
  tree.Insert(0);
  EXPECT_BIT_EQ(tree.UpperBound(grid), tree.UpperBoundScalarReference(grid));
  tree.BuildAllZIndexes();
  EXPECT_BIT_EQ(tree.UpperBound(grid), tree.UpperBoundScalarReference(grid));
}

TEST(SimdKernels, AccumulatorArenaMatchesMapReference) {
  const TrajectorySet users = EdgeShapeUsers(47);
  Rng rng(53);
  for (const ServiceModel& model : AllModels(150.0)) {
    const ServiceEvaluator eval(&users, model);
    ServiceAccumulator acc(&eval);
    // Shadow with the exact semantics of the old map-of-bitsets
    // implementation, applied in the same mark order; totals must agree to
    // the bit since the same doubles are added in the same sequence.
    std::unordered_map<uint32_t, DynamicBitset> shadow;
    double shadow_total = 0.0;
    const bool segmented = model.scenario == Scenario::kLength;
    for (int round = 0; round < 2; ++round) {
      acc.Clear();
      shadow.clear();
      shadow_total = 0.0;
      for (int i = 0; i < 3000; ++i) {
        const auto user = static_cast<uint32_t>(rng.NextBelow(users.size()));
        const size_t mask_size = eval.MaskSize(user);
        if (mask_size == 0) continue;
        const auto index = static_cast<uint32_t>(rng.NextBelow(mask_size));
        auto it = shadow.find(user);
        if (it == shadow.end()) {
          it = shadow.emplace(user, DynamicBitset(mask_size)).first;
        }
        DynamicBitset& mask = it->second;
        if (segmented) {
          acc.MarkSegment(user, index);
          if (!mask.Test(index)) {
            mask.Set(index);
            const auto pts = users.points(user);
            const double seg_len = Distance(pts[index], pts[index + 1]);
            if (model.normalization == Normalization::kPerUser) {
              const double total_len = users.length(user);
              shadow_total += total_len > 0.0 ? seg_len / total_len : 0.0;
            } else {
              shadow_total += seg_len;
            }
          }
        } else {
          acc.MarkPoint(user, index);
          if (!mask.Test(index)) {
            mask.Set(index);
            const size_t n = users.NumPoints(user);
            if (model.scenario == Scenario::kEndpoints) {
              if ((index == 0 || index == n - 1) && mask.Test(0) &&
                  mask.Test(n - 1)) {
                shadow_total += 1.0;
              }
            } else {
              shadow_total += model.normalization == Normalization::kPerUser
                                  ? 1.0 / static_cast<double>(n)
                                  : 1.0;
            }
          }
        }
        EXPECT_BIT_EQ(acc.Total(), shadow_total);
      }
      EXPECT_EQ(acc.TouchedUsers(), shadow.size());
    }
    acc.Clear();
    EXPECT_EQ(acc.TouchedUsers(), 0u);
    EXPECT_BIT_EQ(acc.Total(), 0.0);
  }
}

// Read-only concurrency over the shared frozen structures — the shape the
// sharded engine runs the kernels in. TSan runs this suite in CI; any hidden
// shared mutable state in the batch paths (scratch buffers, arena) trips it.
TEST(SimdKernels, ConcurrentReadersAgree) {
  const TrajectorySet users = presets::NyfCheckins(200);
  const TrajectorySet routes = presets::NyBusRoutes(4, 16);
  const ServiceModel model = ServiceModel::PointCount(400.0);
  const ServiceEvaluator eval(&users, model);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&users, opt);
  tree.BuildAllZIndexes();
  std::vector<StopGrid> grids;
  for (uint32_t f = 0; f < routes.size(); ++f) {
    grids.emplace_back(routes.points(f), model.psi);
  }
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (const StopGrid& grid : grids) {
        if (std::bit_cast<uint64_t>(tree.UpperBound(grid)) !=
            std::bit_cast<uint64_t>(tree.UpperBoundScalarReference(grid))) {
          failures[t]++;
        }
        for (uint32_t u = 0; u < users.size(); ++u) {
          if (std::bit_cast<uint64_t>(eval.Evaluate(u, grid)) !=
              std::bit_cast<uint64_t>(eval.EvaluateScalar(u, grid))) {
            failures[t]++;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace tq
