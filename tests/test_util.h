// Shared test helpers: a brute-force service oracle (independent of every
// index structure) and small random workload builders.
#ifndef TQCOVER_TESTS_TEST_UTIL_H_
#define TQCOVER_TESTS_TEST_UTIL_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "geom/distance.h"
#include "service/models.h"
#include "traj/dataset.h"

namespace tq::testing {

/// S(u, f) straight from the §II-A definitions by linear scan — the oracle
/// all indexed paths are checked against.
inline double BruteForceService(const TrajectorySet& users, uint32_t user,
                                std::span<const Point> stops,
                                const ServiceModel& model) {
  const auto pts = users.points(user);
  const double psi = model.psi;
  switch (model.scenario) {
    case Scenario::kEndpoints:
      return (WithinPsiOfAny(pts.front(), stops, psi) &&
              WithinPsiOfAny(pts.back(), stops, psi))
                 ? 1.0
                 : 0.0;
    case Scenario::kPointCount: {
      size_t served = 0;
      for (const Point& p : pts) {
        if (WithinPsiOfAny(p, stops, psi)) ++served;
      }
      return model.normalization == Normalization::kPerUser
                 ? static_cast<double>(served) /
                       static_cast<double>(pts.size())
                 : static_cast<double>(served);
    }
    case Scenario::kLength: {
      double served_len = 0.0;
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        if (WithinPsiOfAny(pts[i], stops, psi) &&
            WithinPsiOfAny(pts[i + 1], stops, psi)) {
          served_len += Distance(pts[i], pts[i + 1]);
        }
      }
      if (model.normalization == Normalization::kPerUser) {
        const double total = users.length(user);
        return total > 0.0 ? served_len / total : 0.0;
      }
      return served_len;
    }
  }
  return 0.0;
}

/// SO(U, f) by brute force.
inline double BruteForceSO(const TrajectorySet& users,
                           std::span<const Point> stops,
                           const ServiceModel& model) {
  double so = 0.0;
  for (uint32_t u = 0; u < users.size(); ++u) {
    so += BruteForceService(users, u, stops, model);
  }
  return so;
}

/// Random trajectories with point counts in [min_pts, max_pts], clustered
/// around a few centres so pruning paths actually trigger.
inline TrajectorySet RandomUsers(Rng* rng, size_t n, size_t min_pts,
                                 size_t max_pts, const Rect& extent) {
  TrajectorySet set;
  std::vector<Point> pts;
  const size_t num_clusters = 5;
  std::vector<Point> centers;
  for (size_t c = 0; c < num_clusters; ++c) {
    centers.push_back(Point{rng->NextUniform(extent.min_x, extent.max_x),
                            rng->NextUniform(extent.min_y, extent.max_y)});
  }
  const double spread = 0.08 * std::max(extent.Width(), extent.Height());
  for (size_t i = 0; i < n; ++i) {
    const size_t len = static_cast<size_t>(
        rng->NextInt(static_cast<int64_t>(min_pts),
                     static_cast<int64_t>(max_pts)));
    pts.clear();
    const Point& c = centers[rng->NextBelow(num_clusters)];
    for (size_t j = 0; j < len; ++j) {
      pts.push_back(Point{
          std::clamp(rng->NextGaussian(c.x, spread), extent.min_x,
                     extent.max_x),
          std::clamp(rng->NextGaussian(c.y, spread), extent.min_y,
                     extent.max_y)});
    }
    set.Add(pts);
  }
  return set;
}

/// Random facilities as short stop polylines.
inline TrajectorySet RandomFacilities(Rng* rng, size_t n, size_t stops,
                                      const Rect& extent) {
  TrajectorySet set;
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.clear();
    Point cur{rng->NextUniform(extent.min_x, extent.max_x),
              rng->NextUniform(extent.min_y, extent.max_y)};
    const double step = 0.03 * std::max(extent.Width(), extent.Height());
    for (size_t j = 0; j < stops; ++j) {
      pts.push_back(cur);
      cur.x = std::clamp(cur.x + rng->NextGaussian(0.0, step), extent.min_x,
                         extent.max_x);
      cur.y = std::clamp(cur.y + rng->NextGaussian(0.0, step), extent.min_y,
                         extent.max_y);
    }
    set.Add(pts);
  }
  return set;
}

/// All service-model combinations exercised by the matrix tests.
inline std::vector<ServiceModel> AllModels(double psi) {
  return {
      ServiceModel::Endpoints(psi),
      ServiceModel::PointCount(psi, Normalization::kPerUser),
      ServiceModel::PointCount(psi, Normalization::kNone),
      ServiceModel::Length(psi, Normalization::kPerUser),
      ServiceModel::Length(psi, Normalization::kNone),
  };
}

}  // namespace tq::testing

#endif  // TQCOVER_TESTS_TEST_UTIL_H_
