// Tests for the multi-process serving layer: the RemoteShardSet coordinator
// over loopback shard-worker processes (each a ShardedEngine owning a slice
// of the partition behind a NetServer) answers sums and top-k BIT-IDENTICALLY
// to a single-process ShardedEngine over the full partition, for shards
// {2, 4} × workers {1, 2} on the NYF preset; updates fan out and keep the
// identity; a killed worker degrades answers to StatusCode::kUnavailable
// without hanging; and the new wire frame types (kRegister, kHeartbeat,
// kBound, kStatus) round-trip losslessly.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/presets.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/remote_shard_set.h"
#include "runtime/sharded_engine.h"
#include "test_util.h"

namespace tq {
namespace {

using net::MessageType;
using net::NetClient;
using net::NetRequest;
using net::NetResponse;
using net::NetServer;
using net::NetServerOptions;
using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::RemoteShardSet;
using runtime::RemoteShardSetOptions;
using runtime::ServingEngine;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;
using runtime::UpdateBatch;

ShardedEngineOptions EngineOptions(size_t shards) {
  ShardedEngineOptions so;
  so.num_shards = shards;
  so.num_threads = 2;
  so.cache_capacity = 1024;
  so.tree.beta = 16;
  // Integer-valued model: cross-process sums must match bit for bit.
  so.tree.model = ServiceModel::PointCount(200.0, Normalization::kNone);
  return so;
}

/// One in-process "shard-worker process": a slice-owning engine behind the
/// TCP front-end on an ephemeral loopback port.
struct Worker {
  std::unique_ptr<ShardedEngine> engine;
  std::unique_ptr<NetServer> server;
  uint16_t port() const { return server->port(); }
};

Worker MakeWorker(const TrajectorySet& users, const TrajectorySet& fac,
                  size_t shards, uint32_t lo, uint32_t hi) {
  ShardedEngineOptions so = EngineOptions(shards);
  so.owned_begin = lo;
  so.owned_end = hi;
  Worker w;
  w.engine = std::make_unique<ShardedEngine>(users, fac, so);
  w.server = std::make_unique<NetServer>(w.engine.get(), NetServerOptions{});
  EXPECT_TRUE(w.server->Start().ok());
  return w;
}

std::vector<Worker> MakeWorkers(const TrajectorySet& users,
                                const TrajectorySet& fac, size_t shards,
                                size_t num_workers) {
  std::vector<Worker> workers;
  const uint32_t per =
      static_cast<uint32_t>(shards) / static_cast<uint32_t>(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    const auto lo = static_cast<uint32_t>(i) * per;
    const uint32_t hi = i + 1 == num_workers
                            ? static_cast<uint32_t>(shards)
                            : lo + per;
    workers.push_back(MakeWorker(users, fac, shards, lo, hi));
  }
  return workers;
}

RemoteShardSetOptions CoordOptions(const std::vector<Worker>& workers) {
  RemoteShardSetOptions ro;
  for (const Worker& w : workers) {
    ro.workers.emplace_back("127.0.0.1", w.port());
  }
  ro.num_threads = 2;
  return ro;
}

/// Synchronous query through any ServingEngine.
QueryResponse RunQuery(ServingEngine& engine, QueryRequest request) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  engine.SubmitAsync(
      std::move(request), nullptr,
      [&promise](QueryResponse r) { promise.set_value(std::move(r)); }, 0);
  return future.get();
}

void ExpectIdenticalAnswers(ServingEngine& reference, ServingEngine& coord,
                            size_t num_facilities) {
  for (FacilityId f = 0; f < num_facilities; ++f) {
    const QueryResponse want = RunQuery(reference, QueryRequest::ServiceValue(f));
    const QueryResponse got = RunQuery(coord, QueryRequest::ServiceValue(f));
    ASSERT_TRUE(want.status.ok());
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(want.value, got.value) << "facility " << f;
  }
  for (const size_t k : {size_t{1}, size_t{3}, size_t{8}, num_facilities}) {
    const QueryResponse want = RunQuery(reference, QueryRequest::TopK(k));
    const QueryResponse got = RunQuery(coord, QueryRequest::TopK(k));
    ASSERT_TRUE(want.status.ok());
    ASSERT_TRUE(got.status.ok()) << got.status.ToString();
    ASSERT_EQ(want.ranked.size(), got.ranked.size()) << "k=" << k;
    for (size_t i = 0; i < want.ranked.size(); ++i) {
      EXPECT_EQ(want.ranked[i].id, got.ranked[i].id) << "k=" << k;
      EXPECT_EQ(want.ranked[i].value, got.ranked[i].value) << "k=" << k;
    }
  }
}

// ------------------------------------------------- bit-identity matrix

TEST(Distributed, CoordinatorMatchesSingleProcessMatrixNyf) {
  const TrajectorySet users = presets::NyfCheckins(1200);
  const TrajectorySet fac = presets::NyBusRoutes(24, 12);
  for (const size_t shards : {size_t{2}, size_t{4}}) {
    ShardedEngine reference(users, fac, EngineOptions(shards));
    for (const size_t num_workers : {size_t{1}, size_t{2}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(num_workers));
      std::vector<Worker> workers =
          MakeWorkers(users, fac, shards, num_workers);
      RemoteShardSet coord(CoordOptions(workers));
      ASSERT_TRUE(coord.Connect().ok());
      const runtime::EngineInfo info = coord.info();
      EXPECT_EQ(info.num_shards, shards);
      EXPECT_EQ(info.num_facilities, fac.size());
      EXPECT_EQ(info.users_total, users.size());
      ExpectIdenticalAnswers(reference, coord, fac.size());
    }
  }
}

TEST(Distributed, PrunedAndExhaustiveProtocolsAgree) {
  const TrajectorySet users = presets::NyfCheckins(800);
  const TrajectorySet fac = presets::NyBusRoutes(16, 10);
  ShardedEngine reference(users, fac, EngineOptions(4));
  std::vector<Worker> workers = MakeWorkers(users, fac, 4, 2);
  for (const bool prune : {true, false}) {
    RemoteShardSetOptions ro = CoordOptions(workers);
    ro.prune_topk = prune;
    RemoteShardSet coord(ro);
    ASSERT_TRUE(coord.Connect().ok());
    for (const size_t k : {size_t{1}, size_t{5}, fac.size()}) {
      const QueryResponse want = RunQuery(reference, QueryRequest::TopK(k));
      const QueryResponse got = RunQuery(coord, QueryRequest::TopK(k));
      ASSERT_EQ(want.ranked.size(), got.ranked.size());
      for (size_t i = 0; i < want.ranked.size(); ++i) {
        EXPECT_EQ(want.ranked[i].id, got.ranked[i].id);
        EXPECT_EQ(want.ranked[i].value, got.ranked[i].value);
      }
    }
  }
}

// ------------------------------------------------------ update fan-out

TEST(Distributed, UpdateFanOutKeepsBitIdentity) {
  const TrajectorySet users = presets::NyfCheckins(600);
  const TrajectorySet fac = presets::NyBusRoutes(12, 10);
  ShardedEngine reference(users, fac, EngineOptions(4));
  std::vector<Worker> workers = MakeWorkers(users, fac, 4, 2);
  RemoteShardSet coord(CoordOptions(workers));
  ASSERT_TRUE(coord.Connect().ok());

  UpdateBatch batch;
  for (uint32_t id = 0; id < 5; ++id) {
    const auto pts = users.points(id);
    batch.inserts.emplace_back(pts.begin(), pts.end());
    batch.removes.push_back(id);
  }
  const std::vector<uint32_t> want_ids = reference.ApplyUpdates(batch);
  const std::vector<uint32_t> got_ids = coord.ApplyUpdates(batch);
  EXPECT_EQ(want_ids, got_ids);
  EXPECT_EQ(coord.info().users_total, users.size() + batch.inserts.size());
  EXPECT_GE(coord.snapshot_version(), 2u);
  ExpectIdenticalAnswers(reference, coord, fac.size());
}

// ------------------------------------------------------- failure paths

TEST(Distributed, WorkerDeathDegradesWithoutHanging) {
  const TrajectorySet users = presets::NyfCheckins(600);
  const TrajectorySet fac = presets::NyBusRoutes(12, 10);
  std::vector<Worker> workers = MakeWorkers(users, fac, 4, 2);
  RemoteShardSet coord(CoordOptions(workers));
  ASSERT_TRUE(coord.Connect().ok());
  ASSERT_TRUE(RunQuery(coord, QueryRequest::ServiceValue(0)).status.ok());

  workers[1].server->Stop();  // the "SIGKILL": every socket drops

  // Queries keep answering from the survivor, marked partial. The surviving
  // worker owns shards [0, 2) of 4, so the partial value is exactly its
  // local engine's answer.
  const QueryResponse sum = RunQuery(coord, QueryRequest::ServiceValue(3));
  EXPECT_EQ(sum.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(sum.value,
            RunQuery(*workers[0].engine, QueryRequest::ServiceValue(3)).value);

  const QueryResponse topk = RunQuery(coord, QueryRequest::TopK(5));
  EXPECT_EQ(topk.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(topk.ranked.size(), 5u);

  const auto m = coord.mutable_metrics()->Read();
  EXPECT_EQ(m.worker_failures, 1u);
  EXPECT_GE(m.coord_partial, 2u);

  const auto status = coord.Workers();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status[0].state, 1u);  // alive
  EXPECT_EQ(status[1].state, 2u);  // dead
}

TEST(Distributed, ConnectRejectsBadGeometry) {
  const TrajectorySet users = presets::NyfCheckins(300);
  const TrajectorySet fac = presets::NyBusRoutes(8, 8);
  // Workers from DIFFERENT partitions (4-way vs 2-way) must not compose.
  Worker a = MakeWorker(users, fac, 4, 0, 2);
  Worker b = MakeWorker(users, fac, 2, 1, 2);
  {
    RemoteShardSetOptions ro;
    ro.workers.emplace_back("127.0.0.1", a.port());
    ro.workers.emplace_back("127.0.0.1", b.port());
    RemoteShardSet coord(ro);
    EXPECT_FALSE(coord.Connect().ok());
  }
  // A gap in the tiling ([0,2) + [3,4)) must be refused too.
  Worker c = MakeWorker(users, fac, 4, 3, 4);
  {
    RemoteShardSetOptions ro;
    ro.workers.emplace_back("127.0.0.1", a.port());
    ro.workers.emplace_back("127.0.0.1", c.port());
    RemoteShardSet coord(ro);
    EXPECT_FALSE(coord.Connect().ok());
  }
}

// -------------------------------------------------- wire frame round-trips

TEST(DistributedProtocol, NewRequestTypesRoundTrip) {
  for (const NetRequest& original :
       {NetRequest::Register(), NetRequest::Heartbeat(77),
        NetRequest::Bound(9), NetRequest::ClusterStatus()}) {
    std::string wire;
    EncodeRequest(original, &wire);
    NetRequest decoded;
    ASSERT_TRUE(
        DecodeRequest(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.bound_k, original.bound_k);
    EXPECT_EQ(decoded.heartbeat_seq, original.heartbeat_seq);
  }
}

TEST(DistributedProtocol, StatusAndBoundResponsesRoundTrip) {
  NetResponse status;
  status.type = MessageType::kStatus;
  status.snapshot_version = 7;
  status.worker_info = {4, 0, 4, 200.0, 32, 2000};
  net::WireWorkerStatus row;
  row.address = "127.0.0.1:7102";
  row.state = 1;
  row.owned_begin = 0;
  row.owned_end = 2;
  row.heartbeats = 12;
  row.failures = 1;
  row.age_ms = 450;
  row.rtt_count = 99;
  row.rtt_p50_ns = 120'000;
  row.rtt_p99_ns = 4'000'000;
  status.workers.push_back(row);
  std::string wire;
  EncodeResponse(status, &wire);
  NetResponse decoded;
  ASSERT_TRUE(
      DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
  EXPECT_EQ(decoded.type, MessageType::kStatus);
  EXPECT_EQ(decoded.worker_info.num_shards, 4u);
  EXPECT_EQ(decoded.worker_info.users_total, 2000u);
  ASSERT_EQ(decoded.workers.size(), 1u);
  EXPECT_EQ(decoded.workers[0].address, row.address);
  EXPECT_EQ(decoded.workers[0].state, row.state);
  EXPECT_EQ(decoded.workers[0].heartbeats, row.heartbeats);
  EXPECT_EQ(decoded.workers[0].rtt_p99_ns, row.rtt_p99_ns);

  NetResponse bound;
  bound.type = MessageType::kBound;
  bound.snapshot_version = 3;
  bound.bounds = {1.5, 0.0, 2.25};
  bound.bound_exacts = {{1, 0.0}, {2, 2.0}};
  wire.clear();
  EncodeResponse(bound, &wire);
  ASSERT_TRUE(
      DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
  EXPECT_EQ(decoded.type, MessageType::kBound);
  EXPECT_EQ(decoded.bounds, bound.bounds);
  EXPECT_EQ(decoded.bound_exacts, bound.bound_exacts);
}

// A live worker answers kRegister / kHeartbeat / kBound / kStatus frames
// consistently with its engine.
TEST(DistributedProtocol, WorkerServesIdentityFrames) {
  const TrajectorySet users = presets::NyfCheckins(400);
  const TrajectorySet fac = presets::NyBusRoutes(8, 8);
  Worker w = MakeWorker(users, fac, 4, 1, 3);
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", w.port()).ok());

  NetResponse reg;
  ASSERT_TRUE(client.Register(&reg).ok());
  ASSERT_TRUE(reg.status.ok());
  EXPECT_EQ(reg.worker_info.num_shards, 4u);
  EXPECT_EQ(reg.worker_info.owned_begin, 1u);
  EXPECT_EQ(reg.worker_info.owned_end, 3u);
  EXPECT_EQ(reg.worker_info.num_facilities, fac.size());
  EXPECT_EQ(reg.worker_info.users_total, users.size());

  NetResponse hb;
  ASSERT_TRUE(client.Heartbeat(4242, &hb).ok());
  ASSERT_TRUE(hb.status.ok());
  EXPECT_EQ(hb.heartbeat_seq, 4242u);

  NetResponse bound;
  ASSERT_TRUE(client.Bound(3, &bound).ok());
  ASSERT_TRUE(bound.status.ok());
  ASSERT_EQ(bound.bounds.size(), fac.size());
  // Every settled exact must respect its own bound.
  for (const auto& [f, exact] : bound.bound_exacts) {
    ASSERT_LT(f, fac.size());
    EXPECT_LE(exact, bound.bounds[f]);
  }

  NetResponse status;
  ASSERT_TRUE(client.ClusterStatus(&status).ok());
  ASSERT_TRUE(status.status.ok());
  EXPECT_EQ(status.worker_info.owned_begin, 1u);
  EXPECT_TRUE(status.workers.empty());  // workers have no table
}

}  // namespace
}  // namespace tq
