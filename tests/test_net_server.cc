// Tests for the network front-end (src/net/): the wire protocol encodes and
// decodes losslessly and rejects malformed bytes, and the epoll server over
// a loopback socket answers sum / top-k / update requests BIT-IDENTICALLY
// to direct ShardedEngine calls for shards ∈ {1, 4, 8}, pipelines
// multi-request connections in arrival order, coalesces update frames into
// one publish, survives malformed frames and oversized length prefixes, and
// shuts down cleanly with requests still in flight. Run under
// -fsanitize=thread (cmake -DTQ_SANITIZE=thread) to check the
// loop-thread / pool-callback handoff for races; CI does.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/sharded_engine.h"
#include "test_util.h"

namespace tq {
namespace {

using net::FrameAssembler;
using net::MessageType;
using net::NetClient;
using net::NetRequest;
using net::NetResponse;
using net::NetServer;
using net::NetServerOptions;
using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;

ShardedEngineOptions EngineOptions(size_t shards, size_t cache = 2048) {
  ShardedEngineOptions so;
  so.num_shards = shards;
  so.num_threads = 4;
  so.cache_capacity = cache;
  so.tree.beta = 16;
  // Integer-valued model: cross-process sums must match bit for bit.
  so.tree.model = ServiceModel::PointCount(200.0, Normalization::kNone);
  return so;
}

// ------------------------------------------------------------- protocol

TEST(NetProtocol, RequestRoundTripsAllTypes) {
  for (const NetRequest& original :
       {NetRequest::Sum({3, 0, 99}), NetRequest::TopK({1, 8, 0}),
        NetRequest::Update({{{1.5, -2.5}, {3.0, 4.0}}, {{0.0, 0.0}}},
                           {7, 8})}) {
    std::string wire;
    EncodeRequest(original, &wire);
    FrameAssembler frames;
    frames.Feed(wire.data(), wire.size());
    std::string payload;
    ASSERT_EQ(frames.Next(&payload), FrameAssembler::Result::kFrame);
    NetRequest decoded;
    const Status st = DecodeRequest(payload, &decoded);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.psi, original.psi);
    EXPECT_EQ(decoded.facilities, original.facilities);
    EXPECT_EQ(decoded.ks, original.ks);
    EXPECT_EQ(decoded.removes, original.removes);
    ASSERT_EQ(decoded.inserts.size(), original.inserts.size());
    for (size_t i = 0; i < original.inserts.size(); ++i) {
      EXPECT_EQ(decoded.inserts[i], original.inserts[i]);
    }
  }
}

TEST(NetProtocol, ResponseRoundTripsValuesAndErrors) {
  NetResponse original;
  original.type = MessageType::kTopK;
  original.snapshot_version = 42;
  original.topks.resize(2);
  original.topks[0].ranked = {{5, 12.0}, {1, 12.0}};
  original.topks[1].code = StatusCode::kOutOfRange;
  std::string wire;
  EncodeResponse(original, &wire);
  FrameAssembler frames;
  frames.Feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(frames.Next(&payload), FrameAssembler::Result::kFrame);
  NetResponse decoded;
  ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
  EXPECT_TRUE(decoded.status.ok());
  EXPECT_EQ(decoded.snapshot_version, 42u);
  ASSERT_EQ(decoded.topks.size(), 2u);
  EXPECT_EQ(decoded.topks[0].ranked.size(), 2u);
  EXPECT_EQ(decoded.topks[0].ranked[0].id, 5u);
  EXPECT_EQ(decoded.topks[0].ranked[0].value, 12.0);
  EXPECT_EQ(decoded.topks[1].code, StatusCode::kOutOfRange);

  // Frame-level errors carry code + message through the wire.
  NetResponse error;
  error.type = MessageType::kError;
  error.status = Status::InvalidArgument("bad things");
  wire.clear();
  EncodeResponse(error, &wire);
  frames.Feed(wire.data(), wire.size());
  ASSERT_EQ(frames.Next(&payload), FrameAssembler::Result::kFrame);
  ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded.status.message(), "bad things");
}

TEST(NetProtocol, DecodeRejectsGarbageAndTruncation) {
  NetRequest out;
  EXPECT_FALSE(DecodeRequest("", &out).ok());
  EXPECT_FALSE(DecodeRequest("garbage bytes here", &out).ok());
  // An empty insert trajectory violates the library invariant the shard
  // router depends on — it must die at decode, never reach the engine.
  {
    std::string wire;
    EncodeRequest(NetRequest::Update({{}}, {}), &wire);
    NetRequest decoded;
    const Status st =
        DecodeRequest(wire.substr(net::kFrameHeaderBytes), &decoded);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  // A valid frame truncated anywhere must fail, never crash or over-read.
  std::string wire;
  EncodeRequest(NetRequest::Update({{{1.0, 2.0}}}, {3}), &wire);
  const std::string payload = wire.substr(net::kFrameHeaderBytes);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(payload.substr(0, len), &out).ok())
        << "truncation at " << len << " decoded";
  }
  EXPECT_TRUE(DecodeRequest(payload, &out).ok());
}

TEST(NetProtocol, SubscribeRoundTripsBothOps) {
  for (const NetRequest& original :
       {NetRequest::SubscribeSum(17), NetRequest::SubscribeTopK(8),
        NetRequest::Unsubscribe(0xDEADBEEFCAFEULL)}) {
    std::string wire;
    EncodeRequest(original, &wire);
    NetRequest decoded;
    const Status st =
        DecodeRequest(wire.substr(net::kFrameHeaderBytes), &decoded);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(decoded.type, MessageType::kSubscribe);
    EXPECT_EQ(decoded.sub_op, original.sub_op);
    EXPECT_EQ(decoded.sub_kind, original.sub_kind);
    EXPECT_EQ(decoded.sub_facility, original.sub_facility);
    EXPECT_EQ(decoded.sub_k, original.sub_k);
    EXPECT_EQ(decoded.sub_id, original.sub_id);
  }
  // Both op bodies, truncated at every byte: fail, never crash/over-read.
  for (const NetRequest& original :
       {NetRequest::SubscribeTopK(8), NetRequest::Unsubscribe(12345)}) {
    std::string wire;
    EncodeRequest(original, &wire);
    const std::string payload = wire.substr(net::kFrameHeaderBytes);
    NetRequest out;
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(DecodeRequest(payload.substr(0, len), &out).ok())
          << "truncation at " << len << " decoded";
    }
    EXPECT_TRUE(DecodeRequest(payload, &out).ok());
  }
  // An out-of-range op byte is rejected.
  {
    NetRequest bogus = NetRequest::Unsubscribe(1);
    bogus.sub_op = 2;
    std::string wire;
    EncodeRequest(bogus, &wire);
    NetRequest out;
    EXPECT_FALSE(
        DecodeRequest(wire.substr(net::kFrameHeaderBytes), &out).ok());
  }
}

TEST(NetProtocol, PushAndOverloadedResponsesRoundTrip) {
  // A kTopK push with real payload.
  NetResponse push;
  push.type = MessageType::kPush;
  push.snapshot_version = 9;
  push.sub_id = 0x1122334455667788ULL;
  push.push_epoch = 41;
  push.push_kind = net::SubscriptionKind::kTopK;
  push.push_topk.ranked = {{5, 12.0}, {1, 12.0}, {0, 3.5}};
  std::string wire;
  EncodeResponse(push, &wire);
  {
    NetResponse decoded;
    ASSERT_TRUE(
        DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
    EXPECT_EQ(decoded.type, MessageType::kPush);
    EXPECT_TRUE(decoded.status.ok());
    EXPECT_EQ(decoded.sub_id, push.sub_id);
    EXPECT_EQ(decoded.push_epoch, 41u);
    EXPECT_EQ(decoded.push_kind, net::SubscriptionKind::kTopK);
    ASSERT_EQ(decoded.push_topk.ranked.size(), 3u);
    EXPECT_EQ(decoded.push_topk.ranked[2].id, 0u);
    EXPECT_EQ(decoded.push_topk.ranked[2].value, 3.5);
  }
  // Truncated anywhere, the push body must fail to decode.
  {
    const std::string payload = wire.substr(net::kFrameHeaderBytes);
    NetResponse out;
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(DecodeResponse(payload.substr(0, len), &out).ok())
          << "truncation at " << len << " decoded";
    }
  }
  // Same for a kSum push.
  NetResponse sum_push;
  sum_push.type = MessageType::kPush;
  sum_push.sub_id = 7;
  sum_push.push_epoch = 1;
  sum_push.push_kind = net::SubscriptionKind::kSum;
  sum_push.push_sum = {StatusCode::kOk, 123.0};
  wire.clear();
  EncodeResponse(sum_push, &wire);
  {
    const std::string payload = wire.substr(net::kFrameHeaderBytes);
    NetResponse out;
    ASSERT_TRUE(DecodeResponse(payload, &out).ok());
    EXPECT_EQ(out.push_sum.code, StatusCode::kOk);
    EXPECT_EQ(out.push_sum.value, 123.0);
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(DecodeResponse(payload.substr(0, len), &out).ok());
    }
  }
  // The kOverloaded status code survives the wire with its message — the
  // shed answer must be recognizable in-protocol, not a generic error.
  NetResponse shed;
  shed.type = MessageType::kTopK;
  shed.status = Status::Overloaded("134 queries queued (max 128)");
  wire.clear();
  EncodeResponse(shed, &wire);
  {
    NetResponse decoded;
    ASSERT_TRUE(
        DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
    EXPECT_EQ(decoded.type, MessageType::kTopK);
    EXPECT_EQ(decoded.status.code(), StatusCode::kOverloaded);
    EXPECT_EQ(decoded.status.message(), "134 queries queued (max 128)");
    EXPECT_TRUE(decoded.topks.empty());
  }
  // A kSubscribe ack round-trips its assigned id.
  NetResponse ack;
  ack.type = MessageType::kSubscribe;
  ack.snapshot_version = 3;
  ack.sub_id = 99;
  wire.clear();
  EncodeResponse(ack, &wire);
  {
    NetResponse decoded;
    ASSERT_TRUE(
        DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
    EXPECT_EQ(decoded.type, MessageType::kSubscribe);
    EXPECT_EQ(decoded.sub_id, 99u);
  }
}

TEST(NetProtocol, FrameAssemblerSplitsByteDribble) {
  std::string wire;
  EncodeRequest(NetRequest::Sum({1}), &wire);
  EncodeRequest(NetRequest::TopK({2}), &wire);
  FrameAssembler frames;
  std::string payload;
  size_t got = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    frames.Feed(wire.data() + i, 1);  // one byte at a time
    while (frames.Next(&payload) == FrameAssembler::Result::kFrame) ++got;
  }
  EXPECT_EQ(got, 2u);

  // Oversized and zero length prefixes are unrecoverable.
  FrameAssembler small(/*max_frame_bytes=*/16);
  const char big[4] = {0x00, 0x01, 0x00, 0x00};  // length 256 > 16
  small.Feed(big, 4);
  EXPECT_EQ(small.Next(&payload), FrameAssembler::Result::kBad);
  FrameAssembler zero;
  const char nil[4] = {0x00, 0x00, 0x00, 0x00};
  zero.Feed(nil, 4);
  EXPECT_EQ(zero.Next(&payload), FrameAssembler::Result::kBad);
}

// ------------------------------------------------------ loopback serving

// THE acceptance check: answers over the wire are the direct ShardedEngine
// answers, bit for bit, at every shard count — for sums, top-k (both below
// and above the adaptive prune threshold), and post-update states.
TEST(NetServer, LoopbackAgreesBitIdenticallyWithDirectEngine) {
  const TrajectorySet users = presets::NyfCheckins(1200);
  const TrajectorySet routes = presets::NyBusRoutes(12, 10);
  for (const size_t shards : {1u, 4u, 8u}) {
    ShardedEngine direct(users, routes, EngineOptions(shards));
    ShardedEngine served(users, routes, EngineOptions(shards));
    NetServer server(&served, NetServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

    // One sum frame batching every facility.
    std::vector<FacilityId> all(routes.size());
    for (uint32_t f = 0; f < routes.size(); ++f) all[f] = f;
    NetResponse response;
    ASSERT_TRUE(client.Sum(all, &response).ok());
    ASSERT_TRUE(response.status.ok());
    ASSERT_EQ(response.sums.size(), routes.size());
    for (uint32_t f = 0; f < routes.size(); ++f) {
      const QueryResponse want =
          direct.Submit(QueryRequest::ServiceValue(f)).get();
      EXPECT_EQ(response.sums[f].code, StatusCode::kOk);
      EXPECT_EQ(response.sums[f].value, want.value)
          << "shards=" << shards << " facility=" << f;
    }

    // One top-k frame batching k = 1, 5 (pruned protocol) and k = |F|
    // (adaptive exhaustive path).
    const auto full = static_cast<uint32_t>(routes.size());
    ASSERT_TRUE(client.TopK({1, 5, full}, &response).ok());
    ASSERT_TRUE(response.status.ok());
    ASSERT_EQ(response.topks.size(), 3u);
    const std::vector<uint32_t> ks = {1, 5, full};
    for (size_t q = 0; q < ks.size(); ++q) {
      const QueryResponse want =
          direct.Submit(QueryRequest::TopK(ks[q])).get();
      ASSERT_EQ(response.topks[q].ranked.size(), want.ranked.size())
          << "shards=" << shards << " k=" << ks[q];
      for (size_t i = 0; i < want.ranked.size(); ++i) {
        EXPECT_EQ(response.topks[q].ranked[i].id, want.ranked[i].id)
            << "shards=" << shards << " k=" << ks[q] << " rank=" << i;
        EXPECT_EQ(response.topks[q].ranked[i].value, want.ranked[i].value)
            << "shards=" << shards << " k=" << ks[q] << " rank=" << i;
      }
    }

    // The same write batch through both paths; states must stay in step.
    std::vector<std::vector<Point>> inserts;
    for (uint32_t u = 0; u < 10; ++u) {
      const auto pts = users.points(u);
      inserts.emplace_back(pts.begin(), pts.end());
    }
    const std::vector<uint32_t> removes = {0, 3};
    runtime::UpdateBatch batch;
    batch.inserts = inserts;
    batch.removes = removes;
    const std::vector<uint32_t> direct_ids = direct.ApplyUpdates(batch);
    ASSERT_TRUE(client.Update(inserts, removes, &response).ok());
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.assigned_ids, direct_ids);
    EXPECT_EQ(response.snapshot_version, 2u);
    ASSERT_EQ(response.shard_generations.size(), shards);
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(response.shard_generations[s],
                served.snapshot()->shards[s]->generation);
    }
    ASSERT_TRUE(client.Sum(all, &response).ok());
    for (uint32_t f = 0; f < routes.size(); ++f) {
      const QueryResponse want =
          direct.Submit(QueryRequest::ServiceValue(f)).get();
      EXPECT_EQ(response.sums[f].value, want.value)
          << "post-update shards=" << shards << " facility=" << f;
    }
    server.Stop();
  }
}

TEST(NetServer, PerQueryErrorsDoNotFailTheFrame) {
  Rng rng(91);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 4, 6, w);
  ShardedEngine engine(users, facs, EngineOptions(2));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  NetResponse response;
  ASSERT_TRUE(client.Sum({0, 999, 1}, &response).ok());
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.sums.size(), 3u);
  EXPECT_EQ(response.sums[0].code, StatusCode::kOk);
  EXPECT_EQ(response.sums[1].code, StatusCode::kOutOfRange);
  EXPECT_EQ(response.sums[2].code, StatusCode::kOk);
}

TEST(NetServer, MismatchedPsiIsRejectedPerFrame) {
  Rng rng(92);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 80, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 3, 6, w);
  ShardedEngine engine(users, facs, EngineOptions(2));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  NetRequest wrong_psi = NetRequest::Sum({0});
  wrong_psi.psi = 123.0;  // engine serves ψ = 200
  ASSERT_TRUE(client.Send(wrong_psi).ok());
  NetResponse response;
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);

  // ψ = 200 (exact) and ψ = 0 (server default) both serve; the connection
  // survived the per-frame error.
  NetRequest right_psi = NetRequest::Sum({0});
  right_psi.psi = 200.0;
  ASSERT_TRUE(client.Send(right_psi).ok());
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_TRUE(response.status.ok());
  ASSERT_TRUE(client.Sum({0}, &response).ok());
  EXPECT_TRUE(response.status.ok());
}

// Pipelining: many frames of mixed types sent before any response is read;
// responses must come back 1:1 in arrival order.
TEST(NetServer, PipelinedFramesAnswerInArrivalOrder) {
  const TrajectorySet users = presets::NyfCheckins(800);
  const TrajectorySet routes = presets::NyBusRoutes(8, 8);
  ShardedEngine direct(users, routes, EngineOptions(4));
  ShardedEngine served(users, routes, EngineOptions(4));
  NetServer server(&served, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  constexpr size_t kRounds = 24;
  for (size_t i = 0; i < kRounds; ++i) {
    if (i % 3 == 2) {
      ASSERT_TRUE(
          client.Send(NetRequest::TopK({static_cast<uint32_t>(1 + i % 4)}))
              .ok());
    } else {
      ASSERT_TRUE(client
                      .Send(NetRequest::Sum(
                          {static_cast<FacilityId>(i % routes.size())}))
                      .ok());
    }
  }
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.pending(), kRounds);
  for (size_t i = 0; i < kRounds; ++i) {
    NetResponse response;
    ASSERT_TRUE(client.Receive(&response).ok()) << "frame " << i;
    ASSERT_TRUE(response.status.ok()) << "frame " << i;
    if (i % 3 == 2) {
      ASSERT_EQ(response.type, MessageType::kTopK) << "frame " << i;
      const QueryResponse want =
          direct.Submit(QueryRequest::TopK(1 + i % 4)).get();
      ASSERT_EQ(response.topks.size(), 1u);
      ASSERT_EQ(response.topks[0].ranked.size(), want.ranked.size());
      for (size_t r = 0; r < want.ranked.size(); ++r) {
        EXPECT_EQ(response.topks[0].ranked[r].id, want.ranked[r].id);
        EXPECT_EQ(response.topks[0].ranked[r].value, want.ranked[r].value);
      }
    } else {
      ASSERT_EQ(response.type, MessageType::kSum) << "frame " << i;
      const QueryResponse want =
          direct
              .Submit(QueryRequest::ServiceValue(
                  static_cast<FacilityId>(i % routes.size())))
              .get();
      ASSERT_EQ(response.sums.size(), 1u);
      EXPECT_EQ(response.sums[0].value, want.value) << "frame " << i;
    }
  }
  EXPECT_EQ(client.pending(), 0u);
  server.Stop();
}

// Coalescing: with update_batch = 4, three update frames pipelined in one
// burst flush through the idle path (3 < 4) — normally as ONE publish, and
// in every case upholding the accounting invariant publishes + coalesced =
// frames, with each frame answered with its own densely-assigned ids.
// (Strict one-publish assertions would race TCP segmentation: a burst the
// loop happens to read in two chunks legitimately flushes twice.)
TEST(NetServer, UpdateFramesCoalesceIntoOnePublish) {
  const TrajectorySet users = presets::NyfCheckins(500);
  const TrajectorySet routes = presets::NyBusRoutes(6, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServerOptions options;
  options.update_batch = 4;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  const uint64_t published_before =
      engine.metrics().Read().snapshots_published;

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < 3; ++i) {
    const auto pts = users.points(static_cast<uint32_t>(i));
    ASSERT_TRUE(client
                    .Send(NetRequest::Update(
                        {std::vector<Point>(pts.begin(), pts.end())}, {}))
                    .ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  const uint32_t base = static_cast<uint32_t>(users.size());
  uint64_t last_version = 0;
  for (size_t i = 0; i < 3; ++i) {
    NetResponse response;
    ASSERT_TRUE(client.Receive(&response).ok());
    ASSERT_TRUE(response.status.ok());
    ASSERT_EQ(response.assigned_ids.size(), 1u);
    // Global ids are dense in arrival order however the frames grouped.
    EXPECT_EQ(response.assigned_ids[0], base + i);
    EXPECT_GE(response.snapshot_version, std::max<uint64_t>(last_version, 2));
    last_version = response.snapshot_version;
  }
  const runtime::MetricsView m = engine.metrics().Read();
  const uint64_t publishes = m.snapshots_published - published_before;
  EXPECT_GE(publishes, 1u);
  EXPECT_LE(publishes, 3u);
  EXPECT_EQ(m.net_batches_coalesced + publishes, 3u);
  EXPECT_EQ(m.trajectories_inserted, 3u);
  EXPECT_EQ(last_version, 1 + publishes);
}

// ------------------------------------------------------ failure handling

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads frames until EOF; returns the decoded responses.
std::vector<NetResponse> DrainResponses(int fd) {
  std::vector<NetResponse> responses;
  FrameAssembler frames;
  char buf[4096];
  for (;;) {
    std::string payload;
    while (frames.Next(&payload) == FrameAssembler::Result::kFrame) {
      NetResponse r;
      if (DecodeResponse(payload, &r).ok()) responses.push_back(r);
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    frames.Feed(buf, static_cast<size_t>(n));
  }
  return responses;
}

TEST(NetServer, MalformedFrameGetsErrorResponseThenClose) {
  Rng rng(93);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 60, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 3, 6, w);
  ShardedEngine engine(users, facs, EngineOptions(2));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  // Well-framed garbage: length says 7, payload is no valid request.
  const std::string bad("\x07\x00\x00\x00garbage", 11);
  ASSERT_EQ(::send(fd, bad.data(), bad.size(), 0),
            static_cast<ssize_t>(bad.size()));
  const std::vector<NetResponse> responses = DrainResponses(fd);
  ASSERT_EQ(responses.size(), 1u);  // error response, then EOF
  EXPECT_EQ(responses[0].type, MessageType::kError);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  ::close(fd);

  // The server survives and keeps serving fresh connections.
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  NetResponse response;
  ASSERT_TRUE(client.Sum({0}, &response).ok());
  EXPECT_TRUE(response.status.ok());
}

// Regression: an update frame with a zero-point insert used to reach the
// shard router's non-empty-trajectory TQ_CHECK — a remotely triggerable
// abort of the whole serving process. It must die at decode: one error
// response, connection closed, server alive.
TEST(NetServer, EmptyInsertTrajectoryIsRejectedNotFatal) {
  Rng rng(95);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 60, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 3, 6, w);
  ShardedEngine engine(users, facs, EngineOptions(2));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  std::string wire;
  EncodeRequest(NetRequest::Update({{}}, {}), &wire);  // one 0-point insert
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  const std::vector<NetResponse> responses = DrainResponses(fd);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  ::close(fd);

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  NetResponse response;
  ASSERT_TRUE(client.Sum({0}, &response).ok());
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(engine.metrics().Read().trajectories_inserted, 0u);
}

// A response that would blow past the frame cap (which the client's
// assembler would reject as unframeable) is replaced by an in-protocol
// error; the connection keeps serving smaller requests.
TEST(NetServer, OversizedResponseBecomesFrameError) {
  Rng rng(96);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 60, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 3, 6, w);
  ShardedEngine engine(users, facs, EngineOptions(2));
  NetServerOptions options;
  options.max_frame_bytes = 512;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Request payload: 14 + 4 + 64·4 = 274 B (fits); sum response payload:
  // 15 + 4 + 64·9 = 595 B (> 512) — must come back as an error frame.
  std::vector<FacilityId> many(64, 0);
  NetResponse response;
  ASSERT_TRUE(client.Sum(many, &response).ok());
  EXPECT_EQ(response.type, MessageType::kError);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);

  // Splitting the batch, as the error suggests, works on the same socket.
  ASSERT_TRUE(client.Sum({0, 1, 2}, &response).ok());
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.sums.size(), 3u);
}

TEST(NetServer, OversizedLengthPrefixIsRejected) {
  Rng rng(94);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 60, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 3, 6, w);
  ShardedEngine engine(users, facs, EngineOptions(2));
  NetServerOptions options;
  options.max_frame_bytes = 1024;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  const uint32_t huge = 1u << 20;  // 1 MiB > the 1 KiB cap
  ASSERT_EQ(::send(fd, &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  const std::vector<NetResponse> responses = DrainResponses(fd);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].type, MessageType::kError);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  ::close(fd);
}

// Stop() with requests still in flight: every dispatched query completes
// before sockets close (no use-after-free for TSan/ASan to find), the call
// does not hang, and the engine stays healthy afterwards.
TEST(NetServer, CleanShutdownWithInFlightRequests) {
  const TrajectorySet users = presets::NyfCheckins(1000);
  const TrajectorySet routes = presets::NyBusRoutes(16, 8);
  // Cache off: every query does real tree work, so Stop() genuinely races
  // in-flight gathers.
  ShardedEngine engine(users, routes, EngineOptions(4, /*cache=*/0));
  auto server = std::make_unique<NetServer>(&engine, NetServerOptions{});
  ASSERT_TRUE(server->Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  std::vector<FacilityId> all(routes.size());
  for (uint32_t f = 0; f < routes.size(); ++f) all[f] = f;
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(client.Send(NetRequest::Sum(all)).ok());
    ASSERT_TRUE(client.Send(NetRequest::TopK({4})).ok());
  }
  ASSERT_TRUE(client.Flush().ok());
  server->Stop();  // must drain dispatched work and return
  server.reset();

  // Whatever the client still receives is well-formed; then EOF.
  NetResponse response;
  while (client.pending() > 0 && client.Receive(&response).ok()) {
    EXPECT_TRUE(response.status.ok());
  }
  // The engine is untouched by the shutdown: direct queries still work.
  const QueryResponse direct =
      engine.Submit(QueryRequest::ServiceValue(0)).get();
  EXPECT_TRUE(direct.status.ok());
}

// An update sent around shutdown is never half-lost: whether the loop's
// round-flush or the shutdown-path FlushUpdates wins the race, Stop()
// returns without hanging and the insert is fully applied. (The high
// update_batch keeps the THRESHOLD flush out of the picture, so this
// exercises the round/shutdown flush paths only.)
TEST(NetServer, ShutdownFlushesParkedUpdates) {
  const TrajectorySet users = presets::NyfCheckins(400);
  const TrajectorySet routes = presets::NyBusRoutes(6, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServerOptions options;
  options.update_batch = 100;  // threshold unreachable with one frame
  auto server = std::make_unique<NetServer>(&engine, options);
  ASSERT_TRUE(server->Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  const auto pts = users.points(0);
  ASSERT_TRUE(client
                  .Send(NetRequest::Update(
                      {std::vector<Point>(pts.begin(), pts.end())}, {}))
                  .ok());
  ASSERT_TRUE(client.Flush().ok());
  // Give the loop a chance to decode and park the frame, then stop.
  NetResponse response;
  const Status received = client.Receive(&response);
  server->Stop();
  server.reset();
  if (received.ok()) {
    EXPECT_TRUE(response.status.ok());
  }
  EXPECT_EQ(engine.metrics().Read().trajectories_inserted, 1u);
  EXPECT_EQ(engine.NumUsersTotal(), users.size() + 1);
}

// ------------------------------------------------------- stats frame

TEST(NetProtocol, StatsRequestAndResponseRoundTrip) {
  // Request side: the max-traces cap survives the wire.
  {
    std::string wire;
    EncodeRequest(NetRequest::Stats(17), &wire);
    NetRequest decoded;
    ASSERT_TRUE(
        DecodeRequest(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
    EXPECT_EQ(decoded.type, MessageType::kStats);
    EXPECT_EQ(decoded.stats_max_traces, 17u);
  }
  // Response side: counters, histograms and traces all round-trip.
  NetResponse original;
  original.type = MessageType::kStats;
  original.snapshot_version = 3;
  original.stats.counters = {{"queries_total", 42}, {"cache_hits", 7}};
  net::WireHistogram h;
  h.name = "topk_query";
  h.count = 10;
  h.sum_ns = 1000;
  h.p50_ns = 90;
  h.p90_ns = 180;
  h.p99_ns = 270;
  h.max_ns = 512;
  original.stats.histograms.push_back(h);
  net::WireTrace t;
  t.op = "net_topk";
  t.detail = 8;
  t.total_ns = 5000000;
  t.snapshot_version = 3;
  t.unix_ms = 1754600000000ull;
  t.dropped_spans = 2;
  t.spans = {{"decode", -1, 0, 4200}, {"shard_sweep", 5, 5000, 90000}};
  original.stats.traces.push_back(t);
  std::string wire;
  EncodeResponse(original, &wire);
  NetResponse decoded;
  ASSERT_TRUE(
      DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded).ok());
  EXPECT_EQ(decoded.type, MessageType::kStats);
  ASSERT_EQ(decoded.stats.counters.size(), 2u);
  EXPECT_EQ(decoded.stats.counters[0].first, "queries_total");
  EXPECT_EQ(decoded.stats.counters[0].second, 42u);
  ASSERT_EQ(decoded.stats.histograms.size(), 1u);
  EXPECT_EQ(decoded.stats.histograms[0].name, "topk_query");
  EXPECT_EQ(decoded.stats.histograms[0].p99_ns, 270u);
  EXPECT_EQ(decoded.stats.histograms[0].max_ns, 512u);
  ASSERT_EQ(decoded.stats.traces.size(), 1u);
  const net::WireTrace& dt = decoded.stats.traces[0];
  EXPECT_EQ(dt.op, "net_topk");
  EXPECT_EQ(dt.total_ns, 5000000u);
  EXPECT_EQ(dt.dropped_spans, 2u);
  ASSERT_EQ(dt.spans.size(), 2u);
  EXPECT_EQ(dt.spans[0].name, "decode");
  EXPECT_EQ(dt.spans[0].shard, -1);
  EXPECT_EQ(dt.spans[1].shard, 5);
  EXPECT_EQ(dt.spans[1].end_ns, 90000u);
  // The CLI/CI JSON rendering carries the key sections.
  const std::string json = net::WireStatsToJson(decoded.stats);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"queries_total\":42"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"traces\":["), std::string::npos);
  EXPECT_NE(json.find("\"shard_sweep\""), std::string::npos);
}

// A live loopback scrape: drive traffic, then assert the stats frame's
// internal consistency — the acceptance invariant is that the per-query
// latency histograms count EVERY submitted query (service + topk counts
// equal queries_total), and at least one trace carries per-shard spans.
TEST(NetServer, LoopbackStatsScrapeIsConsistent) {
  const TrajectorySet users = presets::NyfCheckins(1200);
  const TrajectorySet routes = presets::NyBusRoutes(12, 10);
  ShardedEngine engine(users, routes, EngineOptions(4));
  NetServerOptions options;
  options.trace_sample = 1;  // trace every frame: the scrape must see spans
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  std::vector<FacilityId> all(routes.size());
  for (uint32_t f = 0; f < routes.size(); ++f) all[f] = f;
  NetResponse response;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Sum(all, &response).ok() && response.status.ok());
  }
  ASSERT_TRUE(client.TopK({3, 5}, &response).ok() && response.status.ok());

  ASSERT_TRUE(client.Stats(32, &response).ok());
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.type, MessageType::kStats);
  const net::WireStats& stats = response.stats;

  uint64_t queries_total = 0, service_queries = 0, topk_queries = 0;
  for (const auto& [name, value] : stats.counters) {
    if (name == "queries_total") queries_total = value;
    if (name == "service_queries") service_queries = value;
    if (name == "topk_queries") topk_queries = value;
  }
  EXPECT_EQ(service_queries, 5u * routes.size());
  EXPECT_EQ(topk_queries, 2u);
  EXPECT_EQ(queries_total, service_queries + topk_queries);

  // Histogram-count invariant: every query recorded exactly one latency.
  uint64_t hist_service = 0, hist_topk = 0, hist_frames = 0;
  for (const net::WireHistogram& h : stats.histograms) {
    if (h.name == "service_query") hist_service = h.count;
    if (h.name == "topk_query") hist_topk = h.count;
    if (h.name == "net_frame") hist_frames = h.count;
    EXPECT_GE(h.max_ns, h.p99_ns) << h.name;
    EXPECT_GE(h.p99_ns, h.p50_ns) << h.name;
  }
  EXPECT_EQ(hist_service, service_queries);
  EXPECT_EQ(hist_topk, topk_queries);
  EXPECT_EQ(hist_frames, 6u);  // 5 sum + 1 topk frames answered so far

  // Sampled frame traces landed in the ring with per-shard spans.
  ASSERT_FALSE(stats.traces.empty());
  // Slowest-first ordering.
  for (size_t i = 1; i < stats.traces.size(); ++i) {
    EXPECT_GE(stats.traces[i - 1].total_ns, stats.traces[i].total_ns);
  }
  bool saw_shard_span = false, saw_decode = false;
  for (const net::WireTrace& t : stats.traces) {
    EXPECT_TRUE(t.op == "net_sum" || t.op == "net_topk" || t.op == "sum" ||
                t.op == "topk")
        << t.op;
    for (const net::WireSpan& s : t.spans) {
      EXPECT_LE(s.start_ns, s.end_ns);
      if (s.shard >= 0) saw_shard_span = true;
      if (s.name == "decode") saw_decode = true;
    }
  }
  EXPECT_TRUE(saw_shard_span);
  EXPECT_TRUE(saw_decode);
  server.Stop();
}

// Disabling trace sampling serves untraced frames; the stats frame still
// answers (engine-owned query traces may appear, frame traces must not).
TEST(NetServer, StatsWithSamplingDisabled) {
  const TrajectorySet users = presets::NyfCheckins(600);
  const TrajectorySet routes = presets::NyBusRoutes(6, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServerOptions options;
  options.trace_sample = 0;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  NetResponse response;
  ASSERT_TRUE(client.Sum({0, 1, 2}, &response).ok() && response.status.ok());
  ASSERT_TRUE(client.Stats(8, &response).ok());
  ASSERT_TRUE(response.status.ok());
  for (const net::WireTrace& t : response.stats.traces) {
    EXPECT_NE(t.op.substr(0, 4), "net_") << "frame trace despite sample=0";
  }
  server.Stop();
}

}  // namespace
}  // namespace tq