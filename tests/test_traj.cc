#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "traj/dataset.h"
#include "traj/io.h"
#include "traj/stats.h"

namespace tq {
namespace {

TEST(TrajectorySet, AddAndAccess) {
  TrajectorySet set;
  const Point a[] = {{0, 0}, {3, 4}};
  const Point b[] = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(set.Add(a), 0u);
  EXPECT_EQ(set.Add(b), 1u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.NumPoints(0), 2u);
  EXPECT_EQ(set.NumPoints(1), 3u);
  EXPECT_EQ(set.TotalPoints(), 5u);
  EXPECT_DOUBLE_EQ(set.length(0), 5.0);
  EXPECT_EQ(set.points(1)[2], (Point{3, 3}));
  EXPECT_EQ(set.mbr(0), Rect::Of(0, 0, 3, 4));
}

TEST(TrajectorySet, ViewEndpoints) {
  TrajectorySet set;
  const Point a[] = {{5, 6}, {7, 8}, {9, 10}};
  set.Add(a);
  const TrajectoryView v = set.view(0);
  EXPECT_EQ(v.Source(), (Point{5, 6}));
  EXPECT_EQ(v.Destination(), (Point{9, 10}));
  EXPECT_EQ(v.NumPoints(), 3u);
}

TEST(TrajectorySet, BoundingBox) {
  TrajectorySet set;
  const Point a[] = {{0, 0}, {10, 10}};
  const Point b[] = {{-5, 3}, {2, 20}};
  set.Add(a);
  set.Add(b);
  EXPECT_EQ(set.BoundingBox(), Rect::Of(-5, 0, 10, 20));
}

TEST(TrajIo, ParseLine) {
  std::vector<Point> pts;
  ASSERT_TRUE(ParseTrajectoryLine("1.5,2.5;3,4", &pts).ok());
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].x, 1.5);
  EXPECT_DOUBLE_EQ(pts[1].y, 4.0);
}

TEST(TrajIo, ParseRejectsGarbage) {
  for (const char* bad : {"notapoint", "1,2;3", "", "1;2", ",;,"}) {
    std::vector<Point> pts;
    EXPECT_FALSE(ParseTrajectoryLine(bad, &pts).ok()) << bad;
  }
}

TEST(TrajIo, RoundTrip) {
  TrajectorySet set;
  const Point a[] = {{100.25, 200.5}, {300.75, 400.125}};
  const Point b[] = {{1, 2}, {3, 4}, {5, 6}};
  set.Add(a);
  set.Add(b);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tq_io_test.csv").string();
  ASSERT_TRUE(SaveTrajectoryCsv(path, set).ok());
  TrajectorySet loaded;
  ASSERT_TRUE(LoadTrajectoryCsv(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.NumPoints(0), 2u);
  EXPECT_EQ(loaded.NumPoints(1), 3u);
  EXPECT_NEAR(loaded.points(0)[0].x, 100.25, 1e-3);
  EXPECT_NEAR(loaded.points(1)[2].y, 6.0, 1e-3);
  std::remove(path.c_str());
}

TEST(TrajIo, LoadMissingFileFails) {
  TrajectorySet set;
  const Status st = LoadTrajectoryCsv("/nonexistent/definitely/not.csv", &set);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(TrajIo, SkipsCommentsAndBlankLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tq_io_comments.csv")
          .string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# header comment\n\n1,2;3,4\n", f);
    fclose(f);
  }
  TrajectorySet set;
  ASSERT_TRUE(LoadTrajectoryCsv(path, &set).ok());
  EXPECT_EQ(set.size(), 1u);
  std::remove(path.c_str());
}

TEST(Stats, ComputesAverages) {
  TrajectorySet set;
  const Point a[] = {{0, 0}, {0, 10}};
  const Point b[] = {{0, 0}, {0, 10}, {0, 30}};
  set.Add(a);
  set.Add(b);
  const DatasetStats s = ComputeStats(set);
  EXPECT_EQ(s.num_trajectories, 2u);
  EXPECT_EQ(s.total_points, 5u);
  EXPECT_DOUBLE_EQ(s.avg_points, 2.5);
  EXPECT_DOUBLE_EQ(s.avg_length, (10.0 + 30.0) / 2.0);
  EXPECT_FALSE(s.ToString("test").empty());
}

}  // namespace
}  // namespace tq
