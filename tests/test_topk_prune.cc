// Tests for bound-and-prune distributed top-k (src/runtime/sharded_engine
// bound rounds + src/tqtree TQTree::UpperBound):
//   * the aggregate bound is sound — never below the exact service value —
//     at every descent budget, tree mode and service model tested;
//   * pruned top-k answers agree bit-for-bit with the exhaustive gather and
//     with the brute-force ranked oracle on NYF for k ∈ {1, 5, 64} ×
//     shards ∈ {1, 2, 4, 8}, including tie-heavy value distributions;
//   * the protocol actually prunes: facilities_evaluated stays below the
//     facilities × shards exhaustive-sweep count, with the skipped slots
//     accounted in facilities_pruned;
//   * the adaptive large-k switch (prune_skip_ratio) routes k ≥ ratio·|F|
//     queries straight to the exhaustive gather, same answers.
// Runs under ASan+UBSan and TSan in CI (two-round gathers hop threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/presets.h"
#include "query/eval_service.h"
#include "query/topk.h"
#include "runtime/sharded_engine.h"
#include "service/facility_index.h"
#include "test_util.h"
#include "tqtree/tq_tree.h"

namespace tq {
namespace {

using runtime::MetricsView;
using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;

ShardedEngineOptions Options(size_t shards, const ServiceModel& model,
                             bool prune, size_t cache_capacity = 0) {
  ShardedEngineOptions so;
  so.num_shards = shards;
  so.num_threads = 4;
  so.cache_capacity = cache_capacity;
  so.prune_topk = prune;
  so.tree.beta = 16;
  so.tree.model = model;
  return so;
}

// Brute-force ranked oracle: every facility's SO over the raw user set,
// ordered by the library's (value desc, id asc) rule.
std::vector<RankedFacility> OracleRanking(const TrajectorySet& users,
                                          const TrajectorySet& facs,
                                          const ServiceModel& model,
                                          size_t k) {
  std::vector<RankedFacility> all(facs.size());
  for (uint32_t f = 0; f < facs.size(); ++f) {
    all[f] = RankedFacility{
        f, testing::BruteForceSO(users, facs.points(f), model)};
  }
  std::sort(all.begin(), all.end(), RankedBefore);
  all.resize(std::min(k, all.size()));
  return all;
}

// ------------------------------------------------------ TQTree::UpperBound

// Soundness at every descent budget: the aggregate bound may be loose but
// must never fall below the exact value, or pruning would drop answers.
TEST(TQTreeUpperBound, NeverBelowExactServiceValue) {
  Rng rng(97);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 6, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 24, 8, w);
  for (const TrajMode mode : {TrajMode::kWhole, TrajMode::kSegmented}) {
    for (const ServiceModel& model :
         {ServiceModel::PointCount(300.0, Normalization::kNone),
          ServiceModel::Endpoints(300.0), ServiceModel::PointCount(150.0)}) {
      TQTreeOptions options;
      options.beta = 16;
      options.mode = mode;
      options.model = model;
      TQTree tree(&users, options);
      const ServiceEvaluator eval(&users, model);
      const FacilityCatalog catalog(&facs, model.psi);
      for (uint32_t f = 0; f < facs.size(); ++f) {
        const double exact =
            EvaluateServiceTQ(&tree, eval, catalog.grid(f), nullptr);
        for (const int levels : {0, 2, 6}) {
          size_t nodes = 0;
          const double bound =
              tree.UpperBound(catalog.grid(f), levels, &nodes);
          EXPECT_GE(bound, exact)
              << "mode=" << static_cast<int>(mode)
              << " facility=" << f << " levels=" << levels;
          EXPECT_GT(nodes, 0u);
        }
        // Deeper descent can only tighten (or keep) the bound.
        EXPECT_LE(tree.UpperBound(catalog.grid(f), 6),
                  tree.UpperBound(catalog.grid(f), 0));
      }
    }
  }
}

TEST(TQTreeUpperBound, ZeroBoundForUnreachableFacility) {
  Rng rng(101);
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  const TrajectorySet users = testing::RandomUsers(&rng, 50, 2, 4, w);
  // A facility whose ψ-disks cannot touch any user point.
  TrajectorySet facs;
  facs.Add(std::vector<Point>{Point{50000, 50000}, Point{50100, 50100}});
  const ServiceModel model = ServiceModel::PointCount(10.0);
  TQTreeOptions options;
  options.model = model;
  TQTree tree(&users, options);
  const FacilityCatalog catalog(&facs, model.psi);
  EXPECT_EQ(tree.UpperBound(catalog.grid(0), 4), 0.0);
}

// --------------------------------------------------- pruned top-k answers

// The acceptance sweep: on the NYF preset, the pruned protocol must
// reproduce the brute-force ranked oracle (ids, and values to float
// tolerance) and the exhaustive gather (values bit for bit) at every
// (k, shards) combination.
TEST(TopKPrune, NyfExactAgreementWithBruteForceRanking) {
  const TrajectorySet users = presets::NyfCheckins(1500);
  const TrajectorySet routes = presets::NyBusRoutes(64, 8);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);
  for (const size_t k : {1u, 5u, 64u}) {
    const std::vector<RankedFacility> oracle =
        OracleRanking(users, routes, model, k);
    for (const size_t shards : {1u, 2u, 4u, 8u}) {
      ShardedEngine pruned(users, routes, Options(shards, model, true));
      ShardedEngine exhaustive(users, routes, Options(shards, model, false));
      const QueryResponse got =
          pruned.Submit(QueryRequest::TopK(k)).get();
      const QueryResponse want =
          exhaustive.Submit(QueryRequest::TopK(k)).get();
      ASSERT_EQ(got.ranked.size(), oracle.size())
          << "k=" << k << " shards=" << shards;
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(got.ranked[i].id, oracle[i].id)
            << "k=" << k << " shards=" << shards << " rank=" << i;
        EXPECT_NEAR(got.ranked[i].value, oracle[i].value, 1e-9)
            << "k=" << k << " shards=" << shards << " rank=" << i;
        // Bit-identical to the exhaustive scatter/gather: same per-shard
        // sums in the same shard order.
        EXPECT_EQ(got.ranked[i].id, want.ranked[i].id);
        EXPECT_EQ(got.ranked[i].value, want.ranked[i].value);
      }
    }
  }
}

// Tie-heavy distribution: three exact copies of every facility force large
// groups of exactly equal values; pruning near the k-th threshold must not
// disturb the ascending-id tie order, even when k cuts through a tie group.
TEST(TopKPrune, TieHeavyValuesKeepAscendingIdOrder) {
  Rng rng(31);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 5, w);
  const TrajectorySet base = testing::RandomFacilities(&rng, 6, 8, w);
  TrajectorySet facs;
  for (int copy = 0; copy < 3; ++copy) {
    for (uint32_t f = 0; f < base.size(); ++f) facs.Add(base.points(f));
  }
  const ServiceModel model =
      ServiceModel::PointCount(300.0, Normalization::kNone);
  // k = 8 lands inside the third tie group (each group has 3 members).
  for (const size_t k : {3u, 8u, 18u}) {
    const std::vector<RankedFacility> oracle =
        OracleRanking(users, facs, model, k);
    for (const size_t shards : {2u, 4u}) {
      ShardedEngine pruned(users, facs, Options(shards, model, true));
      const QueryResponse got =
          pruned.Submit(QueryRequest::TopK(k)).get();
      ASSERT_EQ(got.ranked.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(got.ranked[i].id, oracle[i].id)
            << "k=" << k << " shards=" << shards << " rank=" << i;
        EXPECT_NEAR(got.ranked[i].value, oracle[i].value, 1e-9);
      }
      for (size_t i = 0; i + 1 < got.ranked.size(); ++i) {
        if (got.ranked[i].value == got.ranked[i + 1].value) {
          EXPECT_LT(got.ranked[i].id, got.ranked[i + 1].id);
        }
      }
    }
  }
}

// ------------------------------------------------------- prune accounting

// The point of the protocol: strictly fewer exact evaluations than the
// exhaustive facilities × shards sweep, with the skipped slots accounted.
TEST(TopKPrune, EvaluatesStrictlyFewerFacilitiesThanExhaustive) {
  const TrajectorySet users = presets::NyfCheckins(1500);
  const TrajectorySet routes = presets::NyBusRoutes(64, 8);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);
  constexpr size_t kShards = 4;
  ShardedEngine engine(users, routes, Options(kShards, model, true));
  (void)engine.Submit(QueryRequest::TopK(10)).get();

  const MetricsView m = engine.metrics().Read();
  const uint64_t slots = static_cast<uint64_t>(routes.size()) * kShards;
  EXPECT_GT(m.facilities_pruned, 0u) << "no facility was ever pruned";
  EXPECT_LT(m.facilities_evaluated, slots)
      << "pruned top-k regressed to the exhaustive sweep";
  EXPECT_EQ(m.facilities_evaluated + m.facilities_pruned, slots);
  EXPECT_GE(m.prune_rounds, 1u);
  EXPECT_LE(m.prune_rounds, 2u);

  // The exhaustive engine leaves the prune counters untouched.
  ShardedEngine exhaustive(users, routes, Options(kShards, model, false));
  (void)exhaustive.Submit(QueryRequest::TopK(10)).get();
  const MetricsView me = exhaustive.metrics().Read();
  EXPECT_EQ(me.facilities_evaluated, 0u);
  EXPECT_EQ(me.facilities_pruned, 0u);
  EXPECT_EQ(me.prune_rounds, 0u);
}

// Memoised answers and invalidation are protocol-independent: a repeated
// top-k hits the cache without re-running the rounds, and a write batch
// that republishes a contributing shard forces a fresh (still exact) run.
TEST(TopKPrune, CachedAnswerSurvivesAndInvalidatesAcrossWrites) {
  const TrajectorySet users = presets::NyfCheckins(800);
  const TrajectorySet routes = presets::NyBusRoutes(16, 8);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);
  ShardedEngine engine(users, routes,
                       Options(4, model, true, /*cache_capacity=*/2048));

  const QueryResponse first = engine.Submit(QueryRequest::TopK(5)).get();
  EXPECT_FALSE(first.cache_hit);
  const uint64_t evaluated_after_first =
      engine.metrics().Read().facilities_evaluated;
  const QueryResponse second = engine.Submit(QueryRequest::TopK(5)).get();
  EXPECT_TRUE(second.cache_hit);
  // A memoised hit never re-enters the rounds.
  EXPECT_EQ(engine.metrics().Read().facilities_evaluated,
            evaluated_after_first);
  ASSERT_EQ(second.ranked.size(), first.ranked.size());
  for (size_t i = 0; i < first.ranked.size(); ++i) {
    EXPECT_EQ(second.ranked[i].id, first.ranked[i].id);
    EXPECT_EQ(second.ranked[i].value, first.ranked[i].value);
  }

  runtime::UpdateBatch batch;
  batch.removes = {0};
  engine.ApplyUpdates(batch);
  const QueryResponse third = engine.Submit(QueryRequest::TopK(5)).get();
  EXPECT_FALSE(third.cache_hit);

  // Fresh answer agrees with the post-write brute-force oracle.
  TrajectorySet active;
  for (uint32_t u = 1; u < users.size(); ++u) active.Add(users.points(u));
  const std::vector<RankedFacility> oracle =
      OracleRanking(active, routes, model, 5);
  ASSERT_EQ(third.ranked.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(third.ranked[i].id, oracle[i].id) << "rank " << i;
    EXPECT_NEAR(third.ranked[i].value, oracle[i].value, 1e-9);
  }
}

// ------------------------------------------------------------- edge cases

TEST(TopKPrune, DegenerateRequestsStayExact) {
  Rng rng(71);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 5, 6, w);
  const ServiceModel model =
      ServiceModel::PointCount(300.0, Normalization::kNone);
  ShardedEngine engine(users, facs, Options(8, model, true));

  // k = 0: empty answer, no crash.
  EXPECT_TRUE(engine.Submit(QueryRequest::TopK(0)).get().ranked.empty());
  // k > facilities: clamped to the full exact ranking.
  const QueryResponse all = engine.Submit(QueryRequest::TopK(99)).get();
  const std::vector<RankedFacility> oracle =
      OracleRanking(users, facs, model, facs.size());
  ASSERT_EQ(all.ranked.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(all.ranked[i].id, oracle[i].id);
    EXPECT_NEAR(all.ranked[i].value, oracle[i].value, 1e-9);
  }

  // More shards than users (some shards empty) with a tiny k.
  const TrajectorySet few = testing::RandomUsers(&rng, 3, 2, 4, w);
  ShardedEngine sparse(few, facs, Options(8, model, true));
  const QueryResponse top =
      sparse.Submit(QueryRequest::TopK(2)).get();
  const std::vector<RankedFacility> sparse_oracle =
      OracleRanking(few, facs, model, 2);
  ASSERT_EQ(top.ranked.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(top.ranked[i].id, sparse_oracle[i].id);
    EXPECT_NEAR(top.ranked[i].value, sparse_oracle[i].value, 1e-9);
  }
}

// Segmented trees route top-k through the accumulator-dedup path; the bound
// protocol must stay sound there too (per-unit bounds over-count a
// trajectory that spans many nodes, which only loosens the bound).
TEST(TopKPrune, SegmentedModeAgreesWithExhaustive) {
  const TrajectorySet users = presets::NyfCheckins(600);
  const TrajectorySet routes = presets::NyBusRoutes(24, 8);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);
  for (const size_t shards : {1u, 4u}) {
    ShardedEngineOptions po = Options(shards, model, true);
    po.tree.mode = TrajMode::kSegmented;
    ShardedEngineOptions eo = Options(shards, model, false);
    eo.tree.mode = TrajMode::kSegmented;
    ShardedEngine pruned(users, routes, po);
    ShardedEngine exhaustive(users, routes, eo);
    const QueryResponse got = pruned.Submit(QueryRequest::TopK(6)).get();
    const QueryResponse want =
        exhaustive.Submit(QueryRequest::TopK(6)).get();
    ASSERT_EQ(got.ranked.size(), want.ranked.size());
    for (size_t i = 0; i < want.ranked.size(); ++i) {
      EXPECT_EQ(got.ranked[i].id, want.ranked[i].id)
          << "shards=" << shards << " rank=" << i;
      EXPECT_EQ(got.ranked[i].value, want.ranked[i].value);
    }
  }
}

// ------------------------------------------------- adaptive large-k switch

// At k ≥ prune_skip_ratio·|F| the answer must contain at least half the
// catalog, so the bound sweep is pure overhead — the engine must go
// straight to the exhaustive gather (prune counters untouched) while small
// k keeps the pruned protocol. Both answers match the oracle either way.
TEST(TopKPrune, LargeKSkipsBoundSweepAdaptively) {
  const TrajectorySet users = presets::NyfCheckins(900);
  const TrajectorySet routes = presets::NyBusRoutes(32, 8);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);
  ShardedEngine engine(users, routes, Options(4, model, true));
  ASSERT_EQ(engine.options().prune_skip_ratio, 0.5);  // the documented default

  // k = 16 = 0.5 · 32: at the threshold, the sweep is skipped.
  const QueryResponse large = engine.Submit(QueryRequest::TopK(16)).get();
  MetricsView m = engine.metrics().Read();
  EXPECT_EQ(m.prune_rounds, 0u) << "large k still ran the bound sweep";
  EXPECT_EQ(m.facilities_evaluated, 0u);

  // k = 2 is far below the threshold: the pruned protocol runs.
  const QueryResponse small = engine.Submit(QueryRequest::TopK(2)).get();
  m = engine.metrics().Read();
  EXPECT_GE(m.prune_rounds, 1u) << "small k skipped the bound sweep";

  // Both paths match the brute-force ranking.
  const std::vector<RankedFacility> oracle16 =
      OracleRanking(users, routes, model, 16);
  ASSERT_EQ(large.ranked.size(), oracle16.size());
  for (size_t i = 0; i < oracle16.size(); ++i) {
    EXPECT_EQ(large.ranked[i].id, oracle16[i].id) << "rank " << i;
    EXPECT_EQ(large.ranked[i].value, oracle16[i].value) << "rank " << i;
  }
  const std::vector<RankedFacility> oracle2 =
      OracleRanking(users, routes, model, 2);
  ASSERT_EQ(small.ranked.size(), oracle2.size());
  for (size_t i = 0; i < oracle2.size(); ++i) {
    EXPECT_EQ(small.ranked[i].id, oracle2[i].id) << "rank " << i;
    EXPECT_EQ(small.ranked[i].value, oracle2[i].value) << "rank " << i;
  }
}

// The ratio is a real knob: ≥ 1.0 never skips (k is clamped to |F|), and
// 0.0 always skips — equivalent to prune_topk = false.
TEST(TopKPrune, PruneSkipRatioIsConfigurable) {
  const TrajectorySet users = presets::NyfCheckins(600);
  const TrajectorySet routes = presets::NyBusRoutes(16, 8);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);

  ShardedEngineOptions never_skip = Options(2, model, true);
  never_skip.prune_skip_ratio = 1.1;
  ShardedEngine pruned(users, routes, never_skip);
  // k beyond the catalog clamps to |F| = 16 < 1.1 · 16: protocol runs.
  (void)pruned.Submit(QueryRequest::TopK(100)).get();
  EXPECT_GE(pruned.metrics().Read().prune_rounds, 1u);

  ShardedEngineOptions always_skip = Options(2, model, true);
  always_skip.prune_skip_ratio = 0.0;
  ShardedEngine exhaustive(users, routes, always_skip);
  (void)exhaustive.Submit(QueryRequest::TopK(1)).get();
  EXPECT_EQ(exhaustive.metrics().Read().prune_rounds, 0u);
}

}  // namespace
}  // namespace tq
