// Broad randomized property sweeps (TEST_P) across index configurations —
// the "fuzz" layer on top of the targeted unit tests.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/baseline.h"
#include "query/topk.h"
#include "test_util.h"

namespace tq {
namespace {

struct SweepParam {
  size_t beta;
  double psi;
  int model_index;
  size_t num_users;
  bool segmented = false;
  bool multipoint = false;
};

class IndexSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IndexSweepTest, ServiceValuesMatchOracleForAllFacilities) {
  const SweepParam p = GetParam();
  Rng rng(2001 + p.beta * 7 + static_cast<uint64_t>(p.psi) +
          static_cast<uint64_t>(p.model_index) * 131 + p.num_users +
          (p.segmented ? 17 : 0) + (p.multipoint ? 23 : 0));
  const Rect w = Rect::Of(0, 0, 25000, 25000);
  const TrajectorySet users = testing::RandomUsers(
      &rng, p.num_users, 2, p.multipoint ? 7 : 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 12, w);
  const ServiceModel model =
      testing::AllModels(p.psi)[static_cast<size_t>(p.model_index)];
  const ServiceEvaluator eval(&users, model);

  TQTreeOptions opt;
  opt.beta = p.beta;
  opt.mode = p.segmented ? TrajMode::kSegmented : TrajMode::kWhole;
  opt.model = model;
  TQTree tree(&users, opt);

  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                testing::BruteForceSO(users, facs.points(f), model), 1e-6)
        << "beta=" << p.beta << " psi=" << p.psi
        << " model=" << p.model_index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BetaPsiModelSweep, IndexSweepTest,
    ::testing::Values(
        SweepParam{1, 150.0, 0, 300}, SweepParam{4, 150.0, 0, 300},
        SweepParam{64, 150.0, 0, 300}, SweepParam{4, 30.0, 0, 300},
        SweepParam{4, 600.0, 0, 300}, SweepParam{4, 1500.0, 0, 300},
        SweepParam{8, 200.0, 1, 300}, SweepParam{8, 200.0, 2, 300},
        SweepParam{8, 200.0, 3, 300}, SweepParam{8, 200.0, 4, 300},
        SweepParam{16, 300.0, 0, 1200}, SweepParam{16, 300.0, 1, 1200},
        // Segmented trees across betas and ψ extremes (multipoint data).
        SweepParam{1, 150.0, 1, 200, true, true},
        SweepParam{8, 30.0, 1, 200, true, true},
        SweepParam{8, 900.0, 2, 200, true, true},
        SweepParam{8, 200.0, 3, 200, true, true},
        SweepParam{64, 200.0, 4, 200, true, true},
        SweepParam{8, 200.0, 0, 200, true, true},
        // Whole-mode multipoint (F-TQ) under interior-point models.
        SweepParam{8, 200.0, 1, 200, false, true},
        SweepParam{8, 200.0, 4, 200, false, true}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const SweepParam& p = info.param;
      return std::string(p.segmented ? "seg_" : "whole_") +
             (p.multipoint ? "multi_" : "pair_") + "beta" +
             std::to_string(p.beta) + "_psi" +
             std::to_string(static_cast<int>(p.psi)) + "_m" +
             std::to_string(p.model_index) + "_u" +
             std::to_string(p.num_users);
    });

class TopKSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKSweepTest, BestFirstValueEqualsExhaustiveForEveryK) {
  const size_t k = GetParam();
  Rng rng(2101 + k);
  const Rect w = Rect::Of(0, 0, 25000, 25000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 32, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  TQTreeOptions opt;
  opt.beta = 16;
  opt.model = model;
  TQTree tree(&users, opt);
  const TopKResult bf = TopKFacilitiesTQ(&tree, catalog, eval, k);
  const TopKResult ex = TopKFacilitiesExhaustiveTQ(&tree, catalog, eval, k);
  ASSERT_EQ(bf.ranked.size(), std::min(k, facs.size()));
  for (size_t i = 0; i < bf.ranked.size(); ++i) {
    EXPECT_NEAR(bf.ranked[i].value, ex.ranked[i].value, 1e-9) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, TopKSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 31, 32),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "k" + std::to_string(info.param);
                         });

class MultipointSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultipointSweepTest, SegmentedAndWholeAgreeWithOracle) {
  const auto [mode_index, model_index] = GetParam();
  const TrajMode mode =
      mode_index == 0 ? TrajMode::kSegmented : TrajMode::kWhole;
  Rng rng(2201 + static_cast<uint64_t>(mode_index) * 17 +
          static_cast<uint64_t>(model_index));
  const Rect w = Rect::Of(0, 0, 25000, 25000);
  const TrajectorySet users = testing::RandomUsers(&rng, 200, 3, 9, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  const ServiceModel model =
      testing::AllModels(250.0)[static_cast<size_t>(model_index)];
  const ServiceEvaluator eval(&users, model);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.mode = mode;
  opt.model = model;
  TQTree tree(&users, opt);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                testing::BruteForceSO(users, facs.points(f), model), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesTimesModels, MultipointSweepTest,
    ::testing::Combine(::testing::Range(0, 2), ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "segmented"
                                                      : "whole") +
             "_m" + std::to_string(std::get<1>(info.param));
    });

TEST(Properties, DegenerateWorkloads) {
  const ServiceModel model = ServiceModel::Endpoints(50.0);
  // All users identical and coincident with the facility.
  TrajectorySet users;
  for (int i = 0; i < 100; ++i) {
    const Point t[] = {{500, 500}, {500, 500}};
    users.Add(t);
  }
  TQTreeOptions opt;
  opt.beta = 4;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  const std::vector<Point> stops = {{500, 500}};
  const StopGrid grid(stops, model.psi);
  EXPECT_DOUBLE_EQ(EvaluateServiceTQ(&tree, eval, grid), 100.0);
}

TEST(Properties, SingleUserSinglePointFacility) {
  TrajectorySet users;
  const Point t[] = {{0, 0}, {100, 100}};
  users.Add(t);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(150.0);
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, opt.model);
  const std::vector<Point> stops = {{50, 50}};
  const StopGrid grid(stops, opt.model.psi);
  // (0,0) and (100,100) are both ~70.7 from (50,50): within ψ = 150.
  EXPECT_DOUBLE_EQ(EvaluateServiceTQ(&tree, eval, grid), 1.0);
}

TEST(Properties, PsiMonotonicity) {
  // Growing ψ can only grow every facility's service value.
  Rng rng(2301);
  const Rect w = Rect::Of(0, 0, 25000, 25000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 10, w);
  double prev_total = -1.0;
  for (const double psi : {50.0, 150.0, 400.0, 1000.0}) {
    const ServiceModel model = ServiceModel::Endpoints(psi);
    TQTreeOptions opt;
    opt.model = model;
    TQTree tree(&users, opt);
    const ServiceEvaluator eval(&users, model);
    double total = 0.0;
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const StopGrid grid(facs.points(f), psi);
      total += EvaluateServiceTQ(&tree, eval, grid);
    }
    EXPECT_GE(total, prev_total) << "psi=" << psi;
    prev_total = total;
  }
}

}  // namespace
}  // namespace tq
