#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/baseline.h"
#include "rtree/point_rtree.h"
#include "test_util.h"

namespace tq {
namespace {

std::vector<PointEntry> RandomEntries(Rng* rng, size_t n, const Rect& w) {
  std::vector<PointEntry> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(PointEntry{Point{rng->NextUniform(w.min_x, w.max_x),
                                   rng->NextUniform(w.min_y, w.max_y)},
                             static_cast<uint32_t>(i / 2),
                             static_cast<uint32_t>(i % 2)});
  }
  return out;
}

TEST(PointRTree, EmptyTree) {
  PointRTree rt({});
  EXPECT_EQ(rt.size(), 0u);
  EXPECT_TRUE(rt.RangeQuery(Rect::Of(0, 0, 100, 100)).empty());
  EXPECT_TRUE(rt.DiskQuery({0, 0}, 50).empty());
}

TEST(PointRTree, RangeQueryMatchesBruteForce) {
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  Rng rng(1101);
  const auto entries = RandomEntries(&rng, 700, w);
  const PointRTree rt(entries, 16, 8);
  EXPECT_EQ(rt.size(), 700u);
  for (int trial = 0; trial < 25; ++trial) {
    const double x = rng.NextUniform(0, 900), y = rng.NextUniform(0, 900);
    const Rect q = Rect::Of(x, y, x + rng.NextUniform(10, 150),
                            y + rng.NextUniform(10, 150));
    size_t expected = 0;
    for (const auto& e : entries) {
      if (q.Contains(e.p)) ++expected;
    }
    EXPECT_EQ(rt.RangeQuery(q).size(), expected) << "trial " << trial;
  }
}

TEST(PointRTree, DiskQueryMatchesBruteForce) {
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  Rng rng(1103);
  const auto entries = RandomEntries(&rng, 500, w);
  const PointRTree rt(entries, 8, 4);
  for (int trial = 0; trial < 25; ++trial) {
    const Point c{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)};
    const double r = rng.NextUniform(20, 200);
    size_t expected = 0;
    for (const auto& e : entries) {
      if (Distance(e.p, c) <= r) ++expected;
    }
    EXPECT_EQ(rt.DiskQuery(c, r).size(), expected);
  }
}

TEST(PointRTree, AgreesWithQuadtreeOnTrajectories) {
  Rng rng(1105);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 5, w);
  const PointRTree rt = PointRTree::FromTrajectories(users);
  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 32);
  pq.InsertAll(users);
  EXPECT_EQ(rt.size(), pq.size());
  for (int trial = 0; trial < 15; ++trial) {
    const double x = rng.NextUniform(0, 15000), y = rng.NextUniform(0, 15000);
    const Rect q = Rect::Of(x, y, x + 2000, y + 2000);
    EXPECT_EQ(rt.RangeQuery(q).size(), pq.RangeQuery(q).size());
  }
}

TEST(PointRTree, HeightIsLogarithmic) {
  Rng rng(1107);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const auto entries = RandomEntries(&rng, 10000, w);
  const PointRTree rt(entries, 64, 16);
  // 10000/64 ≈ 157 leaves; fanout 16 → 2 internal levels → height 3.
  EXPECT_GE(rt.height(), 2);
  EXPECT_LE(rt.height(), 4);
  EXPECT_TRUE(rt.bounds().Width() > 0);
}

TEST(BaselineRTree, SameAnswersAsQuadtreeBaseline) {
  Rng rng(1109);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 12, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(250.0);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 32);
  pq.InsertAll(users);
  const PointRTree rt = PointRTree::FromTrajectories(users);
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    EXPECT_NEAR(EvaluateServiceBaselineRTree(rt, eval, catalog.grid(f)),
                EvaluateServiceBaseline(pq, eval, catalog.grid(f)), 1e-9);
  }
  const TopKResult a = TopKFacilitiesBaseline(pq, catalog, eval, 5);
  const TopKResult b = TopKFacilitiesBaselineRTree(rt, catalog, eval, 5);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].id, b.ranked[i].id);
    EXPECT_DOUBLE_EQ(a.ranked[i].value, b.ranked[i].value);
  }
}

TEST(PointRTree, DuplicatePointsHandled) {
  std::vector<PointEntry> entries(100, PointEntry{{42, 17}, 0, 0});
  const PointRTree rt(entries, 8, 4);
  EXPECT_EQ(rt.DiskQuery({42, 17}, 0.01).size(), 100u);
}

}  // namespace
}  // namespace tq
