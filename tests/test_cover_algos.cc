// MaxkCovRST solvers: exact enumeration, greedy variants, genetic.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "cover/exact.h"
#include "cover/genetic.h"
#include "cover/greedy.h"
#include "test_util.h"

namespace tq {
namespace {

struct CoverWorld {
  TrajectorySet users;
  TrajectorySet facs;
  ServiceModel model = ServiceModel::Endpoints(250.0);
  std::unique_ptr<ServiceEvaluator> eval;
  std::unique_ptr<FacilityCatalog> catalog;
  std::unique_ptr<TQTree> tree;
  std::unique_ptr<PointQuadtree> pq;
  std::vector<FacilityServedSet> sets;

  static CoverWorld Make(uint64_t seed, size_t num_users, size_t num_facs) {
    CoverWorld cw;
    Rng rng(seed);
    const Rect w = Rect::Of(0, 0, 20000, 20000);
    cw.users = testing::RandomUsers(&rng, num_users, 2, 2, w);
    cw.facs = testing::RandomFacilities(&rng, num_facs, 10, w);
    cw.eval = std::make_unique<ServiceEvaluator>(&cw.users, cw.model);
    cw.catalog = std::make_unique<FacilityCatalog>(&cw.facs, cw.model.psi);
    TQTreeOptions opt;
    opt.beta = 16;
    opt.model = cw.model;
    cw.tree = std::make_unique<TQTree>(&cw.users, opt);
    cw.pq = std::make_unique<PointQuadtree>(
        cw.users.BoundingBox().Expanded(1.0), 32);
    cw.pq->InsertAll(cw.users);
    for (uint32_t f = 0; f < cw.facs.size(); ++f) {
      cw.sets.push_back(
          CollectServedSetTQ(cw.tree.get(), *cw.catalog, *cw.eval, f));
    }
    return cw;
  }
};

TEST(ExactCover, FindsOptimumOnHandCraftedInstance) {
  // Three facilities; f0 and f1 each serve one disjoint user fully, f2
  // serves two users fully. Optimal pair = {f2, f0-or-f1} with total 3.
  TrajectorySet users;
  for (int i = 0; i < 4; ++i) {
    const double x = 1000.0 * i;
    const Point t[] = {{x, 0}, {x, 100}};
    users.Add(t);
  }
  TrajectorySet facs;
  const Point f0[] = {{0, 0}, {0, 100}};
  const Point f1[] = {{1000, 0}, {1000, 100}};
  const Point f2[] = {{2000, 0}, {2000, 100}, {3000, 0}, {3000, 100}};
  facs.Add(f0);
  facs.Add(f1);
  facs.Add(f2);
  const ServiceModel model = ServiceModel::Endpoints(10.0);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&users, opt);
  std::vector<FacilityServedSet> sets;
  for (uint32_t f = 0; f < 3; ++f) {
    sets.push_back(CollectServedSetTQ(&tree, catalog, eval, f));
  }
  const ExactCoverResult best = ExactCover(sets, 2, eval);
  EXPECT_DOUBLE_EQ(best.total, 3.0);
  EXPECT_EQ(best.combinations_evaluated, 3u);
  EXPECT_TRUE(std::set<FacilityId>(best.chosen.begin(), best.chosen.end())
                  .count(2));
}

TEST(GreedyCover, NeverWorseThanBestSingleFacilityChain) {
  CoverWorld cw = CoverWorld::Make(1001, 400, 12);
  const CoverResult greedy = GreedyCover(cw.sets, 4, *cw.eval);
  ASSERT_EQ(greedy.chosen.size(), 4u);
  // Greedy total must at least match the best single facility.
  double best_single = 0.0;
  for (const auto& s : cw.sets) best_single = std::max(best_single, s.so);
  EXPECT_GE(greedy.total, best_single - 1e-9);
  // Chosen facilities are distinct.
  const std::set<FacilityId> uniq(greedy.chosen.begin(), greedy.chosen.end());
  EXPECT_EQ(uniq.size(), greedy.chosen.size());
}

TEST(GreedyCover, MatchesExactForKEqualsOne) {
  CoverWorld cw = CoverWorld::Make(1003, 300, 10);
  const CoverResult greedy = GreedyCover(cw.sets, 1, *cw.eval);
  const ExactCoverResult exact = ExactCover(cw.sets, 1, *cw.eval);
  EXPECT_NEAR(greedy.total, exact.total, 1e-9);
}

TEST(GreedyCover, ApproximationRatioReasonableOnSmallInstances) {
  // The paper reports ≥ 0.9 on its data; we assert a modest floor across
  // random instances (non-submodularity means no hard guarantee exists).
  double worst = 1.0;
  for (uint64_t seed = 1005; seed < 1010; ++seed) {
    CoverWorld cw = CoverWorld::Make(seed, 250, 10);
    const CoverResult greedy = GreedyCover(cw.sets, 3, *cw.eval);
    const ExactCoverResult exact = ExactCover(cw.sets, 3, *cw.eval);
    if (exact.total > 0) worst = std::min(worst, greedy.total / exact.total);
  }
  EXPECT_GE(worst, 0.8) << "greedy collapsed far below the paper's ratios";
}

TEST(GreedyCoverTQ, TwoStepEqualsPlainGreedyWhenPoolIsEverything) {
  CoverWorld cw = CoverWorld::Make(1011, 300, 10);
  const CoverResult plain = GreedyCover(cw.sets, 3, *cw.eval);
  const CoverResult two_step = GreedyCoverTQ(cw.tree.get(), *cw.catalog,
                                             *cw.eval, 3, cw.facs.size());
  EXPECT_NEAR(plain.total, two_step.total, 1e-9);
  EXPECT_EQ(two_step.pool_size, cw.facs.size());
}

TEST(GreedyCoverTQ, DefaultPoolIsAtLeastKAndCapped) {
  EXPECT_EQ(DefaultPoolSize(4, 1000), 16u);
  EXPECT_EQ(DefaultPoolSize(16, 1000), 64u);
  EXPECT_EQ(DefaultPoolSize(16, 40), 40u);  // capped at |F|
  EXPECT_GE(DefaultPoolSize(1, 1000), 1u);
}

TEST(GreedyCoverBaseline, AgreesWithTQGreedyOnFullPool) {
  CoverWorld cw = CoverWorld::Make(1013, 250, 8);
  const CoverResult via_bl =
      GreedyCoverBaseline(*cw.pq, *cw.catalog, *cw.eval, 3);
  const CoverResult via_tq = GreedyCoverTQ(cw.tree.get(), *cw.catalog,
                                           *cw.eval, 3, cw.facs.size());
  EXPECT_NEAR(via_bl.total, via_tq.total, 1e-9);
  EXPECT_EQ(via_bl.chosen, via_tq.chosen);
}

TEST(GeneticCover, ProducesValidResultDeterministically) {
  CoverWorld cw = CoverWorld::Make(1015, 300, 16);
  ServedSetCache cache_a(cw.tree.get(), cw.catalog.get(), cw.eval.get());
  ServedSetCache cache_b(cw.tree.get(), cw.catalog.get(), cw.eval.get());
  GeneticOptions gopt;
  gopt.generations = 10;
  const CoverResult a =
      GeneticCover(&cache_a, cw.facs.size(), 4, *cw.eval, gopt);
  const CoverResult b =
      GeneticCover(&cache_b, cw.facs.size(), 4, *cw.eval, gopt);
  ASSERT_EQ(a.chosen.size(), 4u);
  EXPECT_EQ(a.chosen, b.chosen);  // same seed → same answer
  EXPECT_DOUBLE_EQ(a.total, b.total);
  const std::set<FacilityId> uniq(a.chosen.begin(), a.chosen.end());
  EXPECT_EQ(uniq.size(), 4u);
  // Lazy cache never collects more than the whole facility set.
  EXPECT_LE(cache_a.collected(), cw.facs.size());
}

TEST(GeneticCover, GreedyBeatsGaAtManyFacilities) {
  // The paper's Fig. 10(d): with many candidate facilities the 20-iteration
  // GA falls behind greedy, because 20 generations cannot search C(|F|, k).
  // (On tiny sparse instances the GA can legitimately win — non-submodular
  // greedy is myopic — so this asserts the paper's *large-N* regime only.)
  CoverWorld cw = CoverWorld::Make(1017, 600, 96);
  const CoverResult greedy = GreedyCover(cw.sets, 8, *cw.eval);
  const CoverResult ga =
      GeneticCoverTQ(cw.tree.get(), *cw.catalog, *cw.eval, 8);
  EXPECT_GT(greedy.total, 0.0);
  EXPECT_GE(greedy.total, ga.total * 0.98);
}

class GeneticParamTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(GeneticParamTest, ValidAndDeterministicAcrossHyperparameters) {
  const auto [population, generations] = GetParam();
  CoverWorld cw = CoverWorld::Make(1031, 250, 20);
  GeneticOptions gopt;
  gopt.population = population;
  gopt.generations = generations;
  ServedSetCache cache_a(cw.tree.get(), cw.catalog.get(), cw.eval.get());
  ServedSetCache cache_b(cw.tree.get(), cw.catalog.get(), cw.eval.get());
  const CoverResult a =
      GeneticCover(&cache_a, cw.facs.size(), 4, *cw.eval, gopt);
  const CoverResult b =
      GeneticCover(&cache_b, cw.facs.size(), 4, *cw.eval, gopt);
  ASSERT_EQ(a.chosen.size(), 4u);
  EXPECT_EQ(a.chosen, b.chosen);
  const std::set<FacilityId> uniq(a.chosen.begin(), a.chosen.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (const FacilityId f : a.chosen) {
    EXPECT_LT(f, cw.facs.size());
  }
  EXPECT_GE(a.total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PopGen, GeneticParamTest,
    ::testing::Values(std::make_pair<size_t, size_t>(4, 1),
                      std::make_pair<size_t, size_t>(8, 5),
                      std::make_pair<size_t, size_t>(32, 20),
                      std::make_pair<size_t, size_t>(64, 3)),
    [](const ::testing::TestParamInfo<std::pair<size_t, size_t>>& info) {
      return "pop" + std::to_string(info.param.first) + "_gen" +
             std::to_string(info.param.second);
    });

TEST(GeneticCover, MoreGenerationsNeverHurtMuch) {
  // Elitism guarantees the best chromosome survives, so fitness is
  // monotone in generations for a fixed seed/population.
  CoverWorld cw = CoverWorld::Make(1033, 300, 24);
  double prev = -1.0;
  for (const size_t gens : {0u, 5u, 20u}) {
    GeneticOptions gopt;
    gopt.generations = gens;
    ServedSetCache cache(cw.tree.get(), cw.catalog.get(), cw.eval.get());
    const CoverResult r =
        GeneticCover(&cache, cw.facs.size(), 4, *cw.eval, gopt);
    EXPECT_GE(r.total, prev - 1e-9) << "gens=" << gens;
    prev = r.total;
  }
}

TEST(ExactCover, SafetyCapTrips) {
  CoverWorld cw = CoverWorld::Make(1023, 50, 30);
  EXPECT_DEATH(ExactCover(cw.sets, 15, *cw.eval, 1000),
               "combination count");
}

TEST(UsersServedMetric, CountsFullyServedUsersUnderScenario1) {
  CoverWorld cw = CoverWorld::Make(1025, 400, 12);
  const CoverResult greedy = GreedyCover(cw.sets, 4, *cw.eval);
  // Under Scenario 1 every served user contributes exactly 1.
  EXPECT_NEAR(static_cast<double>(greedy.users_served), greedy.total, 1e-9);
}

}  // namespace
}  // namespace tq
