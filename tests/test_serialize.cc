#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "query/eval_service.h"
#include "test_util.h"
#include "tqtree/serialize.h"
#include "traj/io.h"

namespace tq {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TrajectoryBinary, RoundTripExact) {
  Rng rng(1201);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet set = testing::RandomUsers(&rng, 150, 2, 9, w);
  const std::string path = TempPath("tq_traj_roundtrip.bin");
  ASSERT_TRUE(SaveTrajectoryBinary(path, set).ok());
  TrajectorySet loaded;
  ASSERT_TRUE(LoadTrajectoryBinary(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), set.size());
  for (uint32_t i = 0; i < set.size(); ++i) {
    ASSERT_EQ(loaded.NumPoints(i), set.NumPoints(i));
    for (size_t j = 0; j < set.NumPoints(i); ++j) {
      EXPECT_EQ(loaded.points(i)[j], set.points(i)[j]);  // bit-exact
    }
  }
  std::remove(path.c_str());
}

TEST(TrajectoryBinary, RejectsGarbageFiles) {
  const std::string path = TempPath("tq_traj_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a trajectory file at all";
  }
  TrajectorySet out;
  const Status st = LoadTrajectoryBinary(path, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TrajectoryBinary, MissingFileIsIOError) {
  TrajectorySet out;
  EXPECT_EQ(LoadTrajectoryBinary("/no/such/file.bin", &out).code(),
            StatusCode::kIOError);
}

class TQTreeSerializeTest : public ::testing::TestWithParam<int> {};

TEST_P(TQTreeSerializeTest, RoundTripPreservesEverything) {
  const int config = GetParam();
  Rng rng(1203 + static_cast<uint64_t>(config));
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users =
      testing::RandomUsers(&rng, 400, 2, config >= 2 ? 7 : 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  TQTreeOptions opt;
  opt.beta = 16;
  opt.variant = (config % 2 == 0) ? IndexVariant::kZOrder
                                  : IndexVariant::kBasic;
  opt.mode = (config >= 2) ? TrajMode::kSegmented : TrajMode::kWhole;
  opt.model = (config >= 2) ? ServiceModel::PointCount(200.0)
                            : ServiceModel::Endpoints(200.0);
  TQTree original(&users, opt);
  const ServiceEvaluator eval(&users, opt.model);

  const std::string path =
      TempPath("tq_tree_roundtrip_" + std::to_string(config) + ".tqt");
  ASSERT_TRUE(SaveTQTree(path, original).ok());
  auto loaded = LoadTQTree(path, &users);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  TQTree& restored = **loaded;

  // Structure identical.
  const TQTreeStats a = original.ComputeStats();
  const TQTreeStats b = restored.ComputeStats();
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_entries, b.num_entries);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(original.num_units(), restored.num_units());
  EXPECT_NEAR(original.RootUpperBound(), restored.RootUpperBound(), 1e-9);
  EXPECT_EQ(original.prune_mode(), restored.prune_mode());

  // Answers identical.
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), opt.model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&original, eval, grid),
                EvaluateServiceTQ(&restored, eval, grid), 1e-12)
        << "config " << config << " facility " << f;
  }

  // The restored tree keeps supporting updates.
  restored.Remove(0);
  restored.Insert(0);
  EXPECT_EQ(restored.num_units(), original.num_units());
  std::remove(path.c_str());
}

// 0=whole_z, 1=whole_basic, 2=seg_z, 3=seg_basic.
INSTANTIATE_TEST_SUITE_P(Configs, TQTreeSerializeTest,
                         ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "config" + std::to_string(info.param);
                         });

TEST(TQTreeSerialize, RejectsWrongUserSet) {
  Rng rng(1205);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 2, w);
  const TrajectorySet other = testing::RandomUsers(&rng, 50, 2, 2, w);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(100);
  TQTree tree(&users, opt);
  const std::string path = TempPath("tq_tree_wrong_users.tqt");
  ASSERT_TRUE(SaveTQTree(path, tree).ok());
  auto loaded = LoadTQTree(path, &other);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TQTreeSerialize, RejectsTruncatedFile) {
  Rng rng(1207);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 2, w);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(100);
  TQTree tree(&users, opt);
  const std::string path = TempPath("tq_tree_trunc.tqt");
  ASSERT_TRUE(SaveTQTree(path, tree).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  auto loaded = LoadTQTree(path, &users);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(TQTreeSerialize, RejectsNonTreeFile) {
  const std::string path = TempPath("tq_tree_not_a_tree.tqt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "junk junk junk junk junk junk";
  }
  TrajectorySet users;
  const Point t[] = {{0, 0}, {1, 1}};
  users.Add(t);
  auto loaded = LoadTQTree(path, &users);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tq
