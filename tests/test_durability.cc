// Tests for the durability subsystem (src/storage) and its ShardedEngine
// wiring: WAL framing / rotation / trim / torn-tail semantics, the
// crash-recovery kill-point matrix (recover = load checkpoint + replay WAL,
// bit-identical to the uninterrupted engine), checkpoint-triggered fork-chain
// compaction (pages reclaimed without perturbing retained snapshots), and the
// protocol-v2 surfaces the subsystem rides on (EncodeUpdateBody, kStatus
// durability block).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/protocol.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"
#include "storage/checkpoint.h"
#include "storage/durability.h"
#include "storage/wal.h"
#include "test_util.h"
#include "tqtree/serialize.h"

namespace tq {
namespace {

using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;
using runtime::UpdateBatch;
using storage::ListWalSegments;
using storage::ReplayWal;
using storage::TrimWalSegments;
using storage::WalOptions;
using storage::WalReplayStats;
using storage::WalSync;
using storage::WalWriter;

// Fresh (deleted-if-present) directory under the system temp dir.
std::string TempDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("tq_durability_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

void Corrupt(const std::string& path, uint64_t offset_from_end) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<uint64_t>(f.tellg());
  ASSERT_GT(size, offset_from_end);
  f.seekp(static_cast<std::streamoff>(size - 1 - offset_from_end));
  char byte = 0;
  f.seekg(f.tellp());
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(size - 1 - offset_from_end));
  f.write(&byte, 1);
}

// ------------------------------------------------------------------- WAL

TEST(Wal, RoundTripRotationAndTrim) {
  const std::string dir = TempDir("wal_roundtrip");
  WalOptions options;
  options.sync = WalSync::kOff;
  options.segment_bytes = 1;  // every record rotates into its own segment
  {
    auto writer = WalWriter::Open(dir, 1, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t lsn = 1; lsn <= 8; ++lsn) {
      ASSERT_TRUE(
          (*writer)->Append(lsn, "payload-" + std::to_string(lsn)).ok());
    }
  }
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*segments)[i].first_lsn, i + 1);
  }

  std::vector<std::pair<uint64_t, std::string>> seen;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(dir, 0,
                        [&](uint64_t lsn, std::string_view payload) {
                          seen.emplace_back(lsn, std::string(payload));
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_EQ(stats.records, 8u);
  EXPECT_EQ(stats.last_lsn, 8u);
  EXPECT_FALSE(stats.torn_tail);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(seen[i].first, i + 1);
    EXPECT_EQ(seen[i].second, "payload-" + std::to_string(i + 1));
  }

  // Replay respects after_lsn: already-applied records are skipped.
  seen.clear();
  ASSERT_TRUE(ReplayWal(dir, 5,
                        [&](uint64_t lsn, std::string_view payload) {
                          seen.emplace_back(lsn, std::string(payload));
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.front().first, 6u);

  // Trim drops exactly the segments fully covered by keep_lsn = 5; the
  // surviving log still replays 6..8.
  auto trimmed = TrimWalSegments(dir, 5);
  ASSERT_TRUE(trimmed.ok());
  EXPECT_GT(*trimmed, 0u);
  segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  EXPECT_EQ(segments->front().first_lsn, 6u);
  seen.clear();
  ASSERT_TRUE(ReplayWal(dir, 5,
                        [&](uint64_t lsn, std::string_view payload) {
                          seen.emplace_back(lsn, std::string(payload));
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Wal, TornTailEndsReplayAndIsTruncatedOnReopen) {
  const std::string dir = TempDir("wal_torn");
  WalOptions options;
  options.sync = WalSync::kOff;  // one big segment
  {
    auto writer = WalWriter::Open(dir, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(1, "aaaa").ok());
    ASSERT_TRUE((*writer)->Append(2, "bbbb").ok());
    ASSERT_TRUE((*writer)->Append(3, "cccc").ok());
  }
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  const std::string path = segments->front().path;
  // SIGKILL mid-append: the last record loses its tail.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 2);

  std::vector<uint64_t> lsns;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(dir, 0,
                        [&](uint64_t lsn, std::string_view) {
                          lsns.push_back(lsn);
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.last_lsn, 2u);

  // Reopen truncates the torn tail and keeps appending to the SAME segment;
  // the rewritten lsn 3 replays cleanly.
  {
    auto writer = WalWriter::Open(dir, 3, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append(3, "dddd").ok());
  }
  std::vector<std::pair<uint64_t, std::string>> seen;
  ASSERT_TRUE(ReplayWal(dir, 0,
                        [&](uint64_t lsn, std::string_view payload) {
                          seen.emplace_back(lsn, std::string(payload));
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(seen.back().first, 3u);
  EXPECT_EQ(seen.back().second, "dddd");
}

TEST(Wal, MidSegmentCorruptionIsAHardErrorNeverASilentSkip) {
  const std::string dir = TempDir("wal_corrupt");
  WalOptions options;
  options.sync = WalSync::kOff;
  options.segment_bytes = 1;  // one record per segment
  {
    auto writer = WalWriter::Open(dir, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(1, "aaaa").ok());
    ASSERT_TRUE((*writer)->Append(2, "bbbb").ok());
    ASSERT_TRUE((*writer)->Append(3, "cccc").ok());
  }
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  // Damage a NON-last segment's payload: that is corruption, not a crash
  // artifact, and replay must refuse rather than resurrect a partial state.
  Corrupt(segments->front().path, 0);
  WalReplayStats stats;
  const Status st = ReplayWal(
      dir, 0, [](uint64_t, std::string_view) { return Status::OK(); },
      &stats);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

// -------------------------------------------------------- protocol v2

TEST(Protocol, UpdateBodyRoundTripsAndRejectsDamage) {
  const std::vector<std::vector<Point>> inserts = {
      {Point{1.5, 2.5}, Point{3.25, 4.75}}, {Point{100.0, 200.0}}};
  const std::vector<uint32_t> removes = {7, 42};
  std::string body;
  net::EncodeUpdateBody(inserts, removes, &body);

  std::vector<std::vector<Point>> got_inserts;
  std::vector<uint32_t> got_removes;
  ASSERT_TRUE(net::DecodeUpdateBody(body, &got_inserts, &got_removes).ok());
  ASSERT_EQ(got_inserts.size(), 2u);
  ASSERT_EQ(got_inserts[0].size(), 2u);
  EXPECT_EQ(got_inserts[0][1].x, 3.25);
  EXPECT_EQ(got_inserts[0][1].y, 4.75);
  EXPECT_EQ(got_inserts[1][0].x, 100.0);
  EXPECT_EQ(got_removes, removes);

  // Trailing bytes mean a framing bug somewhere — reject, don't ignore.
  std::string trailing = body;
  trailing.push_back('\0');
  EXPECT_FALSE(
      net::DecodeUpdateBody(trailing, &got_inserts, &got_removes).ok());
  // Empty trajectories can never be routed (no first point).
  std::string empty_traj;
  net::EncodeUpdateBody({{}}, {}, &empty_traj);
  EXPECT_FALSE(
      net::DecodeUpdateBody(empty_traj, &got_inserts, &got_removes).ok());
  // Truncation at any boundary is an error, not a short decode.
  EXPECT_FALSE(net::DecodeUpdateBody(std::string_view(body).substr(
                                         0, body.size() - 3),
                                     &got_inserts, &got_removes)
                   .ok());
}

TEST(Protocol, StatusFrameCarriesDurabilityBlock) {
  net::NetResponse original;
  original.type = net::MessageType::kStatus;
  original.status = Status::OK();
  original.snapshot_version = 9;
  original.worker_info.num_shards = 4;
  original.worker_info.owned_begin = 0;
  original.worker_info.owned_end = 4;
  original.worker_info.psi = 300.0;
  original.worker_info.num_facilities = 12;
  original.worker_info.users_total = 372;
  original.durability.flags = 1 | 2 | 4;
  original.durability.checkpoint_lsn = 12;
  original.durability.last_lsn = 34;
  original.durability.replayed_batches = 5;
  original.durability.recovery_ns = 2'500'000;

  std::string wire;
  net::EncodeResponse(original, &wire);
  net::NetResponse decoded;
  ASSERT_TRUE(
      net::DecodeResponse(wire.substr(net::kFrameHeaderBytes), &decoded)
          .ok());
  EXPECT_TRUE(decoded.durability.durable());
  EXPECT_TRUE(decoded.durability.recovered());
  EXPECT_TRUE(decoded.durability.wal_torn_tail());
  EXPECT_EQ(decoded.durability.checkpoint_lsn, 12u);
  EXPECT_EQ(decoded.durability.last_lsn, 34u);
  EXPECT_EQ(decoded.durability.replayed_batches, 5u);
  EXPECT_EQ(decoded.durability.recovery_ns, 2'500'000u);

  const std::string json = net::WireStatusToJson(
      decoded.worker_info, decoded.workers, decoded.durability);
  EXPECT_NE(json.find("\"durability\":{\"durable\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"checkpoint_lsn\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"replayed_batches\":5"), std::string::npos) << json;
}

// ------------------------------------------------- engine crash recovery

// Flattened query surface compared bit-exactly between engines: every
// facility's service value plus a full top-k ranking.
struct AnswerSurface {
  std::vector<double> values;
  std::vector<std::pair<uint32_t, double>> ranked;
};

AnswerSurface Answers(ShardedEngine* engine, uint32_t num_facilities) {
  std::vector<QueryRequest> batch;
  for (uint32_t f = 0; f < num_facilities; ++f) {
    batch.push_back(QueryRequest::ServiceValue(f));
  }
  batch.push_back(QueryRequest::TopK(5));
  const std::vector<QueryResponse> responses = engine->RunBatch(batch);
  AnswerSurface out;
  for (uint32_t f = 0; f < num_facilities; ++f) {
    EXPECT_TRUE(responses[f].status.ok());
    out.values.push_back(responses[f].value);
  }
  for (const RankedFacility& r : responses.back().ranked) {
    out.ranked.emplace_back(r.id, r.value);
  }
  return out;
}

// EXPECT_EQ on double is exact comparison — recovery replays the SAME
// batches through the SAME partition in the same order, so every FP
// operation reruns identically and == is the honest assert.
void ExpectBitIdentical(const AnswerSurface& got, const AnswerSurface& want) {
  ASSERT_EQ(got.values.size(), want.values.size());
  for (size_t i = 0; i < want.values.size(); ++i) {
    EXPECT_EQ(got.values[i], want.values[i]) << "facility " << i;
  }
  ASSERT_EQ(got.ranked.size(), want.ranked.size());
  for (size_t i = 0; i < want.ranked.size(); ++i) {
    EXPECT_EQ(got.ranked[i].first, want.ranked[i].first) << "rank " << i;
    EXPECT_EQ(got.ranked[i].second, want.ranked[i].second) << "rank " << i;
  }
}

ShardedEngineOptions DurableOptions(const std::string& data_dir) {
  ShardedEngineOptions o;
  o.num_shards = 4;
  o.num_threads = 4;
  o.cache_capacity = 1024;
  o.tree.beta = 16;
  o.tree.model = ServiceModel::PointCount(300.0);
  o.durability.data_dir = data_dir;
  o.durability.wal_sync = WalSync::kAlways;
  return o;
}

struct Workload {
  TrajectorySet users;
  TrajectorySet facilities;
  std::vector<UpdateBatch> batches;
};

Workload MakeWorkload(uint64_t seed, size_t num_batches) {
  Rng rng(seed);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  Workload wl;
  wl.users = testing::RandomUsers(&rng, 300, 2, 5, w);
  wl.facilities = testing::RandomFacilities(&rng, 8, 8, w);
  uint32_t next_remove = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch;
    const TrajectorySet extra = testing::RandomUsers(&rng, 10, 2, 5, w);
    for (uint32_t t = 0; t < extra.size(); ++t) {
      const auto pts = extra.points(t);
      batch.inserts.emplace_back(pts.begin(), pts.end());
    }
    batch.removes = {next_remove, next_remove + 1};
    next_remove += 2;
    wl.batches.push_back(std::move(batch));
  }
  return wl;
}

// The kill-point matrix: crash with (a) all state still in the WAL, (b) a
// checkpoint covering everything, (c) a checkpoint plus trailing WAL
// records. In every case the recovered engine must be bit-identical to an
// engine that never crashed — same snapshot version, same per-shard
// generations, same answers to the last FP bit.
void RunKillPointScenario(const std::string& name, size_t checkpoint_after,
                          uint64_t expect_checkpoint_lsn,
                          uint64_t expect_replayed) {
  const std::string dir = TempDir("kill_" + name);
  const Workload wl = MakeWorkload(/*seed=*/97, /*num_batches=*/4);
  const uint32_t nf = static_cast<uint32_t>(wl.facilities.size());

  ShardedEngineOptions reference_options = DurableOptions("");
  reference_options.durability = storage::DurabilityOptions{};
  ShardedEngine reference(wl.users, wl.facilities, reference_options);
  for (const UpdateBatch& batch : wl.batches) {
    reference.ApplyUpdates(batch);
  }
  const AnswerSurface expected = Answers(&reference, nf);

  {
    ShardedEngine victim(wl.users, wl.facilities, DurableOptions(dir));
    for (size_t b = 0; b < wl.batches.size(); ++b) {
      victim.ApplyUpdates(wl.batches[b]);
      if (checkpoint_after == b + 1) {
        ASSERT_TRUE(victim.Checkpoint().ok());
      }
    }
    const runtime::MetricsView m = victim.metrics().Read();
    EXPECT_EQ(m.wal_appends, wl.batches.size()) << name;
    EXPECT_GT(m.wal_bytes, 0u) << name;
    EXPECT_GE(m.checkpoints, 1u) << name;
    // Destroyed here WITHOUT a final checkpoint: everything after
    // checkpoint_after lives only in the WAL, exactly like a SIGKILL
    // (kAlways fsyncs each batch before its publish).
  }

  auto recovered = ShardedEngine::Recover(DurableOptions(dir));
  ASSERT_TRUE(recovered.ok()) << name << ": " << recovered.status().ToString();
  ShardedEngine* engine = recovered->get();

  const storage::RecoveryInfo info = engine->recovery_info();
  EXPECT_TRUE(info.durable) << name;
  EXPECT_TRUE(info.recovered) << name;
  EXPECT_FALSE(info.wal_torn_tail) << name;
  EXPECT_EQ(info.checkpoint_lsn, expect_checkpoint_lsn) << name;
  EXPECT_EQ(info.replayed_batches, expect_replayed) << name;
  EXPECT_EQ(info.last_lsn, reference.snapshot_version()) << name;

  EXPECT_EQ(engine->snapshot_version(), reference.snapshot_version()) << name;
  EXPECT_EQ(engine->shard_generations(), reference.shard_generations())
      << name;
  EXPECT_EQ(engine->NumUsersTotal(), reference.NumUsersTotal()) << name;
  EXPECT_EQ(engine->metrics().Read().wal_replayed, expect_replayed) << name;
  ExpectBitIdentical(Answers(engine, nf), expected);

  // The recovered engine is a full engine: it keeps logging, and a second
  // crash-free recovery sees the post-recovery batch too.
  UpdateBatch extra_batch;
  extra_batch.removes = {20};
  engine->ApplyUpdates(extra_batch);
  const AnswerSurface after_extra = Answers(engine, nf);
  const uint64_t version_after = engine->snapshot_version();
  recovered->reset();

  auto again = ShardedEngine::Recover(DurableOptions(dir));
  ASSERT_TRUE(again.ok()) << name << ": " << again.status().ToString();
  EXPECT_EQ((*again)->snapshot_version(), version_after) << name;
  ExpectBitIdentical(Answers(again->get(), nf), after_extra);
}

TEST(CrashRecovery, WalOnly) {
  // No manual checkpoint: only the initial one (LSN 1); all 4 batches replay.
  RunKillPointScenario("wal_only", /*checkpoint_after=*/0,
                       /*expect_checkpoint_lsn=*/1, /*expect_replayed=*/4);
}

TEST(CrashRecovery, CheckpointCoversEverything) {
  // Checkpoint after batch 4 (version 5): recovery replays nothing.
  RunKillPointScenario("post_checkpoint", /*checkpoint_after=*/4,
                       /*expect_checkpoint_lsn=*/5, /*expect_replayed=*/0);
}

TEST(CrashRecovery, CheckpointPlusTrailingWal) {
  // Checkpoint after batch 2 (version 3): batches 3 and 4 replay from WAL.
  RunKillPointScenario("mixed", /*checkpoint_after=*/2,
                       /*expect_checkpoint_lsn=*/3, /*expect_replayed=*/2);
}

TEST(CrashRecovery, TornWalTailIsTruncatedNotFatal) {
  const std::string dir = TempDir("torn_tail");
  const Workload wl = MakeWorkload(/*seed=*/131, /*num_batches=*/3);
  const uint32_t nf = static_cast<uint32_t>(wl.facilities.size());
  {
    ShardedEngine victim(wl.users, wl.facilities, DurableOptions(dir));
    for (const UpdateBatch& batch : wl.batches) {
      victim.ApplyUpdates(batch);
    }
  }
  // Tear the tail of the last WAL record (the crash hit mid-append).
  auto segments = ListWalSegments(storage::WalDir(dir));
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  const std::string& last = segments->back().path;
  std::filesystem::resize_file(last, std::filesystem::file_size(last) - 3);

  auto recovered = ShardedEngine::Recover(DurableOptions(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const storage::RecoveryInfo info = (*recovered)->recovery_info();
  EXPECT_TRUE(info.wal_torn_tail);
  EXPECT_EQ(info.replayed_batches, 2u);  // batch 3's record was torn
  EXPECT_EQ((*recovered)->snapshot_version(), 3u);  // v1 + 2 replayed

  // The un-acknowledged batch is simply not there; re-applying it lands the
  // engine exactly where the uninterrupted run would be.
  ShardedEngineOptions reference_options = DurableOptions("");
  reference_options.durability = storage::DurabilityOptions{};
  ShardedEngine reference(wl.users, wl.facilities, reference_options);
  for (const UpdateBatch& batch : wl.batches) {
    reference.ApplyUpdates(batch);
  }
  (*recovered)->ApplyUpdates(wl.batches.back());
  EXPECT_EQ((*recovered)->snapshot_version(), reference.snapshot_version());
  ExpectBitIdentical(Answers(recovered->get(), nf), Answers(&reference, nf));
}

TEST(CrashRecovery, VirginDataDirIsNotFound) {
  const auto st =
      ShardedEngine::Recover(DurableOptions(TempDir("virgin"))).status();
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
}

TEST(CrashRecovery, GeometryMismatchIsRejected) {
  const std::string dir = TempDir("geometry");
  const Workload wl = MakeWorkload(/*seed=*/151, /*num_batches=*/1);
  {
    ShardedEngine victim(wl.users, wl.facilities, DurableOptions(dir));
    victim.ApplyUpdates(wl.batches[0]);
  }
  // A different ψ means a different index geometry: the checkpointed trees
  // would answer the wrong question, so recovery must refuse loudly.
  ShardedEngineOptions wrong = DurableOptions(dir);
  wrong.tree.model = ServiceModel::PointCount(500.0);
  const auto st = ShardedEngine::Recover(wrong).status();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

// ------------------------------------------------------------ compaction

TEST(Compaction, ReclaimsPagesWithoutPerturbingRetainedSnapshots) {
  const std::string dir = TempDir("compaction");
  // Plenty of batches: each fork path-copies pages, growing the chain the
  // compactor is there to fold.
  const Workload wl = MakeWorkload(/*seed=*/171, /*num_batches=*/8);
  const uint32_t nf = static_cast<uint32_t>(wl.facilities.size());
  ShardedEngineOptions options = DurableOptions(dir);
  options.durability.compact_after_checkpoint = true;
  ShardedEngine engine(wl.users, wl.facilities, options);
  for (const UpdateBatch& batch : wl.batches) {
    engine.ApplyUpdates(batch);
  }

  // Pin the pre-compaction snapshot the way a long-running checkpoint or
  // slow reader would, and fingerprint one shard's tree byte-for-byte.
  const runtime::ShardedSnapshotPtr retained = engine.snapshot();
  const uint64_t pages_before = retained->shards[0]->tree->num_pages();
  std::string fingerprint_before;
  {
    StringSnapshotSink sink(&fingerprint_before);
    ASSERT_TRUE(
        WriteTQTreeSnapshot(*retained->shards[0]->tree, &sink).ok());
  }
  const AnswerSurface before = Answers(&engine, nf);
  const uint64_t reclaimed_before = engine.metrics().Read().pages_reclaimed;

  ASSERT_TRUE(engine.Checkpoint().ok());

  // Pages were actually reclaimed...
  const runtime::MetricsView m = engine.metrics().Read();
  EXPECT_GT(m.pages_reclaimed, reclaimed_before);
  // ...the live snapshot kept its version, generations, and answers (the
  // swap changes page backing only, never the logical state)...
  const runtime::ShardedSnapshotPtr live = engine.snapshot();
  EXPECT_EQ(live->version, retained->version);
  for (size_t s = 0; s < live->shards.size(); ++s) {
    EXPECT_EQ(live->shards[s]->generation, retained->shards[s]->generation)
        << "shard " << s;
  }
  EXPECT_NE(live->shards[0]->tree.get(), retained->shards[0]->tree.get());
  EXPECT_LE(live->shards[0]->tree->num_pages(), pages_before);
  ExpectBitIdentical(Answers(&engine, nf), before);
  // ...and the RETAINED snapshot is untouched, byte for byte.
  std::string fingerprint_after;
  {
    StringSnapshotSink sink(&fingerprint_after);
    ASSERT_TRUE(
        WriteTQTreeSnapshot(*retained->shards[0]->tree, &sink).ok());
  }
  EXPECT_EQ(fingerprint_before, fingerprint_after);
}

}  // namespace
}  // namespace tq
