#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "test_util.h"
#include "tqtree/aggregates.h"
#include "tqtree/tq_tree.h"

namespace tq {
namespace {

TQTreeOptions MakeOptions(IndexVariant variant, TrajMode mode,
                          ServiceModel model, size_t beta = 8) {
  TQTreeOptions opt;
  opt.beta = beta;
  opt.variant = variant;
  opt.mode = mode;
  opt.model = model;
  return opt;
}

// Walks the tree checking the §III invariants.
void CheckStructure(const TQTree& tree) {
  size_t stored_units = 0;
  double sum_unit_ub = 0.0;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const TQNode& n = tree.node(static_cast<int32_t>(i));
    stored_units += n.entries.size();
    // Every stored unit's MBR fits the node.
    for (const TrajEntry& e : n.entries) {
      EXPECT_TRUE(n.rect.ContainsRect(e.mbr))
          << "unit " << e.traj_id << " escapes node " << i;
      sum_unit_ub += e.ub;
      if (!n.IsLeaf()) {
        // Inter-node unit: no single child may contain it.
        for (int q = 0; q < 4; ++q) {
          EXPECT_FALSE(
              tree.node(n.first_child + q).rect.ContainsRect(e.mbr))
              << "inter-node unit " << e.traj_id << " fits child " << q;
        }
      }
    }
    // sub = own local + Σ children sub.
    double expect_sub = n.local_ub;
    if (!n.IsLeaf()) {
      for (int q = 0; q < 4; ++q) {
        expect_sub += tree.node(n.first_child + q).sub;
      }
    }
    EXPECT_NEAR(n.sub, expect_sub, 1e-9) << "node " << i;
    // local_ub equals the sum of its entries' ubs.
    double local = 0.0;
    for (const TrajEntry& e : n.entries) local += e.ub;
    EXPECT_NEAR(n.local_ub, local, 1e-9) << "node " << i;
  }
  EXPECT_EQ(stored_units, tree.num_units());
  EXPECT_NEAR(tree.RootUpperBound(), sum_unit_ub, 1e-6);
}

TEST(TQTree, EveryTrajectoryStoredExactlyOnceWholeMode) {
  Rng rng(301);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 2, w);
  TQTree tree(&users, MakeOptions(IndexVariant::kZOrder, TrajMode::kWhole,
                                  ServiceModel::Endpoints(100)));
  std::map<uint32_t, int> count;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    for (const TrajEntry& e : tree.node(static_cast<int32_t>(i)).entries) {
      EXPECT_TRUE(e.IsWhole());
      count[e.traj_id]++;
    }
  }
  EXPECT_EQ(count.size(), users.size());
  for (const auto& [id, c] : count) EXPECT_EQ(c, 1) << "traj " << id;
  CheckStructure(tree);
}

TEST(TQTree, SegmentedModeStoresEverySegmentOnce) {
  Rng rng(303);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 150, 2, 8, w);
  TQTree tree(&users, MakeOptions(IndexVariant::kZOrder, TrajMode::kSegmented,
                                  ServiceModel::PointCount(100)));
  // §III-B: total stored units = Σ (|u| − 1).
  size_t expected = 0;
  for (uint32_t u = 0; u < users.size(); ++u) {
    expected += users.NumPoints(u) - 1;
  }
  EXPECT_EQ(tree.num_units(), expected);
  std::map<std::pair<uint32_t, uint32_t>, int> count;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    for (const TrajEntry& e : tree.node(static_cast<int32_t>(i)).entries) {
      count[{e.traj_id, e.seg_index}]++;
    }
  }
  for (const auto& [key, c] : count) EXPECT_EQ(c, 1);
  CheckStructure(tree);
}

TEST(TQTree, LeavesRespectBetaUnlessUnsplittable) {
  Rng rng(305);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 2000, 2, 2, w);
  TQTreeOptions opt = MakeOptions(IndexVariant::kBasic, TrajMode::kWhole,
                                  ServiceModel::Endpoints(100), 16);
  TQTree tree(&users, opt);
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const TQNode& n = tree.node(static_cast<int32_t>(i));
    if (!n.IsLeaf()) continue;
    if (n.entries.size() > opt.beta) {
      // Only allowed when the node cannot split usefully.
      EXPECT_TRUE(n.depth >= opt.max_depth || n.split_failed_at > 0)
          << "overfull splittable leaf " << i;
    }
  }
}

TEST(TQTree, LongerTrajectoriesLiveHigher) {
  // A trajectory spanning the whole space must sit at the root; a tiny one
  // in a corner must descend.
  TrajectorySet users;
  const Point long_traj[] = {{10, 10}, {9990, 9990}};
  users.Add(long_traj);
  for (int i = 0; i < 40; ++i) {
    const double x = 100.0 + i;
    const Point t[] = {{x, 100}, {x + 1, 101}};
    users.Add(t);
  }
  TQTree tree(&users, MakeOptions(IndexVariant::kBasic, TrajMode::kWhole,
                                  ServiceModel::Endpoints(50), 4));
  bool root_has_long = false;
  for (const TrajEntry& e : tree.node(tree.root()).entries) {
    root_has_long |= (e.traj_id == 0);
  }
  EXPECT_TRUE(root_has_long);
  // Tiny trajectories ended up strictly below the root.
  size_t below = 0;
  for (size_t i = 1; i < tree.num_nodes(); ++i) {
    below += tree.node(static_cast<int32_t>(i)).entries.size();
  }
  EXPECT_GT(below, 0u);
}

TEST(TQTree, ContainingNodeIsSmallestEnclosing) {
  Rng rng(307);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 1000, 2, 2, w);
  TQTree tree(&users, MakeOptions(IndexVariant::kBasic, TrajMode::kWhole,
                                  ServiceModel::Endpoints(100), 8));
  // Probes must stay inside the tree's world (ContainingNode falls back to
  // the root — which need not contain the probe — otherwise).
  const Rect world = tree.world();
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.NextUniform(world.min_x, world.max_x - 900);
    const double y = rng.NextUniform(world.min_y, world.max_y - 900);
    const Rect probe = Rect::Of(x, y, x + rng.NextUniform(1, 800),
                                y + rng.NextUniform(1, 800));
    const int32_t idx = tree.ContainingNode(probe);
    const TQNode& n = tree.node(idx);
    EXPECT_TRUE(n.rect.ContainsRect(probe));
    // No child contains it (else idx would not be smallest).
    if (!n.IsLeaf()) {
      for (int q = 0; q < 4; ++q) {
        EXPECT_FALSE(tree.node(n.first_child + q).rect.ContainsRect(probe));
      }
    }
  }
}

TEST(TQTree, PathToWalksRootToNode) {
  Rng rng(309);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 1000, 2, 2, w);
  TQTree tree(&users, MakeOptions(IndexVariant::kBasic, TrajMode::kWhole,
                                  ServiceModel::Endpoints(100), 8));
  const Rect probe = Rect::Of(100, 100, 150, 150);
  const int32_t idx = tree.ContainingNode(probe);
  const auto path = tree.PathTo(idx);
  ASSERT_GE(path.size(), 1u);
  EXPECT_EQ(path.front(), tree.root());
  EXPECT_EQ(path.back(), idx);
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(tree.node(path[i - 1])
                    .rect.ContainsRect(tree.node(path[i]).rect));
  }
}

TEST(TQTree, TwoPointDetection) {
  Rng rng(311);
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  const TrajectorySet two = testing::RandomUsers(&rng, 50, 2, 2, w);
  const TrajectorySet multi = testing::RandomUsers(&rng, 50, 3, 6, w);
  TQTree t1(&two, MakeOptions(IndexVariant::kBasic, TrajMode::kWhole,
                              ServiceModel::Endpoints(50)));
  TQTree t2(&multi, MakeOptions(IndexVariant::kBasic, TrajMode::kWhole,
                                ServiceModel::Endpoints(50)));
  TQTree t3(&multi, MakeOptions(IndexVariant::kBasic, TrajMode::kSegmented,
                                ServiceModel::PointCount(50)));
  EXPECT_TRUE(t1.two_point_units());
  EXPECT_FALSE(t2.two_point_units());
  EXPECT_TRUE(t3.two_point_units());
}

TEST(TQTree, DerivePruneModeMatrix) {
  const ServiceModel endpoints = ServiceModel::Endpoints(50);
  const ServiceModel count = ServiceModel::PointCount(50);
  const ServiceModel length = ServiceModel::Length(50);
  using PM = ZPruneMode;
  EXPECT_EQ(DerivePruneMode(TrajMode::kWhole, endpoints, 2), PM::kStartEnd);
  EXPECT_EQ(DerivePruneMode(TrajMode::kWhole, endpoints, 9), PM::kStartEnd);
  EXPECT_EQ(DerivePruneMode(TrajMode::kWhole, count, 2), PM::kStartOrEnd);
  EXPECT_EQ(DerivePruneMode(TrajMode::kWhole, count, 9), PM::kMbr);
  EXPECT_EQ(DerivePruneMode(TrajMode::kWhole, length, 2), PM::kStartEnd);
  EXPECT_EQ(DerivePruneMode(TrajMode::kWhole, length, 9), PM::kMbr);
  EXPECT_EQ(DerivePruneMode(TrajMode::kSegmented, count, 9),
            PM::kStartOrEnd);
  EXPECT_EQ(DerivePruneMode(TrajMode::kSegmented, length, 9),
            PM::kStartEnd);
  EXPECT_EQ(DerivePruneMode(TrajMode::kSegmented, endpoints, 9),
            PM::kStartOrEnd);
}

TEST(TQTree, StatsAreCoherent) {
  Rng rng(313);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 800, 2, 2, w);
  TQTree tree(&users, MakeOptions(IndexVariant::kZOrder, TrajMode::kWhole,
                                  ServiceModel::Endpoints(100)));
  const TQTreeStats s = tree.ComputeStats();
  EXPECT_EQ(s.num_entries, users.size());
  EXPECT_GT(s.num_nodes, 1u);
  EXPECT_GE(s.num_nodes, s.num_leaves);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(TQTree, UnitUpperBoundSegmentScenario1EndpointsOnly) {
  TrajectorySet users;
  const Point t[] = {{0, 0}, {10, 0}, {20, 0}, {30, 0}};
  users.Add(t);
  const ServiceModel m = ServiceModel::Endpoints(5);
  EXPECT_DOUBLE_EQ(UnitUpperBound(users, 0, 0, m), 1.0);  // touches source
  EXPECT_DOUBLE_EQ(UnitUpperBound(users, 0, 1, m), 0.0);  // interior
  EXPECT_DOUBLE_EQ(UnitUpperBound(users, 0, 2, m), 1.0);  // touches dest
}

TEST(TQTree, UnitUpperBoundSegmentPointOwnership) {
  TrajectorySet users;
  const Point t[] = {{0, 0}, {10, 0}, {20, 0}, {30, 0}};
  users.Add(t);
  const ServiceModel m = ServiceModel::PointCount(5, Normalization::kNone);
  // Segment 0 owns points 0 and 1; segments 1, 2 own one point each.
  EXPECT_DOUBLE_EQ(UnitUpperBound(users, 0, 0, m), 2.0);
  EXPECT_DOUBLE_EQ(UnitUpperBound(users, 0, 1, m), 1.0);
  EXPECT_DOUBLE_EQ(UnitUpperBound(users, 0, 2, m), 1.0);
  // Ownership partitions the trajectory's points exactly.
  double total = 0;
  for (uint32_t s = 0; s < 3; ++s) total += UnitUpperBound(users, 0, s, m);
  EXPECT_DOUBLE_EQ(total, 4.0);
}

}  // namespace
}  // namespace tq
