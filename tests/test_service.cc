#include <gtest/gtest.h>

#include "common/rng.h"
#include "service/accumulator.h"
#include "service/evaluator.h"
#include "service/facility_index.h"
#include "service/models.h"
#include "service/stop_grid.h"
#include "test_util.h"

namespace tq {
namespace {

TEST(ServiceModel, UpperBoundsPickTightestValidComponent) {
  const ServiceAggregates agg{10.0, 55.0, 1234.5};
  EXPECT_DOUBLE_EQ(ServiceModel::Endpoints(100).UpperBound(agg), 10.0);
  EXPECT_DOUBLE_EQ(
      ServiceModel::PointCount(100, Normalization::kPerUser).UpperBound(agg),
      10.0);
  EXPECT_DOUBLE_EQ(
      ServiceModel::PointCount(100, Normalization::kNone).UpperBound(agg),
      55.0);
  EXPECT_DOUBLE_EQ(
      ServiceModel::Length(100, Normalization::kPerUser).UpperBound(agg),
      10.0);
  EXPECT_DOUBLE_EQ(
      ServiceModel::Length(100, Normalization::kNone).UpperBound(agg),
      1234.5);
}

TEST(ServiceModel, ToStringMentionsScenario) {
  EXPECT_NE(ServiceModel::Endpoints(50).ToString().find("endpoints"),
            std::string::npos);
  EXPECT_NE(ServiceModel::Length(50).ToString().find("length"),
            std::string::npos);
}

TEST(StopGrid, ServesMatchesLinearScan) {
  Rng rng(201);
  std::vector<Point> stops;
  for (int i = 0; i < 60; ++i) {
    stops.push_back({rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)});
  }
  const double psi = 150.0;
  const StopGrid grid(stops, psi);
  for (int i = 0; i < 2000; ++i) {
    const Point p{rng.NextUniform(-100, 5100), rng.NextUniform(-100, 5100)};
    EXPECT_EQ(grid.Serves(p), WithinPsiOfAny(p, stops, psi)) << p.x << ","
                                                             << p.y;
  }
}

TEST(StopGrid, EmbrIsMbrExpandedByPsi) {
  const std::vector<Point> stops = {{10, 20}, {30, 40}};
  const StopGrid grid(stops, 5.0);
  EXPECT_EQ(grid.mbr(), Rect::Of(10, 20, 30, 40));
  EXPECT_EQ(grid.embr(), Rect::Of(5, 15, 35, 45));
}

TEST(StopGrid, NearbyStopDistance) {
  const std::vector<Point> stops = {{0, 0}};
  const StopGrid grid(stops, 10.0);
  EXPECT_NEAR(grid.NearbyStopDistance({3, 4}), 5.0, 1e-12);
}

TEST(FacilityCatalog, BuildsOneGridPerFacility) {
  TrajectorySet facilities;
  const Point f0[] = {{0, 0}, {100, 0}};
  const Point f1[] = {{500, 500}, {600, 600}, {700, 700}};
  facilities.Add(f0);
  facilities.Add(f1);
  const FacilityCatalog catalog(&facilities, 50.0);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.grid(0).stops().size(), 2u);
  EXPECT_EQ(catalog.grid(1).stops().size(), 3u);
  EXPECT_DOUBLE_EQ(catalog.psi(), 50.0);
}

class EvaluatorScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // User 0: both endpoints near stops. User 1: only source near.
    // User 2: 4-point trajectory, middle two points near stops.
    const Point u0[] = {{0, 0}, {100, 0}};
    const Point u1[] = {{0, 5}, {500, 500}};
    const Point u2[] = {{400, 400}, {10, 0}, {95, 5}, {300, 300}};
    users_.Add(u0);
    users_.Add(u1);
    users_.Add(u2);
    const Point stops[] = {{0, 10}, {100, 10}};
    facilities_.Add(stops);
  }

  TrajectorySet users_;
  TrajectorySet facilities_;
};

TEST_F(EvaluatorScenarioTest, Scenario1Binary) {
  const ServiceEvaluator eval(&users_, ServiceModel::Endpoints(20.0));
  const StopGrid grid(facilities_.points(0), 20.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(0, grid), 1.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(1, grid), 0.0);  // destination unserved
  EXPECT_DOUBLE_EQ(eval.Evaluate(2, grid), 0.0);  // endpoints far
  EXPECT_TRUE(eval.EndpointsServed(0, grid));
  EXPECT_FALSE(eval.EndpointsServed(2, grid));
}

TEST_F(EvaluatorScenarioTest, Scenario2PointCount) {
  const ServiceEvaluator eval(&users_, ServiceModel::PointCount(20.0));
  const StopGrid grid(facilities_.points(0), 20.0);
  EXPECT_DOUBLE_EQ(eval.Evaluate(0, grid), 1.0);        // 2/2
  EXPECT_DOUBLE_EQ(eval.Evaluate(1, grid), 0.5);        // 1/2
  EXPECT_DOUBLE_EQ(eval.Evaluate(2, grid), 0.5);        // 2/4
  const ServiceEvaluator raw(
      &users_, ServiceModel::PointCount(20.0, Normalization::kNone));
  EXPECT_DOUBLE_EQ(raw.Evaluate(2, grid), 2.0);
}

TEST_F(EvaluatorScenarioTest, Scenario3Length) {
  const ServiceEvaluator eval(&users_, ServiceModel::Length(20.0));
  const StopGrid grid(facilities_.points(0), 20.0);
  // User 0: the whole (only) segment served → fraction 1.
  EXPECT_DOUBLE_EQ(eval.Evaluate(0, grid), 1.0);
  // User 2: only interior segment (10,0)→(95,5) has both ends served.
  const double seg = Distance({10, 0}, {95, 5});
  EXPECT_NEAR(eval.Evaluate(2, grid), seg / users_.length(2), 1e-12);
}

TEST_F(EvaluatorScenarioTest, DetailMaskConsistentWithEvaluate) {
  Rng rng(207);
  const Rect w = Rect::Of(0, 0, 2000, 2000);
  const TrajectorySet users = testing::RandomUsers(&rng, 80, 2, 7, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 5, 12, w);
  for (const ServiceModel& model : testing::AllModels(120.0)) {
    const ServiceEvaluator eval(&users, model);
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const StopGrid grid(facs.points(f), model.psi);
      for (uint32_t u = 0; u < users.size(); ++u) {
        const ServeDetail d = eval.EvaluateDetail(u, grid);
        EXPECT_NEAR(eval.ValueOfMask(u, d.mask), eval.Evaluate(u, grid),
                    1e-12)
            << model.ToString() << " user " << u;
      }
    }
  }
}

TEST_F(EvaluatorScenarioTest, MaskSizeLayout) {
  const ServiceEvaluator pts(&users_, ServiceModel::PointCount(20.0));
  const ServiceEvaluator len(&users_, ServiceModel::Length(20.0));
  EXPECT_EQ(pts.MaskSize(2), 4u);  // points
  EXPECT_EQ(len.MaskSize(2), 3u);  // segments
}

TEST(Accumulator, IncrementalTotalsMatchValueOfMask) {
  Rng rng(209);
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  const TrajectorySet users = testing::RandomUsers(&rng, 40, 2, 6, w);
  for (const ServiceModel& model : testing::AllModels(100.0)) {
    const ServiceEvaluator eval(&users, model);
    ServiceAccumulator acc(&eval);
    // Random marks, with duplicates, across users.
    std::vector<std::pair<uint32_t, DynamicBitset>> shadow;
    for (int i = 0; i < 300; ++i) {
      const auto u = static_cast<uint32_t>(rng.NextBelow(users.size()));
      const size_t msize = eval.MaskSize(u);
      if (msize == 0) continue;
      const auto bit = static_cast<uint32_t>(rng.NextBelow(msize));
      if (model.scenario == Scenario::kLength) {
        acc.MarkSegment(u, bit);
      } else {
        acc.MarkPoint(u, bit);
      }
      auto it = std::find_if(shadow.begin(), shadow.end(),
                             [&](const auto& p) { return p.first == u; });
      if (it == shadow.end()) {
        shadow.emplace_back(u, DynamicBitset(msize));
        it = shadow.end() - 1;
      }
      it->second.Set(bit);
    }
    double expected = 0.0;
    for (const auto& [u, mask] : shadow) {
      expected += eval.ValueOfMask(u, mask);
    }
    EXPECT_NEAR(acc.Total(), expected, 1e-9) << model.ToString();
    acc.Clear();
    EXPECT_DOUBLE_EQ(acc.Total(), 0.0);
    EXPECT_EQ(acc.TouchedUsers(), 0u);
  }
}

}  // namespace
}  // namespace tq
