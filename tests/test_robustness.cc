// Robustness: inputs that stress boundary paths — points outside the built
// world, extreme ψ (adaptive zReduce fallback), degenerate facilities,
// mixed-length trajectories.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/eval_service.h"
#include "query/topk.h"
#include "test_util.h"

namespace tq {
namespace {

TEST(Robustness, InsertOutsideOriginalWorldStaysQueryable) {
  // The tree's world is fixed at construction; trajectories added beyond it
  // must still be indexed (they become root inter-node units) and served.
  Rng rng(1301);
  TrajectorySet users =
      testing::RandomUsers(&rng, 200, 2, 2, Rect::Of(0, 0, 1000, 1000));
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = ServiceModel::Endpoints(100.0);
  TQTree tree(&users, opt);
  // New trips far outside the original extent.
  for (int i = 0; i < 20; ++i) {
    const double x = 5000.0 + 10.0 * i;
    const Point t[] = {{x, 5000}, {x + 20, 5020}};
    tree.Insert(users.Add(t));
  }
  const ServiceEvaluator eval(&users, opt.model);
  const std::vector<Point> stops = {{5100, 5000}, {5100, 5050}};
  const StopGrid grid(stops, opt.model.psi);
  EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
              testing::BruteForceSO(users, stops, opt.model), 1e-9);
}

TEST(Robustness, HugePsiTriggersFallbacksAndStaysExact) {
  // ψ = half the city: corridors blanket every node, so the adaptive
  // plain-scan fallback carries the query — answers must not change.
  Rng rng(1303);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 8, w);
  const ServiceModel model = ServiceModel::Endpoints(5000.0);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                testing::BruteForceSO(users, facs.points(f), model), 1e-9);
  }
}

TEST(Robustness, TinyPsiServesAlmostNothingButExactly) {
  Rng rng(1305);
  const Rect w = Rect::Of(0, 0, 50000, 50000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 8, w);
  const ServiceModel model = ServiceModel::Endpoints(0.5);  // half a metre
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                testing::BruteForceSO(users, facs.points(f), model), 1e-12);
  }
}

TEST(Robustness, SingleStopFacility) {
  TrajectorySet users;
  const Point near_t[] = {{100, 100}, {110, 110}};
  const Point far_t[] = {{100, 100}, {5000, 5000}};
  users.Add(near_t);
  users.Add(far_t);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(50.0);
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, opt.model);
  const std::vector<Point> one_stop = {{105, 105}};
  const StopGrid grid(one_stop, opt.model.psi);
  // Only the first user has both endpoints within 50 m of the single stop.
  EXPECT_DOUBLE_EQ(EvaluateServiceTQ(&tree, eval, grid), 1.0);
}

TEST(Robustness, MixedLengthTrajectoriesInOneSegmentedTree) {
  // Single-point, two-point and long trajectories coexisting in a segmented
  // tree under the point-count model.
  TrajectorySet users;
  const Point single[] = {{500, 500}};
  users.Add(single);
  const Point pair[] = {{510, 500}, {520, 500}};
  users.Add(pair);
  std::vector<Point> longer;
  for (int i = 0; i < 12; ++i) {
    longer.push_back({530.0 + 10.0 * i, 500.0});
  }
  users.Add(longer);
  const ServiceModel model = ServiceModel::PointCount(15.0);
  TQTreeOptions opt;
  opt.beta = 2;
  opt.mode = TrajMode::kSegmented;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  const std::vector<Point> stops = {{505, 500}, {620, 500}};
  const StopGrid grid(stops, model.psi);
  EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
              testing::BruteForceSO(users, stops, model), 1e-12);
}

TEST(Robustness, AllUsersIdenticalTopKStillRanksFacilities) {
  TrajectorySet users;
  for (int i = 0; i < 200; ++i) {
    const Point t[] = {{1000, 1000}, {2000, 2000}};
    users.Add(t);
  }
  TrajectorySet facs;
  const Point serves_both[] = {{1000, 1010}, {2000, 2010}};
  const Point serves_one[] = {{1000, 1010}, {9000, 9000}};
  const Point serves_none[] = {{8000, 8000}, {9000, 9000}};
  facs.Add(serves_both);
  facs.Add(serves_one);
  facs.Add(serves_none);
  const ServiceModel model = ServiceModel::Endpoints(20.0);
  TQTreeOptions opt;
  opt.beta = 16;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  const TopKResult top = TopKFacilitiesTQ(&tree, catalog, eval, 3);
  ASSERT_EQ(top.ranked.size(), 3u);
  EXPECT_EQ(top.ranked[0].id, 0u);
  EXPECT_DOUBLE_EQ(top.ranked[0].value, 200.0);
  EXPECT_DOUBLE_EQ(top.ranked[1].value, 0.0);
  EXPECT_DOUBLE_EQ(top.ranked[2].value, 0.0);
}

TEST(Robustness, FacilityIdenticalStops) {
  // A facility whose stops are all at the same location must behave like a
  // single stop (grid buckets collapse).
  TrajectorySet users;
  const Point t[] = {{100, 100}, {120, 120}};
  users.Add(t);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(50.0);
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, opt.model);
  const std::vector<Point> stops(64, Point{110, 110});
  const StopGrid grid(stops, opt.model.psi);
  EXPECT_DOUBLE_EQ(EvaluateServiceTQ(&tree, eval, grid), 1.0);
}

TEST(Robustness, NegativeCoordinateWorld) {
  // Everything below the origin: exercises sign handling in the stop-grid
  // cell hash and the Morton grid normalisation.
  Rng rng(1309);
  const Rect w = Rect::Of(-20000, -20000, -1000, -1000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 8, w);
  for (const ServiceModel& model : testing::AllModels(300.0)) {
    TQTreeOptions opt;
    opt.beta = 8;
    opt.model = model;
    TQTree tree(&users, opt);
    const ServiceEvaluator eval(&users, model);
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const StopGrid grid(facs.points(f), model.psi);
      EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                  testing::BruteForceSO(users, facs.points(f), model), 1e-6)
          << model.ToString();
    }
  }
}

TEST(Robustness, WorldStraddlingOrigin) {
  Rng rng(1311);
  const Rect w = Rect::Of(-5000, -5000, 5000, 5000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 8, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                testing::BruteForceSO(users, facs.points(f), model), 1e-9);
  }
}

TEST(Robustness, BetaOneDegenerateTree) {
  // β = 1 forces maximal splitting; answers must not change.
  Rng rng(1307);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 4, 8, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  TQTreeOptions opt;
  opt.beta = 1;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&tree, eval, grid),
                testing::BruteForceSO(users, facs.points(f), model), 1e-9);
  }
}

}  // namespace
}  // namespace tq
