#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "test_util.h"
#include "tqtree/aggregates.h"
#include "tqtree/zindex.h"

namespace tq {
namespace {

std::vector<TrajEntry> MakeEntries(const TrajectorySet& users,
                                   const ServiceModel& model) {
  std::vector<TrajEntry> out;
  for (uint32_t u = 0; u < users.size(); ++u) {
    out.push_back(MakeWholeEntry(users, u, model));
  }
  return out;
}

std::set<uint32_t> Candidates(const ZIndex& zi,
                               std::span<const Point> stops, double psi) {
  std::set<uint32_t> out;
  const ZIndex::Corridor corridor{stops, psi,
                                  Rect::BoundingBox(stops).Expanded(psi)};
  zi.ForEachCandidate(corridor, [&](uint32_t i) { out.insert(i); });
  return out;
}

TEST(ZIndex, StartEndFilterIsSoundForEndpointService) {
  Rng rng(401);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 2, w);
  const ServiceModel model = ServiceModel::Endpoints(150.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(w, entries, 8, ZPruneMode::kStartEnd);

  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 8, w);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const auto cands = Candidates(zi, facs.points(f), model.psi);
    // Soundness: every entry the oracle serves must be a candidate.
    for (uint32_t i = 0; i < entries.size(); ++i) {
      const double s = testing::BruteForceService(users, entries[i].traj_id,
                                                  facs.points(f), model);
      if (s > 0.0) {
        EXPECT_TRUE(cands.count(i)) << "facility " << f << " entry " << i;
      }
    }
  }
}

TEST(ZIndex, StartOrEndFilterIsSoundForPointService) {
  Rng rng(403);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 2, w);
  const ServiceModel model = ServiceModel::PointCount(150.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(w, entries, 8, ZPruneMode::kStartOrEnd);

  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 8, w);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const auto cands = Candidates(zi, facs.points(f), model.psi);
    for (uint32_t i = 0; i < entries.size(); ++i) {
      const double s = testing::BruteForceService(users, entries[i].traj_id,
                                                  facs.points(f), model);
      if (s > 0.0) {
        EXPECT_TRUE(cands.count(i));
      }
    }
  }
}

TEST(ZIndex, MbrFilterIsSoundForInteriorService) {
  Rng rng(405);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 200, 3, 8, w);
  const ServiceModel model = ServiceModel::PointCount(150.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(w, entries, 8, ZPruneMode::kMbr);

  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 8, w);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const auto cands = Candidates(zi, facs.points(f), model.psi);
    for (uint32_t i = 0; i < entries.size(); ++i) {
      const double s = testing::BruteForceService(users, entries[i].traj_id,
                                                  facs.points(f), model);
      if (s > 0.0) {
        EXPECT_TRUE(cands.count(i));
      }
    }
  }
}

TEST(ZIndex, ActuallyPrunesOnClusteredData) {
  Rng rng(407);
  const Rect w = Rect::Of(0, 0, 100000, 100000);
  const TrajectorySet users = testing::RandomUsers(&rng, 2000, 2, 2, w);
  const ServiceModel model = ServiceModel::Endpoints(100.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(w, entries, 16, ZPruneMode::kStartEnd);
  // A small facility footprint in one corner must not touch most entries.
  const std::vector<Point> stops = {{1000, 1000}, {2000, 2000}};
  const ZIndex::Corridor corridor{
      stops, 100.0, Rect::BoundingBox(stops).Expanded(100.0)};
  ZIndex::ReduceStats stats;
  size_t cands = 0;
  zi.ForEachCandidate(corridor, [&](uint32_t) { ++cands; }, &stats);
  EXPECT_LT(cands, entries.size() / 4) << "pruning ineffective";
  EXPECT_LT(stats.entries_scanned, entries.size())
      << "zReduce scanned the whole list";
  EXPECT_EQ(stats.candidates, cands);
  EXPECT_LE(stats.buckets_visited, stats.buckets_total);
}

TEST(ZIndex, EmptyEmbrYieldsNoCandidates) {
  Rng rng(409);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 2, w);
  const ServiceModel model = ServiceModel::Endpoints(100.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(w, entries, 8, ZPruneMode::kStartEnd);
  // Facility entirely outside the world.
  const std::vector<Point> stops = {{-5000, -5000}, {-4500, -4500}};
  const auto cands = Candidates(zi, stops, 100.0);
  EXPECT_TRUE(cands.empty());
}

TEST(ZIndex, BucketsRespectBeta) {
  Rng rng(411);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 333, 2, 2, w);
  const ServiceModel model = ServiceModel::Endpoints(100.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(w, entries, 10, ZPruneMode::kStartEnd);
  EXPECT_EQ(zi.num_entries(), 333u);
  EXPECT_EQ(zi.num_buckets(), (333 + 9) / 10);
}

TEST(ZIndex, OutOfRectEntriesBecomeOutliersAndStayVisible) {
  // An entry whose endpoints escape the index rectangle (possible after
  // dynamic inserts beyond the original world) cannot be z-addressed; it
  // must land on the outlier list and still surface as a candidate.
  const Rect node_rect = Rect::Of(0, 0, 1000, 1000);
  TrajectorySet users;
  const Point inside[] = {{100, 100}, {200, 200}};
  const Point outside[] = {{5000, 5000}, {5100, 5100}};
  users.Add(inside);
  users.Add(outside);
  const ServiceModel model = ServiceModel::Endpoints(50.0);
  const auto entries = MakeEntries(users, model);
  const ZIndex zi(node_rect, entries, 4, ZPruneMode::kStartEnd);
  EXPECT_EQ(zi.num_outliers(), 1u);
  EXPECT_EQ(zi.num_entries(), 2u);
  // A facility near the outlier must reach it; a facility near the inside
  // entry must reach that one. (Supersets are always permitted — pruning is
  // a candidate filter, not the exact check — so no EXPECT_FALSE here.)
  const std::vector<Point> stops = {{5050, 5050}};
  EXPECT_TRUE(Candidates(zi, stops, model.psi).count(1));
  const std::vector<Point> near_inside = {{150, 150}};
  EXPECT_TRUE(Candidates(zi, near_inside, model.psi).count(0));
}

TEST(ZIndex, WholeWorldEmbrReturnsEverything) {
  Rng rng(413);
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  const TrajectorySet users = testing::RandomUsers(&rng, 150, 2, 2, w);
  const ServiceModel model = ServiceModel::Endpoints(100.0);
  const auto entries = MakeEntries(users, model);
  // A dense stop lattice whose corridor blankets the world.
  std::vector<Point> stops;
  for (double x = 0; x <= 10000; x += 500) {
    for (double y = 0; y <= 10000; y += 500) {
      stops.push_back({x, y});
    }
  }
  for (const ZPruneMode pm :
       {ZPruneMode::kStartEnd, ZPruneMode::kStartOrEnd, ZPruneMode::kMbr}) {
    const ZIndex zi(w, entries, 8, pm);
    const auto cands = Candidates(zi, stops, 400.0);
    EXPECT_EQ(cands.size(), entries.size());
  }
}

}  // namespace
}  // namespace tq
