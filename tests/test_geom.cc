#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/distance.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace tq {
namespace {

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(Rect, ContainsAndIntersects) {
  const Rect r = Rect::Of(0, 0, 10, 10);
  EXPECT_TRUE(r.Contains({5, 5}));
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({10, 10}));  // closed
  EXPECT_FALSE(r.Contains({10.01, 5}));
  EXPECT_TRUE(r.Intersects(Rect::Of(9, 9, 12, 12)));
  EXPECT_TRUE(r.Intersects(Rect::Of(10, 0, 12, 2)));  // edge touch
  EXPECT_FALSE(r.Intersects(Rect::Of(11, 11, 12, 12)));
}

TEST(Rect, EmptyUnionsAsIdentity) {
  Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  const Rect r = Rect::Of(1, 2, 3, 4);
  EXPECT_EQ(e.UnionWith(r), r);
}

TEST(Rect, QuadrantsPartitionTheRect) {
  const Rect r = Rect::Of(0, 0, 8, 8);
  EXPECT_EQ(r.Quadrant(0), Rect::Of(0, 0, 4, 4));  // SW
  EXPECT_EQ(r.Quadrant(1), Rect::Of(4, 0, 8, 4));  // SE
  EXPECT_EQ(r.Quadrant(2), Rect::Of(0, 4, 4, 8));  // NW
  EXPECT_EQ(r.Quadrant(3), Rect::Of(4, 4, 8, 8));  // NE
}

TEST(Rect, QuadrantOfMatchesQuadrantRects) {
  const Rect r = Rect::Of(-10, -10, 10, 10);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.NextUniform(-10, 10), rng.NextUniform(-10, 10)};
    EXPECT_TRUE(r.Quadrant(r.QuadrantOf(p)).Contains(p));
  }
}

TEST(Rect, QuadrantOfBoundaryGoesToUpperQuadrant) {
  const Rect r = Rect::Of(0, 0, 8, 8);
  EXPECT_EQ(r.QuadrantOf({4, 4}), 3);  // centre → NE
  EXPECT_EQ(r.QuadrantOf({4, 0}), 1);  // x-split → east side
  EXPECT_EQ(r.QuadrantOf({0, 4}), 2);  // y-split → north side
}

TEST(Rect, ExpandedGrowsEverySide) {
  const Rect r = Rect::Of(2, 3, 4, 5).Expanded(1.5);
  EXPECT_EQ(r, Rect::Of(0.5, 1.5, 5.5, 6.5));
}

TEST(Rect, BoundingBox) {
  const Point pts[] = {{1, 7}, {-2, 3}, {5, -1}};
  const Rect r = Rect::BoundingBox(pts);
  EXPECT_EQ(r, Rect::Of(-2, -1, 5, 7));
}

TEST(Rect, ContainsRect) {
  const Rect outer = Rect::Of(0, 0, 10, 10);
  EXPECT_TRUE(outer.ContainsRect(Rect::Of(1, 1, 9, 9)));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect::Of(1, 1, 11, 9)));
}

TEST(MinDistance, InsideIsZero) {
  const Rect r = Rect::Of(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(MinDistance(r, {5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(r, {0, 10}), 0.0);
}

TEST(MinDistance, OutsideMatchesGeometry) {
  const Rect r = Rect::Of(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(MinDistance(r, {13, 14}), 5.0);  // corner
  EXPECT_DOUBLE_EQ(MinDistance(r, {-3, 5}), 3.0);   // edge
}

TEST(Distance, WithinPsiOfAny) {
  const Point stops[] = {{0, 0}, {100, 100}};
  EXPECT_TRUE(WithinPsiOfAny({3, 4}, stops, 5.0));
  EXPECT_TRUE(WithinPsiOfAny({103, 104}, stops, 5.0));
  EXPECT_FALSE(WithinPsiOfAny({50, 50}, stops, 5.0));
  EXPECT_TRUE(WithinPsiOfAny({3, 4}, stops, 5.0 - 1e-12) == false);
}

TEST(Distance, PolylineLength) {
  const Point pts[] = {{0, 0}, {3, 4}, {3, 10}};
  EXPECT_DOUBLE_EQ(PolylineLength(pts), 11.0);
  const Point single[] = {{1, 1}};
  EXPECT_DOUBLE_EQ(PolylineLength(single), 0.0);
}

TEST(Distance, DiskIntersectsRect) {
  const Rect r = Rect::Of(0, 0, 10, 10);
  EXPECT_TRUE(DiskIntersectsRect({12, 5}, 2.0, r));
  EXPECT_FALSE(DiskIntersectsRect({13, 5}, 2.0, r));
  EXPECT_TRUE(DiskIntersectsRect({5, 5}, 0.1, r));  // inside
}

}  // namespace
}  // namespace tq
