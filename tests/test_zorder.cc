#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "geom/distance.h"
#include "zorder/cell_tree.h"
#include "zorder/zid.h"

namespace tq {
namespace {

TEST(ZId, RootProperties) {
  ZId root;
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.RangeBegin(), 0u);
  EXPECT_EQ(root.RangeSize(), uint64_t{1} << (2 * kMaxZDepth));
  EXPECT_EQ(root.ToString(), "ε");
}

TEST(ZId, ChildPathsAndToString) {
  ZId root;
  const ZId c0 = root.Child(0);
  const ZId c03 = c0.Child(3);
  EXPECT_EQ(c0.ToString(), "0");
  EXPECT_EQ(c03.ToString(), "0.3");
  EXPECT_EQ(c03.depth, 2);
}

TEST(ZId, ChildrenOrderedAndDisjoint) {
  ZId root;
  uint64_t prev_end = 0;
  for (int q = 0; q < 4; ++q) {
    const ZId c = root.Child(q);
    EXPECT_EQ(c.RangeBegin(), prev_end);
    prev_end = c.RangeEnd();
  }
  EXPECT_EQ(prev_end, root.RangeEnd());
}

TEST(ZId, ContainsIsPrefixRelation) {
  ZId root;
  const ZId a = root.Child(2);
  const ZId b = a.Child(1);
  EXPECT_TRUE(root.Contains(a));
  EXPECT_TRUE(a.Contains(b));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_FALSE(root.Child(1).Contains(b));
}

TEST(MortonKey, CornersMapToExtremes) {
  const Rect w = Rect::Of(0, 0, 100, 100);
  EXPECT_EQ(MortonKey(w, {0, 0}), 0u);
  // The top-right corner hits the maximal grid cell.
  const uint64_t max_key = MortonKey(w, {100, 100});
  EXPECT_EQ(max_key, (uint64_t{1} << (2 * kMaxZDepth)) - 1);
}

TEST(MortonKey, AgreesWithQuadrantDescent) {
  // The full-depth Morton key's top 2 bits must equal the quadrant index of
  // the point, recursively — i.e. bit interleaving == quadtree descent.
  const Rect w = Rect::Of(0, 0, 1024, 1024);
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.NextUniform(0, 1024), rng.NextUniform(0, 1024)};
    const uint64_t key = MortonKey(w, p);
    Rect r = w;
    for (int level = 0; level < 6; ++level) {
      const int q_from_key =
          static_cast<int>((key >> (2 * (kMaxZDepth - level - 1))) & 3);
      const int q_geom = r.QuadrantOf(p);
      ASSERT_EQ(q_from_key, q_geom) << "level " << level;
      r = r.Quadrant(q_geom);
    }
  }
}

TEST(CellRect, InverseOfDescent) {
  const Rect w = Rect::Of(0, 0, 64, 64);
  ZId id;
  id = id.Child(3).Child(0).Child(2);
  const Rect r = CellRect(w, id);
  // NE (32..64)² then SW then NW of that.
  EXPECT_EQ(r, Rect::Of(32, 40, 40, 48));
}

TEST(CellTree, RespectsCapacity) {
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  Rng rng(33);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)});
  }
  const CellTree tree(w, pts, 8);
  // Count points per located leaf: none may exceed β (points are distinct
  // with probability 1, so max depth never binds here).
  std::vector<ZId> ids;
  for (const Point& p : pts) ids.push_back(tree.Locate(p));
  std::sort(ids.begin(), ids.end());
  size_t run = 1;
  for (size_t i = 1; i < ids.size(); ++i) {
    run = (ids[i] == ids[i - 1]) ? run + 1 : 1;
    EXPECT_LE(run, 8u);
  }
}

TEST(CellTree, LocateReturnsCellContainingPoint) {
  const Rect w = Rect::Of(0, 0, 512, 512);
  Rng rng(35);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.NextUniform(0, 512), rng.NextUniform(0, 512)});
  }
  const CellTree tree(w, pts, 4);
  for (const Point& p : pts) {
    const ZId id = tree.Locate(p);
    EXPECT_TRUE(CellRect(w, id).Contains(p));
  }
}

TEST(CellTree, CoverIntersectingIsSoundAndSorted) {
  const Rect w = Rect::Of(0, 0, 512, 512);
  Rng rng(37);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.NextUniform(0, 512), rng.NextUniform(0, 512)});
  }
  const CellTree tree(w, pts, 4);
  const Rect query = Rect::Of(100, 100, 220, 180);
  const std::vector<ZId> cover = tree.CoverIntersecting(query);
  // Sorted ascending by key.
  for (size_t i = 1; i < cover.size(); ++i) {
    EXPECT_LT(cover[i - 1].key, cover[i].key);
  }
  // Sound: every point inside the query locates to a covered cell.
  for (const Point& p : pts) {
    if (!query.Contains(p)) continue;
    const ZId leaf = tree.Locate(p);
    EXPECT_TRUE(std::find(cover.begin(), cover.end(), leaf) != cover.end());
  }
  // Tight: every covered cell really intersects the query.
  for (const ZId& id : cover) {
    EXPECT_TRUE(CellRect(w, id).Intersects(query));
  }
}

TEST(CellTree, CoverRangesMergesAdjacency) {
  const Rect w = Rect::Of(0, 0, 512, 512);
  std::vector<Point> pts;  // empty → single root leaf
  const CellTree tree(w, pts, 4);
  const ZKeyRanges ranges = tree.CoverRanges(Rect::Of(0, 0, 512, 512));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[0].second, uint64_t{1} << (2 * kMaxZDepth));
}

TEST(CellTree, CoverWithExpansionFindsNearbyCells) {
  const Rect w = Rect::Of(0, 0, 100, 100);
  std::vector<Point> pts;
  Rng rng(39);
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.NextUniform(0, 100), rng.NextUniform(0, 100)});
  }
  const CellTree tree(w, pts, 4);
  const Rect tiny = Rect::Of(50, 50, 50.1, 50.1);
  const auto plain = tree.CoverIntersecting(tiny, 0.0);
  const auto expanded = tree.CoverIntersecting(tiny, 10.0);
  EXPECT_GE(expanded.size(), plain.size());
}

TEST(RangesContain, BinarySearchSemantics) {
  const ZKeyRanges ranges = {{10, 20}, {30, 40}, {40, 50}};
  EXPECT_TRUE(RangesContain(ranges, 10));
  EXPECT_TRUE(RangesContain(ranges, 19));
  EXPECT_FALSE(RangesContain(ranges, 20));
  EXPECT_FALSE(RangesContain(ranges, 25));
  EXPECT_TRUE(RangesContain(ranges, 30));
  EXPECT_TRUE(RangesContain(ranges, 49));
  EXPECT_FALSE(RangesContain(ranges, 50));
  EXPECT_FALSE(RangesContain(ranges, 5));
  EXPECT_FALSE(RangesContain({}, 5));
}

TEST(CellTree, CorridorCoverIsSound) {
  // Every point within ψ of some stop must locate into a covered range.
  const Rect w = Rect::Of(0, 0, 10000, 10000);
  Rng rng(41);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.NextUniform(0, 10000), rng.NextUniform(0, 10000)});
  }
  const CellTree tree(w, pts, 8);
  // A diagonal route of stops.
  std::vector<Point> stops;
  for (int i = 0; i < 20; ++i) {
    stops.push_back({500.0 * i, 500.0 * i});
  }
  const double psi = 250.0;
  const ZKeyRanges cover = tree.CoverRangesNearStops(stops, psi);
  for (const Point& p : pts) {
    if (WithinPsiOfAny(p, stops, psi)) {
      EXPECT_TRUE(RangesContain(cover, tree.Locate(p).RangeBegin()))
          << p.x << "," << p.y;
    }
  }
}

TEST(CellTree, CorridorCoverTighterThanBoundingBox) {
  // For a long thin route, the corridor cover must be much smaller than the
  // cover of the route's ψ-expanded bounding box.
  const Rect w = Rect::Of(0, 0, 100000, 100000);
  Rng rng(43);
  std::vector<Point> pts;
  for (int i = 0; i < 5000; ++i) {
    pts.push_back({rng.NextUniform(0, 100000), rng.NextUniform(0, 100000)});
  }
  const CellTree tree(w, pts, 8);
  std::vector<Point> stops;
  for (int i = 0; i < 50; ++i) {
    stops.push_back({2000.0 * i, 2000.0 * i});  // 100 km diagonal
  }
  const double psi = 300.0;
  auto total_keys = [](const ZKeyRanges& rs) {
    unsigned long long total = 0;
    for (const auto& [b, e] : rs) total += e - b;
    return total;
  };
  const auto corridor =
      total_keys(tree.CoverRangesNearStops(stops, psi));
  const auto box = total_keys(
      tree.CoverRanges(Rect::BoundingBox(stops).Expanded(psi)));
  EXPECT_LT(corridor, box / 4) << "corridor cover not tighter";
}

TEST(CellTree, CorridorCoverEmptyForFarStops) {
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  std::vector<Point> pts = {{500, 500}};
  const CellTree tree(w, pts, 4);
  const std::vector<Point> stops = {{90000, 90000}};
  EXPECT_TRUE(tree.CoverRangesNearStops(stops, 50.0).empty());
  EXPECT_TRUE(tree.CoverRangesNearStops({}, 50.0).empty());
}

TEST(CellTree, DuplicatePointsTerminateAtMaxDepth) {
  const Rect w = Rect::Of(0, 0, 100, 100);
  // 20 identical points cannot be separated: the build must terminate and
  // place them all in one max-depth (or root) leaf.
  std::vector<Point> pts(20, Point{42.0, 17.0});
  const CellTree tree(w, pts, 4);
  const ZId id = tree.Locate(pts[0]);
  EXPECT_EQ(id.depth, kMaxZDepth);
}

}  // namespace
}  // namespace tq
