// Dynamic maintenance (§III-C): a tree maintained by Insert/Remove must
// answer exactly like a tree bulk-built on the final data.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/eval_service.h"
#include "test_util.h"

namespace tq {
namespace {

void ExpectSameAnswers(TQTree* a, TQTree* b, const TrajectorySet& facs,
                       const ServiceEvaluator& eval, const char* what) {
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), eval.model().psi);
    EXPECT_NEAR(EvaluateServiceTQ(a, eval, grid),
                EvaluateServiceTQ(b, eval, grid), 1e-9)
        << what << " facility " << f;
  }
}

TEST(Updates, IncrementalInsertMatchesBulkBuild) {
  Rng rng(801);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 600, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);

  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  // Bulk tree over everything.
  TQTree bulk(&users, opt);
  // Incremental tree: TQTree bulk-builds over the set it is given, so build
  // over the same set minus the second half by removing, then re-insert.
  TQTree incremental(&users, opt);
  for (uint32_t u = 300; u < 600; ++u) {
    ASSERT_TRUE(incremental.Remove(u));
  }
  EXPECT_EQ(incremental.num_units(), 300u);
  for (uint32_t u = 300; u < 600; ++u) incremental.Insert(u);
  EXPECT_EQ(incremental.num_units(), 600u);

  ExpectSameAnswers(&bulk, &incremental, facs, eval, "insert");
}

TEST(Updates, RemoveMatchesTreeWithoutThem) {
  Rng rng(803);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  TrajectorySet all = testing::RandomUsers(&rng, 400, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);

  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  TQTree pruned(&all, opt);
  // Remove every third trajectory.
  for (uint32_t u = 0; u < all.size(); u += 3) {
    ASSERT_TRUE(pruned.Remove(u));
  }
  const ServiceEvaluator eval(&all, model);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    // Oracle over the survivors only.
    double expected = 0.0;
    for (uint32_t u = 0; u < all.size(); ++u) {
      if (u % 3 == 0) continue;
      expected +=
          testing::BruteForceService(all, u, facs.points(f), model);
    }
    EXPECT_NEAR(EvaluateServiceTQ(&pruned, eval, grid), expected, 1e-6);
  }
}

TEST(Updates, RemoveOfUnknownReturnsFalse) {
  Rng rng(805);
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  const TrajectorySet users = testing::RandomUsers(&rng, 20, 2, 2, w);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(50);
  TQTree tree(&users, opt);
  ASSERT_TRUE(tree.Remove(5));
  EXPECT_FALSE(tree.Remove(5));  // already gone
}

TEST(Updates, SubBookkeepingSurvivesChurn) {
  Rng rng(807);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 2, w);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = ServiceModel::Endpoints(100);
  TQTree tree(&users, opt);
  // Churn: remove random trajectories, re-insert them, repeatedly.
  std::vector<bool> present(users.size(), true);
  for (int round = 0; round < 500; ++round) {
    const auto u = static_cast<uint32_t>(rng.NextBelow(users.size()));
    if (present[u]) {
      ASSERT_TRUE(tree.Remove(u));
    } else {
      tree.Insert(u);
    }
    present[u] = !present[u];
  }
  // sub consistency: root sub equals number of present trajectories (each
  // whole 2-point unit contributes exactly 1 under the endpoints model).
  size_t live = 0;
  for (const bool p : present) live += p;
  EXPECT_NEAR(tree.RootUpperBound(), static_cast<double>(live), 1e-9);
  EXPECT_EQ(tree.num_units(), live);
}

TEST(Updates, SegmentedInsertRemoveRoundTrip) {
  Rng rng(809);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 150, 3, 7, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 8, w);
  const ServiceModel model = ServiceModel::PointCount(200.0);
  const ServiceEvaluator eval(&users, model);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.mode = TrajMode::kSegmented;
  opt.model = model;
  TQTree reference(&users, opt);
  TQTree churned(&users, opt);
  for (uint32_t u = 0; u < users.size(); u += 2) {
    ASSERT_TRUE(churned.Remove(u));
  }
  for (uint32_t u = 0; u < users.size(); u += 2) churned.Insert(u);
  ExpectSameAnswers(&reference, &churned, facs, eval, "segmented churn");
}

TEST(Updates, ZIndexRebuildsAfterUpdates) {
  Rng rng(811);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.variant = IndexVariant::kZOrder;
  opt.model = model;
  TQTree tree(&users, opt);
  // Query, mutate, query again: the z-index must reflect the removal.
  const StopGrid grid(facs.points(0), model.psi);
  const double before = EvaluateServiceTQ(&tree, eval, grid);
  // Remove every user the facility fully serves.
  std::vector<uint32_t> served;
  for (uint32_t u = 0; u < users.size(); ++u) {
    if (testing::BruteForceService(users, u, facs.points(0), model) > 0.0) {
      served.push_back(u);
    }
  }
  for (const uint32_t u : served) ASSERT_TRUE(tree.Remove(u));
  const double after = EvaluateServiceTQ(&tree, eval, grid);
  EXPECT_NEAR(after, 0.0, 1e-9);
  EXPECT_NEAR(before, static_cast<double>(served.size()), 1e-9);
}

}  // namespace
}  // namespace tq
