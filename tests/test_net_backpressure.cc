// Adversarial-client tests for the net front-end's production hardening
// (src/net/): backpressure watermarks, admission-control load shedding, and
// standing subscription queries.
//
//   * A pipelining client that NEVER reads must not grow server memory
//     without bound: the per-connection outbox gauge stays bounded while
//     megabytes of responses are owed, the connection's reads pause at the
//     high watermark (net_paused_connections), and draining resumes it —
//     every frame still gets its answer.
//   * A stalled connection must not starve the others: a second client's
//     round-trips keep completing while the first is paused.
//   * Overload sheds with an IN-PROTOCOL kOverloaded answer (net_shed),
//     never an OOM, a hang, or a dropped frame — and the stats frame stays
//     answerable throughout, so overload is observable.
//   * Standing queries push results bit-identical to re-issuing the same
//     query fresh; publishes that change nothing push nothing (only
//     subs_skipped moves); slow consumers lose pushes but never ordering —
//     the per-subscription epoch sequence exposes every gap.
//
// Run under -fsanitize=thread (cmake -DTQ_SANITIZE=thread) to check the
// loop-thread / pool-callback / subscription-registry handoffs; CI does,
// and under ASan via the ctest sweep.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "datagen/presets.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/remote_shard_set.h"
#include "runtime/sharded_engine.h"
#include "test_util.h"

namespace tq {
namespace {

using net::FrameAssembler;
using net::MessageType;
using net::NetClient;
using net::NetRequest;
using net::NetResponse;
using net::NetServer;
using net::NetServerOptions;
using runtime::MetricsView;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;

ShardedEngineOptions EngineOptions(size_t shards, size_t cache = 2048,
                                   size_t threads = 4) {
  ShardedEngineOptions so;
  so.num_shards = shards;
  so.num_threads = threads;
  so.cache_capacity = cache;
  so.tree.beta = 16;
  // Integer-valued model: pushed and fresh answers must match bit for bit.
  so.tree.model = ServiceModel::PointCount(200.0, Normalization::kNone);
  return so;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 10000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

int RawConnect(uint16_t port, int rcvbuf_bytes = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf_bytes > 0) {
    // Before connect(), so the shrunken window is what gets advertised —
    // the server's sends then hit EAGAIN (and its watermarks) sooner.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads decoded response frames from `fd` until `want` frames arrived or a
// recv timeout/EOF; malformed frames fail the count (caller asserts size).
std::vector<NetResponse> ReadFrames(int fd, size_t want, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::vector<NetResponse> out;
  FrameAssembler frames;
  char buf[64 << 10];
  while (out.size() < want) {
    std::string payload;
    if (frames.Next(&payload) == FrameAssembler::Result::kFrame) {
      NetResponse r;
      if (DecodeResponse(payload, &r).ok()) out.push_back(std::move(r));
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout or EOF
    frames.Feed(buf, static_cast<size_t>(n));
  }
  return out;
}

// One big-batch sum request frame (identical repeated facility): ~2 KiB of
// request buys ~4.6 KiB of response, so a pipelined burst owes the server
// far more output than it received input — the adversarial shape.
std::string BigSumFrame(size_t batch) {
  std::string wire;
  EncodeRequest(NetRequest::Sum(std::vector<FacilityId>(batch, 0)), &wire);
  return wire;
}

// Blocking firehose writer on its own thread — a client that pipelines as
// fast as the kernel accepts and never touches its receive path. The
// destructor unsticks a still-blocked send with shutdown() so a failing
// assertion mid-test cannot hang on join.
class BurstSender {
 public:
  BurstSender(int fd, const std::string& bytes) : fd_(fd) {
    thread_ = std::thread([this, &bytes] {
      size_t off = 0;
      while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          return;
        }
        off += static_cast<size_t>(n);
      }
      sent_all_.store(true);
    });
  }
  ~BurstSender() {
    if (thread_.joinable()) {
      ::shutdown(fd_, SHUT_RDWR);
      thread_.join();
    }
  }
  void Join() { thread_.join(); }
  bool sent_all() const { return sent_all_.load(); }

 private:
  int fd_;
  std::thread thread_;
  std::atomic<bool> sent_all_{false};
};

// Waits until the outbox gauge stops moving (already-read frames keep
// completing through the pool for a while after the pause lands), then
// returns the settled value.
uint64_t SettledOutboxGauge(ShardedEngine* engine) {
  uint64_t gauge = engine->metrics().Read().net_outbox_bytes;
  for (int i = 0; i < 40; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const uint64_t now = engine->metrics().Read().net_outbox_bytes;
    if (now == gauge) return gauge;
    gauge = now;
  }
  return gauge;
}

// ------------------------------------------------- backpressure watermarks

// THE boundedness check: a client pipelines ~9 MB worth of responses and
// reads NOTHING until the very end. The server must pause the connection at
// the high watermark instead of buffering it all (outbox gauge stays far
// below the owed bytes and stops growing), then resume on drain and answer
// every single frame.
TEST(NetBackpressure, NeverReadingPipelinerIsBoundedPausedThenResumed) {
  const TrajectorySet users = presets::NyfCheckins(1000);
  const TrajectorySet routes = presets::NyBusRoutes(8, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServerOptions options;
  options.outbox_high_bytes = 32u << 10;
  options.outbox_low_bytes = 8u << 10;
  // Pin the kernel send buffer: with the autotuned default the kernel
  // absorbs multiple MB before the first EAGAIN, so how fast the pause
  // lands depends on response-production speed — too slow under TSan.
  options.sndbuf_bytes = 32 << 10;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kFrames = 2000;  // ≈9 MB of owed responses
  constexpr size_t kBatch = 512;    // response ≈4.6 KiB per frame
  const std::string one = BigSumFrame(kBatch);
  std::string burst;
  burst.reserve(one.size() * kFrames);
  for (size_t i = 0; i < kFrames; ++i) burst += one;

  const int fd = RawConnect(server.port(), /*rcvbuf_bytes=*/8 << 10);
  ASSERT_GE(fd, 0);
  BurstSender sender(fd, burst);

  // The connection must hit the high watermark and pause.
  ASSERT_TRUE(WaitFor([&] {
    return engine.metrics().Read().net_paused_connections >= 1;
  })) << "connection never paused";

  // Bounded: wait for the staged-bytes gauge to settle, then check it is
  // nowhere near the ~9 MB owed. (The bound is the watermark plus the
  // responses for whatever the loop had read before the pause landed — a
  // couple hundred KB — asserted here with generous margin.)
  const uint64_t gauge = SettledOutboxGauge(&engine);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(engine.metrics().Read().net_outbox_bytes, gauge)
      << "outbox still growing while paused";
  EXPECT_LE(gauge, 2u << 20) << "outbox not bounded by the watermarks";

  // Drain: the pause must lift (low watermark) and every pipelined frame
  // must still be answered, in order, well-formed.
  const std::vector<NetResponse> responses =
      ReadFrames(fd, kFrames, /*timeout_ms=*/5000);
  sender.Join();
  EXPECT_TRUE(sender.sent_all());
  ASSERT_EQ(responses.size(), kFrames);
  for (const NetResponse& r : responses) {
    ASSERT_EQ(r.type, MessageType::kSum);
    ASSERT_TRUE(r.status.ok());
    ASSERT_EQ(r.sums.size(), kBatch);
  }
  // Everything delivered: the gauge returns to zero.
  EXPECT_TRUE(
      WaitFor([&] { return engine.metrics().Read().net_outbox_bytes == 0; }));
  EXPECT_GE(engine.metrics().Read().net_paused_connections, 1u);
  ::close(fd);
  server.Stop();
}

// Fairness: while one connection sits paused at its watermark, a second
// client's round-trips must keep completing promptly — pausing is per
// connection, never a loop-wide stall.
TEST(NetBackpressure, PausedConnectionDoesNotStarveOthers) {
  const TrajectorySet users = presets::NyfCheckins(800);
  const TrajectorySet routes = presets::NyBusRoutes(8, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServerOptions options;
  options.outbox_high_bytes = 32u << 10;
  options.outbox_low_bytes = 8u << 10;
  options.sndbuf_bytes = 32 << 10;  // deterministic EAGAIN, as above
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Big enough that the owed responses overflow the pinned kernel send
  // buffer — the pause only triggers once writes actually hit EAGAIN.
  constexpr size_t kFrames = 2000;
  constexpr size_t kBatch = 512;
  const std::string one = BigSumFrame(kBatch);
  std::string burst;
  burst.reserve(one.size() * kFrames);
  for (size_t i = 0; i < kFrames; ++i) burst += one;
  const int fd = RawConnect(server.port(), /*rcvbuf_bytes=*/8 << 10);
  ASSERT_GE(fd, 0);
  BurstSender sender(fd, burst);
  ASSERT_TRUE(WaitFor([&] {
    return engine.metrics().Read().net_paused_connections >= 1;
  }));

  // 50 sequential round-trips on a fresh connection while the firehose
  // connection is stalled; a per-call timeout turns starvation into a
  // visible failure instead of a test hang.
  NetClient other;
  other.set_timeout_ms(2000);
  ASSERT_TRUE(other.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 50; ++i) {
    NetResponse response;
    ASSERT_TRUE(other.Sum({0, 1, 2}, &response).ok()) << "round-trip " << i;
    ASSERT_TRUE(response.status.ok());
    ASSERT_EQ(response.sums.size(), 3u);
  }

  const std::vector<NetResponse> responses =
      ReadFrames(fd, kFrames, /*timeout_ms=*/5000);
  sender.Join();
  EXPECT_EQ(responses.size(), kFrames);
  ::close(fd);
  server.Stop();
}

// --------------------------------------------------- admission control

// Overload: with max_queued armed and slow uncached queries on one pool
// thread, a pipelined burst must split into served answers plus in-protocol
// kOverloaded answers — every frame answered, nothing dropped, nothing
// hung, net_shed matching exactly — and a stats scrape must still answer
// mid-overload (inline frames are never shed).
TEST(NetBackpressure, OverloadShedsWithInProtocolAnswers) {
  const TrajectorySet users = presets::NyfCheckins(4000);
  const TrajectorySet routes = presets::NyBusRoutes(16, 10);
  // One pool thread + no cache: every top-k does real multi-shard work, so
  // the queue genuinely backs up behind the first few.
  ShardedEngine engine(users, routes,
                       EngineOptions(4, /*cache=*/0, /*threads=*/1));
  NetServerOptions options;
  options.max_queued = 4;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  constexpr size_t kFrames = 120;
  for (size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(client.Send(NetRequest::TopK({8})).ok());
  }
  ASSERT_TRUE(client.Flush().ok());

  // Mid-burst observability: a second connection's stats scrape answers
  // while the engine is saturated.
  NetClient scraper;
  scraper.set_timeout_ms(5000);
  ASSERT_TRUE(scraper.Connect("127.0.0.1", server.port()).ok());
  NetResponse stats;
  ASSERT_TRUE(scraper.Stats(0, &stats).ok());
  ASSERT_TRUE(stats.status.ok());

  size_t served = 0, shed = 0;
  for (size_t i = 0; i < kFrames; ++i) {
    NetResponse response;
    ASSERT_TRUE(client.Receive(&response).ok()) << "frame " << i;
    ASSERT_EQ(response.type, MessageType::kTopK);
    if (response.status.ok()) {
      ++served;
      ASSERT_EQ(response.topks.size(), 1u);
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kOverloaded)
          << response.status.ToString();
      EXPECT_NE(response.status.message().find("back off"),
                std::string::npos);
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, kFrames);
  EXPECT_GE(served, 1u) << "admission control shed everything";
  EXPECT_GE(shed, 1u) << "no overload observed — tighten the test";
  const MetricsView m = engine.metrics().Read();
  EXPECT_EQ(m.net_shed, shed);

  // The shed counter is scrape-visible (what the CI overload gate reads).
  ASSERT_TRUE(scraper.Stats(0, &stats).ok());
  uint64_t scraped_shed = 0;
  for (const auto& [name, value] : stats.stats.counters) {
    if (name == "net_shed") scraped_shed = value;
  }
  EXPECT_EQ(scraped_shed, shed);
  server.Stop();
}

// ------------------------------------------------- standing subscriptions

// THE subscription acceptance check: random publish batches against a mix
// of standing sum and top-k queries; once quiesced, each subscription's
// latest push must equal re-issuing the same query fresh, BIT for BIT, and
// no epoch gaps appear at default watermarks.
TEST(NetBackpressure, SubscriptionPushesMatchFreshQueriesBitIdentically) {
  const TrajectorySet users = presets::NyfCheckins(1000);
  const TrajectorySet routes = presets::NyBusRoutes(10, 8);
  ShardedEngine engine(users, routes, EngineOptions(4));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  NetClient sub;
  ASSERT_TRUE(sub.Connect("127.0.0.1", server.port()).ok());
  struct Standing {
    net::SubscriptionKind kind;
    FacilityId facility;
    uint32_t k;
  };
  std::map<uint64_t, Standing> standing;
  NetResponse response;
  for (FacilityId f = 0; f < 5; ++f) {
    ASSERT_TRUE(sub.SubscribeSum(f, &response).ok());
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    standing[response.sub_id] = {net::SubscriptionKind::kSum, f, 0};
  }
  for (const uint32_t k : {3u, 8u}) {
    ASSERT_TRUE(sub.SubscribeTopK(k, &response).ok());
    ASSERT_TRUE(response.status.ok());
    standing[response.sub_id] = {net::SubscriptionKind::kTopK, 0, k};
  }
  ASSERT_EQ(standing.size(), 7u);
  EXPECT_EQ(server.active_subscriptions(), 7u);

  // Random churn through a second connection: inserts from the preset pool
  // plus removes of previously assigned ids.
  NetClient publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  Rng rng(1234);
  std::vector<uint32_t> live_ids;
  for (int round = 0; round < 12; ++round) {
    std::vector<std::vector<Point>> inserts;
    const size_t n_ins = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < n_ins; ++i) {
      const auto pts =
          users.points(static_cast<uint32_t>(rng.NextBelow(users.size())));
      inserts.emplace_back(pts.begin(), pts.end());
    }
    std::vector<uint32_t> removes;
    if (!live_ids.empty() && rng.NextBelow(2) == 0) {
      removes.push_back(live_ids.back());
      live_ids.pop_back();
    }
    ASSERT_TRUE(publisher.Update(inserts, removes, &response).ok());
    ASSERT_TRUE(response.status.ok());
    for (const uint32_t id : response.assigned_ids) live_ids.push_back(id);
  }

  // Quiesce: evaluations and pushes stop moving once the last publish's
  // coalesced re-evaluations settle.
  uint64_t evaluated = 0, pushed = 0;
  ASSERT_TRUE(WaitFor([&] {
    const MetricsView m = engine.metrics().Read();
    const bool stable =
        m.subs_evaluated == evaluated && m.subs_pushed == pushed;
    evaluated = m.subs_evaluated;
    pushed = m.subs_pushed;
    return stable && pushed != 0;
  }));

  // Drain every push; remember the latest per subscription.
  sub.set_timeout_ms(300);
  std::map<uint64_t, NetResponse> latest;
  size_t received = 0;
  NetResponse push;
  while (sub.ReceivePush(&push).ok()) {
    ASSERT_EQ(push.type, MessageType::kPush);
    ASSERT_EQ(standing.count(push.sub_id), 1u) << "push for unknown sub";
    ++received;
    latest[push.sub_id] = push;
  }
  EXPECT_EQ(received, engine.metrics().Read().subs_pushed);
  EXPECT_EQ(sub.push_gaps(), 0u) << "dropped pushes at default watermarks";
  ASSERT_EQ(latest.size(), standing.size()) << "a subscription never pushed";

  // Bit-identity: the latest push equals the same query issued fresh.
  sub.set_timeout_ms(5000);
  for (const auto& [id, spec] : standing) {
    const NetResponse& last = latest[id];
    EXPECT_EQ(last.push_epoch, sub.last_push_epoch(id));
    if (spec.kind == net::SubscriptionKind::kSum) {
      ASSERT_TRUE(sub.Sum({spec.facility}, &response).ok());
      ASSERT_TRUE(response.status.ok());
      ASSERT_EQ(last.push_sum.code, StatusCode::kOk);
      EXPECT_EQ(last.push_sum.value, response.sums[0].value)
          << "sum sub " << id << " facility " << spec.facility;
    } else {
      ASSERT_TRUE(sub.TopK({spec.k}, &response).ok());
      ASSERT_TRUE(response.status.ok());
      ASSERT_EQ(last.push_topk.code, StatusCode::kOk);
      const auto& want = response.topks[0].ranked;
      ASSERT_EQ(last.push_topk.ranked.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(last.push_topk.ranked[i].id, want[i].id);
        EXPECT_EQ(last.push_topk.ranked[i].value, want[i].value);
      }
    }
  }
  EXPECT_EQ(engine.metrics().Read().subs_registered, 7u);
  server.Stop();
}

// A publish whose batch changes no shard (removes of unknown ids, or an
// empty batch) must re-evaluate NOTHING: only subs_skipped moves, no push
// appears. This is the generation-vector affect check doing its job.
TEST(NetBackpressure, NoOpPublishSkipsEverySubscription) {
  const TrajectorySet users = presets::NyfCheckins(600);
  const TrajectorySet routes = presets::NyBusRoutes(6, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  NetClient sub;
  ASSERT_TRUE(sub.Connect("127.0.0.1", server.port()).ok());
  NetResponse response;
  for (FacilityId f = 0; f < 3; ++f) {
    ASSERT_TRUE(sub.SubscribeSum(f, &response).ok());
    ASSERT_TRUE(response.status.ok());
  }
  // Let the three initial evaluations land before snapshotting counters.
  ASSERT_TRUE(
      WaitFor([&] { return engine.metrics().Read().subs_pushed == 3; }));
  const MetricsView before = engine.metrics().Read();
  EXPECT_EQ(before.subs_evaluated, 3u);

  // Remove an id that does not exist: the publish runs, no shard changes.
  NetClient publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(publisher.Update({}, {1000000}, &response).ok());
  ASSERT_TRUE(response.status.ok());
  // The skip accounting happens before the update ack is staged, so it is
  // already visible here.
  MetricsView after = engine.metrics().Read();
  EXPECT_EQ(after.subs_skipped, before.subs_skipped + 3);
  EXPECT_EQ(after.subs_evaluated, before.subs_evaluated);
  EXPECT_EQ(after.subs_pushed, before.subs_pushed);

  // And stays that way: no delayed evaluation sneaks in.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  after = engine.metrics().Read();
  EXPECT_EQ(after.subs_evaluated, before.subs_evaluated);
  EXPECT_EQ(after.subs_pushed, before.subs_pushed);

  // An entirely empty batch is not even a publish: nothing moves at all.
  ASSERT_TRUE(publisher.Update({}, {}, &response).ok());
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(engine.metrics().Read().subs_skipped, after.subs_skipped);

  // A real insert after all this still reaches every subscription.
  const auto pts = users.points(0);
  ASSERT_TRUE(publisher
                  .Update({std::vector<Point>(pts.begin(), pts.end())}, {},
                          &response)
                  .ok());
  ASSERT_TRUE(
      WaitFor([&] { return engine.metrics().Read().subs_pushed >= 6; }));
  server.Stop();
}

// Slow consumer: a subscriber that stops reading loses pushes once its
// outbox backlog hits the high watermark — but every lost push burns its
// epoch number, so the next delivered push exposes the gap. (Read-side
// pause cannot protect a push-based stream; the epoch tag is the client's
// resynchronization signal.)
TEST(NetBackpressure, DroppedPushesLeaveDetectableEpochGaps) {
  const TrajectorySet users = presets::NyfCheckins(800);
  const TrajectorySet routes = presets::NyBusRoutes(128, 6);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServerOptions options;
  options.outbox_high_bytes = 8u << 10;  // pushes ≈1.6 KiB: drops come fast
  options.outbox_low_bytes = 2u << 10;
  // Pin the kernel-side buffer: with an autotuned SO_SNDBUF the kernel
  // happily absorbs this whole test's push volume and the app backlog
  // never reaches the watermark.
  options.sndbuf_bytes = 4 << 10;
  NetServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Raw subscriber with a tiny receive window that never reads.
  const int fd = RawConnect(server.port(), /*rcvbuf_bytes=*/4 << 10);
  ASSERT_GE(fd, 0);
  std::string wire;
  EncodeRequest(NetRequest::SubscribeTopK(128), &wire);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  ASSERT_TRUE(
      WaitFor([&] { return engine.metrics().Read().subs_evaluated == 1; }));

  // Serialized publishes: wait out each evaluation so nothing coalesces —
  // every publish then consumes exactly one epoch (pushed or dropped).
  NetClient publisher;
  ASSERT_TRUE(publisher.Connect("127.0.0.1", server.port()).ok());
  constexpr uint64_t kPublishes = 120;
  NetResponse response;
  for (uint64_t i = 1; i <= kPublishes; ++i) {
    const auto pts =
        users.points(static_cast<uint32_t>(i % users.size()));
    ASSERT_TRUE(publisher
                    .Update({std::vector<Point>(pts.begin(), pts.end())},
                            {}, &response)
                    .ok());
    ASSERT_TRUE(response.status.ok());
    ASSERT_TRUE(WaitFor([&] {
      return engine.metrics().Read().subs_evaluated == 1 + i;
    })) << "publish " << i;
  }
  // Far more epochs were assigned than pushes staged: drops happened.
  const MetricsView mid = engine.metrics().Read();
  ASSERT_EQ(mid.subs_evaluated, 1 + kPublishes);
  ASSERT_LT(mid.subs_pushed, mid.subs_evaluated)
      << "no push was ever dropped — shrink the watermark";

  // Drain what was delivered. Drops interleave with deliveries (the kernel
  // buffer keeps draining bytes between publishes), so the received epochs
  // are strictly increasing but NOT contiguous — exactly what a client
  // resynchronizing from push_epoch would see.
  std::vector<NetResponse> frames = ReadFrames(
      fd, /*want=*/static_cast<size_t>(kPublishes) + 2, /*timeout_ms=*/500);
  uint64_t last_epoch = 0;
  size_t pushes_seen = 0, gaps = 0;
  for (const NetResponse& r : frames) {
    if (r.type != MessageType::kPush) {
      EXPECT_EQ(r.type, MessageType::kSubscribe);  // the subscribe ack
      continue;
    }
    ++pushes_seen;
    EXPECT_GT(r.push_epoch, last_epoch) << "pushes out of order";
    if (r.push_epoch != last_epoch + 1) ++gaps;  // the client's gap rule
    last_epoch = r.push_epoch;
  }
  ASSERT_GE(pushes_seen, 1u);
  EXPECT_LT(pushes_seen, static_cast<size_t>(1 + kPublishes))
      << "every assigned epoch was delivered — nothing dropped";

  // One more publish now that the backlog is drained: its push delivers
  // with the next fresh epoch. Whether the drops interleaved with the
  // drained stream or truncated its tail, fewer epochs arrived than were
  // assigned, so somewhere — possibly only at this final push — the
  // sequence must jump: the client-visible gap.
  const auto pts = users.points(7);
  ASSERT_TRUE(publisher
                  .Update({std::vector<Point>(pts.begin(), pts.end())}, {},
                          &response)
                  .ok());
  const std::vector<NetResponse> tail =
      ReadFrames(fd, /*want=*/1, /*timeout_ms=*/5000);
  ASSERT_EQ(tail.size(), 1u);
  ASSERT_EQ(tail[0].type, MessageType::kPush);
  EXPECT_EQ(tail[0].push_epoch, 2 + kPublishes);
  if (tail[0].push_epoch != last_epoch + 1) ++gaps;
  EXPECT_GE(gaps, 1u) << "drops left no visible epoch gap";
  ::close(fd);
  server.Stop();
}

// Subscription lifecycle accounting: per-connection ownership of ids,
// NotFound on double/foreign unsubscribe, and close-of-connection reaping
// every registration.
TEST(NetBackpressure, UnsubscribeAndConnectionCloseReapSubscriptions) {
  const TrajectorySet users = presets::NyfCheckins(400);
  const TrajectorySet routes = presets::NyBusRoutes(6, 8);
  ShardedEngine engine(users, routes, EngineOptions(2));
  NetServer server(&engine, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  NetClient a;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  NetResponse response;
  std::vector<uint64_t> ids;
  for (FacilityId f = 0; f < 3; ++f) {
    ASSERT_TRUE(a.SubscribeSum(f, &response).ok());
    ASSERT_TRUE(response.status.ok());
    ids.push_back(response.sub_id);
  }
  EXPECT_EQ(server.active_subscriptions(), 3u);
  // Out-of-catalog facility: rejected in-protocol, nothing registered.
  ASSERT_TRUE(a.SubscribeSum(9999, &response).ok());
  EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(server.active_subscriptions(), 3u);

  ASSERT_TRUE(a.Unsubscribe(ids[1], &response).ok());
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.sub_id, ids[1]);
  EXPECT_EQ(server.active_subscriptions(), 2u);
  // Double unsubscribe: NotFound, connection survives.
  ASSERT_TRUE(a.Unsubscribe(ids[1], &response).ok());
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);

  // Another connection cannot unsubscribe A's standing queries.
  NetClient b;
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(b.Unsubscribe(ids[0], &response).ok());
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(server.active_subscriptions(), 2u);

  // Closing the owning connection reaps the rest.
  a.Close();
  ASSERT_TRUE(WaitFor([&] { return server.active_subscriptions() == 0; }));

  // Publishes after the reap evaluate nothing and push nothing.
  const MetricsView before = engine.metrics().Read();
  const auto pts = users.points(0);
  ASSERT_TRUE(b.Update({std::vector<Point>(pts.begin(), pts.end())}, {},
                       &response)
                  .ok());
  ASSERT_TRUE(response.status.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const MetricsView after = engine.metrics().Read();
  EXPECT_EQ(after.subs_evaluated, before.subs_evaluated);
  EXPECT_EQ(after.subs_skipped, before.subs_skipped);
  EXPECT_EQ(after.subs_pushed, before.subs_pushed);
  ASSERT_TRUE(b.Sum({0}, &response).ok());
  EXPECT_TRUE(response.status.ok());
  server.Stop();
}

// ------------------------------------- coordinator worker-set persistence

// serve --coordinator --data-dir persists the verified worker set; the
// restart path reloads it without --workers (the PR-9 carry-forward). The
// file logic lives in RemoteShardSet so it is testable here; the CI
// distributed-smoke job restarts a real coordinator on top of it.
TEST(NetBackpressure, WorkerSetPersistsAndRecovers) {
  using runtime::RemoteShardSet;
  const std::string dir =
      ::testing::TempDir() + "tq_worker_set_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::remove((dir + "/workers.txt").c_str());

  std::vector<std::pair<std::string, uint16_t>> saved = {
      {"127.0.0.1", 7001}, {"10.1.2.3", 7002}, {"worker-c.local", 65535}};
  ASSERT_TRUE(RemoteShardSet::SaveWorkerSet(dir, saved).ok());
  std::vector<std::pair<std::string, uint16_t>> loaded;
  ASSERT_TRUE(RemoteShardSet::LoadWorkerSet(dir, &loaded).ok());
  EXPECT_EQ(loaded, saved);

  // Overwrite semantics: a re-save replaces, never appends.
  saved.pop_back();
  ASSERT_TRUE(RemoteShardSet::SaveWorkerSet(dir, saved).ok());
  loaded.clear();
  ASSERT_TRUE(RemoteShardSet::LoadWorkerSet(dir, &loaded).ok());
  EXPECT_EQ(loaded, saved);

  // Missing file is NotFound (the CLI falls through to "needs --workers").
  std::vector<std::pair<std::string, uint16_t>> none;
  const Status missing =
      RemoteShardSet::LoadWorkerSet(dir + "_nonexistent", &none);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_TRUE(none.empty());

  // A corrupt line is a loud IOError, not a silently skipped worker.
  std::FILE* f = std::fopen((dir + "/workers.txt").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("127.0.0.1:7001\nnot-an-endpoint\n", f);
  std::fclose(f);
  const Status corrupt = RemoteShardSet::LoadWorkerSet(dir, &none);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.code(), StatusCode::kNotFound);
  std::remove((dir + "/workers.txt").c_str());
}

}  // namespace
}  // namespace tq
