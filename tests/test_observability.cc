// Tests for the observability layer (src/runtime/histogram.h, trace.h,
// metrics.h): log-bucket math stays within its advertised relative error,
// percentiles and merges are exact over the bucket grid, overflow saturates
// instead of corrupting, the MetricsView JSON key set cannot drift from the
// counter declarations, spans record wait-free with bounded drop-counting,
// and the recent-trace ring survives concurrent writers and readers. Run
// under -fsanitize=thread (cmake -DTQ_SANITIZE=thread) to check the striped
// histogram and the ring's per-slot locking for races; CI does.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/histogram.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"
#include "test_util.h"

namespace tq::runtime {
namespace {

// ------------------------------------------------------------ histogram

TEST(Histogram, BucketsAreMonotoneAndSelfConsistent) {
  // Every bucket's lower bound must be where BucketFor sends it, and the
  // bounds must strictly increase — otherwise percentiles are meaningless.
  uint64_t prev = 0;
  for (size_t b = 0; b < kHistNumBuckets; ++b) {
    const uint64_t lo = HistBucketLowerBound(b);
    if (b > 0) {
      ASSERT_GT(lo, prev) << "bucket " << b;
      ASSERT_EQ(HistBucketFor(lo - 1), b - 1) << "bucket " << b;
    }
    ASSERT_EQ(HistBucketFor(lo), b) << "bucket " << b;
    prev = lo;
  }
}

TEST(Histogram, BucketRelativeErrorIsBounded) {
  // The log bucketing promises ≤ 12.5% relative error: a value lands in a
  // bucket whose midpoint is within width/2 ≤ v/8 of the value itself
  // (checked over three orders of magnitude of pseudo-random values).
  uint64_t v = 12345;
  for (int i = 0; i < 20000; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // LCG, full period
    const uint64_t ns = (v >> 20) % 4000000000ull;
    const size_t b = HistBucketFor(ns);
    if (b >= kHistOverflowBucket) continue;
    const uint64_t lo = HistBucketLowerBound(b);
    const uint64_t hi = lo + HistBucketWidth(b);
    ASSERT_GE(ns, lo);
    ASSERT_LT(ns, hi);
    if (ns >= 16) {
      // Midpoint error ≤ half a bucket width ≤ lo/8 ≤ ns/8.
      EXPECT_LE(HistBucketWidth(b), lo / 4) << "ns=" << ns;
    }
  }
}

TEST(Histogram, RecordsAndReportsExactSmallValues) {
  LatencyHistogram h;
  // Values below 16 ns land in exact unit buckets: percentile midpoints
  // reproduce them precisely.
  for (int i = 0; i < 100; ++i) h.Record(7);
  const HistogramSnapshot s = h.Read();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum_ns, 700u);
  EXPECT_EQ(s.Percentile(0.50), 7u);
  EXPECT_EQ(s.Percentile(0.99), 7u);
  EXPECT_EQ(s.MaxNs(), 8u);  // upper edge of the unit bucket [7, 8)
}

TEST(Histogram, PercentilesSplitAMixedDistribution) {
  LatencyHistogram h;
  // 90 fast samples at ~1us, 10 slow at ~50ms: p50 must sit on the fast
  // mode, p99 on the slow one, each within the 12.5% bucket error.
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(50000000);
  const HistogramSnapshot s = h.Read();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(static_cast<double>(s.Percentile(0.50)), 1000.0, 125.0);
  EXPECT_NEAR(static_cast<double>(s.Percentile(0.99)), 50000000.0,
              50000000.0 * 0.125);
  EXPECT_GE(s.MaxNs(), 50000000u);
}

TEST(Histogram, OverflowBucketSaturatesAtTheCap) {
  LatencyHistogram h;
  h.Record(UINT64_MAX);
  h.Record(uint64_t{1} << 45);
  const HistogramSnapshot s = h.Read();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[kHistOverflowBucket], 2u);
  // Overflow percentiles report the cap, not garbage midpoint arithmetic.
  constexpr uint64_t kCapNs = uint64_t{1} << kHistMaxOctave;
  EXPECT_EQ(s.Percentile(0.99), kCapNs);
  EXPECT_EQ(s.MaxNs(), kCapNs);
}

TEST(Histogram, MergeIsPointwiseAndCountPreserving) {
  LatencyHistogram a, b;
  for (int i = 0; i < 50; ++i) a.Record(500);
  for (int i = 0; i < 50; ++i) b.Record(2000000);
  HistogramSnapshot sa = a.Read();
  const HistogramSnapshot sb = b.Read();
  sa.Merge(sb);
  EXPECT_EQ(sa.count, 100u);
  EXPECT_EQ(sa.sum_ns, 50u * 500 + 50u * 2000000);
  EXPECT_NEAR(static_cast<double>(sa.Percentile(0.25)), 500.0, 500.0 * .125);
  EXPECT_NEAR(static_cast<double>(sa.Percentile(0.75)), 2000000.0,
              2000000.0 * .125);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  const HistogramSnapshot s = LatencyHistogram().Read();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Percentile(0.50), 0u);
  EXPECT_EQ(s.MaxNs(), 0u);
  EXPECT_EQ(s.MeanNs(), 0u);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  // The striped wait-free Record path: N threads hammer one histogram;
  // every sample must be visible in the merged read. TSan checks the
  // stripe handoff; the count checks the arithmetic.
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.Read();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
}

// -------------------------------------------------------------- metrics

TEST(Metrics, ToJsonContainsEveryCounterAndHistogramFamily) {
  // Drift guard: the JSON rendering, the ForEachCounter visitor, and the
  // struct fields are all generated from TQ_METRICS_COUNTERS, so every
  // visited name must appear as a key — and every op family must have a
  // histogram section. A counter added to the macro passes automatically;
  // one added by hand anywhere else fails here.
  MetricsRegistry registry;
  registry.AddQuery(false);
  registry.RecordLatency(OpFamily::kServiceQuery, 12345);
  const MetricsView view = registry.Read();
  const std::string json = view.ToJson();
  size_t counters = 0;
  view.ForEachCounter([&](const char* name, uint64_t) {
    ++counters;
    std::string key = "\"";
    key += name;
    key += "\":";
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << name;
  });
  EXPECT_GE(counters, 27u);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  for (size_t f = 0; f < kNumOpFamilies; ++f) {
    std::string key = "\"";
    key += OpFamilyName(static_cast<OpFamily>(f));
    key += "\":{";
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing histogram family " << key;
  }
  // Spot-check the recorded sample surfaced in the right family.
  EXPECT_EQ(view.op_histograms[static_cast<size_t>(OpFamily::kServiceQuery)]
                .count,
            1u);
  EXPECT_EQ(view.queries_total, 1u);
}

TEST(Metrics, LatencyRecordingGateDropsSamples) {
  MetricsRegistry registry;
  registry.set_latency_recording(false);
  registry.RecordLatency(OpFamily::kPublish, 999);
  EXPECT_EQ(registry.histogram(OpFamily::kPublish).Read().count, 0u);
  registry.set_latency_recording(true);
  registry.RecordLatency(OpFamily::kPublish, 999);
  EXPECT_EQ(registry.histogram(OpFamily::kPublish).Read().count, 1u);
}

// --------------------------------------------------------------- traces

TEST(Trace, SpansRecordAndRebaseRelativeToStart) {
  Tracer tracer;
  TraceContextPtr ctx = tracer.Start("topk", 8, 1000);
  ctx->AddSpan("queue_wait", 2, 1500, 2500);
  ctx->AddSpan("merge", -1, 2600, 3600);
  tracer.Finish(*ctx, 7);
  const std::vector<Trace> recent = tracer.Recent(4);
  ASSERT_EQ(recent.size(), 1u);
  const Trace& t = recent[0];
  EXPECT_EQ(t.op, "topk");
  EXPECT_EQ(t.detail, 8u);
  EXPECT_EQ(t.snapshot_version, 7u);
  ASSERT_EQ(t.spans.size(), 2u);
  // Finish sorts chronologically and re-bases to trace-relative offsets.
  EXPECT_EQ(t.spans[0].name, "queue_wait");
  EXPECT_EQ(t.spans[0].shard, 2);
  EXPECT_EQ(t.spans[0].start_ns, 500u);
  EXPECT_EQ(t.spans[0].end_ns, 1500u);
  EXPECT_EQ(t.spans[1].name, "merge");
  EXPECT_EQ(t.spans[1].shard, -1);
  EXPECT_EQ(t.spans[1].start_ns, 1600u);
  // JSON line carries the op and every span name.
  const std::string json = TraceToJson(t);
  EXPECT_NE(json.find("\"op\":\"topk\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"merge\""), std::string::npos);
}

TEST(Trace, OverBudgetSpansAreCountedNotRecorded) {
  TraceContext ctx("sum", 1);
  for (size_t i = 0; i < TraceContext::kMaxSpans + 10; ++i) {
    ctx.AddSpan("s", -1, i, i + 1);
  }
  EXPECT_EQ(ctx.num_spans(), TraceContext::kMaxSpans);
  EXPECT_EQ(ctx.dropped_spans(), 10u);
}

TEST(Trace, SlowLogFiresOnlyAtOrAboveThreshold) {
  Tracer tracer;
  std::vector<std::string> lines;
  tracer.SetSlowLogSink([&lines](const std::string& l) {
    lines.push_back(l);
  });
  tracer.set_slow_threshold_ns(1000000);  // 1 ms
  {
    TraceContext fast("sum", 1, NowNs());
    tracer.Finish(fast, 1);  // ~0 ns total: below threshold
  }
  EXPECT_TRUE(lines.empty());
  {
    TraceContext slow("topk", 8, NowNs() - 5000000);
    tracer.Finish(slow, 1);  // 5 ms total: logged
  }
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"op\":\"topk\""), std::string::npos);
  // Sentinel disables logging entirely.
  tracer.set_slow_threshold_ns(Tracer::kSlowLogDisabled);
  TraceContext slow2("topk", 8, NowNs() - 5000000);
  tracer.Finish(slow2, 1);
  EXPECT_EQ(lines.size(), 1u);
}

TEST(Trace, RingKeepsNewestAndBoundsRecent) {
  Tracer tracer(/*ring_size=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    TraceContextPtr ctx = tracer.Start("sum", i);
    tracer.Finish(*ctx, i);
  }
  EXPECT_EQ(tracer.finished(), 20u);
  const std::vector<Trace> recent = tracer.Recent(64);
  ASSERT_LE(recent.size(), 8u);
  ASSERT_FALSE(recent.empty());
  // Newest first; the oldest surviving entries are the most recent ring's.
  EXPECT_EQ(recent.front().detail, 19u);
  for (const Trace& t : recent) EXPECT_GE(t.detail, 12u);
  EXPECT_EQ(tracer.Recent(3).size(), 3u);
  EXPECT_TRUE(tracer.Recent(0).empty());
}

TEST(Trace, RingSurvivesConcurrentWritersAndReaders) {
  // The lock-free ring contract under contention: writer threads finish
  // traces (atomic cursor claim + per-slot try_lock, dropping on
  // contention) while reader threads snapshot Recent(). Nothing may tear
  // or race (TSan-checked); accounting must balance exactly.
  Tracer tracer(/*ring_size=*/16);
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      size_t seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (const Trace& t : tracer.Recent(16)) {
          // Touch the payload so TSan sees the read side.
          seen += t.spans.size() + (t.op == "w" ? 1 : 0);
          EXPECT_EQ(t.op, "w");
        }
      }
      (void)seen;
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, w]() {
      for (int i = 0; i < kPerWriter; ++i) {
        TraceContext ctx("w", static_cast<uint64_t>(w));
        ctx.AddSpan("span", w, ctx.start_ns(), ctx.start_ns() + 10);
        tracer.Finish(ctx, 1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(tracer.finished(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // Every finish either landed in a slot or was counted as dropped; with
  // 5000 attempts per slot the ring cannot plausibly end up empty.
  EXPECT_LE(tracer.ring_dropped(), tracer.finished());
  EXPECT_GE(tracer.Recent(16).size(), 1u);
}

}  // namespace
}  // namespace tq::runtime
