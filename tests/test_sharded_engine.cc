// Tests for the sharded scatter/gather runtime (src/runtime/sharded_engine):
// Z-order shard routing is a stable total partition, N-shard scatter/gather
// agrees bit-for-bit with the unsharded Engine and with the brute-force
// oracle (tie-breaks included), writers republish only the shards a batch
// touches, and a single-shard publish invalidates only that shard's result
// cache entries. Run under -fsanitize=thread (cmake -DTQ_SANITIZE=thread) to
// check the scatter/gather path for races; CI does.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/presets.h"
#include "runtime/engine.h"
#include "runtime/result_cache.h"
#include "runtime/sharded_engine.h"
#include "test_util.h"

namespace tq {
namespace {

using runtime::Engine;
using runtime::EngineOptions;
using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::ResultCache;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;
using runtime::ShardRouter;
using runtime::UpdateBatch;

// ----------------------------------------------------------- ResultCache

TEST(ResultCacheSharded, KeysWithDifferentShardsAreIndependent) {
  ResultCache cache(16, 2);
  const ResultCache::Key shard0{5, 0, 1, 0}, shard1{5, 0, 1, 1};
  cache.Put(shard0, 10.0);
  cache.Put(shard1, 20.0);
  double v = 0.0;
  ASSERT_TRUE(cache.Get(shard0, &v));
  EXPECT_DOUBLE_EQ(v, 10.0);
  ASSERT_TRUE(cache.Get(shard1, &v));
  EXPECT_DOUBLE_EQ(v, 20.0);
}

TEST(ResultCacheSharded, InvalidateShardBeforeDropsOnlyThatShard) {
  ResultCache cache(32, 4);
  // Two shards, generations 1 and 2 each.
  for (uint32_t shard = 0; shard < 2; ++shard) {
    for (uint64_t gen = 1; gen <= 2; ++gen) {
      cache.Put(ResultCache::Key{7, 0, gen, shard},
                static_cast<double>(10 * shard + gen));
    }
  }
  EXPECT_EQ(cache.InvalidateShardBefore(0, 2), 1u);  // shard 0 gen 1 only
  double v = 0.0;
  EXPECT_FALSE(cache.Get(ResultCache::Key{7, 0, 1, 0}, &v));
  EXPECT_TRUE(cache.Get(ResultCache::Key{7, 0, 2, 0}, &v));
  EXPECT_TRUE(cache.Get(ResultCache::Key{7, 0, 1, 1}, &v));
  EXPECT_TRUE(cache.Get(ResultCache::Key{7, 0, 2, 1}, &v));
}

// ----------------------------------------------------------- ShardRouter

TEST(ShardRouter, EveryUserLandsInExactlyOneShard) {
  Rng rng(11);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 5, w);
  for (const size_t n : {1u, 2u, 4u, 8u}) {
    const ShardRouter router(users, users.BoundingBox(), n);
    ASSERT_EQ(router.num_shards(), n);
    EXPECT_TRUE(
        std::is_sorted(router.splits().begin(), router.splits().end()));
    std::vector<size_t> counts(n, 0);
    for (uint32_t u = 0; u < users.size(); ++u) {
      const size_t shard = router.Route(users.points(u));
      ASSERT_LT(shard, n);
      ++counts[shard];
    }
    size_t total = 0;
    for (const size_t c : counts) total += c;
    EXPECT_EQ(total, users.size());
    // Equal-count quantile splits: no shard ends up pathologically empty on
    // a spread-out workload.
    if (n > 1) {
      for (const size_t c : counts) EXPECT_GT(c, 0u);
    }
  }
}

TEST(ShardRouter, RoutesKeysOutsideTheWorldRect) {
  Rng rng(13);
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 4, w);
  const ShardRouter router(users, w, 4);
  // MortonKey clamps out-of-world points, so routing stays total.
  const std::vector<Point> far{Point{1e9, -1e9}};
  EXPECT_LT(router.Route(far), 4u);
}

// --------------------------------------------------------- ShardedEngine

ShardedEngineOptions ShardedOptions(size_t shards, const ServiceModel& model,
                                    size_t threads = 4,
                                    size_t cache_capacity = 2048) {
  ShardedEngineOptions so;
  so.num_shards = shards;
  so.num_threads = threads;
  so.cache_capacity = cache_capacity;
  so.tree.beta = 16;
  so.tree.model = model;
  return so;
}

EngineOptions UnshardedOptions(const ServiceModel& model, size_t threads = 4,
                               size_t cache_capacity = 2048) {
  EngineOptions eo;
  eo.num_threads = threads;
  eo.cache_capacity = cache_capacity;
  eo.tree.beta = 16;
  eo.tree.model = model;
  return eo;
}

// The acceptance check: on the NYF preset, every shard count must reproduce
// the unsharded engine's service values and top-k lists BIT-IDENTICALLY.
// Integer-valued service models (raw point counts, endpoint counts) make the
// cross-shard sum exactly associative, so == on doubles is the right assert.
TEST(ShardedEngine, NyfPresetAgreesBitIdenticallyWithUnshardedEngine) {
  const TrajectorySet users = presets::NyfCheckins(1200);
  const TrajectorySet routes = presets::NyBusRoutes(12, 10);
  for (const ServiceModel& model :
       {ServiceModel::PointCount(200.0, Normalization::kNone),
        ServiceModel::Endpoints(200.0)}) {
    Engine reference(users, routes, UnshardedOptions(model));
    std::vector<QueryRequest> batch;
    for (uint32_t f = 0; f < routes.size(); ++f) {
      batch.push_back(QueryRequest::ServiceValue(f));
    }
    batch.push_back(QueryRequest::TopK(5));
    const std::vector<QueryResponse> expected = reference.RunBatch(batch);

    for (const size_t shards : {1u, 2u, 4u, 8u}) {
      ShardedEngine sharded(users, routes, ShardedOptions(shards, model));
      const std::vector<QueryResponse> got = sharded.RunBatch(batch);
      ASSERT_EQ(got.size(), expected.size());
      for (uint32_t f = 0; f < routes.size(); ++f) {
        // EXPECT_EQ on double is exact comparison — bit-identical modulo
        // +0/-0, which cannot arise from non-negative service sums.
        EXPECT_EQ(got[f].value, expected[f].value)
            << "shards=" << shards << " facility=" << f;
        EXPECT_NEAR(got[f].value,
                    testing::BruteForceSO(users, routes.points(f), model),
                    1e-9);
      }
      const QueryResponse& topk = got.back();
      const QueryResponse& topk_ref = expected.back();
      ASSERT_EQ(topk.ranked.size(), topk_ref.ranked.size())
          << "shards=" << shards;
      for (size_t i = 0; i < topk_ref.ranked.size(); ++i) {
        EXPECT_EQ(topk.ranked[i].id, topk_ref.ranked[i].id)
            << "shards=" << shards << " rank=" << i;
        EXPECT_EQ(topk.ranked[i].value, topk_ref.ranked[i].value)
            << "shards=" << shards << " rank=" << i;
      }
    }
  }
}

// Fractional models (the per-user normalized default) cannot promise bitwise
// sums across a different grouping, but shard counts must still agree with
// the oracle to float tolerance.
TEST(ShardedEngine, NormalizedModelAgreesWithOracleAtEveryShardCount) {
  Rng rng(21);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 400, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 8, w);
  const ServiceModel model = ServiceModel::PointCount(300.0);
  for (const size_t shards : {2u, 5u}) {
    ShardedEngine engine(users, facs, ShardedOptions(shards, model));
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const QueryResponse r =
          engine.Submit(QueryRequest::ServiceValue(f)).get();
      EXPECT_NEAR(r.value,
                  testing::BruteForceSO(users, facs.points(f), model), 1e-6);
    }
  }
}

// kMaxRRST tie-break: duplicated facilities have exactly equal values, and
// the gathered ranking must list them by ascending facility id — matching
// both the unsharded engine and the documented library order.
TEST(ShardedEngine, TopKTieBreaksByAscendingFacilityId) {
  Rng rng(31);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 5, w);
  TrajectorySet facs;
  const TrajectorySet base = testing::RandomFacilities(&rng, 4, 8, w);
  for (uint32_t f = 0; f < base.size(); ++f) {
    facs.Add(base.points(f));  // ids 0..3
  }
  for (uint32_t f = 0; f < base.size(); ++f) {
    facs.Add(base.points(f));  // ids 4..7: exact duplicates => exact ties
  }
  const ServiceModel model =
      ServiceModel::PointCount(300.0, Normalization::kNone);

  Engine reference(users, facs, UnshardedOptions(model));
  const QueryResponse expected =
      reference.Submit(QueryRequest::TopK(8)).get();
  ShardedEngine sharded(users, facs, ShardedOptions(4, model));
  const QueryResponse got = sharded.Submit(QueryRequest::TopK(8)).get();

  ASSERT_EQ(got.ranked.size(), 8u);
  ASSERT_EQ(expected.ranked.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(got.ranked[i].id, expected.ranked[i].id) << "rank " << i;
    EXPECT_EQ(got.ranked[i].value, expected.ranked[i].value) << "rank " << i;
  }
  for (size_t i = 0; i + 1 < 8; ++i) {
    // Duplicate pairs (f, f+4) tie exactly; the smaller id must come first.
    if (got.ranked[i].value == got.ranked[i + 1].value) {
      EXPECT_LT(got.ranked[i].id, got.ranked[i + 1].id);
    }
  }
}

TEST(ShardedEngine, RoutingAndBoundariesStableAcrossRepublish) {
  Rng rng(41);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 200, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 8, w);
  const ServiceModel model = ServiceModel::PointCount(300.0);
  ShardedEngine engine(users, facs, ShardedOptions(4, model));

  const std::vector<uint64_t> splits_before = engine.router().splits();
  std::vector<ShardedEngine::UserLocation> locs_before;
  for (uint32_t u = 0; u < users.size(); ++u) {
    locs_before.push_back(engine.LocateUser(u));
  }

  UpdateBatch batch;
  const TrajectorySet extra = testing::RandomUsers(&rng, 20, 2, 5, w);
  for (uint32_t t = 0; t < extra.size(); ++t) {
    const auto pts = extra.points(t);
    batch.inserts.emplace_back(pts.begin(), pts.end());
  }
  batch.removes = {0, 5};
  engine.ApplyUpdates(batch);

  // Split keys and existing users' shard assignments never move.
  EXPECT_EQ(engine.router().splits(), splits_before);
  for (uint32_t u = 0; u < users.size(); ++u) {
    const auto loc = engine.LocateUser(u);
    EXPECT_EQ(loc.shard, locs_before[u].shard) << "user " << u;
    EXPECT_EQ(loc.local_id, locs_before[u].local_id) << "user " << u;
  }
  // New users routed by the same frozen splits.
  for (uint32_t t = 0; t < extra.size(); ++t) {
    const auto loc = engine.LocateUser(
        static_cast<uint32_t>(users.size() + t));
    EXPECT_EQ(loc.shard, engine.router().Route(extra.points(t)));
  }
}

TEST(ShardedEngine, ApplyUpdatesRepublishesOnlyAffectedShards) {
  Rng rng(51);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 250, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 8, w);
  const ServiceModel model = ServiceModel::PointCount(300.0);
  ShardedEngine engine(users, facs, ShardedOptions(4, model));

  // Remove one user: exactly its shard gets a new generation.
  const uint32_t victim = 7;
  const uint32_t touched = engine.LocateUser(victim).shard;
  UpdateBatch batch;
  batch.removes = {victim};
  engine.ApplyUpdates(batch);

  const auto snap = engine.snapshot();
  EXPECT_EQ(snap->version, 2u);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(snap->shards[s]->generation, s == touched ? 2u : 1u)
        << "shard " << s;
  }
  const runtime::MetricsView m = engine.metrics().Read();
  EXPECT_EQ(m.shard_publishes, 4u + 1u);  // construction + one shard
  EXPECT_EQ(m.trajectories_removed, 1u);

  // Post-update values agree with the oracle over the surviving users.
  TrajectorySet active;
  for (uint32_t u = 0; u < users.size(); ++u) {
    if (u != victim) active.Add(users.points(u));
  }
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const QueryResponse r =
        engine.Submit(QueryRequest::ServiceValue(f)).get();
    EXPECT_EQ(r.snapshot_version, 2u);
    EXPECT_NEAR(r.value,
                testing::BruteForceSO(active, facs.points(f), model), 1e-6);
  }
}

// The cache acceptance check: after a single-shard publish, the untouched
// shards' entries must still hit — asserted through the hit/miss metrics.
TEST(ShardedEngine, SingleShardPublishKeepsOtherShardsCacheWarm) {
  Rng rng(61);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 8, w);
  const ServiceModel model = ServiceModel::PointCount(300.0);
  constexpr size_t kShards = 4;
  const size_t num_fac = facs.size();
  ShardedEngine engine(users, facs, ShardedOptions(kShards, model));

  std::vector<QueryRequest> all_facilities;
  for (uint32_t f = 0; f < num_fac; ++f) {
    all_facilities.push_back(QueryRequest::ServiceValue(f));
  }

  // Pass 1 fills the cache: one miss per (facility, shard).
  engine.RunBatch(all_facilities);
  // Pass 2 is fully warm: every response reports a whole-query cache hit.
  for (const QueryResponse& r : engine.RunBatch(all_facilities)) {
    EXPECT_TRUE(r.cache_hit);
  }
  runtime::MetricsView m = engine.metrics().Read();
  EXPECT_EQ(m.cache_misses, kShards * num_fac);
  EXPECT_EQ(m.cache_hits, kShards * num_fac);

  // Publish touching exactly one shard.
  const uint32_t touched = engine.LocateUser(0).shard;
  UpdateBatch batch;
  batch.removes = {0};
  engine.ApplyUpdates(batch);
  m = engine.metrics().Read();
  // Only the republished shard's (old-generation) entries were dropped.
  EXPECT_EQ(m.cache_invalidated, num_fac);

  // Pass 3: the touched shard re-misses once per facility; the other
  // kShards-1 shards answer from their still-valid generation-1 entries.
  TrajectorySet active;
  for (uint32_t u = 1; u < users.size(); ++u) active.Add(users.points(u));
  for (uint32_t f = 0; f < num_fac; ++f) {
    const QueryResponse r =
        engine.Submit(QueryRequest::ServiceValue(f)).get();
    EXPECT_FALSE(r.cache_hit);  // one shard of the scatter missed
    EXPECT_NEAR(r.value,
                testing::BruteForceSO(active, facs.points(f), model), 1e-6);
  }
  m = engine.metrics().Read();
  EXPECT_EQ(m.cache_misses, kShards * num_fac + num_fac);
  EXPECT_EQ(m.cache_hits, kShards * num_fac + (kShards - 1) * num_fac);
  (void)touched;
}

TEST(ShardedEngine, OutOfRangeFacilityReturnsErrorNotCrash) {
  Rng rng(71);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 60, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 3, 6, w);
  ShardedEngine engine(users, facs,
                       ShardedOptions(2, ServiceModel::PointCount(300.0)));
  const QueryResponse bad =
      engine.Submit(QueryRequest::ServiceValue(999)).get();
  EXPECT_FALSE(bad.status.ok());
  EXPECT_EQ(bad.status.code(), StatusCode::kOutOfRange);
  const QueryResponse good =
      engine.Submit(QueryRequest::ServiceValue(0)).get();
  EXPECT_TRUE(good.status.ok());
}

// More shards than users: some shards are empty, and everything still works.
TEST(ShardedEngine, SurvivesEmptyShards) {
  Rng rng(81);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 3, 2, 4, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 4, 6, w);
  const ServiceModel model = ServiceModel::PointCount(300.0);
  ShardedEngine engine(users, facs, ShardedOptions(8, model));
  EXPECT_EQ(engine.num_shards(), 8u);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const QueryResponse r =
        engine.Submit(QueryRequest::ServiceValue(f)).get();
    EXPECT_NEAR(r.value,
                testing::BruteForceSO(users, facs.points(f), model), 1e-6);
  }
  const QueryResponse topk = engine.Submit(QueryRequest::TopK(2)).get();
  EXPECT_EQ(topk.ranked.size(), 2u);
}

}  // namespace
}  // namespace tq
