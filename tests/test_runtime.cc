// Tests for the concurrent query runtime (src/runtime/): thread pool, result
// cache, snapshot cloning, and — most importantly — that N concurrent
// Submits agree with the serial evaluators and that a snapshot publish
// mid-stream never produces a torn read. Run this binary under
// -fsanitize=thread (cmake -DTQ_SANITIZE=thread) to verify the lock-free
// reader claim; CI's Debug job does.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "query/eval_service.h"
#include "runtime/engine.h"
#include "runtime/result_cache.h"
#include "runtime/thread_pool.h"
#include "test_util.h"

namespace tq {
namespace {

using runtime::Engine;
using runtime::EngineOptions;
using runtime::QueryKind;
using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::ResultCache;
using runtime::ThreadPool;
using runtime::UpdateBatch;

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.Post([&done]() { done.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, SubmitReturnsFutureValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) pool.Post([&done]() { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ResultCache, HitAfterPutAndLruEviction) {
  ResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  const ResultCache::Key a{1, 0, 7}, b{2, 0, 7}, c{3, 0, 7};
  double v = 0.0;
  EXPECT_FALSE(cache.Get(a, &v));
  cache.Put(a, 1.5);
  cache.Put(b, 2.5);
  ASSERT_TRUE(cache.Get(a, &v));  // refreshes a; b becomes LRU
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_EQ(cache.Put(c, 3.5), 1u);  // evicts b
  EXPECT_FALSE(cache.Get(b, &v));
  EXPECT_TRUE(cache.Get(a, &v));
  EXPECT_TRUE(cache.Get(c, &v));
}

TEST(ResultCache, InvalidateBeforeDropsOldVersionsOnly) {
  ResultCache cache(16, 4);
  for (uint64_t version = 1; version <= 4; ++version) {
    cache.Put(ResultCache::Key{9, 0, version}, static_cast<double>(version));
  }
  EXPECT_EQ(cache.InvalidateBefore(3), 2u);  // versions 1, 2
  double v = 0.0;
  EXPECT_FALSE(cache.Get(ResultCache::Key{9, 0, 1}, &v));
  EXPECT_FALSE(cache.Get(ResultCache::Key{9, 0, 2}, &v));
  EXPECT_TRUE(cache.Get(ResultCache::Key{9, 0, 3}, &v));
  EXPECT_TRUE(cache.Get(ResultCache::Key{9, 0, 4}, &v));
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put(ResultCache::Key{1, 0, 1}, 1.0);
  double v = 0.0;
  EXPECT_FALSE(cache.Get(ResultCache::Key{1, 0, 1}, &v));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TQTreeFork, ForkAnswersIdenticallyAndIsIndependent) {
  Rng rng(71);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet base = testing::RandomUsers(&rng, 300, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 8, w);
  const ServiceModel model = ServiceModel::PointCount(250.0);
  TQTreeOptions opt;
  opt.beta = 16;
  opt.model = model;
  TQTree original(&base, opt);

  // Fork against an extended copy of the user set, then insert the new
  // trajectory into the fork only — the copy-on-write writer's exact moves.
  TrajectorySet extended = base;
  std::vector<Point> extra;
  for (int i = 0; i < 4; ++i) {
    extra.push_back(Point{5000.0 + 100.0 * i, 5000.0});
  }
  const uint32_t new_id = extended.Add(extra);
  std::unique_ptr<TQTree> fork = original.Fork(&extended);
  ASSERT_NE(fork, nullptr);
  EXPECT_EQ(fork->num_units(), original.num_units());
  // Pure structural sharing until the first write: nothing copied yet.
  EXPECT_EQ(fork->cow_stats().nodes_copied, 0u);
  EXPECT_EQ(fork->cow_stats().pages_shared(), original.num_pages());

  const ServiceEvaluator eval_base(&base, model);
  const ServiceEvaluator eval_ext(&extended, model);
  const FacilityCatalog catalog(&facs, model.psi);
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    EXPECT_DOUBLE_EQ(
        EvaluateServiceTQ(&original, eval_base, catalog.grid(f)),
        EvaluateServiceTQ(fork.get(), eval_ext, catalog.grid(f)));
  }
  // Read-only queries on either side never break the page sharing.
  EXPECT_EQ(fork->cow_stats().nodes_copied, 0u);

  fork->Insert(new_id);
  fork->BuildAllZIndexes();
  EXPECT_EQ(fork->num_units(), original.num_units() + 1);
  // The insert path-copied the touched pages — and only those.
  EXPECT_GT(fork->cow_stats().nodes_copied, 0u);
  EXPECT_LT(fork->cow_stats().nodes_copied, original.num_nodes());
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    // The fork now reflects the extended set; the original is untouched.
    EXPECT_NEAR(EvaluateServiceTQ(fork.get(), eval_ext, catalog.grid(f)),
                testing::BruteForceSO(extended, facs.points(f), model), 1e-6);
    EXPECT_NEAR(EvaluateServiceTQ(&original, eval_base, catalog.grid(f)),
                testing::BruteForceSO(base, facs.points(f), model), 1e-6);
  }
}

// ---------------------------------------------------------------- Engine

struct EngineWorld {
  TrajectorySet users;
  TrajectorySet facilities;
  ServiceModel model = ServiceModel::PointCount(300.0);

  static EngineWorld Make(uint64_t seed, size_t num_users, size_t num_facs) {
    Rng rng(seed);
    const Rect w = Rect::Of(0, 0, 20000, 20000);
    return EngineWorld{testing::RandomUsers(&rng, num_users, 2, 5, w),
                       testing::RandomFacilities(&rng, num_facs, 8, w)};
  }

  EngineOptions Options(size_t threads, size_t cache_capacity = 1024) const {
    EngineOptions eo;
    eo.num_threads = threads;
    eo.cache_capacity = cache_capacity;
    eo.tree.beta = 16;
    eo.tree.model = model;
    return eo;
  }
};

TEST(Engine, ConcurrentSubmitsAgreeWithSerialEvaluation) {
  EngineWorld world = EngineWorld::Make(901, 400, 16);

  // Serial reference: the same tree configuration, evaluated inline.
  TQTreeOptions opt;
  opt.beta = 16;
  opt.model = world.model;
  TQTree serial_tree(&world.users, opt);
  const ServiceEvaluator serial_eval(&world.users, world.model);
  const FacilityCatalog serial_catalog(&world.facilities, world.model.psi);
  std::vector<double> expected(serial_catalog.size());
  for (uint32_t f = 0; f < serial_catalog.size(); ++f) {
    expected[f] =
        EvaluateServiceTQ(&serial_tree, serial_eval, serial_catalog.grid(f));
  }

  Engine engine(world.users, world.facilities, world.Options(8));
  std::vector<QueryRequest> batch;
  for (int rep = 0; rep < 4; ++rep) {
    for (uint32_t f = 0; f < serial_catalog.size(); ++f) {
      batch.push_back(QueryRequest::ServiceValue(f));
    }
  }
  const std::vector<QueryResponse> responses = engine.RunBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].snapshot_version, 1u);
    EXPECT_DOUBLE_EQ(responses[i].value, expected[batch[i].facility]);
  }
  // Second pass over the same facilities: all cache hits, same answers.
  const std::vector<QueryResponse> again = engine.RunBatch(batch);
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(again[i].cache_hit);
    EXPECT_DOUBLE_EQ(again[i].value, expected[batch[i].facility]);
  }
  const runtime::MetricsView m = engine.metrics().Read();
  EXPECT_GE(m.cache_hits, batch.size());
  EXPECT_EQ(m.queries_total, 2 * batch.size());
  EXPECT_GT(m.nodes_visited, 0u);
}

TEST(Engine, OutOfRangeFacilityReturnsErrorNotCrash) {
  EngineWorld world = EngineWorld::Make(902, 80, 4);
  Engine engine(world.users, world.facilities, world.Options(2));
  const QueryResponse bad =
      engine.Submit(QueryRequest::ServiceValue(999)).get();
  EXPECT_FALSE(bad.status.ok());
  EXPECT_EQ(bad.status.code(), StatusCode::kOutOfRange);
  // The engine keeps serving after the rejected request.
  const QueryResponse good =
      engine.Submit(QueryRequest::ServiceValue(0)).get();
  EXPECT_TRUE(good.status.ok());
  EXPECT_EQ(good.snapshot_version, 1u);
}

TEST(Engine, TopKMatchesSerialBestFirst) {
  EngineWorld world = EngineWorld::Make(903, 300, 12);
  TQTreeOptions opt;
  opt.beta = 16;
  opt.model = world.model;
  TQTree serial_tree(&world.users, opt);
  const ServiceEvaluator serial_eval(&world.users, world.model);
  const FacilityCatalog serial_catalog(&world.facilities, world.model.psi);
  const TopKResult expected =
      TopKFacilitiesTQ(&serial_tree, serial_catalog, serial_eval, 5);

  Engine engine(world.users, world.facilities, world.Options(4));
  const std::vector<QueryResponse> responses =
      engine.RunBatch(std::vector<QueryRequest>(8, QueryRequest::TopK(5)));
  for (const QueryResponse& response : responses) {
    ASSERT_EQ(response.ranked.size(), expected.ranked.size());
    for (size_t i = 0; i < expected.ranked.size(); ++i) {
      EXPECT_EQ(response.ranked[i].id, expected.ranked[i].id);
      EXPECT_DOUBLE_EQ(response.ranked[i].value, expected.ranked[i].value);
    }
  }
}

TEST(Engine, ApplyUpdatesPublishesNewVersionWithCorrectValues) {
  EngineWorld world = EngineWorld::Make(905, 250, 10);
  Engine engine(world.users, world.facilities, world.Options(4));
  EXPECT_EQ(engine.snapshot()->version, 1u);

  // Keep a pre-update snapshot alive across the publish (reader isolation).
  const runtime::SnapshotPtr old_snap = engine.snapshot();

  UpdateBatch batch;
  Rng rng(907);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet extra = testing::RandomUsers(&rng, 30, 2, 5, w);
  for (uint32_t t = 0; t < extra.size(); ++t) {
    const auto pts = extra.points(t);
    batch.inserts.emplace_back(pts.begin(), pts.end());
  }
  batch.removes = {0, 1, 2};
  const std::vector<uint32_t> new_ids = engine.ApplyUpdates(batch);
  ASSERT_EQ(new_ids.size(), extra.size());
  EXPECT_EQ(new_ids.front(), world.users.size());
  EXPECT_EQ(engine.snapshot()->version, 2u);

  // Expected post-update values: brute force over the surviving + inserted
  // trajectories (an oracle independent of every index structure).
  TrajectorySet active;
  for (uint32_t u = 3; u < world.users.size(); ++u) {
    const auto pts = world.users.points(u);
    active.Add(pts);
  }
  for (uint32_t t = 0; t < extra.size(); ++t) active.Add(extra.points(t));

  for (uint32_t f = 0; f < world.facilities.size(); ++f) {
    const QueryResponse response =
        engine.Submit(QueryRequest::ServiceValue(f)).get();
    EXPECT_EQ(response.snapshot_version, 2u);
    EXPECT_NEAR(response.value,
                testing::BruteForceSO(active, world.facilities.points(f),
                                      world.model),
                1e-6)
        << "facility " << f;
  }

  // The retained snapshot still answers with pre-update state.
  for (uint32_t f = 0; f < world.facilities.size(); ++f) {
    EXPECT_NEAR(EvaluateServiceTQ(old_snap->tree.get(), *old_snap->eval,
                                  old_snap->catalog->grid(f)),
                testing::BruteForceSO(world.users,
                                      world.facilities.points(f), world.model),
                1e-6);
  }
  const runtime::MetricsView m = engine.metrics().Read();
  EXPECT_EQ(m.snapshots_published, 2u);
  EXPECT_EQ(m.trajectories_inserted, extra.size());
  EXPECT_EQ(m.trajectories_removed, 3u);
}

// The satellite-mandated stress test: reader threads hammer Submit while the
// writer publishes snapshots mid-stream. Every response must exactly match
// the serial value for the snapshot version it reports — a torn read (some
// mix of two versions) cannot satisfy that.
TEST(Engine, PublishMidStreamNeverTearsReads) {
  EngineWorld world = EngineWorld::Make(909, 200, 8);
  constexpr size_t kReaderThreads = 4;
  constexpr size_t kQueriesPerReader = 120;
  constexpr size_t kUpdateBatches = 5;
  constexpr size_t kInsertsPerBatch = 25;

  // Pre-generate every update deterministically so the per-version user sets
  // can be reconstructed for the oracle afterwards.
  Rng rng(911);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  std::vector<TrajectorySet> batch_inserts;
  for (size_t b = 0; b < kUpdateBatches; ++b) {
    batch_inserts.push_back(
        testing::RandomUsers(&rng, kInsertsPerBatch, 2, 5, w));
  }
  // Batch b removes user id b (of the initial set).
  Engine engine(world.users, world.facilities, world.Options(kReaderThreads));

  std::vector<std::vector<QueryResponse>> collected(kReaderThreads);
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (size_t r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&engine, &collected, r]() {
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        const auto f = static_cast<FacilityId>((r + q) % 8);
        collected[r].push_back(
            engine.Submit(QueryRequest::ServiceValue(f)).get());
      }
    });
  }
  // Main-thread queries bracket the writer loop: these are guaranteed to see
  // the first and the last version, so both extremes go through the oracle
  // check below no matter how the reader threads get scheduled.
  std::vector<QueryResponse> bracket;
  for (FacilityId f = 0; f < 8; ++f) {
    bracket.push_back(engine.Submit(QueryRequest::ServiceValue(f)).get());
    EXPECT_EQ(bracket.back().snapshot_version, 1u);
  }
  for (size_t b = 0; b < kUpdateBatches; ++b) {
    UpdateBatch batch;
    for (uint32_t t = 0; t < batch_inserts[b].size(); ++t) {
      const auto pts = batch_inserts[b].points(t);
      batch.inserts.emplace_back(pts.begin(), pts.end());
    }
    batch.removes = {static_cast<uint32_t>(b)};
    engine.ApplyUpdates(batch);
  }
  for (FacilityId f = 0; f < 8; ++f) {
    bracket.push_back(engine.Submit(QueryRequest::ServiceValue(f)).get());
    EXPECT_EQ(bracket.back().snapshot_version, kUpdateBatches + 1);
  }
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(engine.snapshot()->version, kUpdateBatches + 1);

  // Oracle: rebuild the active user set of every version and brute-force
  // each facility's value.
  std::vector<std::vector<double>> expected;  // [version - 1][facility]
  for (size_t version = 1; version <= kUpdateBatches + 1; ++version) {
    const size_t applied = version - 1;
    TrajectorySet active;
    for (uint32_t u = 0; u < world.users.size(); ++u) {
      if (u < applied) continue;  // removed by batch u
      active.Add(world.users.points(u));
    }
    for (size_t b = 0; b < applied; ++b) {
      for (uint32_t t = 0; t < batch_inserts[b].size(); ++t) {
        active.Add(batch_inserts[b].points(t));
      }
    }
    std::vector<double> per_fac(world.facilities.size());
    for (uint32_t f = 0; f < world.facilities.size(); ++f) {
      per_fac[f] = testing::BruteForceSO(active, world.facilities.points(f),
                                         world.model);
    }
    expected.push_back(std::move(per_fac));
  }

  size_t checked = 0;
  const auto check = [&](const QueryResponse& response, FacilityId f) {
    ASSERT_GE(response.snapshot_version, 1u);
    ASSERT_LE(response.snapshot_version, kUpdateBatches + 1);
    EXPECT_NEAR(response.value, expected[response.snapshot_version - 1][f],
                1e-6)
        << "torn read: facility " << f << " at version "
        << response.snapshot_version;
    ++checked;
  };
  for (size_t r = 0; r < kReaderThreads; ++r) {
    for (size_t q = 0; q < collected[r].size(); ++q) {
      check(collected[r][q], static_cast<FacilityId>((r + q) % 8));
    }
  }
  for (size_t i = 0; i < bracket.size(); ++i) {
    check(bracket[i], static_cast<FacilityId>(i % 8));
  }
  EXPECT_EQ(checked, kReaderThreads * kQueriesPerReader + bracket.size());
}

}  // namespace
}  // namespace tq
