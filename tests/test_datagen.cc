#include <gtest/gtest.h>

#include "datagen/presets.h"
#include "traj/stats.h"

namespace tq {
namespace {

TEST(CityModel, SamplesStayInsideExtent) {
  const CityModel city = presets::NewYork();
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(city.extent().Contains(city.SamplePoint(&rng)));
  }
}

TEST(CityModel, HotspotWeightsAreSkewed) {
  const CityModel city = presets::NewYork();
  Rng rng(43);
  std::vector<size_t> counts(city.hotspots().size(), 0);
  for (int i = 0; i < 10000; ++i) counts[city.SampleHotspot(&rng)]++;
  // First hotspot (heaviest Zipf weight) dominates the last.
  EXPECT_GT(counts.front(), counts.back() * 2);
}

TEST(TaxiTrips, DeterministicAndTwoPoint) {
  const TrajectorySet a = presets::NytTrips(500);
  const TrajectorySet b = presets::NytTrips(500);
  ASSERT_EQ(a.size(), 500u);
  ASSERT_EQ(b.size(), 500u);
  for (uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.NumPoints(i), 2u);
    EXPECT_EQ(a.points(i)[0], b.points(i)[0]);
    EXPECT_EQ(a.points(i)[1], b.points(i)[1]);
  }
}

TEST(Checkins, MultipointWithBoundedLength) {
  const TrajectorySet set = presets::NyfCheckins(300);
  ASSERT_EQ(set.size(), 300u);
  for (uint32_t i = 0; i < set.size(); ++i) {
    EXPECT_GE(set.NumPoints(i), 3u);
    EXPECT_LE(set.NumPoints(i), 10u);
  }
}

TEST(GpsTraces, LongMultipointInsideExtent) {
  const TrajectorySet set = presets::BjgTraces(200);
  const CityModel city = presets::Beijing();
  ASSERT_EQ(set.size(), 200u);
  for (uint32_t i = 0; i < set.size(); ++i) {
    EXPECT_GE(set.NumPoints(i), 10u);
    for (const Point& p : set.points(i)) {
      EXPECT_TRUE(city.extent().Contains(p));
    }
  }
}

TEST(BusRoutes, ExactStopCountsAndEvenSpacing) {
  const TrajectorySet routes = presets::NyBusRoutes(20, 32);
  ASSERT_EQ(routes.size(), 20u);
  for (uint32_t r = 0; r < routes.size(); ++r) {
    ASSERT_EQ(routes.NumPoints(r), 32u);
    const auto pts = routes.points(r);
    // Consecutive stops should be roughly evenly spaced (resampling).
    std::vector<double> gaps;
    for (size_t i = 1; i < pts.size(); ++i) {
      gaps.push_back(Distance(pts[i - 1], pts[i]));
    }
    double mean = 0;
    for (const double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    if (mean > 1.0) {
      size_t outliers = 0;
      for (const double g : gaps) {
        if (g > 3 * mean) ++outliers;
      }
      EXPECT_LE(outliers, gaps.size() / 4) << "route " << r;
    }
  }
}

TEST(BusRoutes, DifferentCitiesDiffer) {
  const TrajectorySet ny = presets::NyBusRoutes(5, 16);
  const TrajectorySet bj = presets::BjBusRoutes(5, 16);
  bool any_diff = false;
  for (uint32_t r = 0; r < 5 && !any_diff; ++r) {
    any_diff = !(ny.points(r)[0] == bj.points(r)[0]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Presets, UserSweepMatchesTableIII) {
  const auto full = presets::NytUserSweep(1.0);
  ASSERT_EQ(full.size(), 4u);
  EXPECT_EQ(full[0], 203308u);
  EXPECT_EQ(full[3], 1032637u);
  const auto scaled = presets::NytUserSweep(0.1);
  EXPECT_EQ(scaled[0], 20331u);
}

TEST(Presets, StatsLookLikeTheirRealCounterparts) {
  // Shape checks: taxi trips are 2-point; check-ins average ~6 points;
  // GPS traces have far more points and kilometre-scale length.
  const DatasetStats nyt = ComputeStats(presets::NytTrips(2000));
  const DatasetStats nyf = ComputeStats(presets::NyfCheckins(500));
  const DatasetStats bjg = ComputeStats(presets::BjgTraces(200));
  EXPECT_DOUBLE_EQ(nyt.avg_points, 2.0);
  EXPECT_GT(nyf.avg_points, 3.0);
  EXPECT_LT(nyf.avg_points, 10.0);
  EXPECT_GT(bjg.avg_points, nyf.avg_points);
  EXPECT_GT(bjg.avg_length, 1000.0);
}

}  // namespace
}  // namespace tq
