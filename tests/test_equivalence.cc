// The backbone integration invariant: BL, TQ(B) and TQ(Z) are different
// *search strategies* over the same exact service semantics, so all three
// must produce identical service values and top-k rankings on any workload.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/presets.h"
#include "query/baseline.h"
#include "query/topk.h"
#include "test_util.h"

namespace tq {
namespace {

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, AllThreeMethodsAgreeOnServiceValues) {
  const ServiceModel model =
      testing::AllModels(200.0)[static_cast<size_t>(GetParam())];
  Rng rng(701 + static_cast<uint64_t>(GetParam()));
  const Rect w = Rect::Of(0, 0, 30000, 30000);
  const TrajectorySet users = testing::RandomUsers(&rng, 600, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 16, 12, w);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);

  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 32);
  pq.InsertAll(users);

  TQTreeOptions basic_opt;
  basic_opt.beta = 16;
  basic_opt.variant = IndexVariant::kBasic;
  basic_opt.model = model;
  TQTree tq_basic(&users, basic_opt);

  TQTreeOptions z_opt = basic_opt;
  z_opt.variant = IndexVariant::kZOrder;
  TQTree tq_z(&users, z_opt);

  for (uint32_t f = 0; f < catalog.size(); ++f) {
    const StopGrid& grid = catalog.grid(f);
    const double bl = EvaluateServiceBaseline(pq, eval, grid);
    const double tb = EvaluateServiceTQ(&tq_basic, eval, grid);
    const double tz = EvaluateServiceTQ(&tq_z, eval, grid);
    EXPECT_NEAR(bl, tb, 1e-6) << "BL vs TQ(B), facility " << f;
    EXPECT_NEAR(bl, tz, 1e-6) << "BL vs TQ(Z), facility " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, EquivalenceTest, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "model" + std::to_string(info.param);
                         });

TEST(Equivalence, PresetWorkloadNytLike) {
  // Scaled-down NYT preset: the exact workload family the benchmarks use.
  const TrajectorySet users = presets::NytTrips(5000);
  const TrajectorySet facs = presets::NyBusRoutes(12, 24);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);

  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 64);
  pq.InsertAll(users);
  TQTreeOptions opt;
  opt.beta = 32;
  opt.model = model;
  TQTree tq_z(&users, opt);

  const size_t k = 5;
  const TopKResult bl = TopKFacilitiesBaseline(pq, catalog, eval, k);
  const TopKResult tz = TopKFacilitiesTQ(&tq_z, catalog, eval, k);
  ASSERT_EQ(bl.ranked.size(), tz.ranked.size());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(bl.ranked[i].value, tz.ranked[i].value, 1e-6) << "rank " << i;
  }
  // Sanity: the winning route serves a meaningful number of users.
  EXPECT_GT(bl.ranked[0].value, 0.0);
}

TEST(Equivalence, MultipointSegmentedVsWholeAgree) {
  // S-TQ and F-TQ are different layouts of the same data; their SO values
  // must match each other (and the oracle) for every facility.
  Rng rng(705);
  const Rect w = Rect::Of(0, 0, 30000, 30000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 3, 8, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 12, w);
  for (const ServiceModel& model :
       {ServiceModel::PointCount(200.0), ServiceModel::Length(200.0)}) {
    const ServiceEvaluator eval(&users, model);
    TQTreeOptions seg_opt;
    seg_opt.beta = 16;
    seg_opt.mode = TrajMode::kSegmented;
    seg_opt.model = model;
    TQTree s_tq(&users, seg_opt);
    TQTreeOptions full_opt = seg_opt;
    full_opt.mode = TrajMode::kWhole;
    TQTree f_tq(&users, full_opt);
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const StopGrid grid(facs.points(f), model.psi);
      const double s_val = EvaluateServiceTQ(&s_tq, eval, grid);
      const double f_val = EvaluateServiceTQ(&f_tq, eval, grid);
      const double oracle =
          testing::BruteForceSO(users, facs.points(f), model);
      EXPECT_NEAR(s_val, oracle, 1e-6) << "S-TQ " << model.ToString();
      EXPECT_NEAR(f_val, oracle, 1e-6) << "F-TQ " << model.ToString();
    }
  }
}

TEST(Equivalence, BetaDoesNotChangeAnswers) {
  Rng rng(707);
  const Rect w = Rect::Of(0, 0, 30000, 30000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);

  std::vector<double> reference;
  for (const size_t beta : {2u, 8u, 64u, 1024u}) {
    TQTreeOptions opt;
    opt.beta = beta;
    opt.model = model;
    TQTree tree(&users, opt);
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const StopGrid grid(facs.points(f), model.psi);
      const double v = EvaluateServiceTQ(&tree, eval, grid);
      if (beta == 2u) {
        reference.push_back(v);
      } else {
        EXPECT_NEAR(v, reference[f], 1e-9) << "beta=" << beta;
      }
    }
  }
}

TEST(Equivalence, BasicMbrPrecheckAblationKeepsAnswers) {
  Rng rng(709);
  const Rect w = Rect::Of(0, 0, 30000, 30000);
  const TrajectorySet users = testing::RandomUsers(&rng, 500, 2, 2, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  const ServiceEvaluator eval(&users, model);
  TQTreeOptions opt;
  opt.variant = IndexVariant::kBasic;
  opt.model = model;
  TQTree plain(&users, opt);
  opt.basic_entry_mbr_precheck = true;
  TQTree prechecked(&users, opt);
  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    EXPECT_NEAR(EvaluateServiceTQ(&plain, eval, grid),
                EvaluateServiceTQ(&prechecked, eval, grid), 1e-9);
  }
}

}  // namespace
}  // namespace tq
