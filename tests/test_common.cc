#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/dynamic_bitset.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace tq {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::IOError("x").code(),         Status::OutOfRange("x").code(),
      Status::AlreadyExists("x").code(),   Status::Unimplemented("x").code(),
      Status::Internal("x").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  size_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2 the first 10 of 100 ranks carry well over half the mass.
  EXPECT_GT(low, static_cast<size_t>(n / 2));
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitset, UnionWith) {
  DynamicBitset a(70), b(70);
  a.Set(0);
  a.Set(69);
  b.Set(1);
  b.Set(69);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(69));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(DynamicBitset, CountNewFrom) {
  DynamicBitset a(100), b(100);
  a.Set(5);
  b.Set(5);
  b.Set(6);
  b.Set(99);
  EXPECT_EQ(a.CountNewFrom(b), 2u);
  EXPECT_EQ(b.CountNewFrom(a), 0u);
}

TEST(DynamicBitset, AllAndReset) {
  DynamicBitset b(3);
  b.Set(0);
  b.Set(1);
  EXPECT_FALSE(b.All());
  b.Set(2);
  EXPECT_TRUE(b.All());
  b.Reset();
  EXPECT_TRUE(b.None());
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  const double ms = t.ElapsedMillis();
  EXPECT_FALSE(std::isnan(ms));
}

}  // namespace
}  // namespace tq
