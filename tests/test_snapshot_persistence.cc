// Persistent path-copying snapshot tests (tqtree page store + runtime
// integration):
//   * publish cost — a single-trajectory ApplyUpdates on the NYF preset
//     must path-copy, not clone: < 5% of tree nodes duplicated (the
//     acceptance bar), most pages still shared with the old snapshot;
//   * snapshot immutability — after K random write batches, every retained
//     older snapshot still answers a fixed query set byte-identically to
//     its recorded answers, and the newest snapshot matches a from-scratch
//     TQTree oracle bit-for-bit (integer-valued model);
//   * sharded equivalence — N-shard forked publishes stay bit-identical to
//     an unsharded from-scratch build for N ∈ {1, 2, 4, 8};
//   * the top-k section of ResultCache: memoisation keyed by (k, ψ,
//     generation vector), per-shard invalidation, engine integration.
// Run under -fsanitize=address and -fsanitize=thread in CI: page sharing
// across snapshots is exactly where lifetime and data-race bugs would live.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "datagen/presets.h"
#include "query/eval_service.h"
#include "query/topk.h"
#include "runtime/engine.h"
#include "runtime/result_cache.h"
#include "runtime/sharded_engine.h"
#include "test_util.h"

namespace tq {
namespace {

using runtime::Engine;
using runtime::EngineOptions;
using runtime::QueryRequest;
using runtime::QueryResponse;
using runtime::ResultCache;
using runtime::ShardedEngine;
using runtime::ShardedEngineOptions;
using runtime::UpdateBatch;

// ------------------------------------------------------------ publish cost

// The acceptance criterion: publishing a single-trajectory update on the
// NYF preset copies < 5% of the tree's nodes. A full clone would copy 100%.
// Segmented mode is the write-heavy configuration: NYF's multipoint
// check-ins have city-wide MBRs that pile up as shallow inter-node lists
// when stored whole, while per-segment units build the deep tree the paper's
// dynamic-update section (§III-C) targets.
TEST(ForkPublishCost, SingleTrajectoryNyfPublishCopiesUnder5PercentOfNodes) {
  const TrajectorySet users = presets::NyfCheckins(20000);
  const TrajectorySet routes = presets::NyBusRoutes(12, 10);
  EngineOptions options;
  options.num_threads = 2;
  options.tree.beta = 16;
  options.tree.mode = TrajMode::kSegmented;
  options.tree.model = ServiceModel::PointCount(200.0, Normalization::kNone);
  Engine engine(users, routes, options);

  const size_t total_nodes = engine.snapshot()->tree->num_nodes();
  ASSERT_GT(total_nodes, 500u) << "preset too small to be meaningful";

  const std::vector<Point> traj{
      Point{1000.0, 1000.0}, Point{1200.0, 1150.0}, Point{1400.0, 1300.0}};
  UpdateBatch batch;
  batch.inserts.push_back(traj);
  engine.ApplyUpdates(batch);

  const runtime::MetricsView m = engine.metrics().Read();
  EXPECT_GT(m.nodes_copied, 0u);
  EXPECT_LT(m.nodes_copied, total_nodes / 20)
      << "single-trajectory publish copied " << m.nodes_copied << " of "
      << total_nodes << " nodes — copy-on-write regressed toward full clone";
  EXPECT_GT(m.pages_shared, 0u);
  EXPECT_GT(m.publish_ns, 0u);

  // The published fork answers like a from-scratch build over the extended
  // set (integer-valued model: bit-identical).
  TrajectorySet extended = users;
  extended.Add(traj);
  TQTree oracle(&extended, options.tree);
  const ServiceEvaluator eval(&extended, options.tree.model);
  const FacilityCatalog catalog(&routes, options.tree.model.psi);
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    const QueryResponse r =
        engine.Submit(QueryRequest::ServiceValue(f)).get();
    EXPECT_EQ(r.value, EvaluateServiceTQ(&oracle, eval, catalog.grid(f)))
        << "facility " << f;
  }
}

// ------------------------------------------------------- immutability

// Property test: K random ApplyUpdates batches; every retained snapshot
// must keep answering the fixed query set byte-identically to the answers
// recorded when it was current, and the newest snapshot must match a fresh
// from-scratch TQTree oracle bit-for-bit.
TEST(SnapshotImmutability, RetainedSnapshotsAnswerByteIdenticallyAfterKBatches) {
  constexpr size_t kBatches = 8;
  Rng rng(1234);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet base = testing::RandomUsers(&rng, 400, 2, 6, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 10, 8, w);
  EngineOptions options;
  options.num_threads = 4;
  options.tree.beta = 16;
  options.tree.model = ServiceModel::PointCount(300.0, Normalization::kNone);
  Engine engine(base, facs, options);

  struct Recorded {
    runtime::SnapshotPtr snap;
    std::vector<double> values;              // per facility
    std::vector<RankedFacility> topk;
  };
  const auto record = [&](const runtime::SnapshotPtr& snap) {
    Recorded r;
    r.snap = snap;
    for (uint32_t f = 0; f < snap->catalog->size(); ++f) {
      r.values.push_back(EvaluateServiceTQ(snap->tree.get(), *snap->eval,
                                           snap->catalog->grid(f)));
    }
    r.topk =
        TopKFacilitiesTQ(snap->tree.get(), *snap->catalog, *snap->eval, 5)
            .ranked;
    return r;
  };

  std::vector<Recorded> retained;
  retained.push_back(record(engine.snapshot()));
  std::vector<bool> active(base.size(), true);  // by global id
  size_t total_users = base.size();
  for (size_t b = 0; b < kBatches; ++b) {
    UpdateBatch batch;
    const size_t num_inserts = 1 + rng.NextBelow(12);
    const TrajectorySet extra =
        testing::RandomUsers(&rng, num_inserts, 2, 6, w);
    for (uint32_t t = 0; t < extra.size(); ++t) {
      const auto pts = extra.points(t);
      batch.inserts.emplace_back(pts.begin(), pts.end());
    }
    for (int attempts = 0; attempts < 3; ++attempts) {
      const auto victim =
          static_cast<uint32_t>(rng.NextBelow(total_users));
      if (active[victim]) {
        active[victim] = false;
        batch.removes.push_back(victim);
      }
    }
    engine.ApplyUpdates(batch);
    total_users += num_inserts;
    active.resize(total_users, true);
    retained.push_back(record(engine.snapshot()));
  }

  // Every retained snapshot — including ones forked from many times —
  // re-answers exactly. == on doubles: byte-identical modulo ±0, which
  // cannot arise from non-negative sums.
  for (size_t i = 0; i < retained.size(); ++i) {
    const Recorded& r = retained[i];
    EXPECT_EQ(r.snap->version, i + 1);
    for (uint32_t f = 0; f < r.snap->catalog->size(); ++f) {
      EXPECT_EQ(EvaluateServiceTQ(r.snap->tree.get(), *r.snap->eval,
                                  r.snap->catalog->grid(f)),
                r.values[f])
          << "version " << r.snap->version << " facility " << f;
    }
    const std::vector<RankedFacility> again =
        TopKFacilitiesTQ(r.snap->tree.get(), *r.snap->catalog, *r.snap->eval,
                         5)
            .ranked;
    ASSERT_EQ(again.size(), r.topk.size());
    for (size_t j = 0; j < again.size(); ++j) {
      EXPECT_EQ(again[j].id, r.topk[j].id);
      EXPECT_EQ(again[j].value, r.topk[j].value);
    }
  }

  // Newest snapshot vs from-scratch oracle over the surviving users
  // (integer-valued model ⇒ the different summation order cannot matter).
  const runtime::SnapshotPtr newest = engine.snapshot();
  TrajectorySet survivors;
  for (uint32_t u = 0; u < total_users; ++u) {
    if (active[u]) survivors.Add(newest->users->points(u));
  }
  TQTree oracle(&survivors, options.tree);
  const ServiceEvaluator oracle_eval(&survivors, options.tree.model);
  for (uint32_t f = 0; f < newest->catalog->size(); ++f) {
    EXPECT_EQ(EvaluateServiceTQ(newest->tree.get(), *newest->eval,
                                newest->catalog->grid(f)),
              EvaluateServiceTQ(&oracle, oracle_eval,
                                newest->catalog->grid(f)))
        << "facility " << f;
  }
}

// --------------------------------------------------- sharded equivalence

// Acceptance: after forked (path-copying) publishes, an N-shard engine's
// gathered answers stay bit-identical to an unsharded from-scratch build
// over the same surviving user set, for N ∈ {1, 2, 4, 8}.
TEST(ShardedForkedPublish, BitIdenticalToFromScratchBuildAtEveryShardCount) {
  const TrajectorySet users = presets::NyfCheckins(1200);
  const TrajectorySet routes = presets::NyBusRoutes(12, 10);
  const ServiceModel model =
      ServiceModel::PointCount(200.0, Normalization::kNone);

  // Deterministic batches, pre-generated so every shard count sees the
  // exact same update stream.
  Rng rng(77);
  const Rect extent = users.BoundingBox();
  std::vector<TrajectorySet> inserts;
  std::vector<std::vector<uint32_t>> removes;
  size_t total = users.size();
  std::vector<bool> active(users.size(), true);
  for (int b = 0; b < 3; ++b) {
    inserts.push_back(testing::RandomUsers(&rng, 15, 2, 5, extent));
    std::vector<uint32_t> rm;
    for (int attempts = 0; attempts < 5; ++attempts) {
      const auto victim = static_cast<uint32_t>(rng.NextBelow(total));
      if (victim < active.size() && active[victim]) {
        active[victim] = false;
        rm.push_back(victim);
      }
    }
    removes.push_back(rm);
    total += inserts.back().size();
    active.resize(total, true);
  }

  // From-scratch oracle over the final surviving users.
  TrajectorySet survivors;
  {
    TrajectorySet all = users;
    for (const TrajectorySet& ins : inserts) {
      for (uint32_t t = 0; t < ins.size(); ++t) all.Add(ins.points(t));
    }
    for (uint32_t u = 0; u < all.size(); ++u) {
      if (active[u]) survivors.Add(all.points(u));
    }
  }
  TQTreeOptions topt;
  topt.beta = 16;
  topt.model = model;
  TQTree oracle(&survivors, topt);
  const ServiceEvaluator oracle_eval(&survivors, model);
  const FacilityCatalog catalog(&routes, model.psi);
  std::vector<double> expected;
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    expected.push_back(
        EvaluateServiceTQ(&oracle, oracle_eval, catalog.grid(f)));
  }
  const TopKResult expected_topk =
      TopKFacilitiesTQ(&oracle, catalog, oracle_eval, 5);

  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedEngineOptions so;
    so.num_shards = shards;
    so.num_threads = 4;
    so.tree.beta = 16;
    so.tree.model = model;
    ShardedEngine engine(users, routes, so);
    for (size_t b = 0; b < inserts.size(); ++b) {
      UpdateBatch batch;
      for (uint32_t t = 0; t < inserts[b].size(); ++t) {
        const auto pts = inserts[b].points(t);
        batch.inserts.emplace_back(pts.begin(), pts.end());
      }
      batch.removes = removes[b];
      engine.ApplyUpdates(batch);
    }
    for (uint32_t f = 0; f < catalog.size(); ++f) {
      const QueryResponse r =
          engine.Submit(QueryRequest::ServiceValue(f)).get();
      EXPECT_EQ(r.value, expected[f])
          << "shards=" << shards << " facility=" << f;
    }
    const QueryResponse topk = engine.Submit(QueryRequest::TopK(5)).get();
    ASSERT_EQ(topk.ranked.size(), expected_topk.ranked.size())
        << "shards=" << shards;
    for (size_t i = 0; i < expected_topk.ranked.size(); ++i) {
      EXPECT_EQ(topk.ranked[i].id, expected_topk.ranked[i].id)
          << "shards=" << shards << " rank=" << i;
      EXPECT_EQ(topk.ranked[i].value, expected_topk.ranked[i].value)
          << "shards=" << shards << " rank=" << i;
    }
  }
}

// ------------------------------------------------------ top-k result cache

TEST(ResultCacheTopK, MemoisesByGenerationVectorAndInvalidatesPerShard) {
  ResultCache cache(/*capacity=*/1024, /*num_shards=*/4);
  const std::vector<RankedFacility> answer{{3, 9.0}, {1, 7.0}};
  const ResultCache::TopKKey key{5, 0, {2, 1, 1}};
  std::vector<RankedFacility> got;
  EXPECT_FALSE(cache.GetTopK(key, &got));
  cache.PutTopK(key, answer);
  ASSERT_TRUE(cache.GetTopK(key, &got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 3u);
  EXPECT_EQ(got[1].value, 7.0);

  // A different k or generation vector is a different answer.
  EXPECT_FALSE(cache.GetTopK(ResultCache::TopKKey{4, 0, {2, 1, 1}}, &got));
  EXPECT_FALSE(cache.GetTopK(ResultCache::TopKKey{5, 0, {2, 1, 2}}, &got));

  // Republishing shard 2 at generation 2 kills it (it contributed gen 1);
  // republishing shard 0 at generation 2 would not (it contributed gen 2).
  EXPECT_EQ(cache.InvalidateShardsBefore({0}, 2), 0u);
  ASSERT_TRUE(cache.GetTopK(key, &got));
  EXPECT_EQ(cache.InvalidateShardsBefore({2}, 2), 1u);
  EXPECT_FALSE(cache.GetTopK(key, &got));
}

TEST(Engine, TopKMemoisedUntilPublishThenRecomputed) {
  Rng rng(55);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 8, w);
  EngineOptions options;
  options.num_threads = 2;
  options.tree.beta = 16;
  options.tree.model = ServiceModel::PointCount(300.0);
  Engine engine(users, facs, options);

  const QueryResponse first = engine.Submit(QueryRequest::TopK(4)).get();
  EXPECT_FALSE(first.cache_hit);
  const QueryResponse second = engine.Submit(QueryRequest::TopK(4)).get();
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.ranked.size(), first.ranked.size());
  for (size_t i = 0; i < first.ranked.size(); ++i) {
    EXPECT_EQ(second.ranked[i].id, first.ranked[i].id);
    EXPECT_EQ(second.ranked[i].value, first.ranked[i].value);
  }
  // A different k misses.
  EXPECT_FALSE(engine.Submit(QueryRequest::TopK(3)).get().cache_hit);

  // A publish invalidates; the recomputed answer reflects the new snapshot.
  UpdateBatch batch;
  batch.removes = {first.ranked.empty() ? 0u : 1u};
  engine.ApplyUpdates(batch);
  const QueryResponse after = engine.Submit(QueryRequest::TopK(4)).get();
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.snapshot_version, 2u);
}

TEST(ShardedEngine, TopKMemoisedAcrossUntouchedShardsOnly) {
  const TrajectorySet users = presets::NyfCheckins(800);
  const TrajectorySet routes = presets::NyBusRoutes(8, 8);
  ShardedEngineOptions so;
  so.num_shards = 4;
  so.num_threads = 4;
  so.tree.beta = 16;
  so.tree.model = ServiceModel::PointCount(200.0, Normalization::kNone);
  ShardedEngine engine(users, routes, so);

  const QueryResponse first = engine.Submit(QueryRequest::TopK(5)).get();
  EXPECT_FALSE(first.cache_hit);
  const QueryResponse second = engine.Submit(QueryRequest::TopK(5)).get();
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.ranked.size(), first.ranked.size());
  for (size_t i = 0; i < first.ranked.size(); ++i) {
    EXPECT_EQ(second.ranked[i].id, first.ranked[i].id);
    EXPECT_EQ(second.ranked[i].value, first.ranked[i].value);
  }

  // Touch ONE shard: the memoised gathered answer must die (its generation
  // vector has a stale component) and the recomputed one must agree with
  // the updated engine state.
  UpdateBatch batch;
  batch.removes = {0};
  engine.ApplyUpdates(batch);
  const QueryResponse after = engine.Submit(QueryRequest::TopK(5)).get();
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.snapshot_version, 2u);
}

}  // namespace
}  // namespace tq
