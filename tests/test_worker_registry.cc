// Tests for the coordinator's worker-liveness state machine
// (src/runtime/worker_registry.h): join, heartbeat refresh, timeout -> dead,
// failure -> dead exactly once, and rejoin through re-registration. Time is
// a hand-cranked injected clock, so no test sleeps.
#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/worker_registry.h"

namespace tq::runtime {
namespace {

constexpr uint64_t kMs = 1'000'000ull;  // ns per ms

struct Cranked {
  uint64_t now_ns = 0;
  WorkerRegistry::Clock clock() {
    return [this] { return now_ns; };
  }
};

TEST(WorkerRegistry, JoinLifecycle) {
  Cranked t;
  WorkerRegistry reg(/*heartbeat_timeout_ms=*/100, t.clock());
  const size_t w = reg.AddWorker("127.0.0.1:7102");
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.state(w), WorkerRegistry::State::kUnregistered);
  EXPECT_FALSE(reg.alive(w));
  EXPECT_EQ(reg.address(w), "127.0.0.1:7102");

  reg.RecordRegistered(w, 2, 4);
  EXPECT_EQ(reg.state(w), WorkerRegistry::State::kAlive);
  EXPECT_TRUE(reg.alive(w));

  const auto rows = reg.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].owned_begin, 2u);
  EXPECT_EQ(rows[0].owned_end, 4u);
  EXPECT_EQ(rows[0].heartbeats, 0u);
  EXPECT_EQ(rows[0].failures, 0u);
}

TEST(WorkerRegistry, HeartbeatRefreshesRecencyAndTimeoutKills) {
  Cranked t;
  WorkerRegistry reg(100, t.clock());
  const size_t w = reg.AddWorker("a");
  reg.RecordRegistered(w, 0, 1);

  t.now_ns = 50 * kMs;
  reg.RecordHeartbeat(w, /*rtt_ns=*/123);
  EXPECT_EQ(reg.Snapshot()[0].heartbeats, 1u);

  // 99 ms of silence since the heartbeat: still inside the timeout.
  t.now_ns = 149 * kMs;
  EXPECT_TRUE(reg.CheckTimeouts().empty());
  EXPECT_TRUE(reg.alive(w));

  // 101 ms of silence: dead, reported exactly once.
  t.now_ns = 151 * kMs;
  const auto died = reg.CheckTimeouts();
  ASSERT_EQ(died.size(), 1u);
  EXPECT_EQ(died[0], w);
  EXPECT_EQ(reg.state(w), WorkerRegistry::State::kDead);
  EXPECT_EQ(reg.Snapshot()[0].failures, 1u);
  // Death is sticky: a second sweep reports nothing new.
  t.now_ns = 500 * kMs;
  EXPECT_TRUE(reg.CheckTimeouts().empty());
  EXPECT_EQ(reg.Snapshot()[0].failures, 1u);
}

TEST(WorkerRegistry, ContactRefreshKeepsWorkerAlive) {
  Cranked t;
  WorkerRegistry reg(100, t.clock());
  const size_t w = reg.AddWorker("a");
  reg.RecordRegistered(w, 0, 1);
  // Any successful RPC refreshes recency, so a worker serving steady query
  // traffic never times out even without heartbeats.
  for (uint64_t ms = 90; ms <= 900; ms += 90) {
    t.now_ns = ms * kMs;
    reg.RecordContact(w);
    EXPECT_TRUE(reg.CheckTimeouts().empty());
  }
  EXPECT_TRUE(reg.alive(w));
  EXPECT_EQ(reg.Snapshot()[0].heartbeats, 0u);  // contact != heartbeat
}

TEST(WorkerRegistry, FailureTransitionsOnce) {
  Cranked t;
  WorkerRegistry reg(100, t.clock());
  const size_t w = reg.AddWorker("a");
  reg.RecordRegistered(w, 0, 1);
  EXPECT_TRUE(reg.RecordFailure(w));   // alive -> dead: the transition
  EXPECT_FALSE(reg.RecordFailure(w));  // already dead: counted, no edge
  EXPECT_EQ(reg.state(w), WorkerRegistry::State::kDead);
  EXPECT_EQ(reg.Snapshot()[0].failures, 2u);
}

TEST(WorkerRegistry, ContactNeverResurrectsADeadWorker) {
  Cranked t;
  WorkerRegistry reg(100, t.clock());
  const size_t w = reg.AddWorker("a");
  reg.RecordRegistered(w, 0, 1);
  ASSERT_TRUE(reg.RecordFailure(w));
  // A stale in-flight RPC completing after the death must not revive the
  // worker — rejoin requires geometry re-verification via RecordRegistered.
  reg.RecordContact(w);
  reg.RecordHeartbeat(w, 42);
  EXPECT_EQ(reg.state(w), WorkerRegistry::State::kDead);
}

TEST(WorkerRegistry, RejoinThroughReRegistration) {
  Cranked t;
  WorkerRegistry reg(100, t.clock());
  const size_t w = reg.AddWorker("a");
  reg.RecordRegistered(w, 3, 6);
  ASSERT_TRUE(reg.RecordFailure(w));

  t.now_ns = 400 * kMs;
  reg.RecordRegistered(w, 3, 6);
  EXPECT_EQ(reg.state(w), WorkerRegistry::State::kAlive);
  // Recency restarts at the rejoin instant; history is preserved.
  t.now_ns = 450 * kMs;
  EXPECT_TRUE(reg.CheckTimeouts().empty());
  const auto row = reg.Snapshot()[0];
  EXPECT_EQ(row.failures, 1u);
  EXPECT_EQ(row.age_ms, 50u);
}

}  // namespace
}  // namespace tq::runtime
