#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "quadtree/point_quadtree.h"
#include "test_util.h"

namespace tq {
namespace {

std::vector<PointEntry> RandomEntries(Rng* rng, size_t n, const Rect& w) {
  std::vector<PointEntry> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(PointEntry{
        Point{rng->NextUniform(w.min_x, w.max_x),
              rng->NextUniform(w.min_y, w.max_y)},
        static_cast<uint32_t>(i / 3), static_cast<uint32_t>(i % 3)});
  }
  return out;
}

TEST(PointQuadtree, SizeTracksInserts) {
  PointQuadtree qt(Rect::Of(0, 0, 100, 100), 4);
  EXPECT_EQ(qt.size(), 0u);
  qt.Insert(PointEntry{{1, 1}, 0, 0});
  qt.Insert(PointEntry{{2, 2}, 0, 1});
  EXPECT_EQ(qt.size(), 2u);
}

TEST(PointQuadtree, DiskQueryMatchesBruteForce) {
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  Rng rng(101);
  const auto entries = RandomEntries(&rng, 800, w);
  PointQuadtree qt(w, 8);
  for (const auto& e : entries) qt.Insert(e);

  for (int trial = 0; trial < 20; ++trial) {
    const Point c{rng.NextUniform(0, 1000), rng.NextUniform(0, 1000)};
    const double r = rng.NextUniform(10, 200);
    auto got = qt.DiskQuery(c, r);
    size_t expected = 0;
    for (const auto& e : entries) {
      if (Distance(e.p, c) <= r) ++expected;
    }
    EXPECT_EQ(got.size(), expected) << "trial " << trial;
    for (const auto& e : got) EXPECT_LE(Distance(e.p, c), r);
  }
}

TEST(PointQuadtree, RangeQueryMatchesBruteForce) {
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  Rng rng(103);
  const auto entries = RandomEntries(&rng, 600, w);
  PointQuadtree qt(w, 16);
  for (const auto& e : entries) qt.Insert(e);

  for (int trial = 0; trial < 20; ++trial) {
    const double x = rng.NextUniform(0, 900), y = rng.NextUniform(0, 900);
    const Rect q = Rect::Of(x, y, x + rng.NextUniform(10, 100),
                            y + rng.NextUniform(10, 100));
    const auto got = qt.RangeQuery(q);
    size_t expected = 0;
    for (const auto& e : entries) {
      if (q.Contains(e.p)) ++expected;
    }
    EXPECT_EQ(got.size(), expected);
  }
}

TEST(PointQuadtree, PayloadsSurviveSplits) {
  PointQuadtree qt(Rect::Of(0, 0, 100, 100), 2);  // force many splits
  for (uint32_t i = 0; i < 100; ++i) {
    qt.Insert(PointEntry{{static_cast<double>(i % 10) * 10 + 0.5,
                          static_cast<double>(i / 10) * 10 + 0.5},
                         i, i + 1000});
  }
  const auto all = qt.RangeQuery(Rect::Of(0, 0, 100, 100));
  ASSERT_EQ(all.size(), 100u);
  for (const auto& e : all) EXPECT_EQ(e.point_index, e.traj_id + 1000);
}

TEST(PointQuadtree, DuplicatePointsBeyondCapacity) {
  // All points identical: splits cannot separate them; max_depth must stop
  // the recursion rather than looping forever.
  PointQuadtree qt(Rect::Of(0, 0, 100, 100), 2, 8);
  for (uint32_t i = 0; i < 50; ++i) {
    qt.Insert(PointEntry{{50, 50}, i, 0});
  }
  EXPECT_EQ(qt.size(), 50u);
  EXPECT_EQ(qt.DiskQuery({50, 50}, 0.001).size(), 50u);
}

TEST(PointQuadtree, InsertAllIndexesEveryPoint) {
  Rng rng(105);
  const TrajectorySet users =
      testing::RandomUsers(&rng, 50, 2, 6, Rect::Of(0, 0, 1000, 1000));
  PointQuadtree qt(users.BoundingBox().Expanded(1.0), 8);
  qt.InsertAll(users);
  EXPECT_EQ(qt.size(), users.TotalPoints());
  // Every (traj, point) pair must be retrievable at its own location.
  for (uint32_t u = 0; u < users.size(); ++u) {
    const auto pts = users.points(u);
    for (size_t i = 0; i < pts.size(); ++i) {
      bool found = false;
      qt.ForEachInDisk(pts[i], 0.001, [&](const PointEntry& e) {
        found |= (e.traj_id == u && e.point_index == i);
      });
      EXPECT_TRUE(found) << "traj " << u << " point " << i;
    }
  }
}

TEST(PointQuadtree, EmptyQueries) {
  PointQuadtree qt(Rect::Of(0, 0, 10, 10), 4);
  EXPECT_TRUE(qt.DiskQuery({5, 5}, 3).empty());
  EXPECT_TRUE(qt.RangeQuery(Rect::Of(1, 1, 2, 2)).empty());
}

}  // namespace
}  // namespace tq
