#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/baseline.h"
#include "query/topk.h"
#include "test_util.h"

namespace tq {
namespace {

struct World {
  TrajectorySet users;
  TrajectorySet facilities;
  ServiceModel model;

  static World Make(uint64_t seed, size_t num_users, size_t min_pts,
                    size_t max_pts, size_t num_facs, ServiceModel model) {
    Rng rng(seed);
    const Rect w = Rect::Of(0, 0, 20000, 20000);
    World out{testing::RandomUsers(&rng, num_users, min_pts, max_pts, w),
              testing::RandomFacilities(&rng, num_facs, 10, w), model};
    return out;
  }
};

// All rankings must agree on values (sets may differ only on exact ties).
void ExpectSameRanking(const TopKResult& a, const TopKResult& b,
                       const char* what) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size()) << what;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_NEAR(a.ranked[i].value, b.ranked[i].value, 1e-6)
        << what << " rank " << i;
  }
}

TEST(TopK, BestFirstMatchesExhaustiveAndBaseline) {
  for (const ServiceModel& model : testing::AllModels(250.0)) {
    World world = World::Make(601, 400, 2, 2, 24, model);
    TQTreeOptions opt;
    opt.beta = 8;
    opt.model = model;
    TQTree tree(&world.users, opt);
    const ServiceEvaluator eval(&world.users, model);
    const FacilityCatalog catalog(&world.facilities, model.psi);
    PointQuadtree pq(world.users.BoundingBox().Expanded(1.0), 32);
    pq.InsertAll(world.users);

    const size_t k = 8;
    const TopKResult best_first = TopKFacilitiesTQ(&tree, catalog, eval, k);
    const TopKResult exhaustive =
        TopKFacilitiesExhaustiveTQ(&tree, catalog, eval, k);
    const TopKResult baseline = TopKFacilitiesBaseline(pq, catalog, eval, k);
    ExpectSameRanking(best_first, exhaustive, model.ToString().c_str());
    ExpectSameRanking(best_first, baseline, model.ToString().c_str());
    // And every reported value must be the facility's true SO.
    for (const RankedFacility& rf : best_first.ranked) {
      EXPECT_NEAR(rf.value,
                  testing::BruteForceSO(world.users,
                                        world.facilities.points(rf.id),
                                        model),
                  1e-6);
    }
  }
}

TEST(TopK, MultipointWholeTreeAgreesWithOracle) {
  const ServiceModel model = ServiceModel::PointCount(250.0);
  World world = World::Make(603, 250, 3, 7, 16, model);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  opt.mode = TrajMode::kWhole;  // full-trajectory approach (F-TQ)
  TQTree tree(&world.users, opt);
  const ServiceEvaluator eval(&world.users, model);
  const FacilityCatalog catalog(&world.facilities, model.psi);
  const TopKResult got = TopKFacilitiesTQ(&tree, catalog, eval, 5);
  ASSERT_EQ(got.ranked.size(), 5u);
  for (const RankedFacility& rf : got.ranked) {
    EXPECT_NEAR(rf.value,
                testing::BruteForceSO(world.users,
                                      world.facilities.points(rf.id), model),
                1e-6);
  }
  // Descending order.
  for (size_t i = 1; i < got.ranked.size(); ++i) {
    EXPECT_GE(got.ranked[i - 1].value, got.ranked[i].value - 1e-9);
  }
}

TEST(TopK, SegmentedTreeAgreesWithOracle) {
  const ServiceModel model = ServiceModel::Length(250.0);
  World world = World::Make(605, 200, 3, 7, 16, model);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  opt.mode = TrajMode::kSegmented;  // S-TQ
  TQTree tree(&world.users, opt);
  const ServiceEvaluator eval(&world.users, model);
  const FacilityCatalog catalog(&world.facilities, model.psi);
  const TopKResult got = TopKFacilitiesTQ(&tree, catalog, eval, 6);
  const TopKResult ex = TopKFacilitiesExhaustiveTQ(&tree, catalog, eval, 6);
  ExpectSameRanking(got, ex, "segmented");
  for (const RankedFacility& rf : got.ranked) {
    EXPECT_NEAR(rf.value,
                testing::BruteForceSO(world.users,
                                      world.facilities.points(rf.id), model),
                1e-6);
  }
}

TEST(TopK, KLargerThanFacilityCountReturnsAll) {
  const ServiceModel model = ServiceModel::Endpoints(250.0);
  World world = World::Make(607, 100, 2, 2, 5, model);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&world.users, opt);
  const ServiceEvaluator eval(&world.users, model);
  const FacilityCatalog catalog(&world.facilities, model.psi);
  const TopKResult got = TopKFacilitiesTQ(&tree, catalog, eval, 50);
  EXPECT_EQ(got.ranked.size(), 5u);
}

TEST(TopK, KZeroReturnsEmpty) {
  const ServiceModel model = ServiceModel::Endpoints(250.0);
  World world = World::Make(609, 50, 2, 2, 5, model);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&world.users, opt);
  const ServiceEvaluator eval(&world.users, model);
  const FacilityCatalog catalog(&world.facilities, model.psi);
  EXPECT_TRUE(TopKFacilitiesTQ(&tree, catalog, eval, 0).ranked.empty());
}

TEST(TopK, DeterministicAcrossRuns) {
  const ServiceModel model = ServiceModel::Endpoints(250.0);
  World world = World::Make(611, 300, 2, 2, 20, model);
  TQTreeOptions opt;
  opt.model = model;
  TQTree tree(&world.users, opt);
  const ServiceEvaluator eval(&world.users, model);
  const FacilityCatalog catalog(&world.facilities, model.psi);
  const TopKResult a = TopKFacilitiesTQ(&tree, catalog, eval, 10);
  const TopKResult b = TopKFacilitiesTQ(&tree, catalog, eval, 10);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].id, b.ranked[i].id);
    EXPECT_DOUBLE_EQ(a.ranked[i].value, b.ranked[i].value);
  }
}

TEST(TopK, BestFirstDoesLessWorkThanExhaustiveForSmallK) {
  // Two-tier workload: one dominant hub facility serving a dense cluster,
  // many satellite facilities each serving a small pocket. With k = 1 the
  // hub completes first and every satellite's optimistic bound (its q-node
  // subtree population) stays below the hub's actual value, so best-first
  // never inspects the satellites' candidate lists.
  const ServiceModel model = ServiceModel::Endpoints(400.0);
  Rng rng(613);
  TrajectorySet users;
  // Dense hub cluster at (5000, 5000).
  for (int i = 0; i < 3000; ++i) {
    const Point t[] = {{rng.NextGaussian(5000, 150), rng.NextGaussian(5000, 150)},
                       {rng.NextGaussian(5000, 150), rng.NextGaussian(5000, 150)}};
    users.Add(t);
  }
  // Small pockets, 40 users each, far from the hub.
  std::vector<Point> pockets;
  for (int p = 0; p < 16; ++p) {
    const Point c{15000.0 + 2000.0 * (p % 4), 15000.0 + 2000.0 * (p / 4)};
    pockets.push_back(c);
    for (int i = 0; i < 40; ++i) {
      const Point t[] = {{rng.NextGaussian(c.x, 100), rng.NextGaussian(c.y, 100)},
                         {rng.NextGaussian(c.x, 100), rng.NextGaussian(c.y, 100)}};
      users.Add(t);
    }
  }
  TrajectorySet facs;
  const Point hub_route[] = {{4800, 4800}, {5000, 5000}, {5200, 5200}};
  facs.Add(hub_route);
  for (const Point& c : pockets) {
    const Point route[] = {{c.x - 100, c.y}, {c.x + 100, c.y}};
    facs.Add(route);
  }
  TQTreeOptions opt;
  opt.beta = 32;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);
  const TopKResult bf = TopKFacilitiesTQ(&tree, catalog, eval, 1);
  const TopKResult ex = TopKFacilitiesExhaustiveTQ(&tree, catalog, eval, 1);
  ASSERT_EQ(bf.ranked.size(), 1u);
  EXPECT_EQ(bf.ranked[0].id, 0u);  // the hub wins
  EXPECT_NEAR(bf.ranked[0].value, ex.ranked[0].value, 1e-9);
  // The best-first search must not fully evaluate every facility.
  EXPECT_LT(bf.stats.exact_checks, ex.stats.exact_checks)
      << "best-first pruning saved nothing";
}

TEST(TopK, AncestorStoredPartialServiceIsCounted) {
  // Regression: a trajectory spanning the root split (stored in the root's
  // inter-node list) with ONE endpoint near a facility wholly contained in a
  // quadrant. Under point-count service it contributes 0.5; the best-first
  // search must include ancestor lists or it silently drops this.
  TrajectorySet users;
  const Point spanner[] = {{2000, 2000}, {8000, 8000}};
  users.Add(spanner);
  // Filler so the root actually splits.
  Rng rng(617);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextUniform(0, 4000);
    const double y = rng.NextUniform(0, 4000);
    const Point t[] = {{x, y}, {x + 50, y + 50}};
    users.Add(t);
  }
  // Pin the world so (2000,2000) and (8000,8000) land in different root
  // quadrants.
  const Point far_a[] = {{0, 0}, {10, 10}};
  const Point far_b[] = {{9990, 9990}, {10000, 10000}};
  users.Add(far_a);
  users.Add(far_b);

  TrajectorySet facs;
  const Point near_source[] = {{1900, 2000}, {2100, 2000}};
  facs.Add(near_source);

  const ServiceModel model = ServiceModel::PointCount(150.0);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);

  const TopKResult bf = TopKFacilitiesTQ(&tree, catalog, eval, 1);
  const double oracle =
      testing::BruteForceSO(users, facs.points(0), model);
  ASSERT_EQ(bf.ranked.size(), 1u);
  EXPECT_NEAR(bf.ranked[0].value, oracle, 1e-9);
  // And the spanner really is worth 0.5 to this facility.
  EXPECT_DOUBLE_EQ(eval.Evaluate(0, catalog.grid(0)), 0.5);
}

TEST(TopK, AncestorStoredMultipointEndpointServiceIsCounted) {
  // Regression: under the ENDPOINTS model a whole multipoint trajectory is
  // stored by its full MBR, which its middle points can inflate far beyond
  // the served endpoints. Source and destination both sit next to the
  // facility (full service of 1.0), but the detour through (8000,8000)
  // spans the root split, parking the unit in an ancestor inter-node list.
  // kStartEnd pruning alone must NOT make best-first skip ancestors here.
  TrajectorySet users;
  const Point detour[] = {{1950, 2000}, {8000, 8000}, {2050, 2000}};
  users.Add(detour);
  Rng rng(619);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextUniform(0, 4000);
    const double y = rng.NextUniform(0, 4000);
    const Point t[] = {{x, y}, {x + 30, y + 30}, {x + 60, y}};
    users.Add(t);
  }
  const Point far_a[] = {{0, 0}, {5, 5}, {10, 10}};
  const Point far_b[] = {{9990, 9990}, {9995, 9995}, {10000, 10000}};
  users.Add(far_a);
  users.Add(far_b);

  TrajectorySet facs;
  const Point near_both_ends[] = {{1900, 2000}, {2100, 2000}};
  facs.Add(near_both_ends);

  const ServiceModel model = ServiceModel::Endpoints(150.0);
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  TQTree tree(&users, opt);
  ASSERT_FALSE(tree.two_point_units());
  const ServiceEvaluator eval(&users, model);
  const FacilityCatalog catalog(&facs, model.psi);

  const TopKResult bf = TopKFacilitiesTQ(&tree, catalog, eval, 1);
  const double oracle = testing::BruteForceSO(users, facs.points(0), model);
  ASSERT_EQ(bf.ranked.size(), 1u);
  EXPECT_NEAR(bf.ranked[0].value, oracle, 1e-9);
  // The detour trajectory itself is fully served despite its huge MBR.
  EXPECT_DOUBLE_EQ(eval.Evaluate(0, catalog.grid(0)), 1.0);
}

TEST(TopK, TieBreakingByIdMatchesExhaustive) {
  // Regression for ranking nondeterminism: a catalog engineered so several
  // facilities have EXACTLY equal service values (duplicated stop
  // sequences evaluate to bitwise-identical SO). The best-first search and
  // the exhaustive sort must agree on the full id sequence, which pins the
  // documented tie rule: descending value, ascending facility id.
  const ServiceModel model = ServiceModel::PointCount(250.0);
  World world = World::Make(619, 300, 2, 6, 4, model);
  // Facilities: 4 distinct routes, each duplicated — ids {0,4}, {1,5},
  // {2,6}, {3,7} form exact-tie groups, interleaved so id order and value
  // order disagree.
  TrajectorySet facs;
  for (int copy = 0; copy < 2; ++copy) {
    for (uint32_t f = 0; f < world.facilities.size(); ++f) {
      facs.Add(world.facilities.points(f));
    }
  }
  TQTreeOptions opt;
  opt.beta = 8;
  opt.model = model;
  TQTree tree(&world.users, opt);
  const ServiceEvaluator eval(&world.users, model);
  const FacilityCatalog catalog(&facs, model.psi);

  const size_t k = facs.size();
  const TopKResult bf = TopKFacilitiesTQ(&tree, catalog, eval, k);
  const TopKResult ex = TopKFacilitiesExhaustiveTQ(&tree, catalog, eval, k);
  ASSERT_EQ(bf.ranked.size(), k);
  ASSERT_EQ(ex.ranked.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(bf.ranked[i].id, ex.ranked[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(bf.ranked[i].value, ex.ranked[i].value) << "rank " << i;
  }
  // The tie groups really are exact ties, and within each the smaller id
  // must precede the larger.
  const size_t half = world.facilities.size();
  for (uint32_t f = 0; f < half; ++f) {
    const auto pos = [&](FacilityId id) {
      for (size_t i = 0; i < k; ++i) {
        if (bf.ranked[i].id == id) return i;
      }
      return k;
    };
    const size_t lo = pos(f);
    const size_t hi = pos(static_cast<FacilityId>(f + half));
    ASSERT_LT(lo, k);
    ASSERT_LT(hi, k);
    EXPECT_DOUBLE_EQ(bf.ranked[lo].value, bf.ranked[hi].value);
    EXPECT_LT(lo, hi) << "tie between facility " << f << " and " << f + half
                      << " not broken by ascending id";
  }
}

TEST(BaselineService, MatchesOracleDirectly) {
  Rng rng(615);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 6, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 8, 10, w);
  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 16);
  pq.InsertAll(users);
  for (const ServiceModel& model : testing::AllModels(250.0)) {
    const ServiceEvaluator eval(&users, model);
    for (uint32_t f = 0; f < facs.size(); ++f) {
      const StopGrid grid(facs.points(f), model.psi);
      EXPECT_NEAR(EvaluateServiceBaseline(pq, eval, grid),
                  testing::BruteForceSO(users, facs.points(f), model), 1e-6)
          << model.ToString();
    }
  }
}

}  // namespace
}  // namespace tq
