#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/eval_service.h"
#include "test_util.h"

namespace tq {
namespace {

struct Config {
  IndexVariant variant;
  TrajMode mode;
  const char* name;
};

class EvalServiceTest
    : public ::testing::TestWithParam<std::tuple<Config, int>> {};

TEST_P(EvalServiceTest, MatchesBruteForceOracle) {
  const auto& [config, model_index] = GetParam();
  Rng rng(501 + static_cast<uint64_t>(model_index));
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const bool segmented = config.mode == TrajMode::kSegmented;
  // Segmented trees need multipoint data to be interesting; whole-mode
  // endpoint tests use both 2-point and multipoint users.
  const TrajectorySet users =
      testing::RandomUsers(&rng, 300, 2, segmented ? 7 : 5, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 12, 10, w);
  const ServiceModel model = testing::AllModels(250.0)[
      static_cast<size_t>(model_index)];

  TQTreeOptions opt;
  opt.beta = 8;
  opt.variant = config.variant;
  opt.mode = config.mode;
  opt.model = model;
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, model);

  for (uint32_t f = 0; f < facs.size(); ++f) {
    const StopGrid grid(facs.points(f), model.psi);
    const double got = EvaluateServiceTQ(&tree, eval, grid);
    const double want =
        testing::BruteForceSO(users, facs.points(f), model);
    EXPECT_NEAR(got, want, 1e-6)
        << config.name << " model=" << model.ToString() << " facility " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAllModels, EvalServiceTest,
    ::testing::Combine(
        ::testing::Values(
            Config{IndexVariant::kBasic, TrajMode::kWhole, "TQ(B)-whole"},
            Config{IndexVariant::kZOrder, TrajMode::kWhole, "TQ(Z)-whole"},
            Config{IndexVariant::kBasic, TrajMode::kSegmented, "TQ(B)-seg"},
            Config{IndexVariant::kZOrder, TrajMode::kSegmented,
                   "TQ(Z)-seg"}),
        ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<Config, int>>& info) {
      std::string name = std::get<0>(info.param).name;
      for (char& c : name) {
        if (c == '(' || c == ')' || c == '-') c = '_';
      }
      return name + "_m" + std::to_string(std::get<1>(info.param));
    });

TEST(EvalService, ComponentClipKeepsOnlyRelevantStops) {
  const std::vector<Point> stops = {{10, 10}, {500, 500}, {990, 990}};
  const StopGrid grid(stops, 20.0);
  const Component full = FullComponent(grid);
  EXPECT_EQ(full.size(), 3u);
  const Component clipped =
      ClipComponent(grid, full, Rect::Of(0, 0, 100, 100));
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped[0], 0u);
  // A stop just outside still counts when its ψ-disk reaches the rect.
  const Component near =
      ClipComponent(grid, full, Rect::Of(0, 0, 495, 495));
  EXPECT_EQ(near.size(), 2u);
}

TEST(EvalService, ComponentEmbrCoversServingArea) {
  const std::vector<Point> stops = {{100, 100}, {200, 200}};
  const StopGrid grid(stops, 50.0);
  const Rect embr = ComponentEmbr(grid, FullComponent(grid));
  EXPECT_EQ(embr, Rect::Of(50, 50, 250, 250));
  const Rect partial = ComponentEmbr(grid, Component{1});
  EXPECT_EQ(partial, Rect::Of(150, 150, 250, 250));
}

TEST(EvalService, FarAwayFacilityServesNothing) {
  Rng rng(503);
  const Rect w = Rect::Of(0, 0, 1000, 1000);
  const TrajectorySet users = testing::RandomUsers(&rng, 100, 2, 2, w);
  TQTreeOptions opt;
  opt.model = ServiceModel::Endpoints(50);
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, opt.model);
  const std::vector<Point> stops = {{50000, 50000}};
  const StopGrid grid(stops, 50.0);
  QueryStats stats;
  EXPECT_DOUBLE_EQ(EvaluateServiceTQ(&tree, eval, grid, &stats), 0.0);
  // The whole tree must be pruned after the root visit.
  EXPECT_LE(stats.nodes_visited, 1u);
}

TEST(EvalService, CollectServedMatchesEvaluate) {
  Rng rng(505);
  const Rect w = Rect::Of(0, 0, 20000, 20000);
  const TrajectorySet users = testing::RandomUsers(&rng, 300, 2, 6, w);
  const TrajectorySet facs = testing::RandomFacilities(&rng, 6, 10, w);
  for (const ServiceModel& model : testing::AllModels(250.0)) {
    for (const TrajMode mode : {TrajMode::kWhole, TrajMode::kSegmented}) {
      TQTreeOptions opt;
      opt.beta = 8;
      opt.mode = mode;
      opt.model = model;
      TQTree tree(&users, opt);
      const ServiceEvaluator eval(&users, model);
      for (uint32_t f = 0; f < facs.size(); ++f) {
        const StopGrid grid(facs.points(f), model.psi);
        std::unordered_map<uint32_t, DynamicBitset> served;
        CollectServedTQ(&tree, eval, grid, &served);
        double so = 0.0;
        for (const auto& [user, mask] : served) {
          so += eval.ValueOfMask(user, mask);
        }
        EXPECT_NEAR(so, EvaluateServiceTQ(&tree, eval, grid), 1e-6)
            << model.ToString();
      }
    }
  }
}

TEST(EvalService, StatsCountPruning) {
  Rng rng(507);
  const Rect w = Rect::Of(0, 0, 50000, 50000);
  const TrajectorySet users = testing::RandomUsers(&rng, 3000, 2, 2, w);
  TQTreeOptions opt;
  opt.beta = 32;
  opt.model = ServiceModel::Endpoints(150);
  TQTree tree(&users, opt);
  const ServiceEvaluator eval(&users, opt.model);
  // Tight facility in a corner: far fewer exact checks than users.
  const std::vector<Point> stops = {{1000, 1000}, {1500, 1500}};
  const StopGrid grid(stops, 150.0);
  QueryStats stats;
  EvaluateServiceTQ(&tree, eval, grid, &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_LT(stats.exact_checks, users.size() / 2)
      << "pruning had no effect";
}

}  // namespace
}  // namespace tq
