// Scenario 3 of the paper: a transport operator offers on-board Wi-Fi /
// moving advertisements and wants the k routes that maximise the *length* of
// user journeys covered. The service value of a user is the fraction of
// their trajectory length riding within ψ of route stops. Demonstrates the
// length service model on GPS traces.
#include <cstdio>

#include "cover/greedy.h"
#include "datagen/presets.h"
#include "query/topk.h"

int main() {
  // Commuter GPS traces (Geolife-like) and candidate bus corridors.
  const tq::TrajectorySet traces = tq::presets::BjgTraces(15000);
  const tq::TrajectorySet routes = tq::presets::BjBusRoutes(64, 48);

  const tq::ServiceModel model = tq::ServiceModel::Length(300.0);
  const tq::ServiceEvaluator evaluator(&traces, model);
  const tq::FacilityCatalog catalog(&routes, model.psi);

  // Scenario 3 over multipoint traces: the segmented TQ-tree keeps the AND
  // zReduce filter exact (a journey segment is covered only when both of
  // its fixes are near stops).
  tq::TQTreeOptions options;
  options.mode = tq::TrajMode::kSegmented;
  options.model = model;
  tq::TQTree index(&traces, options);

  const size_t k = 5;
  const tq::TopKResult top = tq::TopKFacilitiesTQ(&index, catalog,
                                                  evaluator, k);
  std::printf("Top-%zu corridors by journey-length coverage "
              "(%zu traces):\n",
              k, traces.size());
  for (const tq::RankedFacility& rf : top.ranked) {
    std::printf("  route %-4u covers %.1f journey-equivalents of "
                "ad exposure\n",
                rf.id, rf.value);
  }

  // Average exposure share for the winner's riders.
  const tq::StopGrid& best = catalog.grid(top.ranked[0].id);
  size_t riders = 0;
  double covered = 0.0;
  for (uint32_t u = 0; u < traces.size(); ++u) {
    const double share = evaluator.Evaluate(u, best);
    if (share > 0.0) {
      ++riders;
      covered += share;
    }
  }
  std::printf("\nWinning route: %zu riders see ads for %.0f%% of their "
              "journey on average\n",
              riders, riders == 0 ? 0.0 : 100.0 * covered /
                                              static_cast<double>(riders));

  const tq::CoverResult fleet = tq::GreedyCoverTQ(&index, catalog,
                                                  evaluator, k);
  std::printf("Joint %zu-route ad network covers %.1f "
              "journey-equivalents over %zu riders\n",
              k, fleet.total, fleet.users_served);
  return 0;
}
