// Scenario 2 of the paper: a tour operator runs k bus routes to serve
// tourists, each of whom has a list of POIs to visit (a multipoint
// trajectory). A tourist can be served *partially* — the service value is
// the fraction of their POIs reachable from route stops. Demonstrates the
// point-count service model and the Segmented vs Full-trajectory TQ-trees.
#include <cstdio>

#include "cover/greedy.h"
#include "datagen/presets.h"
#include "query/topk.h"

int main() {
  // Tourists: itineraries of 3-10 POIs each (Foursquare-like check-ins).
  const tq::TrajectorySet tourists = tq::presets::NyfCheckins(30000);
  const tq::TrajectorySet routes = tq::presets::NyBusRoutes(48, 40);

  // ψ = 250 m: a POI is visitable if a stop is within a short walk.
  const tq::ServiceModel model = tq::ServiceModel::PointCount(250.0);
  const tq::ServiceEvaluator evaluator(&tourists, model);
  const tq::FacilityCatalog catalog(&routes, model.psi);

  // Both generalised index layouts of §III-A answer the same queries.
  tq::TQTreeOptions seg_options;
  seg_options.mode = tq::TrajMode::kSegmented;
  seg_options.model = model;
  tq::TQTree segmented(&tourists, seg_options);

  tq::TQTreeOptions full_options;
  full_options.mode = tq::TrajMode::kWhole;
  full_options.model = model;
  tq::TQTree full(&tourists, full_options);

  std::printf("Segmented index: %s\n",
              segmented.ComputeStats().ToString().c_str());
  std::printf("Full-traj index: %s\n", full.ComputeStats().ToString().c_str());

  const size_t k = 4;
  const tq::TopKResult via_seg =
      tq::TopKFacilitiesTQ(&segmented, catalog, evaluator, k);
  const tq::TopKResult via_full =
      tq::TopKFacilitiesTQ(&full, catalog, evaluator, k);

  std::printf("\nTop-%zu routes by expected POI coverage:\n", k);
  for (size_t i = 0; i < k; ++i) {
    std::printf("  #%zu route %-4u covers %.1f tourist-itineraries' worth "
                "of POIs (full-traj agrees: %.1f)\n",
                i + 1, via_seg.ranked[i].id, via_seg.ranked[i].value,
                via_full.ranked[i].value);
  }

  // The operator fields k buses jointly: POIs covered by any chosen route
  // count once per tourist (AGG union of §II-B).
  const tq::CoverResult network =
      tq::GreedyCoverTQ(&full, catalog, evaluator, k);
  std::printf("\nJoint %zu-route tour network: total POI-coverage score "
              "%.1f across %zu partially-served tourists\n",
              k, network.total, network.users_served);
  return 0;
}
