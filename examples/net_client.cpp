// Serving over the wire: the sharded engine behind the TCP front-end, and
// a client running a batched top-k + service-value query against it —
// everything the `tqcover_cli serve --listen PORT` deployment does, in one
// self-contained process (the server binds an ephemeral loopback port).
//
//   ./net_client
//
// In a real deployment the two halves live in different processes:
//
//   ./tqcover_cli serve --users u.bin --facilities f.bin
//       --shards 4 --listen 7070            # terminal 1
//   (link src/net/client.h and Connect("...", 7070))   # terminal 2
#include <cstdio>

#include "datagen/presets.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/sharded_engine.h"

int main() {
  // 1. An engine, as in concurrent_serving: taxi trips vs candidate bus
  //    routes, partitioned over 4 shard TQ-trees.
  tq::runtime::ShardedEngineOptions options;
  options.num_shards = 4;
  options.num_threads = 4;
  options.tree.beta = 64;
  options.tree.model = tq::ServiceModel::Endpoints(200.0);
  tq::runtime::ShardedEngine engine(tq::presets::NytTrips(20000),
                                    tq::presets::NyBusRoutes(32, 24),
                                    options);

  // 2. The network front-end: one epoll thread, no thread per connection.
  //    Port 0 asks the kernel for an ephemeral port.
  tq::net::NetServer server(&engine, tq::net::NetServerOptions{});
  if (const tq::Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // 3. A client connection. One frame can carry a BATCH of queries — here
  //    three kMaxRRST queries (k = 1, 3, 5) in a single round-trip.
  tq::net::NetClient client;
  if (const tq::Status st = client.Connect("127.0.0.1", server.port());
      !st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }
  tq::net::NetResponse response;
  if (const tq::Status st = client.TopK({1, 3, 5}, &response); !st.ok()) {
    std::fprintf(stderr, "topk: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("top-k over the wire (snapshot v%llu):\n",
              static_cast<unsigned long long>(response.snapshot_version));
  for (const tq::net::RankedResult& q : response.topks) {
    std::printf("  k=%zu:", q.ranked.size());
    for (const tq::RankedFacility& rf : q.ranked) {
      std::printf(" route %u (SO %.0f)", rf.id, rf.value);
    }
    std::printf("\n");
  }

  // 4. Batched service values for the winning route and its runner-up, and
  //    the same numbers straight from the engine — the wire adds framing,
  //    not arithmetic: values match bit for bit.
  const tq::FacilityId best = response.topks.back().ranked.front().id;
  const tq::FacilityId second = response.topks.back().ranked[1].id;
  if (const tq::Status st = client.Sum({best, second}, &response);
      !st.ok()) {
    std::fprintf(stderr, "sum: %s\n", st.ToString().c_str());
    return 1;
  }
  const double direct =
      engine.Submit(tq::runtime::QueryRequest::ServiceValue(best))
          .get()
          .value;
  std::printf("route %u serves %.0f commuters over the wire, %.0f direct "
              "(%s)\n",
              best, response.sums[0].value, direct,
              response.sums[0].value == direct ? "bit-identical" : "MISMATCH");

  // 5. A write batch over the wire: 100 new commuters along the winning
  //    route; the response reports the new snapshot version, the per-shard
  //    generations, and the ids assigned to the inserts.
  const auto stops = engine.snapshot()->facilities->points(best);
  std::vector<std::vector<tq::Point>> inserts;
  for (int i = 0; i < 100; ++i) {
    const tq::Point& a = stops[i % stops.size()];
    const tq::Point& b = stops[(i + 3) % stops.size()];
    inserts.push_back({{a.x + 50.0, a.y + 50.0}, {b.x - 50.0, b.y - 50.0}});
  }
  if (const tq::Status st = client.Update(std::move(inserts), {}, &response);
      !st.ok()) {
    std::fprintf(stderr, "update: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("update published snapshot v%llu (%zu ids assigned)\n",
              static_cast<unsigned long long>(response.snapshot_version),
              response.assigned_ids.size());
  if (const tq::Status st = client.Sum({best}, &response); !st.ok()) {
    std::fprintf(stderr, "sum: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("route %u now serves %.0f commuters\n", best,
              response.sums[0].value);

  client.Close();
  server.Stop();
  std::printf("metrics: %s\n", engine.metrics().Read().ToJson().c_str());
  return 0;
}
