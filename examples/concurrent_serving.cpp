// Concurrent serving: run the TQ-tree behind the multi-threaded query
// engine — shared-nothing snapshot reads, copy-on-write updates, and a
// sharded result cache — instead of calling the evaluators inline.
//
//   ./concurrent_serving
#include <cstdio>
#include <future>
#include <vector>

#include "datagen/presets.h"
#include "runtime/engine.h"

int main() {
  // 1. Data and model, as in quickstart: taxi trips vs candidate bus routes.
  tq::TrajectorySet users = tq::presets::NytTrips(20000);
  tq::TrajectorySet routes = tq::presets::NyBusRoutes(32, 24);
  tq::runtime::EngineOptions options;
  options.num_threads = 4;
  options.cache_capacity = 1024;
  options.tree.beta = 64;
  options.tree.model = tq::ServiceModel::Endpoints(200.0);

  // 2. The engine bulk-builds the index and publishes snapshot version 1.
  //    From here on, any thread may Submit queries; none of them ever block
  //    each other or the writer.
  tq::runtime::Engine engine(std::move(users), std::move(routes), options);
  std::printf("engine serving %zu routes at snapshot v%llu\n",
              engine.snapshot()->catalog->size(),
              static_cast<unsigned long long>(engine.snapshot()->version));

  // 3. A concurrent burst: every route's service value plus one kMaxRRST,
  //    all in flight at once across the worker pool.
  std::vector<std::future<tq::runtime::QueryResponse>> futures;
  for (tq::FacilityId f = 0; f < 32; ++f) {
    futures.push_back(
        engine.Submit(tq::runtime::QueryRequest::ServiceValue(f)));
  }
  std::future<tq::runtime::QueryResponse> topk =
      engine.Submit(tq::runtime::QueryRequest::TopK(5));
  double best = 0.0;
  tq::FacilityId best_id = 0;
  for (auto& f : futures) {
    const tq::runtime::QueryResponse r = f.get();
    // (QueryRequest order ties responses to facility ids 0..31.)
    if (r.value > best) best = r.value;
  }
  const tq::runtime::QueryResponse ranked = topk.get();
  best_id = ranked.ranked.front().id;
  std::printf("best route %u serves %.0f commuters (top-k agrees: %s)\n",
              best_id, ranked.ranked.front().value,
              ranked.ranked.front().value == best ? "yes" : "no");

  // 4. Live update: a new commuter cohort appears along the winning route.
  //    The writer clones the tree copy-on-write and publishes version 2;
  //    queries that were in flight keep reading version 1 until they finish.
  const auto stops = engine.snapshot()->facilities->points(best_id);
  tq::runtime::UpdateBatch batch;
  for (int i = 0; i < 500; ++i) {
    const tq::Point& a = stops[i % stops.size()];
    const tq::Point& b = stops[(i + 3) % stops.size()];
    batch.inserts.push_back(
        {{a.x + 50.0, a.y + 50.0}, {b.x - 50.0, b.y - 50.0}});
  }
  engine.ApplyUpdates(batch);
  const tq::runtime::QueryResponse after =
      engine.Submit(tq::runtime::QueryRequest::TopK(1)).get();
  std::printf("after publish v%llu the best route serves %.0f commuters\n",
              static_cast<unsigned long long>(after.snapshot_version),
              after.ranked.front().value);

  // 5. Serving telemetry: cache behaviour and traversal work, as JSON.
  std::printf("metrics: %s\n", engine.metrics().Read().ToJson().c_str());
  return 0;
}
