// Scenario 1 of the paper: an autonomous transport company picks new service
// routes for commuters who currently drive (their daily commutes are
// source→destination trajectories). Demonstrates:
//   * comparing candidate route portfolios with kMaxRRST vs MaxkCovRST,
//   * dynamic index maintenance as new commute data streams in (§III-C).
#include <cstdio>
#include <vector>

#include "cover/greedy.h"
#include "datagen/presets.h"
#include "query/topk.h"

int main() {
  const tq::CityModel city = tq::presets::NewYork();
  tq::Rng rng(20260611);

  // Commute dataset: morning trips clustered around hotspots.
  tq::TaxiTripOptions trip_opt;
  trip_opt.num_trips = 80000;
  trip_opt.seed = 7;
  tq::TrajectorySet commutes = tq::GenerateTaxiTrips(city, trip_opt);

  // Candidate service routes proposed by planners.
  tq::BusRouteOptions route_opt;
  route_opt.num_routes = 96;
  route_opt.stops_per_route = 48;
  route_opt.seed = 11;
  const tq::TrajectorySet candidates = tq::GenerateBusRoutes(city, route_opt);

  const tq::ServiceModel model = tq::ServiceModel::Endpoints(300.0);
  tq::TQTreeOptions options;
  options.model = model;
  tq::TQTree index(&commutes, options);
  const tq::ServiceEvaluator evaluator(&commutes, model);
  const tq::FacilityCatalog catalog(&candidates, model.psi);

  const size_t k = 6;
  const tq::TopKResult individual =
      tq::TopKFacilitiesTQ(&index, catalog, evaluator, k);
  const tq::CoverResult joint =
      tq::GreedyCoverTQ(&index, catalog, evaluator, k);

  std::printf("Fleet of %zu routes for %zu commuters:\n", k, commutes.size());
  std::printf("  kMaxRRST picks (independent winners): ");
  double naive_sum = 0;
  for (const auto& rf : individual.ranked) {
    std::printf("%u ", rf.id);
    naive_sum += rf.value;
  }
  std::printf("\n    sum of individual coverage: %.0f (double-counts "
              "commuters served by several routes)\n",
              naive_sum);
  std::printf("  MaxkCovRST picks (joint network):     ");
  for (const tq::FacilityId f : joint.chosen) std::printf("%u ", f);
  std::printf("\n    distinct commuters served jointly: %zu\n",
              joint.users_served);

  // New week of commute data arrives: extend the set and the index.
  std::printf("\nStreaming in 5,000 new commutes...\n");
  for (int i = 0; i < 5000; ++i) {
    const tq::Point src = city.SamplePoint(&rng);
    const tq::Point dst = city.SamplePoint(&rng);
    const tq::Point pts[2] = {src, dst};
    const uint32_t id = commutes.Add(pts);
    index.Insert(id);  // O(height) per §III-C
  }
  const tq::TopKResult updated =
      tq::TopKFacilitiesTQ(&index, catalog, evaluator, k);
  std::printf("Top route after update: %u (%.0f commuters, was %u/%.0f)\n",
              updated.ranked[0].id, updated.ranked[0].value,
              individual.ranked[0].id, individual.ranked[0].value);
  return 0;
}
