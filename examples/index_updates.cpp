// Dynamic maintenance walk-through (§III-C): insert and remove trajectories
// in a live TQ-tree while queries keep answering exactly.
#include <cstdio>

#include "datagen/presets.h"
#include "query/topk.h"

int main() {
  tq::TrajectorySet trips = tq::presets::NytTrips(20000);
  const tq::TrajectorySet routes = tq::presets::NyBusRoutes(16, 48);
  const tq::ServiceModel model = tq::ServiceModel::Endpoints(200.0);

  tq::TQTreeOptions options;
  options.model = model;
  tq::TQTree index(&trips, options);
  const tq::ServiceEvaluator evaluator(&trips, model);
  const tq::FacilityCatalog catalog(&routes, model.psi);

  const tq::StopGrid& probe = catalog.grid(0);
  std::printf("initial:  SO(U, route0) = %.0f   [%s]\n",
              tq::EvaluateServiceTQ(&index, evaluator, probe),
              index.ComputeStats().ToString().c_str());

  // Retire the oldest quarter of the data (e.g. a sliding-window feed).
  const uint32_t retired = static_cast<uint32_t>(trips.size() / 4);
  for (uint32_t u = 0; u < retired; ++u) index.Remove(u);
  std::printf("-25%%:     SO(U, route0) = %.0f   (units=%zu)\n",
              tq::EvaluateServiceTQ(&index, evaluator, probe),
              index.num_units());

  // Fresh trips arrive; the z-indexes of the touched nodes rebuild lazily
  // on the next query.
  const tq::CityModel city = tq::presets::NewYork();
  tq::Rng rng(99);
  for (int i = 0; i < 8000; ++i) {
    const tq::Point pts[2] = {city.SamplePoint(&rng), city.SamplePoint(&rng)};
    index.Insert(trips.Add(pts));
  }
  std::printf("+8k new:  SO(U, route0) = %.0f   (units=%zu)\n",
              tq::EvaluateServiceTQ(&index, evaluator, probe),
              index.num_units());

  // The maintained index still agrees with a cold rebuild. The rebuilt tree
  // indexes everything, so retire the same prefix before comparing.
  tq::TQTree rebuilt(&trips, options);
  for (uint32_t u = 0; u < retired; ++u) rebuilt.Remove(u);
  const double a = tq::EvaluateServiceTQ(&index, evaluator, probe);
  const double b = tq::EvaluateServiceTQ(&rebuilt, evaluator, probe);
  std::printf("maintained vs rebuilt: %.0f vs %.0f (%s)\n", a, b,
              a == b ? "identical" : "MISMATCH");
  return a == b ? 0 : 1;
}
