// Quickstart: build a TQ-tree over taxi trips, run a kMaxRRST query, and a
// MaxkCovRST query — the whole public API in ~60 lines.
//
//   ./quickstart
#include <cstdio>

#include "cover/greedy.h"
#include "datagen/presets.h"
#include "query/topk.h"

int main() {
  // 1. Data: 50k synthetic NYC-like taxi trips (users) and 64 candidate bus
  //    routes with 32 stops each (facilities). Plug in your own data with
  //    tq::LoadTrajectoryCsv.
  const tq::TrajectorySet users = tq::presets::NytTrips(50000);
  const tq::TrajectorySet routes = tq::presets::NyBusRoutes(64, 32);

  // 2. Service model: Scenario 1 — a commuter rides a route if both their
  //    pickup and drop-off are within ψ = 200 m of some stop.
  const tq::ServiceModel model = tq::ServiceModel::Endpoints(200.0);

  // 3. Index: the TQ-tree (z-order variant) over the users.
  tq::TQTreeOptions options;
  options.beta = 64;
  options.model = model;
  tq::TQTree index(&users, options);
  std::printf("TQ-tree built: %s\n", index.ComputeStats().ToString().c_str());

  // 4. kMaxRRST: the 5 routes serving the most commuters.
  const tq::ServiceEvaluator evaluator(&users, model);
  const tq::FacilityCatalog catalog(&routes, model.psi);
  const tq::TopKResult top =
      tq::TopKFacilitiesTQ(&index, catalog, evaluator, 5);
  std::printf("\nTop-5 routes by commuters served (kMaxRRST):\n");
  for (const tq::RankedFacility& rf : top.ranked) {
    std::printf("  route %-4u serves %6.0f commuters\n", rf.id, rf.value);
  }

  // 5. MaxkCovRST: the 5 routes that JOINTLY serve the most commuters —
  //    note the answer can differ from the top-5 above, because overlapping
  //    routes waste coverage.
  const tq::CoverResult cover =
      tq::GreedyCoverTQ(&index, catalog, evaluator, 5);
  std::printf("\nBest joint 5-route network (MaxkCovRST greedy): ");
  for (const tq::FacilityId f : cover.chosen) std::printf("%u ", f);
  std::printf("\n  jointly served commuters: %zu (top-5 overlap-blind sum "
              "would double-count)\n",
              cover.users_served);
  return 0;
}
