#include "service/evaluator.h"

#include "common/check.h"

namespace tq {

ServiceEvaluator::ServiceEvaluator(const TrajectorySet* users,
                                   ServiceModel model)
    : users_(users), model_(model) {
  TQ_CHECK(users != nullptr);
}

bool ServiceEvaluator::EndpointsServed(uint32_t user,
                                       const StopGrid& grid) const {
  const auto pts = users_->points(user);
  return grid.Serves(pts.front()) && grid.Serves(pts.back());
}

double ServiceEvaluator::Evaluate(uint32_t user, const StopGrid& grid) const {
  const auto pts = users_->points(user);
  switch (model_.scenario) {
    case Scenario::kEndpoints:
      return EndpointsServed(user, grid) ? 1.0 : 0.0;
    case Scenario::kPointCount: {
      size_t served = 0;
      for (const Point& p : pts) {
        if (grid.Serves(p)) ++served;
      }
      if (model_.normalization == Normalization::kPerUser) {
        return static_cast<double>(served) / static_cast<double>(pts.size());
      }
      return static_cast<double>(served);
    }
    case Scenario::kLength: {
      if (pts.size() < 2) return 0.0;
      double served_len = 0.0;
      bool prev_served = grid.Serves(pts[0]);
      for (size_t i = 1; i < pts.size(); ++i) {
        const bool cur_served = grid.Serves(pts[i]);
        if (prev_served && cur_served) {
          served_len += Distance(pts[i - 1], pts[i]);
        }
        prev_served = cur_served;
      }
      if (model_.normalization == Normalization::kPerUser) {
        const double total = users_->length(user);
        return total > 0.0 ? served_len / total : 0.0;
      }
      return served_len;
    }
  }
  return 0.0;
}

size_t ServiceEvaluator::MaskSize(uint32_t user) const {
  const size_t n = users_->NumPoints(user);
  if (model_.scenario == Scenario::kLength) return n > 0 ? n - 1 : 0;
  return n;
}

ServeDetail ServiceEvaluator::EvaluateDetail(uint32_t user,
                                             const StopGrid& grid) const {
  const auto pts = users_->points(user);
  ServeDetail d;
  d.mask = DynamicBitset(MaskSize(user));
  if (model_.scenario == Scenario::kLength) {
    bool prev_served = !pts.empty() && grid.Serves(pts[0]);
    for (size_t i = 1; i < pts.size(); ++i) {
      const bool cur_served = grid.Serves(pts[i]);
      if (prev_served && cur_served) d.mask.Set(i - 1);
      prev_served = cur_served;
    }
  } else {
    for (size_t i = 0; i < pts.size(); ++i) {
      if (grid.Serves(pts[i])) d.mask.Set(i);
    }
  }
  return d;
}

double ServiceEvaluator::ValueOfMask(uint32_t user,
                                     const DynamicBitset& mask) const {
  const auto pts = users_->points(user);
  switch (model_.scenario) {
    case Scenario::kEndpoints:
      return (mask.Test(0) && mask.Test(pts.size() - 1)) ? 1.0 : 0.0;
    case Scenario::kPointCount: {
      const auto served = static_cast<double>(mask.Count());
      if (model_.normalization == Normalization::kPerUser) {
        return served / static_cast<double>(pts.size());
      }
      return served;
    }
    case Scenario::kLength: {
      double served_len = 0.0;
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        if (mask.Test(i)) served_len += Distance(pts[i], pts[i + 1]);
      }
      if (model_.normalization == Normalization::kPerUser) {
        const double total = users_->length(user);
        return total > 0.0 ? served_len / total : 0.0;
      }
      return served_len;
    }
  }
  return 0.0;
}

}  // namespace tq
