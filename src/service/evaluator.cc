#include "service/evaluator.h"

#include <bit>
#include <vector>

#include "common/check.h"

namespace tq {
namespace {

// Per-thread scratch for one trajectory's served-point mask. Sized lazily,
// never shrunk — ServesBatch fills ceil(n/64) words per call.
std::vector<uint64_t>& PointMaskScratch() {
  thread_local std::vector<uint64_t> scratch;
  return scratch;
}

}  // namespace

ServiceEvaluator::ServiceEvaluator(const TrajectorySet* users,
                                   ServiceModel model)
    : users_(users), model_(model) {
  TQ_CHECK(users != nullptr);
}

bool ServiceEvaluator::EndpointsServed(uint32_t user,
                                       const StopGrid& grid) const {
  const auto pts = users_->points(user);
  return grid.Serves(pts.front()) && grid.Serves(pts.back());
}

double ServiceEvaluator::Evaluate(uint32_t user, const StopGrid& grid) const {
  const auto pts = users_->points(user);
  switch (model_.scenario) {
    case Scenario::kEndpoints:
      // Two probes only — batching a whole trajectory would do strictly more
      // work than this fast path.
      return EndpointsServed(user, grid) ? 1.0 : 0.0;
    case Scenario::kPointCount: {
      auto& mask = PointMaskScratch();
      const size_t words = (pts.size() + 63) / 64;
      if (mask.size() < words) mask.resize(words);
      grid.ServesBatch(pts, mask.data());
      size_t served = 0;
      for (size_t w = 0; w < words; ++w) served += std::popcount(mask[w]);
      if (model_.normalization == Normalization::kPerUser) {
        return static_cast<double>(served) / static_cast<double>(pts.size());
      }
      return static_cast<double>(served);
    }
    case Scenario::kLength: {
      if (pts.size() < 2) return 0.0;
      auto& mask = PointMaskScratch();
      const size_t words = (pts.size() + 63) / 64;
      if (mask.size() < words) mask.resize(words);
      grid.ServesBatch(pts, mask.data());
      // Same ascending segment walk and accumulation order as the scalar
      // reference; only the serve predicate came from the batch kernel.
      double served_len = 0.0;
      bool prev_served = (mask[0] & 1) != 0;
      for (size_t i = 1; i < pts.size(); ++i) {
        const bool cur_served = (mask[i >> 6] >> (i & 63)) & 1;
        if (prev_served && cur_served) {
          served_len += Distance(pts[i - 1], pts[i]);
        }
        prev_served = cur_served;
      }
      if (model_.normalization == Normalization::kPerUser) {
        const double total = users_->length(user);
        return total > 0.0 ? served_len / total : 0.0;
      }
      return served_len;
    }
  }
  return 0.0;
}

double ServiceEvaluator::EvaluateScalar(uint32_t user,
                                        const StopGrid& grid) const {
  const auto pts = users_->points(user);
  switch (model_.scenario) {
    case Scenario::kEndpoints:
      return (grid.ServesScalar(pts.front()) && grid.ServesScalar(pts.back()))
                 ? 1.0
                 : 0.0;
    case Scenario::kPointCount: {
      size_t served = 0;
      for (const Point& p : pts) {
        if (grid.ServesScalar(p)) ++served;
      }
      if (model_.normalization == Normalization::kPerUser) {
        return static_cast<double>(served) / static_cast<double>(pts.size());
      }
      return static_cast<double>(served);
    }
    case Scenario::kLength: {
      if (pts.size() < 2) return 0.0;
      double served_len = 0.0;
      bool prev_served = grid.ServesScalar(pts[0]);
      for (size_t i = 1; i < pts.size(); ++i) {
        const bool cur_served = grid.ServesScalar(pts[i]);
        if (prev_served && cur_served) {
          served_len += Distance(pts[i - 1], pts[i]);
        }
        prev_served = cur_served;
      }
      if (model_.normalization == Normalization::kPerUser) {
        const double total = users_->length(user);
        return total > 0.0 ? served_len / total : 0.0;
      }
      return served_len;
    }
  }
  return 0.0;
}

size_t ServiceEvaluator::MaskSize(uint32_t user) const {
  const size_t n = users_->NumPoints(user);
  if (model_.scenario == Scenario::kLength) return n > 0 ? n - 1 : 0;
  return n;
}

ServeDetail ServiceEvaluator::EvaluateDetail(uint32_t user,
                                             const StopGrid& grid) const {
  const auto pts = users_->points(user);
  ServeDetail d;
  d.mask = DynamicBitset(MaskSize(user));
  if (d.mask.size() == 0) return d;
  if (model_.scenario == Scenario::kLength) {
    // Point mask into scratch, then segment bit i-1 = point i-1 & point i —
    // wordwise m & (m >> 1), with the next word supplying the carried bit.
    auto& mask = PointMaskScratch();
    const size_t pt_words = (pts.size() + 63) / 64;
    if (mask.size() < pt_words) mask.resize(pt_words);
    grid.ServesBatch(pts, mask.data());
    uint64_t* out = d.mask.WordData();
    const size_t seg_words = d.mask.NumWords();
    for (size_t w = 0; w < seg_words; ++w) {
      const uint64_t lo = mask[w];
      const uint64_t hi = (w + 1 < pt_words) ? mask[w + 1] : 0;
      // Point-mask tail bits are zero, so segment bits >= n-1 come out zero
      // and the bitset's tail invariant holds.
      out[w] = lo & ((lo >> 1) | (hi << 63));
    }
  } else {
    grid.ServesBatch(pts, d.mask.WordData());
  }
  return d;
}

ServeDetail ServiceEvaluator::EvaluateDetailScalar(uint32_t user,
                                                   const StopGrid& grid) const {
  const auto pts = users_->points(user);
  ServeDetail d;
  d.mask = DynamicBitset(MaskSize(user));
  if (model_.scenario == Scenario::kLength) {
    bool prev_served = !pts.empty() && grid.ServesScalar(pts[0]);
    for (size_t i = 1; i < pts.size(); ++i) {
      const bool cur_served = grid.ServesScalar(pts[i]);
      if (prev_served && cur_served) d.mask.Set(i - 1);
      prev_served = cur_served;
    }
  } else {
    for (size_t i = 0; i < pts.size(); ++i) {
      if (grid.ServesScalar(pts[i])) d.mask.Set(i);
    }
  }
  return d;
}

double ServiceEvaluator::ValueOfMask(uint32_t user,
                                     const DynamicBitset& mask) const {
  const auto pts = users_->points(user);
  switch (model_.scenario) {
    case Scenario::kEndpoints:
      return (mask.Test(0) && mask.Test(pts.size() - 1)) ? 1.0 : 0.0;
    case Scenario::kPointCount: {
      const auto served = static_cast<double>(mask.Count());
      if (model_.normalization == Normalization::kPerUser) {
        return served / static_cast<double>(pts.size());
      }
      return served;
    }
    case Scenario::kLength: {
      double served_len = 0.0;
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        if (mask.Test(i)) served_len += Distance(pts[i], pts[i + 1]);
      }
      if (model_.normalization == Normalization::kPerUser) {
        const double total = users_->length(user);
        return total > 0.0 ? served_len / total : 0.0;
      }
      return served_len;
    }
  }
  return 0.0;
}

}  // namespace tq
