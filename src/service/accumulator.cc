#include "service/accumulator.h"

#include <algorithm>

#include "common/check.h"

namespace tq {
namespace {

// Fibonacci hashing spreads consecutive user ids across the table.
inline uint64_t MixUser(uint32_t user) {
  return (static_cast<uint64_t>(user) * 0x9E3779B97F4A7C15ULL) >> 32;
}

}  // namespace

ServiceAccumulator::ServiceAccumulator(const ServiceEvaluator* evaluator)
    : evaluator_(evaluator) {
  TQ_CHECK(evaluator != nullptr);
}

void ServiceAccumulator::GrowTable() {
  const size_t cap = table_.empty() ? 64 : table_.size() * 2;
  table_.assign(cap, TableSlot{});
  table_mask_ = cap - 1;
  for (const Slab& s : touched_) {
    uint64_t slot = MixUser(s.user) & table_mask_;
    while (table_[slot].user_plus1 != 0) slot = (slot + 1) & table_mask_;
    table_[slot] = TableSlot{s.user + 1, s.word_begin};
  }
}

uint32_t ServiceAccumulator::SlabFor(uint32_t user) {
  if (touched_.size() * 2 >= table_.size()) {
    // Load factor cap at 1/2; also covers the empty-table first touch.
    GrowTable();
  }
  uint64_t slot = MixUser(user) & table_mask_;
  while (table_[slot].user_plus1 != 0) {
    if (table_[slot].user_plus1 == user + 1) return table_[slot].word_begin;
    slot = (slot + 1) & table_mask_;
  }
  const auto begin = static_cast<uint32_t>(words_.size());
  const size_t num_words = (evaluator_->MaskSize(user) + 63) / 64;
  words_.resize(words_.size() + num_words, 0);
  table_[slot] = TableSlot{user + 1, begin};
  touched_.push_back(Slab{user, begin});
  return begin;
}

void ServiceAccumulator::MarkPoint(uint32_t user, uint32_t point_index) {
  const ServiceModel& model = evaluator_->model();
  TQ_DCHECK(model.scenario != Scenario::kLength);
  const uint32_t slab = SlabFor(user);
  uint64_t& word = words_[slab + (point_index >> 6)];
  const uint64_t bit = uint64_t{1} << (point_index & 63);
  if ((word & bit) != 0) return;
  word |= bit;
  const size_t n = evaluator_->users().NumPoints(user);
  if (model.scenario == Scenario::kEndpoints) {
    // Value flips 0 → 1 exactly when this mark completes the endpoint pair.
    const size_t last = n - 1;
    if (point_index == 0 || point_index == last) {
      const bool first_set = (words_[slab] & 1) != 0;
      const bool last_set =
          ((words_[slab + (last >> 6)] >> (last & 63)) & 1) != 0;
      if (first_set && last_set) total_ += 1.0;
    }
  } else {
    total_ += model.normalization == Normalization::kPerUser
                  ? 1.0 / static_cast<double>(n)
                  : 1.0;
  }
}

void ServiceAccumulator::MarkSegment(uint32_t user, uint32_t seg_index) {
  const ServiceModel& model = evaluator_->model();
  TQ_DCHECK(model.scenario == Scenario::kLength);
  const uint32_t slab = SlabFor(user);
  uint64_t& word = words_[slab + (seg_index >> 6)];
  const uint64_t bit = uint64_t{1} << (seg_index & 63);
  if ((word & bit) != 0) return;
  word |= bit;
  const auto pts = evaluator_->users().points(user);
  const double seg_len = Distance(pts[seg_index], pts[seg_index + 1]);
  if (model.normalization == Normalization::kPerUser) {
    const double total_len = evaluator_->users().length(user);
    total_ += total_len > 0.0 ? seg_len / total_len : 0.0;
  } else {
    total_ += seg_len;
  }
}

void ServiceAccumulator::Rebind(const ServiceEvaluator* evaluator) {
  TQ_CHECK(evaluator != nullptr);
  evaluator_ = evaluator;
  Clear();
}

void ServiceAccumulator::Clear() {
  std::fill(table_.begin(), table_.end(), TableSlot{});
  touched_.clear();
  words_.clear();
  total_ = 0.0;
}

}  // namespace tq
