#include "service/accumulator.h"

#include "common/check.h"

namespace tq {

ServiceAccumulator::ServiceAccumulator(const ServiceEvaluator* evaluator)
    : evaluator_(evaluator) {
  TQ_CHECK(evaluator != nullptr);
}

DynamicBitset& ServiceAccumulator::MaskFor(uint32_t user) {
  auto it = masks_.find(user);
  if (it == masks_.end()) {
    it = masks_.emplace(user, DynamicBitset(evaluator_->MaskSize(user)))
             .first;
  }
  return it->second;
}

void ServiceAccumulator::MarkPoint(uint32_t user, uint32_t point_index) {
  const ServiceModel& model = evaluator_->model();
  TQ_DCHECK(model.scenario != Scenario::kLength);
  DynamicBitset& mask = MaskFor(user);
  if (mask.Test(point_index)) return;
  mask.Set(point_index);
  const size_t n = evaluator_->users().NumPoints(user);
  if (model.scenario == Scenario::kEndpoints) {
    // Value flips 0 → 1 exactly when this mark completes the endpoint pair.
    const size_t last = n - 1;
    if ((point_index == 0 || point_index == last) && mask.Test(0) &&
        mask.Test(last)) {
      total_ += 1.0;
    }
  } else {
    total_ += model.normalization == Normalization::kPerUser
                  ? 1.0 / static_cast<double>(n)
                  : 1.0;
  }
}

void ServiceAccumulator::MarkSegment(uint32_t user, uint32_t seg_index) {
  const ServiceModel& model = evaluator_->model();
  TQ_DCHECK(model.scenario == Scenario::kLength);
  DynamicBitset& mask = MaskFor(user);
  if (mask.Test(seg_index)) return;
  mask.Set(seg_index);
  const auto pts = evaluator_->users().points(user);
  const double seg_len = Distance(pts[seg_index], pts[seg_index + 1]);
  if (model.normalization == Normalization::kPerUser) {
    const double total_len = evaluator_->users().length(user);
    total_ += total_len > 0.0 ? seg_len / total_len : 0.0;
  } else {
    total_ += seg_len;
  }
}

}  // namespace tq
