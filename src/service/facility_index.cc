#include "service/facility_index.h"

#include "common/check.h"

namespace tq {

FacilityCatalog::FacilityCatalog(const TrajectorySet* facilities, double psi)
    : facilities_(facilities), psi_(psi) {
  TQ_CHECK(facilities != nullptr);
  grids_.reserve(facilities_->size());
  for (uint32_t f = 0; f < facilities_->size(); ++f) {
    grids_.push_back(std::make_unique<StopGrid>(facilities_->points(f), psi));
  }
}

}  // namespace tq
