// Uniform hash grid over one facility's stop points.
//
// Answers "is this user point within ψ of any stop of the facility?" in O(1)
// expected time (3×3 cell probe with cell size ψ). Every query method — BL,
// TQ(B) and TQ(Z) — funnels its final exact check through this structure, so
// the methods can only differ in *which* candidates they inspect, never in
// the service value they assign. This also realises the paper's MakeUnion
// merge step: clipped facility components re-unify here because the grid
// always holds the full facility.
#ifndef TQCOVER_SERVICE_STOP_GRID_H_
#define TQCOVER_SERVICE_STOP_GRID_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace tq {

/// Immutable ψ-cell hash grid over a facility's stops.
class StopGrid {
 public:
  StopGrid(std::span<const Point> stops, double psi);

  double psi() const { return psi_; }
  std::span<const Point> stops() const { return stops_; }

  /// MBR of the stops.
  const Rect& mbr() const { return mbr_; }

  /// ψ-extended MBR — the paper's EMBR enclosing the serving area (§IV-A).
  const Rect& embr() const { return embr_; }

  /// True iff `p` is within ψ of at least one stop.
  bool Serves(const Point& p) const;

  /// Distance from `p` to the nearest stop within the 3×3 probe window;
  /// +inf when no stop is that close. Used by diagnostics and tests.
  double NearbyStopDistance(const Point& p) const;

 private:
  int64_t CellKey(double x, double y) const;

  std::vector<Point> stops_;
  double psi_;
  double inv_cell_;
  Rect mbr_;
  Rect embr_;
  // cell key → indices into stops_. Flat buckets keep probes cache-friendly.
  std::unordered_map<int64_t, std::vector<uint32_t>> cells_;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_STOP_GRID_H_
