// Uniform hash grid over one facility's stop points.
//
// Answers "is this user point within ψ of any stop of the facility?" in O(1)
// expected time. Every query method — BL, TQ(B) and TQ(Z) — funnels its
// final exact check through this structure, so the methods can only differ
// in *which* candidates they inspect, never in the service value they
// assign. This also realises the paper's MakeUnion merge step: clipped
// facility components re-unify here because the grid always holds the full
// facility.
//
// Layout: cells are ψ×ψ, and the table stores the DILATED occupancy — every
// cell whose 3×3 neighborhood contains a stop gets an entry listing all the
// stops of that neighborhood. A stop within ψ of a probe point is always in
// the probe cell's 3×3 window (cell size = ψ), so one open-addressed find
// returns every candidate stop and a probe costs one hash lookup + one SoA
// distance scan — not the nine per-neighbor lookups of the classic 3×3
// probe, which dominate the profile (the seed's unordered_map version spent
// 21% of SO evaluation in hashtable find alone). Each stop appears in at
// most 9 neighborhood lists, so memory stays O(9 · stops).
//
// Neighborhood runs live in SoA coordinate arrays padded to a multiple of 4
// lanes by duplicating the first stop, so the ψ² check scans whole cells
// with the 4-wide kernels in common/simd.h without a tail loop — duplicated
// stops cannot change an any-within-ψ or min-distance answer. `ServesScalar`
// retains the per-stop scalar reference over the unpadded ranges; the
// agreement suite holds `Serves`/`ServesBatch` bit-equal to it.
#ifndef TQCOVER_SERVICE_STOP_GRID_H_
#define TQCOVER_SERVICE_STOP_GRID_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace tq {

/// Immutable ψ-cell hash grid over a facility's stops.
class StopGrid {
 public:
  StopGrid(std::span<const Point> stops, double psi);

  double psi() const { return psi_; }
  std::span<const Point> stops() const { return stops_; }

  /// MBR of the stops.
  const Rect& mbr() const { return mbr_; }

  /// ψ-extended MBR — the paper's EMBR enclosing the serving area (§IV-A).
  const Rect& embr() const { return embr_; }

  /// True iff `p` is within ψ of at least one stop.
  bool Serves(const Point& p) const;

  /// Scalar reference for `Serves`: same cells, per-stop scalar predicate.
  /// Retained in every build so the agreement suite can compare in-binary.
  bool ServesScalar(const Point& p) const;

  /// Writes bit i of `out_mask` (64 points per word, little-endian bit
  /// order) = Serves(pts[i]) for the whole span. `out_mask` must hold
  /// ceil(pts.size() / 64) words; bits at and beyond pts.size() are zeroed.
  void ServesBatch(std::span<const Point> pts, uint64_t* out_mask) const;

  /// Distance from `p` to the nearest stop within the 3×3 probe window;
  /// +inf when no stop is that close. Used by diagnostics and tests.
  double NearbyStopDistance(const Point& p) const;

 private:
  // Open-addressed table slot for one dilated cell. `n == 0` marks an empty
  // slot; every real entry lists at least one neighborhood stop.
  struct Cell {
    int64_t key = 0;
    uint32_t begin = 0;   // offset into bucket_x_/bucket_y_ (padded layout)
    uint32_t n = 0;       // real stop count (unpadded)
    uint32_t padded = 0;  // n rounded up to a multiple of 4
  };

  int64_t CellKey(double x, double y) const;
  const Cell* FindCell(int64_t key) const;
  // Neighborhood scan of p's cell; true iff any stop is within ψ².
  bool ProbeCell(const Point& p) const;

  std::vector<Point> stops_;
  double psi_;
  double psi2_;  // fl(psi * psi), hoisted out of every probe
  double inv_cell_;
  Rect mbr_;
  Rect embr_;
  std::vector<Cell> table_;  // power-of-two open-addressed cell table
  uint64_t table_mask_ = 0;
  // SoA stop coordinates grouped by dilated cell, each run padded to 4 lanes
  // by repeating its first stop. bucket_idx_ maps padded slots to stop ids.
  std::vector<double> bucket_x_;
  std::vector<double> bucket_y_;
  std::vector<uint32_t> bucket_idx_;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_STOP_GRID_H_
