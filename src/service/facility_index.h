// Catalog of per-facility acceleration structures (StopGrid + EMBR), built
// once per (facility set, ψ) and shared by all query algorithms.
#ifndef TQCOVER_SERVICE_FACILITY_INDEX_H_
#define TQCOVER_SERVICE_FACILITY_INDEX_H_

#include <memory>
#include <vector>

#include "service/stop_grid.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace tq {

/// Owns one StopGrid per facility. Facilities are stop-point sequences in a
/// TrajectorySet (not owned; must outlive the catalog).
class FacilityCatalog {
 public:
  FacilityCatalog(const TrajectorySet* facilities, double psi);

  const TrajectorySet& facilities() const { return *facilities_; }
  size_t size() const { return grids_.size(); }
  double psi() const { return psi_; }

  const StopGrid& grid(FacilityId f) const { return *grids_[f]; }
  const Rect& embr(FacilityId f) const { return grids_[f]->embr(); }

 private:
  const TrajectorySet* facilities_;
  double psi_;
  std::vector<std::unique_ptr<StopGrid>> grids_;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_FACILITY_INDEX_H_
