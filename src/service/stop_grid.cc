#include "service/stop_grid.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace tq {

StopGrid::StopGrid(std::span<const Point> stops, double psi)
    : stops_(stops.begin(), stops.end()), psi_(psi), inv_cell_(1.0 / psi) {
  TQ_CHECK_MSG(psi > 0.0, "psi must be positive");
  TQ_CHECK_MSG(!stops_.empty(), "facility must have at least one stop");
  mbr_ = Rect::BoundingBox(stops_);
  embr_ = mbr_.Expanded(psi_);
  cells_.reserve(stops_.size() * 2);
  for (uint32_t i = 0; i < stops_.size(); ++i) {
    cells_[CellKey(stops_[i].x, stops_[i].y)].push_back(i);
  }
}

int64_t StopGrid::CellKey(double x, double y) const {
  const auto cx = static_cast<int64_t>(std::floor(x * inv_cell_));
  const auto cy = static_cast<int64_t>(std::floor(y * inv_cell_));
  // Pack two 32-bit cell coordinates; city extents are far below 2^31 cells.
  return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
}

bool StopGrid::Serves(const Point& p) const {
  if (!embr_.Contains(p)) return false;
  const double psi2 = psi_ * psi_;
  const auto cx = static_cast<int64_t>(std::floor(p.x * inv_cell_));
  const auto cy = static_cast<int64_t>(std::floor(p.y * inv_cell_));
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      const int64_t key = ((cx + dx) << 32) ^ ((cy + dy) & 0xFFFFFFFFLL);
      const auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (const uint32_t si : it->second) {
        if (DistanceSquared(p, stops_[si]) <= psi2) return true;
      }
    }
  }
  return false;
}

double StopGrid::NearbyStopDistance(const Point& p) const {
  double best = std::numeric_limits<double>::infinity();
  const auto cx = static_cast<int64_t>(std::floor(p.x * inv_cell_));
  const auto cy = static_cast<int64_t>(std::floor(p.y * inv_cell_));
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      const int64_t key = ((cx + dx) << 32) ^ ((cy + dy) & 0xFFFFFFFFLL);
      const auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (const uint32_t si : it->second) {
        best = std::min(best, DistanceSquared(p, stops_[si]));
      }
    }
  }
  return std::sqrt(best);
}

}  // namespace tq
