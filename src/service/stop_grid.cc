#include "service/stop_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/simd.h"

namespace tq {
namespace {

// splitmix64 finalizer — mixes the packed cell key into table slots. The
// packed key's low 32 bits are the y cell, which cluster badly without this.
inline uint64_t MixKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

StopGrid::StopGrid(std::span<const Point> stops, double psi)
    : stops_(stops.begin(), stops.end()),
      psi_(psi),
      psi2_(psi * psi),
      inv_cell_(1.0 / psi) {
  TQ_CHECK_MSG(psi > 0.0, "psi must be positive");
  TQ_CHECK_MSG(!stops_.empty(), "facility must have at least one stop");
  mbr_ = Rect::BoundingBox(stops_);
  embr_ = mbr_.Expanded(psi_);

  // Dilated occupancy: stop i contributes itself to the neighborhood list of
  // each of the 9 cells around its own, so a probe later needs only its own
  // cell's list. Two passes: insert keys + count list sizes, then assign
  // padded ranges and scatter (counting-sort style, stable — stops appear in
  // each list in stop order).
  const uint32_t num_stops = static_cast<uint32_t>(stops_.size());
  std::vector<int64_t> keys(num_stops * 9);
  for (uint32_t i = 0; i < num_stops; ++i) {
    const auto cx = static_cast<int64_t>(std::floor(stops_[i].x * inv_cell_));
    const auto cy = static_cast<int64_t>(std::floor(stops_[i].y * inv_cell_));
    int64_t* k = &keys[i * 9];
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        *k++ = ((cx + dx) << 32) ^ ((cy + dy) & 0xFFFFFFFFLL);
      }
    }
  }

  // First pass inserts unique keys into the table and counts per-cell sizes.
  // Capacity 2 × the 9·stops insertions bounds the load factor at 1/2 even
  // if every neighborhood key were unique, so probe chains stay short.
  table_.assign(NextPow2(std::max<uint64_t>(8, uint64_t{num_stops} * 9 * 2)),
                Cell{});
  table_mask_ = table_.size() - 1;
  for (const int64_t key : keys) {
    uint64_t slot = MixKey(key) & table_mask_;
    while (table_[slot].n != 0 && table_[slot].key != key) {
      slot = (slot + 1) & table_mask_;
    }
    table_[slot].key = key;
    ++table_[slot].n;
  }

  // Assign padded [begin, begin+padded) ranges per cell.
  uint32_t offset = 0;
  for (Cell& c : table_) {
    if (c.n == 0) continue;
    c.begin = offset;
    c.padded = (c.n + 3u) & ~3u;
    offset += c.padded;
  }
  bucket_x_.assign(offset, 0.0);
  bucket_y_.assign(offset, 0.0);
  bucket_idx_.assign(offset, 0);

  // Second pass scatters stops into their neighborhood runs, then pads each
  // run to a multiple of 4 lanes with copies of the run's first stop.
  std::vector<uint32_t> fill(table_.size(), 0);
  for (uint32_t i = 0; i < num_stops; ++i) {
    for (int j = 0; j < 9; ++j) {
      const int64_t key = keys[i * 9 + j];
      uint64_t slot = MixKey(key) & table_mask_;
      while (table_[slot].key != key || table_[slot].n == 0) {
        slot = (slot + 1) & table_mask_;
      }
      const uint32_t at = table_[slot].begin + fill[slot]++;
      bucket_x_[at] = stops_[i].x;
      bucket_y_[at] = stops_[i].y;
      bucket_idx_[at] = i;
    }
  }
  for (const Cell& c : table_) {
    for (uint32_t j = c.n; j < c.padded; ++j) {
      bucket_x_[c.begin + j] = bucket_x_[c.begin];
      bucket_y_[c.begin + j] = bucket_y_[c.begin];
      bucket_idx_[c.begin + j] = bucket_idx_[c.begin];
    }
  }
}

int64_t StopGrid::CellKey(double x, double y) const {
  const auto cx = static_cast<int64_t>(std::floor(x * inv_cell_));
  const auto cy = static_cast<int64_t>(std::floor(y * inv_cell_));
  // Pack two 32-bit cell coordinates; city extents are far below 2^31 cells.
  return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
}

const StopGrid::Cell* StopGrid::FindCell(int64_t key) const {
  uint64_t slot = MixKey(key) & table_mask_;
  while (true) {
    const Cell& c = table_[slot];
    if (c.n == 0) return nullptr;
    if (c.key == key) return &c;
    slot = (slot + 1) & table_mask_;
  }
}

bool StopGrid::ProbeCell(const Point& p) const {
  const Cell* c = FindCell(CellKey(p.x, p.y));
  if (c == nullptr) return false;
  const double* xs = bucket_x_.data() + c->begin;
  const double* ys = bucket_y_.data() + c->begin;
  for (uint32_t k = 0; k < c->padded; k += 4) {
    // Padding lanes repeat a real neighborhood stop, so any lane hit is a
    // genuine within-ψ stop.
    if (simd::LanesWithinPsi2(xs + k, ys + k, p.x, p.y, psi2_) != 0) {
      return true;
    }
  }
  return false;
}

bool StopGrid::Serves(const Point& p) const {
  if (!embr_.Contains(p)) return false;
  return ProbeCell(p);
}

bool StopGrid::ServesScalar(const Point& p) const {
  if (!embr_.Contains(p)) return false;
  const Cell* c = FindCell(CellKey(p.x, p.y));
  if (c == nullptr) return false;
  for (uint32_t k = 0; k < c->n; ++k) {
    if (simd::scalar::WithinPsi2(bucket_x_[c->begin + k],
                                 bucket_y_[c->begin + k], p.x, p.y, psi2_)) {
      return true;
    }
  }
  return false;
}

void StopGrid::ServesBatch(std::span<const Point> pts,
                           uint64_t* out_mask) const {
  const size_t n = pts.size();
  const size_t words = (n + 63) / 64;
  std::fill(out_mask, out_mask + words, 0);
  static_assert(sizeof(Point) == 2 * sizeof(double),
                "batch kernels assume Point is two packed doubles");
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // 4-wide EMBR prefilter: most points of a far-away trajectory die here
    // without any cell probe.
    uint32_t in = simd::LanesInRect(&pts[i].x, embr_.min_x, embr_.min_y,
                                    embr_.max_x, embr_.max_y);
    while (in != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(in));
      in &= in - 1;
      const size_t pi = i + lane;
      if (ProbeCell(pts[pi])) {
        out_mask[pi >> 6] |= uint64_t{1} << (pi & 63);
      }
    }
  }
  for (; i < n; ++i) {
    if (Serves(pts[i])) {
      out_mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

double StopGrid::NearbyStopDistance(const Point& p) const {
  // The probe cell's neighborhood list IS the 3×3 stop set.
  double best = std::numeric_limits<double>::infinity();
  const Cell* c = FindCell(CellKey(p.x, p.y));
  if (c == nullptr) return best;
  for (uint32_t k = 0; k < c->n; ++k) {
    const uint32_t si = bucket_idx_[c->begin + k];
    best = std::min(best, DistanceSquared(p, stops_[si]));
  }
  return std::sqrt(best);
}

}  // namespace tq
