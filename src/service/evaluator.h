// Exact service-value evaluation — the single source of truth for S(u,f).
//
// Every query algorithm (BL, TQ(B), TQ(Z)) reduces to "which users do I run
// the exact check on"; the check itself lives here so all methods provably
// agree (a backbone invariant of the test suite).
//
// The hot entry points run on StopGrid::ServesBatch masks: the grid's 4-wide
// kernels decide the per-point serve *predicate*, while every floating-point
// accumulation (length sums, normalizations) stays scalar in the original
// ascending order — so answers are bit-identical to the retained scalar
// references (`EvaluateScalar`/`EvaluateDetailScalar`), which the agreement
// suite (tests/test_simd_kernels.cc) checks in-binary.
#ifndef TQCOVER_SERVICE_EVALUATOR_H_
#define TQCOVER_SERVICE_EVALUATOR_H_

#include "common/dynamic_bitset.h"
#include "service/models.h"
#include "service/stop_grid.h"
#include "traj/dataset.h"

namespace tq {

/// Which parts of a user trajectory a facility (or facility set) serves.
/// For Scenario 1/2 the mask is over points; for Scenario 3 over segments.
struct ServeDetail {
  DynamicBitset mask;

  bool Any() const { return !mask.None(); }
};

/// Stateless evaluator bound to a user set and a service model.
class ServiceEvaluator {
 public:
  ServiceEvaluator(const TrajectorySet* users, ServiceModel model);

  const ServiceModel& model() const { return model_; }
  const TrajectorySet& users() const { return *users_; }

  /// S(u, f) per §II-A, where f is represented by its StopGrid.
  double Evaluate(uint32_t user, const StopGrid& grid) const;

  /// Scalar reference for Evaluate: the original per-point loop over
  /// StopGrid::ServesScalar. Retained in every build for the agreement suite.
  double EvaluateScalar(uint32_t user, const StopGrid& grid) const;

  /// Scenario-1 fast path: are both endpoints of `user` within ψ of a stop?
  bool EndpointsServed(uint32_t user, const StopGrid& grid) const;

  /// Served-point/segment mask of `user` under `grid` (for coverage algebra).
  ServeDetail EvaluateDetail(uint32_t user, const StopGrid& grid) const;

  /// Scalar reference for EvaluateDetail (per-point ServesScalar probes).
  ServeDetail EvaluateDetailScalar(uint32_t user, const StopGrid& grid) const;

  /// Service value of `user` given a (possibly multi-facility) union mask —
  /// the AGG aggregation of §II-B. The mask must have the layout produced by
  /// EvaluateDetail for this model.
  double ValueOfMask(uint32_t user, const DynamicBitset& mask) const;

  /// Size of the detail mask for `user` under the current model.
  size_t MaskSize(uint32_t user) const;

 private:
  const TrajectorySet* users_;
  ServiceModel model_;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_EVALUATOR_H_
