// Service value models (§II of the paper).
//
// Scenario 1: S(u,f) = 1 iff both the source and the destination of u lie
//             within ψ of some stop point of f (binary service).
// Scenario 2: S(u,f) = scount(u,f) / |u| — fraction of u's points within ψ
//             of a stop of f (e.g. POIs a tourist can visit).
// Scenario 3: S(u,f) = slength(u,f) / length(u) — fraction of u's length
//             served; a segment is served iff both of its endpoints are
//             within ψ of a stop of f.
//
// The paper normalises scenarios 2/3 per user (S ≤ 1) but stores raw point
// counts / lengths as node upper bounds; we support both normalisations and
// pick the tightest valid upper bound for each.
#ifndef TQCOVER_SERVICE_MODELS_H_
#define TQCOVER_SERVICE_MODELS_H_

#include <string>

#include "geom/rect.h"
#include "traj/trajectory.h"

namespace tq {

/// Which service scenario of §II-A is being computed.
enum class Scenario {
  kEndpoints = 0,   // Scenario 1: binary source+destination service
  kPointCount = 1,  // Scenario 2: number of served points
  kLength = 2,      // Scenario 3: served trajectory length
};

/// Whether S(u,f) is divided by |u| / length(u) (paper default) or left raw.
enum class Normalization {
  kPerUser = 0,
  kNone = 1,
};

/// Per-node aggregates from which the "sub" upper bound (§III) is derived.
/// A node stores the totals over all trajectories in its subtree; the model
/// selects the component that bounds its own SO contribution.
struct ServiceAggregates {
  double traj_count = 0.0;
  double point_count = 0.0;
  double total_length = 0.0;

  void Add(const ServiceAggregates& o) {
    traj_count += o.traj_count;
    point_count += o.point_count;
    total_length += o.total_length;
  }
  void Subtract(const ServiceAggregates& o) {
    traj_count -= o.traj_count;
    point_count -= o.point_count;
    total_length -= o.total_length;
  }
  /// Aggregate contribution of one trajectory (or trajectory segment).
  static ServiceAggregates ForTrajectory(size_t num_points, double length) {
    return ServiceAggregates{1.0, static_cast<double>(num_points), length};
  }
};

/// Immutable description of the service function in use.
struct ServiceModel {
  Scenario scenario = Scenario::kEndpoints;
  Normalization normalization = Normalization::kPerUser;
  /// Serving distance threshold ψ in metres (§II-A, Scenario 1).
  double psi = 200.0;

  static ServiceModel Endpoints(double psi) {
    return ServiceModel{Scenario::kEndpoints, Normalization::kPerUser, psi};
  }
  static ServiceModel PointCount(
      double psi, Normalization norm = Normalization::kPerUser) {
    return ServiceModel{Scenario::kPointCount, norm, psi};
  }
  static ServiceModel Length(double psi,
                             Normalization norm = Normalization::kPerUser) {
    return ServiceModel{Scenario::kLength, norm, psi};
  }

  /// Upper bound ("sub", §III) on the summed service value of the
  /// trajectories described by `agg`. Valid for any facility.
  double UpperBound(const ServiceAggregates& agg) const;

  /// True when the model only inspects a trajectory's first and last points.
  bool EndpointsOnly() const { return scenario == Scenario::kEndpoints; }

  std::string ToString() const;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_MODELS_H_
