// Per-query accumulator for segmented evaluation.
//
// The Segmented TQ-tree (§III-A) stores each trajectory as independent
// two-point segments spread over many q-nodes; a single user's partial
// service therefore arrives in pieces. The accumulator dedups served points
// (a point is shared by two adjacent segments) and finalises per-user scores
// into SO(U, f).
#ifndef TQCOVER_SERVICE_ACCUMULATOR_H_
#define TQCOVER_SERVICE_ACCUMULATOR_H_

#include <unordered_map>

#include "common/dynamic_bitset.h"
#include "service/evaluator.h"

namespace tq {

/// Collects served point/segment marks per user, then folds them through the
/// service model. Reusable across queries via Clear().
class ServiceAccumulator {
 public:
  explicit ServiceAccumulator(const ServiceEvaluator* evaluator);

  /// Marks point `point_index` of `user` as served (Scenario 1/2 layout).
  void MarkPoint(uint32_t user, uint32_t point_index);

  /// Marks segment `seg_index` of `user` as served (Scenario 3 layout).
  void MarkSegment(uint32_t user, uint32_t seg_index);

  /// SO over all users marked so far. Maintained incrementally — O(1).
  double Total() const { return total_; }

  /// Number of users with at least one mark.
  size_t TouchedUsers() const { return masks_.size(); }

  void Clear() {
    masks_.clear();
    total_ = 0.0;
  }

 private:
  DynamicBitset& MaskFor(uint32_t user);

  const ServiceEvaluator* evaluator_;
  std::unordered_map<uint32_t, DynamicBitset> masks_;
  double total_ = 0.0;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_ACCUMULATOR_H_
