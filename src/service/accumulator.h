// Per-query accumulator for segmented evaluation.
//
// The Segmented TQ-tree (§III-A) stores each trajectory as independent
// two-point segments spread over many q-nodes; a single user's partial
// service therefore arrives in pieces. The accumulator dedups served points
// (a point is shared by two adjacent segments) and finalises per-user scores
// into SO(U, f).
//
// Storage is a flat arena instead of a map of heap-allocated bitsets: an
// open-addressed user→slab table (power-of-two, Fibonacci-hashed) points at
// per-user word runs inside one contiguous `words_` vector. Marking a point
// is a probe plus one OR; Clear() drops to zero marks without deallocating,
// so a reused accumulator performs no per-query allocation once warm. Memory
// stays O(users actually touched) — top-k keeps one accumulator per live
// facility, so per-user-id direct indexing would put the quadratic term in
// the wrong place.
#ifndef TQCOVER_SERVICE_ACCUMULATOR_H_
#define TQCOVER_SERVICE_ACCUMULATOR_H_

#include <cstdint>
#include <vector>

#include "service/evaluator.h"

namespace tq {

/// Collects served point/segment marks per user, then folds them through the
/// service model. Reusable across queries via Clear().
class ServiceAccumulator {
 public:
  explicit ServiceAccumulator(const ServiceEvaluator* evaluator);

  /// Marks point `point_index` of `user` as served (Scenario 1/2 layout).
  void MarkPoint(uint32_t user, uint32_t point_index);

  /// Marks segment `seg_index` of `user` as served (Scenario 3 layout).
  void MarkSegment(uint32_t user, uint32_t seg_index);

  /// SO over all users marked so far. Maintained incrementally — O(1).
  double Total() const { return total_; }

  /// Number of users with at least one mark.
  size_t TouchedUsers() const { return touched_.size(); }

  /// Forgets all marks but keeps every allocation for reuse.
  void Clear();

  /// Clears and re-points at `evaluator` — lets one long-lived accumulator
  /// (e.g. a thread_local in the query path) serve queries against different
  /// evaluators without reallocating its arena.
  void Rebind(const ServiceEvaluator* evaluator);

 private:
  struct TableSlot {
    uint32_t user_plus1 = 0;  // 0 = empty
    uint32_t word_begin = 0;  // slab offset into words_
  };
  struct Slab {
    uint32_t user = 0;
    uint32_t word_begin = 0;
  };

  /// Returns the offset of `user`'s mask words inside words_, creating a
  /// zeroed slab of ceil(MaskSize/64) words on first touch.
  uint32_t SlabFor(uint32_t user);
  void GrowTable();

  const ServiceEvaluator* evaluator_;
  std::vector<TableSlot> table_;  // power-of-two open-addressed
  uint64_t table_mask_ = 0;
  std::vector<Slab> touched_;    // one entry per touched user, touch order
  std::vector<uint64_t> words_;  // concatenated per-user mask slabs
  double total_ = 0.0;
};

}  // namespace tq

#endif  // TQCOVER_SERVICE_ACCUMULATOR_H_
