#include "service/models.h"

#include <cstdio>

namespace tq {

double ServiceModel::UpperBound(const ServiceAggregates& agg) const {
  switch (scenario) {
    case Scenario::kEndpoints:
      return agg.traj_count;
    case Scenario::kPointCount:
      // Normalised S(u,f) ≤ 1 per trajectory, so the trajectory count is a
      // tighter bound than the paper's raw point total.
      return normalization == Normalization::kPerUser ? agg.traj_count
                                                      : agg.point_count;
    case Scenario::kLength:
      return normalization == Normalization::kPerUser ? agg.traj_count
                                                      : agg.total_length;
  }
  return agg.traj_count;
}

std::string ServiceModel::ToString() const {
  const char* sc = scenario == Scenario::kEndpoints     ? "endpoints"
                   : scenario == Scenario::kPointCount ? "point-count"
                                                        : "length";
  const char* norm =
      normalization == Normalization::kPerUser ? "per-user" : "raw";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ServiceModel{%s, %s, psi=%.1fm}", sc, norm,
                psi);
  return buf;
}

}  // namespace tq
