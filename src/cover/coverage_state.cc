#include "cover/coverage_state.h"

#include "common/check.h"

namespace tq {

CoverageState::CoverageState(const ServiceEvaluator* eval) : eval_(eval) {
  TQ_CHECK(eval != nullptr);
}

double CoverageState::MarginalGain(const FacilityServedSet& fs) const {
  double gain = 0.0;
  for (const auto& [user, mask] : fs.served) {
    const auto it = covers_.find(user);
    if (it == covers_.end()) {
      gain += eval_->ValueOfMask(user, mask);
      continue;
    }
    DynamicBitset merged = it->second.mask;
    merged.UnionWith(mask);
    gain += eval_->ValueOfMask(user, merged) - it->second.value;
  }
  return gain;
}

void CoverageState::Add(const FacilityServedSet& fs) {
  for (const auto& [user, mask] : fs.served) {
    auto it = covers_.find(user);
    if (it == covers_.end()) {
      UserCover uc;
      uc.mask = mask;
      uc.value = eval_->ValueOfMask(user, uc.mask);
      total_ += uc.value;
      if (uc.value > 0.0) ++users_served_;
      covers_.emplace(user, std::move(uc));
      continue;
    }
    UserCover& uc = it->second;
    const double before = uc.value;
    uc.mask.UnionWith(mask);
    uc.value = eval_->ValueOfMask(user, uc.mask);
    total_ += uc.value - before;
    if (before <= 0.0 && uc.value > 0.0) ++users_served_;
  }
}

void CoverageState::Clear() {
  covers_.clear();
  total_ = 0.0;
  users_served_ = 0;
}

}  // namespace tq
