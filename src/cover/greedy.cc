#include "cover/greedy.h"

#include <algorithm>

#include "common/check.h"
#include "query/topk.h"

namespace tq {

size_t DefaultPoolSize(size_t k, size_t num_facilities) {
  return std::min(num_facilities, std::max(4 * k, 2 * k + 8));
}

namespace {

CoverResult GreedyOverSets(const std::vector<const FacilityServedSet*>& sets,
                           size_t k, const ServiceEvaluator& eval) {
  CoverResult result;
  result.pool_size = sets.size();
  CoverageState state(&eval);
  std::vector<bool> used(sets.size(), false);
  const size_t rounds = std::min(k, sets.size());
  for (size_t round = 0; round < rounds; ++round) {
    double best_gain = -1.0;
    size_t best_idx = sets.size();
    for (size_t i = 0; i < sets.size(); ++i) {
      if (used[i]) continue;
      const double gain = state.MarginalGain(*sets[i]);
      // Ties by facility id keep results deterministic.
      if (gain > best_gain ||
          (gain == best_gain && best_idx < sets.size() &&
           sets[i]->id < sets[best_idx]->id)) {
        best_gain = gain;
        best_idx = i;
      }
    }
    TQ_CHECK(best_idx < sets.size());
    used[best_idx] = true;
    state.Add(*sets[best_idx]);
    result.chosen.push_back(sets[best_idx]->id);
  }
  result.total = state.total();
  result.users_served = state.users_served();
  return result;
}

}  // namespace

CoverResult GreedyCover(const std::vector<FacilityServedSet>& sets, size_t k,
                        const ServiceEvaluator& eval) {
  std::vector<const FacilityServedSet*> ptrs;
  ptrs.reserve(sets.size());
  for (const auto& s : sets) ptrs.push_back(&s);
  return GreedyOverSets(ptrs, k, eval);
}

CoverResult GreedyCoverBaseline(const PointQuadtree& index,
                                const FacilityCatalog& catalog,
                                const ServiceEvaluator& eval, size_t k) {
  std::vector<FacilityServedSet> sets;
  sets.reserve(catalog.size());
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    sets.push_back(CollectServedSetBaseline(index, catalog, eval, f));
  }
  return GreedyCover(sets, k, eval);
}

CoverResult GreedyCoverTQ(TQTree* tree, const FacilityCatalog& catalog,
                          const ServiceEvaluator& eval, size_t k,
                          size_t pool_size) {
  if (pool_size == 0) pool_size = DefaultPoolSize(k, catalog.size());
  pool_size = std::min(pool_size, catalog.size());
  // Step 1: pool the k′ highest-serving facilities with kMaxRRST (Alg. 3).
  const TopKResult pool = TopKFacilitiesTQ(tree, catalog, eval, pool_size);
  // Step 2: exact greedy inside the pool.
  std::vector<FacilityServedSet> sets;
  sets.reserve(pool.ranked.size());
  for (const RankedFacility& rf : pool.ranked) {
    sets.push_back(CollectServedSetTQ(tree, catalog, eval, rf.id));
  }
  return GreedyCover(sets, k, eval);
}

}  // namespace tq
