#include "cover/exact.h"

#include "common/check.h"

namespace tq {

namespace {

// C(n, k) with saturation.
size_t Choose(size_t n, size_t k, size_t cap) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  size_t c = 1;
  for (size_t i = 1; i <= k; ++i) {
    c = c * (n - k + i) / i;
    if (c > cap) return cap + 1;
  }
  return c;
}

void Enumerate(const std::vector<FacilityServedSet>& sets, size_t k,
               size_t first, std::vector<size_t>* current,
               const ServiceEvaluator& eval, ExactCoverResult* best) {
  if (current->size() == k) {
    ++best->combinations_evaluated;
    CoverageState state(&eval);
    for (const size_t i : *current) state.Add(sets[i]);
    if (state.total() > best->total) {
      best->total = state.total();
      best->users_served = state.users_served();
      best->chosen.clear();
      for (const size_t i : *current) best->chosen.push_back(sets[i].id);
    }
    return;
  }
  const size_t remaining = k - current->size();
  for (size_t i = first; i + remaining <= sets.size(); ++i) {
    current->push_back(i);
    Enumerate(sets, k, i + 1, current, eval, best);
    current->pop_back();
  }
}

}  // namespace

ExactCoverResult ExactCover(const std::vector<FacilityServedSet>& sets,
                            size_t k, const ServiceEvaluator& eval,
                            size_t max_combinations) {
  ExactCoverResult best;
  best.total = -1.0;
  const size_t combos = Choose(sets.size(), k, max_combinations);
  TQ_CHECK_MSG(combos <= max_combinations,
               "ExactCover: combination count exceeds the safety cap");
  std::vector<size_t> current;
  Enumerate(sets, k, 0, &current, eval, &best);
  if (best.total < 0.0) best.total = 0.0;  // k > |sets|: empty answer
  return best;
}

}  // namespace tq
