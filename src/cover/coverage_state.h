// Combined-coverage bookkeeping for MaxkCovRST (§II-B's AGG and §V).
//
// Per Lemma 1's construction, a user's source may be served by one facility
// of the chosen group and its destination by another — service composes by
// unioning served-point masks, NOT by taking the max over facilities. That
// union semantics is exactly why the objective is non-submodular, and why
// this state tracks masks rather than booleans.
#ifndef TQCOVER_COVER_COVERAGE_STATE_H_
#define TQCOVER_COVER_COVERAGE_STATE_H_

#include <unordered_map>

#include "cover/served_sets.h"
#include "service/evaluator.h"

namespace tq {

/// Mutable union of served sets with an incrementally maintained objective.
class CoverageState {
 public:
  explicit CoverageState(const ServiceEvaluator* eval);

  /// Current SO(U, F′) for the facilities added so far.
  double total() const { return total_; }

  /// Number of users with a strictly positive service value (the paper's
  /// "# Users Served" metric of Fig. 10(b)/(d) under Scenario 1).
  size_t users_served() const { return users_served_; }

  /// SO(U, F′ ∪ {fs.id}) − SO(U, F′), without mutating the state.
  double MarginalGain(const FacilityServedSet& fs) const;

  /// Adds a facility's served set to the union.
  void Add(const FacilityServedSet& fs);

  void Clear();

 private:
  struct UserCover {
    DynamicBitset mask;
    double value = 0.0;
  };

  const ServiceEvaluator* eval_;
  std::unordered_map<uint32_t, UserCover> covers_;
  double total_ = 0.0;
  size_t users_served_ = 0;
};

}  // namespace tq

#endif  // TQCOVER_COVER_COVERAGE_STATE_H_
