#include "cover/genetic.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace tq {

namespace {

using Chromosome = std::vector<FacilityId>;  // k distinct facility ids

double Fitness(const Chromosome& c, ServedSetCache* cache,
               const ServiceEvaluator& eval) {
  CoverageState state(&eval);
  for (const FacilityId f : c) state.Add(cache->Get(f));
  return state.total();
}

Chromosome RandomChromosome(size_t num_facilities, size_t k, Rng* rng) {
  std::unordered_set<FacilityId> picked;
  while (picked.size() < k) {
    picked.insert(static_cast<FacilityId>(rng->NextBelow(num_facilities)));
  }
  Chromosome c(picked.begin(), picked.end());
  std::sort(c.begin(), c.end());
  return c;
}

// Uniform set crossover: child = k distinct genes sampled from both parents.
Chromosome Crossover(const Chromosome& a, const Chromosome& b, size_t k,
                     Rng* rng) {
  std::vector<FacilityId> genes(a.begin(), a.end());
  genes.insert(genes.end(), b.begin(), b.end());
  std::sort(genes.begin(), genes.end());
  genes.erase(std::unique(genes.begin(), genes.end()), genes.end());
  // Fisher-Yates prefix shuffle for the first k picks.
  for (size_t i = 0; i < k && i < genes.size(); ++i) {
    const size_t j = i + rng->NextBelow(genes.size() - i);
    std::swap(genes[i], genes[j]);
  }
  genes.resize(std::min(k, genes.size()));
  std::sort(genes.begin(), genes.end());
  return genes;
}

void Mutate(Chromosome* c, size_t num_facilities, double rate, Rng* rng) {
  if (!rng->NextBernoulli(rate) || c->empty()) return;
  const size_t victim = rng->NextBelow(c->size());
  for (int attempt = 0; attempt < 16; ++attempt) {
    const auto gene = static_cast<FacilityId>(rng->NextBelow(num_facilities));
    if (std::find(c->begin(), c->end(), gene) == c->end()) {
      (*c)[victim] = gene;
      break;
    }
  }
  std::sort(c->begin(), c->end());
}

}  // namespace

CoverResult GeneticCover(ServedSetCache* cache, size_t num_facilities,
                         size_t k, const ServiceEvaluator& eval,
                         const GeneticOptions& options) {
  TQ_CHECK(cache != nullptr);
  CoverResult result;
  k = std::min(k, num_facilities);
  if (k == 0) return result;
  result.pool_size = num_facilities;

  Rng rng(options.seed);
  std::vector<Chromosome> population;
  population.reserve(options.population);
  for (size_t i = 0; i < options.population; ++i) {
    population.push_back(RandomChromosome(num_facilities, k, &rng));
  }
  std::vector<double> fitness(population.size());
  auto evaluate_all = [&]() {
    for (size_t i = 0; i < population.size(); ++i) {
      fitness[i] = Fitness(population[i], cache, eval);
    }
  };
  evaluate_all();

  auto tournament_pick = [&]() -> size_t {
    size_t best = rng.NextBelow(population.size());
    for (size_t t = 1; t < options.tournament; ++t) {
      const size_t challenger = rng.NextBelow(population.size());
      if (fitness[challenger] > fitness[best]) best = challenger;
    }
    return best;
  };

  for (size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Chromosome> next;
    next.reserve(population.size());
    // Elitism: carry the incumbent best forward unchanged.
    const size_t best_idx = static_cast<size_t>(
        std::max_element(fitness.begin(), fitness.end()) - fitness.begin());
    next.push_back(population[best_idx]);
    while (next.size() < population.size()) {
      const Chromosome& pa = population[tournament_pick()];
      const Chromosome& pb = population[tournament_pick()];
      Chromosome child = Crossover(pa, pb, k, &rng);
      // Top up if the parents shared too many genes.
      while (child.size() < k) {
        const auto gene =
            static_cast<FacilityId>(rng.NextBelow(num_facilities));
        if (std::find(child.begin(), child.end(), gene) == child.end()) {
          child.push_back(gene);
        }
      }
      std::sort(child.begin(), child.end());
      Mutate(&child, num_facilities, options.mutation_rate, &rng);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    evaluate_all();
  }

  const size_t best_idx = static_cast<size_t>(
      std::max_element(fitness.begin(), fitness.end()) - fitness.begin());
  result.chosen = population[best_idx];
  CoverageState state(&eval);
  for (const FacilityId f : result.chosen) state.Add(cache->Get(f));
  result.total = state.total();
  result.users_served = state.users_served();
  return result;
}

CoverResult GeneticCoverTQ(TQTree* tree, const FacilityCatalog& catalog,
                           const ServiceEvaluator& eval, size_t k,
                           const GeneticOptions& options) {
  ServedSetCache cache(tree, &catalog, &eval);
  return GeneticCover(&cache, catalog.size(), k, eval, options);
}

}  // namespace tq
