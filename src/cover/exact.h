// Exact MaxkCovRST by exhaustive enumeration — exponential, used only to
// measure approximation ratios on reduced instances (Fig. 11).
#ifndef TQCOVER_COVER_EXACT_H_
#define TQCOVER_COVER_EXACT_H_

#include <vector>

#include "cover/coverage_state.h"
#include "cover/served_sets.h"

namespace tq {

/// Exact solver output.
struct ExactCoverResult {
  std::vector<FacilityId> chosen;
  double total = 0.0;
  size_t users_served = 0;
  size_t combinations_evaluated = 0;
};

/// Enumerates every k-subset of `sets` and returns the best. C(n, k) grows
/// fast; TQ_CHECKs that the combination count stays below `max_combinations`
/// so a miscalled benchmark fails loudly instead of hanging.
ExactCoverResult ExactCover(const std::vector<FacilityServedSet>& sets,
                            size_t k, const ServiceEvaluator& eval,
                            size_t max_combinations = 20'000'000);

}  // namespace tq

#endif  // TQCOVER_COVER_EXACT_H_
