// Per-facility served-user sets: the currency of the MaxkCovRST algorithms.
//
// A FacilityServedSet records, for one facility, every user it touches and
// the exact points/segments it serves (ServeDetail masks). Combined service
// of a facility group is then pure set algebra — the AGG union of §II-B —
// with no further geometry.
#ifndef TQCOVER_COVER_SERVED_SETS_H_
#define TQCOVER_COVER_SERVED_SETS_H_

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/dynamic_bitset.h"
#include "quadtree/point_quadtree.h"
#include "query/eval_service.h"
#include "service/facility_index.h"

namespace tq {

/// Everything facility `id` serves, with its standalone SO(U, id).
struct FacilityServedSet {
  FacilityId id = 0;
  double so = 0.0;
  /// (user, served mask), sorted by user id. Masks follow the
  /// ServiceEvaluator layout for the model in use.
  std::vector<std::pair<uint32_t, DynamicBitset>> served;
};

/// Builds a served set from a gathered user→mask map.
FacilityServedSet FinalizeServedSet(
    FacilityId id, std::unordered_map<uint32_t, DynamicBitset>&& gathered,
    const ServiceEvaluator& eval);

/// Served set via the TQ-tree traversal (Algorithm 1's pruning).
FacilityServedSet CollectServedSetTQ(TQTree* tree,
                                     const FacilityCatalog& catalog,
                                     const ServiceEvaluator& eval,
                                     FacilityId id);

/// Served set via baseline range queries (for G-BL).
FacilityServedSet CollectServedSetBaseline(const PointQuadtree& index,
                                           const FacilityCatalog& catalog,
                                           const ServiceEvaluator& eval,
                                           FacilityId id);

/// Lazy, memoised served-set source backed by the TQ-tree. The genetic
/// algorithm only ever needs the facilities its population mentions, so
/// collection is deferred until first use.
class ServedSetCache {
 public:
  ServedSetCache(TQTree* tree, const FacilityCatalog* catalog,
                 const ServiceEvaluator* eval);

  const FacilityServedSet& Get(FacilityId id);
  size_t collected() const { return collected_; }

 private:
  TQTree* tree_;
  const FacilityCatalog* catalog_;
  const ServiceEvaluator* eval_;
  std::vector<std::optional<FacilityServedSet>> cache_;
  size_t collected_ = 0;
};

}  // namespace tq

#endif  // TQCOVER_COVER_SERVED_SETS_H_
