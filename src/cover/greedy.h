// Greedy MaxkCovRST solvers (§V-A).
//
// The objective is non-submodular (Lemma 1), so no greedy carries Feige's
// (1−1/e) guarantee — these are the paper's practical heuristics:
//   * GreedyCover         — k rounds of exact marginal-gain maximisation over
//                           supplied served sets (no lazy evaluation: lazy
//                           greedy needs diminishing returns, which Lemma 1
//                           explicitly breaks).
//   * GreedyCoverBaseline — G-BL: the straightforward greedy with served sets
//                           collected through the baseline point quadtree.
//   * GreedyCoverTQ       — G-TQ(B)/G-TQ(Z): the paper's two-step greedy —
//                           step 1 pools the k′ top-serving facilities via
//                           kMaxRRST, step 2 runs greedy inside the pool.
#ifndef TQCOVER_COVER_GREEDY_H_
#define TQCOVER_COVER_GREEDY_H_

#include <vector>

#include "cover/coverage_state.h"
#include "cover/served_sets.h"
#include "quadtree/point_quadtree.h"

namespace tq {

/// Result of any MaxkCovRST solver.
struct CoverResult {
  std::vector<FacilityId> chosen;
  double total = 0.0;         // SO(U, chosen)
  size_t users_served = 0;    // users with positive service value
  size_t pool_size = 0;       // candidate pool actually considered
};

/// Two-step pool sizing: k′ = min(|F|, max(4k, 2k+8)). The paper requires
/// only k′ ≥ k; this default keeps the pool comfortably larger than k.
size_t DefaultPoolSize(size_t k, size_t num_facilities);

/// Greedy over explicit served sets.
CoverResult GreedyCover(const std::vector<FacilityServedSet>& sets, size_t k,
                        const ServiceEvaluator& eval);

/// G-BL: straightforward greedy over every facility, baseline evaluation.
CoverResult GreedyCoverBaseline(const PointQuadtree& index,
                                const FacilityCatalog& catalog,
                                const ServiceEvaluator& eval, size_t k);

/// G-TQ: two-step greedy over the TQ-tree (basic or z-order, per the tree).
/// `pool_size` 0 selects DefaultPoolSize.
CoverResult GreedyCoverTQ(TQTree* tree, const FacilityCatalog& catalog,
                          const ServiceEvaluator& eval, size_t k,
                          size_t pool_size = 0);

}  // namespace tq

#endif  // TQCOVER_COVER_GREEDY_H_
