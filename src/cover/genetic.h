// Genetic-algorithm MaxkCovRST solver — the paper's Gn-TQ(Z) competitor
// (§VI: "genetic algorithm (20 iterations)" over the TQ(Z) index).
#ifndef TQCOVER_COVER_GENETIC_H_
#define TQCOVER_COVER_GENETIC_H_

#include "cover/greedy.h"
#include "cover/served_sets.h"

namespace tq {

/// GA hyper-parameters. Defaults follow the paper where stated (20
/// generations) and common practice elsewhere.
struct GeneticOptions {
  size_t population = 32;
  size_t generations = 20;
  size_t tournament = 3;
  double mutation_rate = 0.1;
  uint64_t seed = 0x5EEDu;
};

/// Runs the GA over the full facility set, fetching served sets lazily from
/// `cache` (only facilities that appear in some chromosome are collected).
CoverResult GeneticCover(ServedSetCache* cache, size_t num_facilities,
                         size_t k, const ServiceEvaluator& eval,
                         const GeneticOptions& options = {});

/// Convenience wrapper building the cache from a TQ(Z) tree: Gn-TQ(Z).
CoverResult GeneticCoverTQ(TQTree* tree, const FacilityCatalog& catalog,
                           const ServiceEvaluator& eval, size_t k,
                           const GeneticOptions& options = {});

}  // namespace tq

#endif  // TQCOVER_COVER_GENETIC_H_
