#include "cover/served_sets.h"

#include <algorithm>

#include "common/check.h"
#include "query/baseline.h"

namespace tq {

FacilityServedSet FinalizeServedSet(
    FacilityId id, std::unordered_map<uint32_t, DynamicBitset>&& gathered,
    const ServiceEvaluator& eval) {
  FacilityServedSet fs;
  fs.id = id;
  fs.served.reserve(gathered.size());
  for (auto& [user, mask] : gathered) {
    const double value = eval.ValueOfMask(user, mask);
    fs.so += value;
    // Keep only masks that can ever contribute: empty masks are noise.
    if (!mask.None()) fs.served.emplace_back(user, std::move(mask));
  }
  std::sort(fs.served.begin(), fs.served.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return fs;
}

FacilityServedSet CollectServedSetTQ(TQTree* tree,
                                     const FacilityCatalog& catalog,
                                     const ServiceEvaluator& eval,
                                     FacilityId id) {
  std::unordered_map<uint32_t, DynamicBitset> gathered;
  CollectServedTQ(tree, eval, catalog.grid(id), &gathered);
  return FinalizeServedSet(id, std::move(gathered), eval);
}

FacilityServedSet CollectServedSetBaseline(const PointQuadtree& index,
                                           const FacilityCatalog& catalog,
                                           const ServiceEvaluator& eval,
                                           FacilityId id) {
  std::unordered_map<uint32_t, DynamicBitset> gathered;
  CollectServedBaseline(index, eval, catalog.grid(id), &gathered);
  return FinalizeServedSet(id, std::move(gathered), eval);
}

ServedSetCache::ServedSetCache(TQTree* tree, const FacilityCatalog* catalog,
                               const ServiceEvaluator* eval)
    : tree_(tree), catalog_(catalog), eval_(eval) {
  TQ_CHECK(tree != nullptr && catalog != nullptr && eval != nullptr);
  cache_.resize(catalog->size());
}

const FacilityServedSet& ServedSetCache::Get(FacilityId id) {
  TQ_CHECK(id < cache_.size());
  if (!cache_[id].has_value()) {
    cache_[id] = CollectServedSetTQ(tree_, *catalog_, *eval_, id);
    ++collected_;
  }
  return *cache_[id];
}

}  // namespace tq
