// Z-order bucket index over one q-node's trajectory list (§III, "Ordered
// bucketing using z-curve", and the zReduce pruning of Algorithm 2).
//
// Construction mirrors the paper:
//   (i)   the node's space is adaptively partitioned over the *start* points
//         until each cell holds ≤ β starts (CellTree);
//   (ii)  the same is done over the *end* points;
//   (iii) every entry gets a (start z-id, end z-id) pair plus full-depth
//         Morton keys as tie-breaks — the paper's "partitioned until the end
//         point of each such trajectory is assigned a different z-id" — and
//         the sorted list is chunked into z-nodes (buckets) of ≤ β entries,
//         each carrying MBRs and a service upper bound.
//
// zReduce covers the facility component's EMBR with start cells and end
// cells; an entry survives only if its start z-id lies in a covered start
// cell AND its end z-id lies in a covered end cell (Example 4). For models
// that can serve interior points of multipoint trajectories the
// start/end-based filter is unsound, so the index falls back to bucket/entry
// MBR pruning (the z-ordering still provides the locality clustering).
#ifndef TQCOVER_TQTREE_ZINDEX_H_
#define TQCOVER_TQTREE_ZINDEX_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "geom/distance.h"
#include "geom/rect.h"
#include "service/models.h"
#include "tqtree/entry.h"
#include "zorder/cell_tree.h"

namespace tq {

/// How zReduce may prune entries of this index. The paper's two-step filter
/// (Example 4) keeps an entry only when both its start and end z-ids are
/// covered; that is exact precisely when service requires both unit endpoints
/// (binary Scenario 1, and Scenario 3 where a segment needs both ends within
/// ψ). Partial point-count service can serve one endpoint alone, so those
/// trees must use the union filter; interior points of multipoint whole
/// trajectories are invisible to both and fall back to MBR pruning.
enum class ZPruneMode {
  /// start-covered AND end-covered (exact for both-endpoint service).
  kStartEnd,
  /// start-covered OR end-covered (exact for per-point service on
  /// two-endpoint units).
  kStartOrEnd,
  /// Only unit-MBR intersection with the EMBR is sound (multipoint whole
  /// trajectories under interior-point service models).
  kMbr,
};

/// Immutable z-order bucket list for one q-node. Rebuilt (not patched) after
/// node updates; the TQ-tree owns the dirty tracking.
class ZIndex {
 public:
  /// Statistics a query can collect about pruning effectiveness.
  struct ReduceStats {
    size_t buckets_total = 0;
    size_t buckets_visited = 0;
    size_t entries_scanned = 0;
    size_t candidates = 0;
  };

  ZIndex(const Rect& node_rect, std::span<const TrajEntry> entries,
         size_t beta, ZPruneMode prune_mode);

  size_t num_entries() const { return refs_.size() + outliers_.size(); }
  size_t num_buckets() const { return buckets_.size(); }
  size_t num_outliers() const { return outliers_.size(); }
  ZPruneMode prune_mode() const { return prune_mode_; }

  /// The serving footprint of a facility component: its stop points, ψ, and
  /// the stops' ψ-expanded bounding box. zReduce covers z-cells against the
  /// thin stop *corridor* (Example 4: cells "the stop points in G are within
  /// ψ distance" of), not the fat EMBR rectangle — for a long route the
  /// corridor is what makes the pruning bite.
  struct Corridor {
    std::span<const Point> stops;
    double psi = 0.0;
    Rect embr;

    /// True iff some stop's ψ-disk intersects `r` — THE reachability
    /// predicate every pruning layer shares (zReduce bucket filtering,
    /// the z-node bound, the tree bound), so bound and evaluator can
    /// never diverge geometrically. Tested in squared form
    /// (min_d²(stop, r) ≤ fl(ψ²)) with the 4-wide kernel: correctly
    /// rounded subtract/multiply/add are monotone, so for any point p
    /// inside r served by stop s the clamped rect distances compute
    /// ≤ the serve predicate's — the filter can never drop a rect that
    /// contains a served point.
    bool Reaches(const Rect& r) const;

    /// Scalar reference for Reaches — same squared predicate one stop at
    /// a time. Retained for the agreement suite.
    bool ReachesScalar(const Rect& r) const;
  };

  /// Invokes `fn` for every entry that survives zReduce pruning against the
  /// corridor. Entries are passed by index into the node's entry list (the
  /// order given at construction). `stats` may be null.
  ///
  /// `mode_override` may weaken a kStartEnd index to kStartOrEnd: served-set
  /// collection for MaxkCovRST must keep *partially* served users (a source
  /// served by one facility, the destination by another — Lemma 1), while
  /// plain SO evaluation of the same tree correctly drops them. Overrides
  /// that would strengthen the filter are rejected.
  void ForEachCandidate(const Corridor& corridor,
                        const std::function<void(uint32_t)>& fn,
                        ReduceStats* stats = nullptr,
                        std::optional<ZPruneMode> mode_override =
                            std::nullopt) const;

  /// Aggregate upper bound on the service this node's list can contribute
  /// to the corridor's facility: Σ bucket `ub` over z-nodes the corridor
  /// can reach, plus reachable outliers. A bucket is reachable per the
  /// prune mode's own geometry — units MBR (kMbr), start OR end MBR
  /// (kStartOrEnd), start AND end MBRs (kStartEnd) within ψ of a stop —
  /// so a skipped bucket provably holds no serveable entry, by the same
  /// argument that makes zReduce exact. No entry is ever inspected:
  /// cost is O(buckets × stops). `entries` is the node's entry list
  /// (outlier ubs live there). Powers TQTree::UpperBound, which powers
  /// the sharded engine's bound-and-prune top-k.
  double UpperBound(const Corridor& corridor,
                    std::span<const TrajEntry> entries) const;

  /// Scalar reference for UpperBound: the per-bucket mode switch with
  /// ReachesScalar. Bit-identical to UpperBound by construction (predicate
  /// kernels agree lane-for-lane; the sweep adds the same non-negative
  /// bucket ubs in the same ascending order).
  double UpperBoundScalarReference(const Corridor& corridor,
                                   std::span<const TrajEntry> entries) const;

 private:
  struct EntryRef {
    uint64_t start_key = 0;   // adaptive start-cell key (range begin)
    uint64_t end_key = 0;     // adaptive end-cell key (range begin)
    uint64_t start_tie = 0;   // full-depth Morton key of the start point
    uint64_t end_tie = 0;     // full-depth Morton key of the end point
    uint32_t entry_index = 0; // position in the node's entry list
  };
  /// A z-node: one bucket of ≤ β consecutive sorted entries.
  struct Bucket {
    uint32_t begin = 0;
    uint32_t end = 0;
    uint64_t min_start_key = 0;
    uint64_t max_start_key = 0;
    Rect start_mbr = Rect::Empty();
    Rect end_mbr = Rect::Empty();
    Rect units_mbr = Rect::Empty();  // union of unit MBRs (kMbr pruning)
    double ub = 0.0;                 // Σ entry ub — the z-node's "sub"
  };

  ZPruneMode prune_mode_;
  size_t beta_;
  std::unique_ptr<CellTree> start_tree_;
  std::unique_ptr<CellTree> end_tree_;
  std::vector<EntryRef> refs_;
  std::vector<Bucket> buckets_;
  // SoA mirror of the bucket fields the bound sweep reads, so UpperBound
  // streams two or three contiguous arrays instead of striding the ~130-byte
  // Bucket records. rect_a is the units MBR under kMbr, else the start MBR;
  // rect_b is the end MBR (unused under kMbr). ub is clamped to ≥ 0 so the
  // branchless sweep's `reachable ? ub : 0.0` matches the reference's
  // skip-if-nonpositive exactly.
  std::vector<Rect> sweep_rect_a_;
  std::vector<Rect> sweep_rect_b_;
  std::vector<double> sweep_ub_;
  std::vector<Rect> entry_mbrs_;  // parallel to refs_, for kMbr pruning
  // Entries with points outside the node rectangle (possible after dynamic
  // inserts beyond the construction-time world): z-cells cannot represent
  // them, so they are always scanned. Empty in the common case.
  std::vector<std::pair<uint32_t, Rect>> outliers_;  // (entry index, mbr)
};

}  // namespace tq

#endif  // TQCOVER_TQTREE_ZINDEX_H_
