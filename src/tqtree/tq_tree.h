// The Trajectory Quadtree (TQ-tree) — the paper's core contribution (§III).
//
// Two-level index over user trajectories:
//   level 1: a quadtree whose node E stores, in UL(E), the trajectories (or
//            segments) that span E's children (internal nodes) or fit inside
//            E (leaves), so longer units live higher in the tree;
//   level 2: per node, a z-order bucket list (ZIndex) grouping co-located,
//            similarly-oriented units — the structure zReduce prunes.
//
// Variants (all from the paper's evaluation):
//   * IndexVariant::kBasic  — TQ(B): flat per-node lists, no z-ordering.
//   * IndexVariant::kZOrder — TQ(Z): z-ordered buckets per node.
//   * TrajMode::kWhole      — trajectories stored whole: the two-point index
//                             of §III and the full-trajectory index of §III-A.
//   * TrajMode::kSegmented  — every consecutive point pair stored as its own
//                             unit (the segmented index of §III-A).
#ifndef TQCOVER_TQTREE_TQ_TREE_H_
#define TQCOVER_TQTREE_TQ_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "service/models.h"
#include "tqtree/node.h"
#include "traj/dataset.h"

namespace tq {

/// Which second-level organisation a tree uses.
enum class IndexVariant { kBasic, kZOrder };

/// Whether trajectories are stored whole or as independent segments.
enum class TrajMode { kWhole, kSegmented };

/// Construction parameters.
struct TQTreeOptions {
  /// Node capacity and z-bucket size — the paper's β ("size of a memory
  /// block").
  size_t beta = 64;
  /// Maximum quadtree depth.
  int max_depth = 20;
  IndexVariant variant = IndexVariant::kZOrder;
  TrajMode mode = TrajMode::kWhole;
  /// Service model the per-node upper bounds are computed for.
  ServiceModel model;
  /// Ablation: give TQ(B)'s linear scan a per-entry MBR pre-check.
  bool basic_entry_mbr_precheck = false;
};

/// Structural statistics (index size accounting of §III-B).
struct TQTreeStats {
  size_t num_nodes = 0;
  size_t num_leaves = 0;
  size_t num_entries = 0;
  size_t max_depth = 0;
  size_t max_list_len = 0;
  double avg_list_len = 0.0;

  std::string ToString() const;
};

/// The TQ-tree. Bulk-built over a TrajectorySet (not owned; must outlive the
/// tree); supports dynamic Insert/Remove (§III-C). Not thread-safe: z-index
/// rebuilds after updates are lazy and mutate internal state on first query.
class TQTree {
 public:
  TQTree(const TrajectorySet* users, TQTreeOptions options);

  const TQTreeOptions& options() const { return options_; }
  const TrajectorySet& users() const { return *users_; }
  const Rect& world() const { return world_; }
  ZPruneMode prune_mode() const { return prune_mode_; }

  /// True when every stored unit is a two-point unit (segments, or whole
  /// trajectories of a source-destination dataset). Then a unit's stored MBR
  /// is exactly its endpoint MBR, so a unit with both endpoints inside a
  /// facility's EMBR lies wholly inside it — combined with kStartEnd pruning
  /// (no partial credit), top-k may skip the inter-node lists of
  /// ContainingNode's ancestors (see TopKFacilitiesTQ).
  bool two_point_units() const {
    return options_.mode == TrajMode::kSegmented || max_points_ <= 2;
  }

  int32_t root() const { return 0; }
  const TQNode& node(int32_t idx) const {
    return nodes_[static_cast<size_t>(idx)];
  }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_units() const { return num_units_; }

  /// Smallest node whose rectangle contains `r` (the paper's
  /// containingQNode); the root when nothing smaller contains it.
  int32_t ContainingNode(const Rect& r) const;

  /// Nodes on the path root → `idx`, inclusive.
  std::vector<int32_t> PathTo(int32_t idx) const;

  /// Z-index over `idx`'s list, rebuilding if dirty. Returns nullptr for
  /// kBasic trees and for empty lists.
  const ZIndex* zindex(int32_t idx);

  /// Rebuilds every dirty z-index now (no-op for kBasic trees). After this,
  /// queries are read-only until the next Insert/Remove — the freezing step
  /// the concurrent runtime performs before publishing a tree snapshot.
  void BuildAllZIndexes();

  /// Inserts trajectory `traj_id` of the user set (as a whole unit or as all
  /// of its segments, per the tree mode). O(h) descent per unit (§III-C).
  void Insert(uint32_t traj_id);

  /// De-indexes trajectory `traj_id`. Returns false if it was not indexed.
  /// (The TrajectorySet itself is append-only; removal affects the index
  /// only.)
  bool Remove(uint32_t traj_id);

  TQTreeStats ComputeStats() const;

  /// Total of all per-node `sub` consistency: root sub must equal the sum of
  /// every stored unit's upper bound. Used by tests / TQ_DCHECK audits.
  double RootUpperBound() const { return nodes_[0].sub; }

 private:
  friend class TQTreeBuilderAccess;  // test hook
  friend class TQTreeSerializer;     // serialize.cc: raw node access

  /// Deserialisation constructor: sets up members without bulk-building.
  struct DeserializeTag {};
  TQTree(const TrajectorySet* users, TQTreeOptions options, DeserializeTag);

  void BulkBuild();
  void InsertEntry(const TrajEntry& e);
  void StoreAt(int32_t idx, const TrajEntry& e);
  void MaybeSplit(int32_t idx);
  bool RemoveUnit(uint32_t traj_id, uint32_t seg_index, const Rect& unit_mbr,
                  double ub, const ServiceAggregates& agg);
  /// Child of `idx` whose rect contains `mbr`, or -1.
  int32_t ChildContaining(int32_t idx, const Rect& mbr) const;

  const TrajectorySet* users_;
  TQTreeOptions options_;
  Rect world_;
  ZPruneMode prune_mode_;
  std::vector<TQNode> nodes_;
  size_t num_units_ = 0;
  size_t max_points_ = 0;
};

/// Derives the soundness-preserving prune mode for a tree configuration (see
/// ZPruneMode). `max_points` is the maximum trajectory point count.
ZPruneMode DerivePruneMode(TrajMode mode, const ServiceModel& model,
                           size_t max_points);

}  // namespace tq

#endif  // TQCOVER_TQTREE_TQ_TREE_H_
