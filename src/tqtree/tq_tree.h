// The Trajectory Quadtree (TQ-tree) — the paper's core contribution (§III).
//
// Two-level index over user trajectories:
//   level 1: a quadtree whose node E stores, in UL(E), the trajectories (or
//            segments) that span E's children (internal nodes) or fit inside
//            E (leaves), so longer units live higher in the tree;
//   level 2: per node, a z-order bucket list (ZIndex) grouping co-located,
//            similarly-oriented units — the structure zReduce prunes.
//
// Variants (all from the paper's evaluation):
//   * IndexVariant::kBasic  — TQ(B): flat per-node lists, no z-ordering.
//   * IndexVariant::kZOrder — TQ(Z): z-ordered buckets per node.
//   * TrajMode::kWhole      — trajectories stored whole: the two-point index
//                             of §III and the full-trajectory index of §III-A.
//   * TrajMode::kSegmented  — every consecutive point pair stored as its own
//                             unit (the segmented index of §III-A).
//
// Persistent storage (the serving runtime's snapshot substrate): nodes live
// in immutable, reference-counted pages (NodePage, node.h) addressed through
// a per-tree page table, id -> pages_[id >> kNodePageShift]. Fork() produces
// a new tree sharing EVERY page with its parent in O(num_pages) pointer
// copies; a subsequent Insert/Remove on either tree path-copies only the
// pages its root-to-leaf paths (and split allocations) touch, re-tagging
// them with the writing tree's epoch. Untouched pages — including their
// already-built z-indexes — stay shared, so publishing a small write batch
// costs O(batch × depth) node copies instead of a full-tree clone.
#ifndef TQCOVER_TQTREE_TQ_TREE_H_
#define TQCOVER_TQTREE_TQ_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "service/models.h"
#include "tqtree/node.h"
#include "traj/dataset.h"

namespace tq {

class PointRaster;  // tqtree/point_raster.h
class StopGrid;     // service/stop_grid.h

/// Which second-level organisation a tree uses.
enum class IndexVariant { kBasic, kZOrder };

/// Whether trajectories are stored whole or as independent segments.
enum class TrajMode { kWhole, kSegmented };

/// Construction parameters.
struct TQTreeOptions {
  /// Node capacity and z-bucket size — the paper's β ("size of a memory
  /// block").
  size_t beta = 64;
  /// Maximum quadtree depth.
  int max_depth = 20;
  IndexVariant variant = IndexVariant::kZOrder;
  TrajMode mode = TrajMode::kWhole;
  /// Service model the per-node upper bounds are computed for.
  ServiceModel model;
  /// Ablation: give TQ(B)'s linear scan a per-entry MBR pre-check.
  bool basic_entry_mbr_precheck = false;
  /// Cells per axis of the point-mass raster backing UpperBound()
  /// (point_raster.h); 0 disables it (bounds then come from node
  /// aggregates alone — far looser on roaming-unit workloads).
  size_t bound_raster_resolution = 256;
};

/// Structural statistics (index size accounting of §III-B).
struct TQTreeStats {
  size_t num_nodes = 0;
  size_t num_leaves = 0;
  size_t num_entries = 0;
  size_t max_depth = 0;
  size_t max_list_len = 0;
  double avg_list_len = 0.0;

  std::string ToString() const;
};

/// Copy-on-write accounting since this tree was forked (all zero for trees
/// built from scratch or loaded from disk). `nodes_copied` counts the nodes
/// living in pages this tree had to duplicate before writing — the physical
/// publish cost a write batch pays; `pages_shared` is how many of the
/// fork-time pages are still shared with the parent snapshot.
struct CowStats {
  uint64_t pages_copied = 0;
  uint64_t nodes_copied = 0;
  uint64_t pages_at_fork = 0;

  uint64_t pages_shared() const {
    return pages_at_fork > pages_copied ? pages_at_fork - pages_copied : 0;
  }
};

/// The TQ-tree. Bulk-built over a TrajectorySet (not owned; must outlive the
/// tree); supports dynamic Insert/Remove (§III-C). Not thread-safe: z-index
/// rebuilds after updates are lazy and mutate internal state on first query.
class TQTree {
 public:
  TQTree(const TrajectorySet* users, TQTreeOptions options);

  // A plain copy would share pages AND the ownership epoch — both sides
  // would then write shared pages in place. Fork() is the only sanctioned
  // way to duplicate a tree.
  TQTree(const TQTree&) = delete;
  TQTree& operator=(const TQTree&) = delete;

  const TQTreeOptions& options() const { return options_; }
  const TrajectorySet& users() const { return *users_; }
  const Rect& world() const { return world_; }
  ZPruneMode prune_mode() const { return prune_mode_; }

  /// True when every stored unit is a two-point unit (segments, or whole
  /// trajectories of a source-destination dataset). Then a unit's stored MBR
  /// is exactly its endpoint MBR, so a unit with both endpoints inside a
  /// facility's EMBR lies wholly inside it — combined with kStartEnd pruning
  /// (no partial credit), top-k may skip the inter-node lists of
  /// ContainingNode's ancestors (see TopKFacilitiesTQ).
  bool two_point_units() const {
    return options_.mode == TrajMode::kSegmented || max_points_ <= 2;
  }

  int32_t root() const { return 0; }
  const TQNode& node(int32_t idx) const {
    return pages_[static_cast<size_t>(idx) >> kNodePageShift]
        ->nodes[static_cast<size_t>(idx) & kNodePageMask];
  }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_pages() const { return pages_.size(); }
  size_t num_units() const { return num_units_; }

  /// Structurally-shared copy: the fork shares every node page (and every
  /// built z-index) with this tree; both sides then copy pages on first
  /// write, so neither can disturb the other. `users` must be the same
  /// trajectory set or an append-only extension of it (ids are stable), and
  /// must outlive the fork. Cost: O(num_pages) shared_ptr copies — this is
  /// the snapshot-publish primitive of the concurrent runtime.
  ///
  /// After the fork, the PARENT also copies on write (it no longer owns any
  /// page), so retained older snapshots stay bit-identical no matter which
  /// side is written next.
  ///
  /// Rare slow path: if the extended user set flips the tree's
  /// soundness-preserving z-prune mode (a longer trajectory appears and
  /// EndpointsOnly no longer holds), the shared z-indexes are invalid for
  /// the fork and every node is marked dirty — the publish then costs a
  /// rebuild, like the old full clone, but never answers wrongly.
  std::unique_ptr<TQTree> Fork(const TrajectorySet* users);

  /// Copy-on-write accounting since the last Fork() that created this tree.
  const CowStats& cow_stats() const { return cow_stats_; }

  /// Smallest node whose rectangle contains `r` (the paper's
  /// containingQNode); the root when nothing smaller contains it.
  int32_t ContainingNode(const Rect& r) const;

  /// Cheap, sound upper bound on SO(U, f) for the facility behind `grid`,
  /// derived purely from node aggregates — no entry list is ever scanned.
  ///
  /// Descends at most `max_levels` levels below ContainingNode(EMBR): a
  /// node whose rectangle no stop's ψ-disk reaches contributes nothing
  /// (every unit in its subtree has its MBR, hence all its points, inside
  /// the rectangle); a visited node's own list is bounded at z-node
  /// granularity when a built z-index is available (ZIndex::UpperBound:
  /// Σ bucket ub over corridor-reachable buckets — crucial because
  /// long-span units pool in upper-node lists where `local_ub` alone
  /// cannot discriminate facilities), falling back to `local_ub`
  /// otherwise; at the level budget the subtree is closed with the
  /// children's `sub` aggregates. Ancestors of the containing node
  /// contribute their list bound unless the two-point + kStartEnd argument
  /// of TopKFacilitiesTQ proves them zero.
  ///
  /// Never smaller than EvaluateServiceTQ's exact value; larger
  /// `max_levels` tightens the bound at the price of visiting up to 4×
  /// more nodes per level. Cost is O(nodes × buckets-per-node × stops)
  /// over the visited frontier — no entry is ever scanned, which is what
  /// makes the sharded engine's bound-and-prune top-k sweep cheap.
  /// Thread-safe on a FROZEN tree (const: never builds a z-index; call
  /// BuildAllZIndexes() first for the tight bucket-level bound).
  /// `nodes_visited`, if given, is incremented by the number of q-nodes
  /// inspected.
  double UpperBound(const StopGrid& grid, int max_levels = 4,
                    size_t* nodes_visited = nullptr) const;

  /// Scalar reference for UpperBound: the same traversal over the node
  /// pages (never the SoA arena) with the scalar reachability kernels.
  /// Bit-identical to UpperBound by construction — the agreement suite
  /// (tests/test_simd_kernels.cc) holds both paths to it.
  double UpperBoundScalarReference(const StopGrid& grid, int max_levels = 4,
                                   size_t* nodes_visited = nullptr) const;

  /// Nodes on the path root → `idx`, inclusive.
  std::vector<int32_t> PathTo(int32_t idx) const;

  /// Z-index over `idx`'s list, rebuilding if dirty. Returns nullptr for
  /// kBasic trees and for empty lists.
  const ZIndex* zindex(int32_t idx);

  /// Rebuilds every dirty z-index now (no-op for kBasic trees). After this,
  /// queries are read-only until the next Insert/Remove — the freezing step
  /// the concurrent runtime performs before publishing a tree snapshot. On a
  /// fork, only nodes the write batch touched are dirty, so this rebuilds
  /// O(batch × depth) z-indexes, not the whole tree's.
  void BuildAllZIndexes();

  /// Inserts trajectory `traj_id` of the user set (as a whole unit or as all
  /// of its segments, per the tree mode). O(h) descent per unit (§III-C).
  void Insert(uint32_t traj_id);

  /// De-indexes trajectory `traj_id`. Returns false if it was not indexed.
  /// (The TrajectorySet itself is append-only; removal affects the index
  /// only.)
  bool Remove(uint32_t traj_id);

  TQTreeStats ComputeStats() const;

  /// Total of all per-node `sub` consistency: root sub must equal the sum of
  /// every stored unit's upper bound. Used by tests / TQ_DCHECK audits.
  double RootUpperBound() const { return node(0).sub; }

 private:
  friend class TQTreeBuilderAccess;  // test hook
  friend class TQTreeSerializer;     // serialize.cc: raw node access

  /// Deserialisation constructor: sets up members without bulk-building.
  struct DeserializeTag {};
  TQTree(const TrajectorySet* users, TQTreeOptions options, DeserializeTag);

  /// Writable reference to node `idx`: copies its page first if the page is
  /// shared with (or still owned by) another tree instance. References stay
  /// valid until another CopyPage of the SAME page — appends never move
  /// existing nodes, unlike the old contiguous node array.
  TQNode& MutableNode(int32_t idx) {
    // Any write invalidates the bound-sweep arena; it is rebuilt at the next
    // freeze (BuildAllZIndexes). One store — negligible next to the copy
    // check.
    bound_arena_.valid = false;
    const auto p = static_cast<size_t>(idx) >> kNodePageShift;
    if (pages_[p]->epoch != epoch_) CopyPage(p);
    return pages_[p]->nodes[static_cast<size_t>(idx) & kNodePageMask];
  }
  void CopyPage(size_t page_index);
  /// Rebuilds the point-mass raster from the currently indexed
  /// trajectories (first freeze, and deserialised trees).
  void BuildRaster();
  /// Deposits (+1) / withdraws (-1) `traj_id`'s point weights, copying a
  /// raster shared with forks first (raster copy-on-write).
  void RasterApply(uint32_t traj_id, double sign);
  /// Appends a default node, growing (and if needed copy-owning) the last
  /// page; returns its id.
  int32_t AppendNode();
  /// Allocates `count` owned pages holding exactly `n` default nodes (load
  /// path; no sharing, no copy accounting).
  void ResizeNodes(size_t n);
  void MarkAllZIndexesDirty();

  /// SoA mirror of the per-node fields the bound sweep reads (hot-field
  /// arena): UpperBound's descent strides four ~32-192-byte TQNode records
  /// per level through the page table; the arena packs sub/rect/child/list
  /// bound into contiguous per-field vectors indexed by node id, so the
  /// sweep touches a handful of streaming cache lines instead. `zindex`
  /// holds raw pointers into the shared_ptr-owned per-node indexes — valid
  /// exactly while `valid` is set, because every mutation path goes through
  /// MutableNode/AppendNode which clear it, and the owning pages outlive
  /// the arena within this tree instance.
  struct BoundArena {
    bool valid = false;
    std::vector<double> sub;
    std::vector<Rect> rect;
    std::vector<int32_t> first_child;
    std::vector<double> local_ub;  // 0.0 when the node list is empty
    std::vector<const ZIndex*> zindex;  // null unless built and clean
    std::vector<std::span<const TrajEntry>> entries;
  };
  /// (Re)builds the arena from the current nodes; called at freeze time.
  void BuildBoundArena();

  /// One traversal source for every UpperBound flavour, so the arena and
  /// page paths (and the vector and scalar kernels) visit the same nodes in
  /// the same order and add the same terms — bounds are identical by
  /// construction, not by coincidence.
  template <bool kUseArena, bool kScalar>
  double UpperBoundImpl(const StopGrid& grid, int max_levels,
                        size_t* nodes_visited) const;

  void BulkBuild();
  void InsertEntry(const TrajEntry& e);
  void StoreAt(int32_t idx, const TrajEntry& e);
  void MaybeSplit(int32_t idx);
  bool RemoveUnit(uint32_t traj_id, uint32_t seg_index, const Rect& unit_mbr,
                  double ub, const ServiceAggregates& agg);
  /// Child of `idx` whose rect contains `mbr`, or -1.
  int32_t ChildContaining(int32_t idx, const Rect& mbr) const;

  const TrajectorySet* users_;
  TQTreeOptions options_;
  Rect world_;
  ZPruneMode prune_mode_;
  /// Page-table storage: node id -> pages_[id >> shift]->nodes[id & mask].
  /// Pages are shared across forked trees; epoch_ tags the pages this
  /// instance may write in place.
  std::vector<std::shared_ptr<NodePage>> pages_;
  size_t num_nodes_ = 0;
  uint64_t epoch_ = 0;
  CowStats cow_stats_;
  size_t num_units_ = 0;
  size_t max_points_ = 0;
  /// Point-mass raster for UpperBound(); built on first freeze, shared
  /// with forks until either side writes (raster_owned_ gates in-place
  /// mutation, mirroring the page epochs). Null until frozen or when
  /// disabled by options.
  std::shared_ptr<PointRaster> raster_;
  bool raster_owned_ = false;
  BoundArena bound_arena_;
};

/// Derives the soundness-preserving prune mode for a tree configuration (see
/// ZPruneMode). `max_points` is the maximum trajectory point count.
ZPruneMode DerivePruneMode(TrajMode mode, const ServiceModel& model,
                           size_t max_points);

}  // namespace tq

#endif  // TQCOVER_TQTREE_TQ_TREE_H_
