// The q-node of a TQ-tree (§III).
#ifndef TQCOVER_TQTREE_NODE_H_
#define TQCOVER_TQTREE_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/rect.h"
#include "service/models.h"
#include "tqtree/entry.h"
#include "tqtree/zindex.h"

namespace tq {

/// One quadtree node. Leaf nodes hold intra-node units (both/all unit points
/// inside the node); internal nodes hold inter-node units (units spanning at
/// least two immediate children). `sub` is the paper's per-node upper bound
/// on the total service value of everything stored in the subtree rooted
/// here (including this node's own list).
struct TQNode {
  Rect rect;
  int32_t first_child = -1;  // children contiguous in the node array
  int16_t depth = 0;

  /// UL(E): the node's trajectory (unit) list.
  std::vector<TrajEntry> entries;

  /// Upper bound over this node's own list only.
  double local_ub = 0.0;
  /// Upper bound over the whole subtree (the paper's "sub").
  double sub = 0.0;

  ServiceAggregates local_agg;
  ServiceAggregates sub_agg;

  /// Z-order bucket index over `entries` (TQ(Z) only); rebuilt when dirty.
  std::unique_ptr<ZIndex> zindex;
  bool zindex_dirty = true;

  /// Entry count at which the last split attempt found nothing movable;
  /// retried only once the list doubles (keeps inserts amortised-cheap).
  uint32_t split_failed_at = 0;

  bool IsLeaf() const { return first_child < 0; }
};

}  // namespace tq

#endif  // TQCOVER_TQTREE_NODE_H_
