// The q-node of a TQ-tree (§III).
#ifndef TQCOVER_TQTREE_NODE_H_
#define TQCOVER_TQTREE_NODE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/rect.h"
#include "service/models.h"
#include "tqtree/entry.h"
#include "tqtree/zindex.h"

namespace tq {

/// One quadtree node. Leaf nodes hold intra-node units (both/all unit points
/// inside the node); internal nodes hold inter-node units (units spanning at
/// least two immediate children). `sub` is the paper's per-node upper bound
/// on the total service value of everything stored in the subtree rooted
/// here (including this node's own list).
///
/// Copyable: the persistent page store (tq_tree.h) duplicates whole nodes
/// when a shared page is first written. The z-index is an immutable shared
/// object so a copied-but-unmodified node keeps the already-built index
/// instead of rebuilding it — that sharing is what makes forked snapshots
/// cheap.
struct TQNode {
  Rect rect;
  int32_t first_child = -1;  // children contiguous in the node id space
  int16_t depth = 0;

  /// UL(E): the node's trajectory (unit) list.
  std::vector<TrajEntry> entries;

  /// Upper bound over this node's own list only.
  double local_ub = 0.0;
  /// Upper bound over the whole subtree (the paper's "sub").
  double sub = 0.0;

  ServiceAggregates local_agg;
  ServiceAggregates sub_agg;

  /// Z-order bucket index over `entries` (TQ(Z) only); immutable once built,
  /// shared across page copies and forked trees; rebuilt when dirty.
  std::shared_ptr<const ZIndex> zindex;
  bool zindex_dirty = true;

  /// Entry count at which the last split attempt found nothing movable;
  /// retried only once the list doubles (keeps inserts amortised-cheap).
  uint32_t split_failed_at = 0;

  bool IsLeaf() const { return first_child < 0; }
};

/// Nodes per page of the persistent node store: 1 << kPageShift. Small pages
/// keep the copy amplification of a root-to-leaf path copy low (a write
/// batch duplicates only the pages its paths touch; every node sharing a
/// page with a touched node rides along), while the page table stays a
/// dense vector of num_nodes / kPageSize shared_ptrs.
inline constexpr int kNodePageShift = 3;
inline constexpr size_t kNodePageSize = size_t{1} << kNodePageShift;
inline constexpr size_t kNodePageMask = kNodePageSize - 1;

/// One reference-counted page of TQNodes. `epoch` tags the tree instance
/// that may write the page in place: a fork re-tags both trees, so each
/// side copies a shared page on first write (see TQTree::MutableNode).
struct NodePage {
  uint64_t epoch = 0;
  std::array<TQNode, kNodePageSize> nodes;

  NodePage() = default;
  NodePage(const NodePage& other, uint64_t new_epoch)
      : epoch(new_epoch), nodes(other.nodes) {}
};

}  // namespace tq

#endif  // TQCOVER_TQTREE_NODE_H_
