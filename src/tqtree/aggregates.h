// Construction of TrajEntry units and their service upper bounds.
#ifndef TQCOVER_TQTREE_AGGREGATES_H_
#define TQCOVER_TQTREE_AGGREGATES_H_

#include "service/models.h"
#include "tqtree/entry.h"
#include "traj/dataset.h"

namespace tq {

/// Builds the unit for whole trajectory `traj` of `users`.
TrajEntry MakeWholeEntry(const TrajectorySet& users, uint32_t traj,
                         const ServiceModel& model);

/// Builds the unit for segment `seg` (points seg, seg+1) of `traj`.
TrajEntry MakeSegmentEntry(const TrajectorySet& users, uint32_t traj,
                           uint32_t seg, const ServiceModel& model);

/// Per-unit upper bound on the service value the unit can contribute.
///
/// Whole units: 1 for any per-user-normalised model (S(u,f) ≤ 1); the raw
/// point count / length otherwise.
///
/// Segment units: the paper stores per-node totals; to keep the best-first
/// bound sound when one trajectory spans many nodes we attribute
///   * Scenario 1: 1.0 to each segment touching an endpoint of u (serving is
///     non-additive, so each endpoint segment must cover the whole value);
///   * Scenario 2: each point to exactly one owner segment (segment i owns
///     point i+1; segment 0 also owns point 0), so subtree bounds stay exact
///     under the union/dedup accumulator;
///   * Scenario 3: the segment's own (normalised) length.
double UnitUpperBound(const TrajectorySet& users, uint32_t traj, uint32_t seg,
                      const ServiceModel& model);

}  // namespace tq

#endif  // TQCOVER_TQTREE_AGGREGATES_H_
