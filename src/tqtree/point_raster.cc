#include "tqtree/point_raster.h"

#include <algorithm>

#include "common/check.h"
#include "geom/distance.h"

namespace tq {

namespace {

/// Covers floating-point drift of cell masses accumulated over long
/// add/remove histories (each cycle can leave ~ulp residue): the bound is
/// inflated by this factor, which dwarfs the relative drift of any
/// realistic churn volume while leaving the bound's ~small-multiple
/// looseness unchanged. Zero mass stays exactly zero.
constexpr double kDriftInflation = 1.0 + 1e-6;

}  // namespace

PointRaster::PointRaster(const Rect& world, size_t resolution)
    : world_(world), resolution_(std::max<size_t>(1, resolution)) {
  TQ_CHECK(!world.IsEmpty());
  const double r = static_cast<double>(resolution_);
  inv_cell_w_ = world_.Width() > 0 ? r / world_.Width() : 0.0;
  inv_cell_h_ = world_.Height() > 0 ? r / world_.Height() : 0.0;
  mass_.assign(resolution_ * resolution_, 0.0);
}

size_t PointRaster::ColOf(double x) const {
  // Monotone clamped mapping: out-of-world coordinates share the border
  // column, so a point and a stop beyond the world still meet in it.
  const double c = (x - world_.min_x) * inv_cell_w_;
  if (c <= 0.0) return 0;
  const auto col = static_cast<size_t>(c);
  return std::min(col, resolution_ - 1);
}

size_t PointRaster::RowOf(double y) const {
  const double r = (y - world_.min_y) * inv_cell_h_;
  if (r <= 0.0) return 0;
  const auto row = static_cast<size_t>(r);
  return std::min(row, resolution_ - 1);
}

void PointRaster::AddTrajectory(std::span<const Point> points,
                                const ServiceModel& model, double sign) {
  if (points.empty()) return;
  switch (model.scenario) {
    case Scenario::kEndpoints:
      // S(u,f) = 1 requires the source within ψ of a stop; cap the whole
      // user's value on its source point alone (destination would double
      // the deposited mass for no extra soundness).
      mass_[RowOf(points.front().y) * resolution_ +
            ColOf(points.front().x)] += sign;
      break;
    case Scenario::kPointCount: {
      const double w = model.normalization == Normalization::kPerUser
                           ? 1.0 / static_cast<double>(points.size())
                           : 1.0;
      for (const Point& p : points) {
        mass_[RowOf(p.y) * resolution_ + ColOf(p.x)] += sign * w;
      }
      break;
    }
    case Scenario::kLength: {
      // A served segment needs BOTH endpoints within ψ, so charging each
      // segment's length to its start point is a cap.
      const double total = PolylineLength(points);
      const double norm = model.normalization == Normalization::kPerUser
                              ? (total > 0.0 ? 1.0 / total : 0.0)
                              : 1.0;
      for (size_t i = 0; i + 1 < points.size(); ++i) {
        mass_[RowOf(points[i].y) * resolution_ + ColOf(points[i].x)] +=
            sign * Distance(points[i], points[i + 1]) * norm;
      }
      break;
    }
  }
}

double PointRaster::MassNearStops(std::span<const Point> stops,
                                  double psi) const {
  // Dedupe covered cells first: consecutive stops of one route overlap
  // heavily at ψ scale, and double-counting would inflate the bound by the
  // overlap factor. thread_local scratch: this runs once per (facility,
  // shard) inside the bound sweep, so per-call allocation would churn
  // (same pattern as the ZKeyRanges scratch in zindex.cc).
  static thread_local std::vector<uint32_t> cells;
  cells.clear();
  for (const Point& s : stops) {
    const size_t c0 = ColOf(s.x - psi);
    const size_t c1 = ColOf(s.x + psi);
    const size_t r0 = RowOf(s.y - psi);
    const size_t r1 = RowOf(s.y + psi);
    for (size_t r = r0; r <= r1; ++r) {
      for (size_t c = c0; c <= c1; ++c) {
        cells.push_back(static_cast<uint32_t>(r * resolution_ + c));
      }
    }
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  double sum = 0.0;
  // max(0): a cell whose deposits all cancelled may hold a tiny negative
  // residue; it must not subtract from other cells' real mass.
  for (const uint32_t cell : cells) sum += std::max(0.0, mass_[cell]);
  return sum * kDriftInflation;
}

double PointRaster::TotalMass() const {
  double sum = 0.0;
  for (const double m : mass_) sum += std::max(0.0, m);
  return sum;
}

}  // namespace tq
