#include "tqtree/zindex.h"

#include <algorithm>

#include "common/check.h"
#include "common/simd.h"
#include "geom/distance.h"

namespace tq {

bool ZIndex::Corridor::Reaches(const Rect& r) const {
  const double psi2 = psi * psi;
  const size_t n = stops.size();
  static_assert(sizeof(Point) == 2 * sizeof(double),
                "corridor kernel assumes Point is two packed doubles");
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (simd::LanesDiskReachRect(&stops[i].x, r.min_x, r.min_y, r.max_x,
                                 r.max_y, psi2) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (simd::scalar::DiskReachRect(stops[i].x, stops[i].y, r.min_x, r.min_y,
                                    r.max_x, r.max_y, psi2)) {
      return true;
    }
  }
  return false;
}

bool ZIndex::Corridor::ReachesScalar(const Rect& r) const {
  const double psi2 = psi * psi;
  for (const Point& s : stops) {
    if (simd::scalar::DiskReachRect(s.x, s.y, r.min_x, r.min_y, r.max_x,
                                    r.max_y, psi2)) {
      return true;
    }
  }
  return false;
}

ZIndex::ZIndex(const Rect& node_rect, std::span<const TrajEntry> entries,
               size_t beta, ZPruneMode prune_mode)
    : prune_mode_(prune_mode), beta_(beta) {
  TQ_CHECK(beta > 0);
  // Entries whose endpoints escape the node rectangle cannot be assigned
  // meaningful z-cells; route them to the always-scanned outlier list.
  std::vector<uint32_t> indexed;
  indexed.reserve(entries.size());
  for (uint32_t i = 0; i < entries.size(); ++i) {
    if (node_rect.Contains(entries[i].start) &&
        node_rect.Contains(entries[i].end)) {
      indexed.push_back(i);
    } else {
      outliers_.emplace_back(i, entries[i].mbr);
    }
  }

  std::vector<Point> starts;
  std::vector<Point> ends;
  starts.reserve(indexed.size());
  ends.reserve(indexed.size());
  for (const uint32_t i : indexed) {
    starts.push_back(entries[i].start);
    ends.push_back(entries[i].end);
  }
  start_tree_ = std::make_unique<CellTree>(node_rect, starts, beta);
  end_tree_ = std::make_unique<CellTree>(node_rect, ends, beta);

  refs_.resize(indexed.size());
  for (uint32_t pos = 0; pos < indexed.size(); ++pos) {
    const uint32_t i = indexed[pos];
    EntryRef& r = refs_[pos];
    r.start_key = start_tree_->Locate(entries[i].start).RangeBegin();
    r.end_key = end_tree_->Locate(entries[i].end).RangeBegin();
    r.start_tie = MortonKey(node_rect, entries[i].start);
    r.end_tie = MortonKey(node_rect, entries[i].end);
    r.entry_index = i;
  }
  std::sort(refs_.begin(), refs_.end(),
            [](const EntryRef& a, const EntryRef& b) {
              if (a.start_key != b.start_key) return a.start_key < b.start_key;
              if (a.end_key != b.end_key) return a.end_key < b.end_key;
              if (a.start_tie != b.start_tie) return a.start_tie < b.start_tie;
              if (a.end_tie != b.end_tie) return a.end_tie < b.end_tie;
              return a.entry_index < b.entry_index;
            });

  entry_mbrs_.resize(refs_.size());
  for (size_t i = 0; i < refs_.size(); ++i) {
    entry_mbrs_[i] = entries[refs_[i].entry_index].mbr;
  }

  // Chunk the sorted list into z-nodes of ≤ β entries.
  for (uint32_t begin = 0; begin < refs_.size();
       begin += static_cast<uint32_t>(beta)) {
    const uint32_t end = std::min<uint32_t>(
        begin + static_cast<uint32_t>(beta),
        static_cast<uint32_t>(refs_.size()));
    Bucket b;
    b.begin = begin;
    b.end = end;
    b.min_start_key = refs_[begin].start_key;
    b.max_start_key = refs_[end - 1].start_key;
    for (uint32_t i = begin; i < end; ++i) {
      const TrajEntry& e = entries[refs_[i].entry_index];
      b.start_mbr.Include(e.start);
      b.end_mbr.Include(e.end);
      b.units_mbr = b.units_mbr.UnionWith(e.mbr);
      b.ub += e.ub;
    }
    buckets_.push_back(b);
  }

  // SoA sweep mirror (see header). The per-bucket reach geometry is fixed by
  // the prune mode at construction, so the sweep loops need no mode switch.
  sweep_rect_a_.reserve(buckets_.size());
  sweep_rect_b_.reserve(buckets_.size());
  sweep_ub_.reserve(buckets_.size());
  for (const Bucket& b : buckets_) {
    sweep_rect_a_.push_back(prune_mode == ZPruneMode::kMbr ? b.units_mbr
                                                           : b.start_mbr);
    sweep_rect_b_.push_back(b.end_mbr);
    sweep_ub_.push_back(b.ub > 0.0 ? b.ub : 0.0);
  }
}

void ZIndex::ForEachCandidate(const Corridor& corridor,
                              const std::function<void(uint32_t)>& fn,
                              ReduceStats* stats,
                              std::optional<ZPruneMode> mode_override) const {
  ZPruneMode mode = prune_mode_;
  if (mode_override.has_value()) {
    // Only weakening is sound: kStartEnd → kStartOrEnd.
    TQ_CHECK(*mode_override == prune_mode_ ||
             (prune_mode_ == ZPruneMode::kStartEnd &&
              *mode_override == ZPruneMode::kStartOrEnd));
    mode = *mode_override;
  }
  if (stats != nullptr) stats->buckets_total += buckets_.size();
  // Outliers (entries beyond the node's z-addressable rectangle) are always
  // scanned, whatever the filter decides below.
  for (const auto& [entry_index, mbr] : outliers_) {
    if (stats != nullptr) stats->entries_scanned++;
    if (mbr.Intersects(corridor.embr)) {
      if (stats != nullptr) stats->candidates++;
      fn(entry_index);
    }
  }
  if (refs_.empty()) return;
  // Lists of a couple of buckets gain nothing from filtering: the cover
  // walks cost more than just exact-checking every entry.
  if (refs_.size() <= 2 * beta_) {
    if (stats != nullptr) {
      stats->buckets_visited += buckets_.size();
      stats->entries_scanned += refs_.size();
      stats->candidates += refs_.size();
    }
    for (const EntryRef& r : refs_) fn(r.entry_index);
    return;
  }
  const Rect& embr = corridor.embr;

  if (mode == ZPruneMode::kMbr) {
    // Interior points may be served: only MBR pruning is sound. Buckets are
    // pruned against the corridor (any stop disk touching the union MBR),
    // entries against the cheap EMBR rectangle.
    for (const Bucket& b : buckets_) {
      if (!b.units_mbr.Intersects(embr)) continue;
      if (!corridor.Reaches(b.units_mbr)) continue;
      if (stats != nullptr) stats->buckets_visited++;
      for (uint32_t i = b.begin; i < b.end; ++i) {
        if (stats != nullptr) stats->entries_scanned++;
        if (entry_mbrs_[i].Intersects(embr)) {
          if (stats != nullptr) stats->candidates++;
          fn(refs_[i].entry_index);
        }
      }
    }
    return;
  }

  const bool require_both_pre = mode == ZPruneMode::kStartEnd;
  // Cheap pre-estimate: if the stops' serving squares alone would blanket
  // this node, filtering cannot pay — scan directly and skip the cover walk.
  {
    const Rect& world = start_tree_->world();
    const double node_area =
        std::max(world.Width() * world.Height(), 1e-9);
    const double stop_area = static_cast<double>(corridor.stops.size()) *
                             (2.0 * corridor.psi) * (2.0 * corridor.psi);
    if (!require_both_pre && stop_area > 0.8 * node_area) {
      if (stats != nullptr) {
        stats->buckets_visited += buckets_.size();
        stats->entries_scanned += refs_.size();
        stats->candidates += refs_.size();
      }
      for (const EntryRef& r : refs_) fn(r.entry_index);
      return;
    }
  }

  // z-cell filters (the paper's two-step zReduce), covered against the stop
  // corridor rather than the bounding rectangle.
  size_t start_leaves = 0;
  size_t end_leaves = 0;
  static thread_local ZKeyRanges start_ranges;
  static thread_local ZKeyRanges end_ranges;
  start_tree_->CoverRangesNearStopsInto(corridor.stops, corridor.psi,
                                        &start_ranges, &start_leaves);
  end_tree_->CoverRangesNearStopsInto(corridor.stops, corridor.psi,
                                      &end_ranges, &end_leaves);
  const bool require_both = mode == ZPruneMode::kStartEnd;
  if (require_both && (start_ranges.empty() || end_ranges.empty())) return;
  if (start_ranges.empty() && end_ranges.empty()) return;

  // Adaptive fallback: when the corridor blankets the node, the filter lets
  // nearly everything through and the per-entry range probes are pure
  // overhead — degrade gracefully to the plain scan (identical output; the
  // exact check downstream decides service either way).
  {
    const double s_sel = static_cast<double>(start_leaves) /
                         static_cast<double>(start_tree_->num_leaves());
    const double e_sel = static_cast<double>(end_leaves) /
                         static_cast<double>(end_tree_->num_leaves());
    const double selectivity =
        require_both ? std::min(s_sel, e_sel) : s_sel + e_sel - s_sel * e_sel;
    if (selectivity > 0.6) {
      if (stats != nullptr) {
        stats->buckets_visited += buckets_.size();
        stats->entries_scanned += refs_.size();
        stats->candidates += refs_.size();
      }
      for (const EntryRef& r : refs_) fn(r.entry_index);
      return;
    }
  }

  // Walk buckets and covered start ranges in tandem (both sorted by key).
  size_t ri = 0;
  for (const Bucket& b : buckets_) {
    while (ri < start_ranges.size() &&
           start_ranges[ri].second <= b.min_start_key) {
      ++ri;
    }
    const bool start_overlap = ri < start_ranges.size() &&
                               start_ranges[ri].first <= b.max_start_key &&
                               b.start_mbr.Intersects(embr);
    if (require_both) {
      if (!start_overlap) continue;
    } else {
      // Union filter: the bucket may still hold served *end* points.
      if (!start_overlap && !b.end_mbr.Intersects(embr)) continue;
    }
    if (stats != nullptr) stats->buckets_visited++;
    for (uint32_t i = b.begin; i < b.end; ++i) {
      if (stats != nullptr) stats->entries_scanned++;
      const EntryRef& r = refs_[i];
      const bool s_in = RangesContain(start_ranges, r.start_key);
      const bool e_in = RangesContain(end_ranges, r.end_key);
      if (require_both ? (s_in && e_in) : (s_in || e_in)) {
        if (stats != nullptr) stats->candidates++;
        fn(r.entry_index);
      }
    }
  }
}

double ZIndex::UpperBound(const Corridor& corridor,
                          std::span<const TrajEntry> entries) const {
  double bound = 0.0;
  for (const auto& [entry_index, mbr] : outliers_) {
    if (corridor.Reaches(mbr)) bound += entries[entry_index].ub;
  }
  // Mode hoisted out of the sweep; `reachable ? ub : 0.0` keeps the loop
  // body branch-free over the SoA arrays. Adding +0.0 for skipped buckets
  // is bit-exact against the reference's skip: the running bound and every
  // stored ub are non-negative, and x + 0.0 == x for x ≥ +0.0.
  const size_t nb = sweep_ub_.size();
  switch (prune_mode_) {
    case ZPruneMode::kMbr:
      // Interior points may be served: any point of any member unit lies
      // inside the bucket's union MBR.
      for (size_t i = 0; i < nb; ++i) {
        bound += corridor.Reaches(sweep_rect_a_[i]) ? sweep_ub_[i] : 0.0;
      }
      break;
    case ZPruneMode::kStartOrEnd:
      // Only unit endpoints can be served; either end may score alone.
      for (size_t i = 0; i < nb; ++i) {
        bound += (corridor.Reaches(sweep_rect_a_[i]) ||
                  corridor.Reaches(sweep_rect_b_[i]))
                     ? sweep_ub_[i]
                     : 0.0;
      }
      break;
    case ZPruneMode::kStartEnd:
      // A unit scores only with BOTH endpoints within ψ of stops.
      for (size_t i = 0; i < nb; ++i) {
        bound += (corridor.Reaches(sweep_rect_a_[i]) &&
                  corridor.Reaches(sweep_rect_b_[i]))
                     ? sweep_ub_[i]
                     : 0.0;
      }
      break;
  }
  return bound;
}

double ZIndex::UpperBoundScalarReference(
    const Corridor& corridor, std::span<const TrajEntry> entries) const {
  double bound = 0.0;
  for (const auto& [entry_index, mbr] : outliers_) {
    if (corridor.ReachesScalar(mbr)) bound += entries[entry_index].ub;
  }
  for (const Bucket& b : buckets_) {
    if (b.ub <= 0.0) continue;
    bool near = false;
    switch (prune_mode_) {
      case ZPruneMode::kMbr:
        near = corridor.ReachesScalar(b.units_mbr);
        break;
      case ZPruneMode::kStartOrEnd:
        near = corridor.ReachesScalar(b.start_mbr) ||
               corridor.ReachesScalar(b.end_mbr);
        break;
      case ZPruneMode::kStartEnd:
        near = corridor.ReachesScalar(b.start_mbr) &&
               corridor.ReachesScalar(b.end_mbr);
        break;
    }
    if (near) bound += b.ub;
  }
  return bound;
}

}  // namespace tq
