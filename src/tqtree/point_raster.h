// Point-mass raster: the TQ-tree's tree-level density aggregate behind the
// cheap per-facility service upper bound (TQTree::UpperBound).
//
// Node-granularity aggregates (sub / local_ub / z-node ub) cannot
// discriminate facilities on workloads where units roam: a check-in
// trajectory spanning half the city parks in an upper node whose list bound
// charges EVERY facility the unit's full value. The raster attacks the same
// bound from the opposite side — it forgets units entirely and aggregates
// the per-POINT value caps on a fixed R×R grid over the tree's world:
//
//   * every indexed trajectory deposits, into the cell of each of its
//     points, the largest service value that point alone can unlock under
//     the tree's model (Scenario 1: 1 on the source point — a served user
//     needs its source within ψ; Scenario 2: the point's own count weight,
//     1 or 1/|u|; Scenario 3: the outgoing segment's length share — a
//     served segment needs its start within ψ);
//   * a facility can only be served by points within ψ of its stops, so
//     SO(U, f) ≤ the summed mass of all cells intersecting the stops'
//     ψ-squares (each covered cell counted once, however many stop squares
//     overlap it).
//
// Cell coordinates clamp monotonically at the world border, so points and
// stops beyond it still land in consistent border cells and the bound stays
// sound. Cost per facility is O(stops × cells-per-ψ-square) — independent
// of both the number of users and the tree shape.
//
// The raster is shared across TQTree::Fork() like node pages are: forks
// alias it read-only and the first Insert/Remove on either side copies it
// (one R×R memcpy per writing publish), so retained snapshots keep the
// exact mass their answers were bounded with.
#ifndef TQCOVER_TQTREE_POINT_RASTER_H_
#define TQCOVER_TQTREE_POINT_RASTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "service/models.h"

namespace tq {

/// Fixed-resolution grid of per-cell service-value caps. Copyable (that is
/// the fork copy-on-write path); not thread-safe for writes.
class PointRaster {
 public:
  /// `world` must be non-empty; `resolution` ≥ 1 is the cell count per axis.
  PointRaster(const Rect& world, size_t resolution);

  size_t resolution() const { return resolution_; }
  const Rect& world() const { return world_; }

  /// Deposits (`sign` = +1) or withdraws (`sign` = -1) one trajectory's
  /// per-point value caps under `model`. Add/remove must use the same
  /// point sequence and model to cancel.
  void AddTrajectory(std::span<const Point> points, const ServiceModel& model,
                     double sign);

  /// Upper bound on the service value reachable from `stops` with radius
  /// `psi`: summed mass of every cell intersecting a stop's ψ-square, each
  /// cell counted once. Includes a small multiplicative inflation so
  /// floating-point drift from long add/remove histories can never push
  /// the bound below the true remaining mass (an inflated bound is still a
  /// bound; a deflated one would prune real answers).
  double MassNearStops(std::span<const Point> stops, double psi) const;

  /// Total deposited mass (tests / diagnostics).
  double TotalMass() const;

 private:
  size_t ColOf(double x) const;
  size_t RowOf(double y) const;

  Rect world_;
  size_t resolution_ = 0;
  double inv_cell_w_ = 0.0;
  double inv_cell_h_ = 0.0;
  std::vector<double> mass_;  // row-major resolution × resolution
};

}  // namespace tq

#endif  // TQCOVER_TQTREE_POINT_RASTER_H_
