#include "tqtree/serialize.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "tqtree/aggregates.h"

namespace tq {

namespace {

constexpr char kMagic[4] = {'T', 'Q', 'T', '1'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return is.good();
}

void WriteRect(std::ostream& os, const Rect& r) {
  WritePod(os, r.min_x);
  WritePod(os, r.min_y);
  WritePod(os, r.max_x);
  WritePod(os, r.max_y);
}

bool ReadRect(std::istream& is, Rect* r) {
  return ReadPod(is, &r->min_x) && ReadPod(is, &r->min_y) &&
         ReadPod(is, &r->max_x) && ReadPod(is, &r->max_y);
}

}  // namespace

/// Friend of TQTree with raw access to nodes_ / bookkeeping.
class TQTreeSerializer {
 public:
  static Status Save(const std::string& path, const TQTree& tree) {
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      return Status::IOError("cannot write " + path + ": " +
                             std::strerror(errno));
    }
    os.write(kMagic, sizeof(kMagic));
    WritePod(os, kVersion);
    const TQTreeOptions& opt = tree.options_;
    WritePod(os, static_cast<uint64_t>(opt.beta));
    WritePod(os, static_cast<int32_t>(opt.max_depth));
    WritePod(os, static_cast<uint8_t>(opt.variant));
    WritePod(os, static_cast<uint8_t>(opt.mode));
    WritePod(os, static_cast<uint8_t>(opt.model.scenario));
    WritePod(os, static_cast<uint8_t>(opt.model.normalization));
    WritePod(os, opt.model.psi);
    WritePod(os, static_cast<uint8_t>(opt.basic_entry_mbr_precheck));
    WriteRect(os, tree.world_);
    WritePod(os, static_cast<uint64_t>(tree.users_->size()));
    WritePod(os, static_cast<uint64_t>(tree.num_nodes_));
    for (size_t i = 0; i < tree.num_nodes_; ++i) {
      const TQNode& n = tree.node(static_cast<int32_t>(i));
      WriteRect(os, n.rect);
      WritePod(os, n.first_child);
      WritePod(os, n.depth);
      WritePod(os, static_cast<uint32_t>(n.entries.size()));
      for (const TrajEntry& e : n.entries) {
        WritePod(os, e.traj_id);
        WritePod(os, e.seg_index);
      }
    }
    if (!os.good()) return Status::IOError("write failed for " + path);
    return Status::OK();
  }

  static Result<std::unique_ptr<TQTree>> Load(const std::string& path,
                                              const TrajectorySet* users) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      return Status::IOError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      return Status::InvalidArgument(path + ": not a TQ-tree file");
    }
    uint32_t version = 0;
    if (!ReadPod(is, &version) || version != kVersion) {
      return Status::InvalidArgument(path + ": unsupported version");
    }
    TQTreeOptions opt;
    uint64_t beta = 0;
    int32_t max_depth = 0;
    uint8_t variant = 0, mode = 0, scenario = 0, norm = 0, precheck = 0;
    if (!ReadPod(is, &beta) || !ReadPod(is, &max_depth) ||
        !ReadPod(is, &variant) || !ReadPod(is, &mode) ||
        !ReadPod(is, &scenario) || !ReadPod(is, &norm) ||
        !ReadPod(is, &opt.model.psi) || !ReadPod(is, &precheck)) {
      return Status::InvalidArgument(path + ": truncated header");
    }
    if (variant > 1 || mode > 1 || scenario > 2 || norm > 1 || beta == 0) {
      return Status::InvalidArgument(path + ": corrupt header fields");
    }
    opt.beta = beta;
    opt.max_depth = max_depth;
    opt.variant = static_cast<IndexVariant>(variant);
    opt.mode = static_cast<TrajMode>(mode);
    opt.model.scenario = static_cast<Scenario>(scenario);
    opt.model.normalization = static_cast<Normalization>(norm);
    opt.basic_entry_mbr_precheck = precheck != 0;

    Rect world;
    uint64_t users_size = 0, node_count = 0;
    if (!ReadRect(is, &world) || !ReadPod(is, &users_size) ||
        !ReadPod(is, &node_count)) {
      return Status::InvalidArgument(path + ": truncated header");
    }
    if (users_size != users->size()) {
      return Status::InvalidArgument(
          path + ": user-set size mismatch (file built over " +
          std::to_string(users_size) + " trajectories, given " +
          std::to_string(users->size()) + ")");
    }
    if (node_count == 0 || node_count > (1ull << 31)) {
      return Status::InvalidArgument(path + ": implausible node count");
    }

    auto tree = std::unique_ptr<TQTree>(
        new TQTree(users, opt, TQTree::DeserializeTag{}));
    tree->world_ = world;
    // Freshly allocated pages all carry the tree's own epoch, so the
    // MutableNode calls below never trigger copy-on-write.
    tree->ResizeNodes(node_count);
    for (uint64_t i = 0; i < node_count; ++i) {
      TQNode& n = tree->MutableNode(static_cast<int32_t>(i));
      uint32_t entry_count = 0;
      if (!ReadRect(is, &n.rect) || !ReadPod(is, &n.first_child) ||
          !ReadPod(is, &n.depth) || !ReadPod(is, &entry_count)) {
        return Status::InvalidArgument(path + ": truncated node table");
      }
      if (n.first_child >= 0 &&
          (static_cast<uint64_t>(n.first_child) + 4 > node_count ||
           static_cast<uint64_t>(n.first_child) <= i)) {
        // Children always follow their parent in construction order; the
        // bottom-up aggregate pass below depends on it.
        return Status::InvalidArgument(path + ": child index out of range");
      }
      n.entries.reserve(entry_count);
      for (uint32_t e = 0; e < entry_count; ++e) {
        uint32_t traj_id = 0, seg_index = 0;
        if (!ReadPod(is, &traj_id) || !ReadPod(is, &seg_index)) {
          return Status::InvalidArgument(path + ": truncated entry list");
        }
        if (traj_id >= users->size()) {
          return Status::InvalidArgument(path + ": entry trajectory id " +
                                         std::to_string(traj_id) +
                                         " out of range");
        }
        // Rebuild geometry + bounds from the live user set.
        if (seg_index == kWholeUnit) {
          n.entries.push_back(
              MakeWholeEntry(*users, traj_id, opt.model));
        } else {
          if (seg_index + 1 >= users->NumPoints(traj_id)) {
            return Status::InvalidArgument(path + ": segment index " +
                                           std::to_string(seg_index) +
                                           " out of range");
          }
          n.entries.push_back(
              MakeSegmentEntry(*users, traj_id, seg_index, opt.model));
        }
        n.entries.back().ub = UnitUpperBound(
            *users, traj_id,
            seg_index == kWholeUnit ? kWholeUnit : seg_index, opt.model);
        tree->num_units_++;
      }
      for (const TrajEntry& e : n.entries) {
        n.local_ub += e.ub;
        n.local_agg.Add(e.agg);
      }
      n.zindex_dirty = true;
    }
    // Recompute subtree aggregates bottom-up (children have larger indices
    // than their parent by construction order).
    for (auto i = static_cast<int64_t>(node_count) - 1; i >= 0; --i) {
      TQNode& n = tree->MutableNode(static_cast<int32_t>(i));
      n.sub = n.local_ub;
      n.sub_agg = n.local_agg;
      if (!n.IsLeaf()) {
        for (int q = 0; q < 4; ++q) {
          const TQNode& c = tree->node(n.first_child + q);
          n.sub += c.sub;
          n.sub_agg.Add(c.sub_agg);
        }
      }
    }
    if (opt.variant == IndexVariant::kZOrder) tree->BuildAllZIndexes();
    return tree;
  }
};

Status SaveTQTree(const std::string& path, const TQTree& tree) {
  return TQTreeSerializer::Save(path, tree);
}

Result<std::unique_ptr<TQTree>> LoadTQTree(const std::string& path,
                                           const TrajectorySet* users) {
  TQ_CHECK(users != nullptr);
  return TQTreeSerializer::Load(path, users);
}

}  // namespace tq
