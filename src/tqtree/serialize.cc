#include "tqtree/serialize.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/crc32c.h"
#include "tqtree/aggregates.h"

namespace tq {

namespace {

constexpr char kMagic[4] = {'T', 'Q', 'T', '2'};
constexpr uint32_t kVersion = 2;
/// Page-record index that terminates the page stream (no real page can
/// reach it: node ids are int32, so page indexes stay far below).
constexpr uint32_t kTrailerSentinel = 0xFFFFFFFFu;

template <typename T>
void PutPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void PutRect(std::string* out, const Rect& r) {
  PutPod(out, r.min_x);
  PutPod(out, r.min_y);
  PutPod(out, r.max_x);
  PutPod(out, r.max_y);
}

/// Sequential pod reader over a fully-buffered record.
class PodReader {
 public:
  explicit PodReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Get(T* v) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool GetRect(Rect* r) {
    return Get(&r->min_x) && Get(&r->min_y) && Get(&r->max_x) &&
           Get(&r->max_y);
  }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// The packed header fields the geometry hash covers (and the header
/// carries), in stream order.
void PackGeometry(const TQTreeOptions& opt, const Rect& world,
                  std::string* out) {
  PutPod(out, static_cast<uint64_t>(opt.beta));
  PutPod(out, static_cast<int32_t>(opt.max_depth));
  PutPod(out, static_cast<uint8_t>(opt.variant));
  PutPod(out, static_cast<uint8_t>(opt.mode));
  PutPod(out, static_cast<uint8_t>(opt.model.scenario));
  PutPod(out, static_cast<uint8_t>(opt.model.normalization));
  PutPod(out, opt.model.psi);
  PutPod(out, static_cast<uint8_t>(opt.basic_entry_mbr_precheck));
  PutPod(out, static_cast<uint64_t>(opt.bound_raster_resolution));
  PutRect(out, world);
}

Status Truncated(const char* where) {
  return Status::InvalidArgument(std::string("snapshot stream truncated in ") +
                                 where);
}

/// Reads exactly `n` bytes into `buf`, mapping source errors to "truncated"
/// when the source reports a clean end (kInvalidArgument).
Status ReadExact(SnapshotSource* source, std::string* buf, size_t n,
                 const char* where) {
  buf->resize(n);
  Status st = source->Read(buf->data(), n);
  if (!st.ok() && st.code() == StatusCode::kInvalidArgument) {
    return Truncated(where);
  }
  return st;
}

}  // namespace

// ---------------------------------------------------------------- sinks

FileSnapshotSink::~FileSnapshotSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<FileSnapshotSink>> FileSnapshotSink::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot write " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileSnapshotSink>(new FileSnapshotSink(f, path));
}

Status FileSnapshotSink::Append(const void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("sink closed: " + path_);
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("short write to " + path_);
  }
  return Status::OK();
}

Status FileSnapshotSink::Close(bool sync) {
  if (file_ == nullptr) return Status::OK();
  std::FILE* f = file_;
  file_ = nullptr;
  bool ok = std::fflush(f) == 0;
  if (ok && sync) ok = ::fsync(fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IOError("close failed for " + path_);
  return Status::OK();
}

FileSnapshotSource::~FileSnapshotSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<FileSnapshotSource>> FileSnapshotSource::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<FileSnapshotSource>(new FileSnapshotSource(f, path));
}

Status FileSnapshotSource::Read(void* data, size_t n) {
  if (std::fread(data, 1, n, file_) != n) {
    if (std::feof(file_)) {
      return Status::InvalidArgument("end of stream: " + path_);
    }
    return Status::IOError("read failed for " + path_);
  }
  return Status::OK();
}

Status StringSnapshotSource::Read(void* data, size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("end of stream (memory source)");
  }
  std::memcpy(data, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

uint64_t TQTreeGeometryHash(const TQTreeOptions& options, const Rect& world) {
  std::string packed;
  PackGeometry(options, world, &packed);
  // FNV-1a over the packed bytes: stable across runs (no pointer or seed
  // material), cheap, and collision-safe enough for a mismatch CHECK — the
  // page CRCs handle corruption.
  uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : packed) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Friend of TQTree with raw access to pages_ / bookkeeping.
class TQTreeSerializer {
 public:
  static Status Write(const TQTree& tree, SnapshotSink* sink) {
    std::string buf;
    buf.append(kMagic, sizeof(kMagic));
    PutPod(&buf, kVersion);
    PackGeometry(tree.options_, tree.world_, &buf);
    PutPod(&buf, TQTreeGeometryHash(tree.options_, tree.world_));
    PutPod(&buf, static_cast<uint64_t>(tree.users_->size()));
    PutPod(&buf, static_cast<uint64_t>(tree.num_nodes_));
    const uint32_t header_crc =
        Crc32c(buf.data() + sizeof(kMagic), buf.size() - sizeof(kMagic));
    PutPod(&buf, header_crc);
    TQ_RETURN_NOT_OK(sink->Append(buf.data(), buf.size()));

    // One record per node page: the checkpointer streams a retained fork
    // without ever materialising the whole image, and a per-record CRC
    // localises corruption to a page.
    std::string record;
    for (size_t p = 0; p * kNodePageSize < tree.num_nodes_; ++p) {
      const size_t first = p * kNodePageSize;
      const auto in_page = static_cast<uint32_t>(
          std::min(kNodePageSize, tree.num_nodes_ - first));
      record.clear();
      PutPod(&record, static_cast<uint32_t>(p));
      PutPod(&record, in_page);
      for (uint32_t i = 0; i < in_page; ++i) {
        const TQNode& n = tree.node(static_cast<int32_t>(first + i));
        PutRect(&record, n.rect);
        PutPod(&record, n.first_child);
        PutPod(&record, n.depth);
        PutPod(&record, n.split_failed_at);
        PutPod(&record, static_cast<uint32_t>(n.entries.size()));
        for (const TrajEntry& e : n.entries) {
          PutPod(&record, e.traj_id);
          PutPod(&record, e.seg_index);
        }
      }
      const uint32_t record_crc = Crc32c(record.data(), record.size());
      PutPod(&record, record_crc);
      TQ_RETURN_NOT_OK(sink->Append(record.data(), record.size()));
    }

    record.clear();
    PutPod(&record, kTrailerSentinel);
    PutPod(&record, static_cast<uint64_t>(tree.num_units_));
    const uint32_t trailer_crc = Crc32c(record.data(), record.size());
    PutPod(&record, trailer_crc);
    return sink->Append(record.data(), record.size());
  }

  static Result<std::unique_ptr<TQTree>> Read(SnapshotSource* source,
                                              const TrajectorySet* users) {
    if (users == nullptr) {
      return Status::InvalidArgument(
          "ReadTQTreeSnapshot: null user set (pass the trajectory set the "
          "tree was built over)");
    }
    // Fixed-size header: everything before the page records.
    std::string geom;
    PackGeometry(TQTreeOptions{}, Rect::Of(0, 0, 1, 1), &geom);
    const size_t header_len = sizeof(kMagic) + sizeof(uint32_t) + geom.size() +
                              3 * sizeof(uint64_t) + sizeof(uint32_t);
    std::string buf;
    TQ_RETURN_NOT_OK(ReadExact(source, &buf, header_len, "header"));
    if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
      return Status::InvalidArgument("not a TQ-tree snapshot stream");
    }
    {
      // Header CRC covers version + geometry + counts (not the magic).
      const size_t body = buf.size() - sizeof(kMagic) - sizeof(uint32_t);
      uint32_t stored = 0;
      std::memcpy(&stored, buf.data() + buf.size() - sizeof(uint32_t),
                  sizeof(uint32_t));
      if (Crc32c(buf.data() + sizeof(kMagic), body) != stored) {
        return Status::InvalidArgument("snapshot header CRC mismatch");
      }
    }
    PodReader r(std::string_view(buf).substr(sizeof(kMagic)));
    uint32_t version = 0;
    if (!r.Get(&version)) return Truncated("header");
    if (version != kVersion) {
      return Status::InvalidArgument(
          "unsupported snapshot format version " + std::to_string(version) +
          " (this build reads version " + std::to_string(kVersion) + ")");
    }
    TQTreeOptions opt;
    uint64_t beta = 0, raster_res = 0;
    int32_t max_depth = 0;
    uint8_t variant = 0, mode = 0, scenario = 0, norm = 0, precheck = 0;
    Rect world;
    uint64_t geometry_hash = 0, users_size = 0, node_count = 0;
    if (!r.Get(&beta) || !r.Get(&max_depth) || !r.Get(&variant) ||
        !r.Get(&mode) || !r.Get(&scenario) || !r.Get(&norm) ||
        !r.Get(&opt.model.psi) || !r.Get(&precheck) || !r.Get(&raster_res) ||
        !r.GetRect(&world) || !r.Get(&geometry_hash) || !r.Get(&users_size) ||
        !r.Get(&node_count)) {
      return Truncated("header");
    }
    if (variant > 1 || mode > 1 || scenario > 2 || norm > 1 || beta == 0) {
      return Status::InvalidArgument("corrupt snapshot header fields");
    }
    opt.beta = beta;
    opt.max_depth = max_depth;
    opt.variant = static_cast<IndexVariant>(variant);
    opt.mode = static_cast<TrajMode>(mode);
    opt.model.scenario = static_cast<Scenario>(scenario);
    opt.model.normalization = static_cast<Normalization>(norm);
    opt.basic_entry_mbr_precheck = precheck != 0;
    opt.bound_raster_resolution = raster_res;
    if (TQTreeGeometryHash(opt, world) != geometry_hash) {
      return Status::InvalidArgument(
          "snapshot geometry hash mismatch (stream corrupt, or written by "
          "an incompatible geometry)");
    }
    if (users_size != users->size()) {
      return Status::InvalidArgument(
          "user-set size mismatch (snapshot built over " +
          std::to_string(users_size) + " trajectories, given " +
          std::to_string(users->size()) + ")");
    }
    if (node_count == 0 || node_count > (1ull << 31)) {
      return Status::InvalidArgument("implausible snapshot node count");
    }

    auto tree = std::unique_ptr<TQTree>(
        new TQTree(users, opt, TQTree::DeserializeTag{}));
    tree->world_ = world;
    // Freshly allocated pages all carry the tree's own epoch, so the
    // MutableNode calls below never trigger copy-on-write.
    tree->ResizeNodes(node_count);
    const size_t num_pages =
        (node_count + kNodePageSize - 1) / kNodePageSize;
    for (size_t p = 0; p < num_pages; ++p) {
      TQ_RETURN_NOT_OK(LoadPage(tree.get(), users, opt, p, node_count,
                                source));
    }
    // Trailer: sentinel + unit count, CRC-checked like a page record.
    std::string trailer;
    TQ_RETURN_NOT_OK(ReadExact(
        source, &trailer,
        sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t), "trailer"));
    {
      uint32_t stored = 0;
      std::memcpy(&stored, trailer.data() + trailer.size() - sizeof(uint32_t),
                  sizeof(uint32_t));
      if (Crc32c(trailer.data(), trailer.size() - sizeof(uint32_t)) !=
          stored) {
        return Status::InvalidArgument("snapshot trailer CRC mismatch");
      }
      PodReader tr(std::string_view(trailer.data(),
                                    trailer.size() - sizeof(uint32_t)));
      uint32_t sentinel = 0;
      uint64_t total_units = 0;
      if (!tr.Get(&sentinel) || !tr.Get(&total_units) ||
          sentinel != kTrailerSentinel) {
        return Status::InvalidArgument("snapshot trailer malformed");
      }
      if (total_units != tree->num_units_) {
        return Status::InvalidArgument(
            "snapshot unit count mismatch (trailer says " +
            std::to_string(total_units) + ", pages held " +
            std::to_string(tree->num_units_) + ")");
      }
    }
    // Recompute subtree aggregates bottom-up (children have larger indices
    // than their parent by construction order).
    for (auto i = static_cast<int64_t>(node_count) - 1; i >= 0; --i) {
      TQNode& n = tree->MutableNode(static_cast<int32_t>(i));
      n.sub = n.local_ub;
      n.sub_agg = n.local_agg;
      if (!n.IsLeaf()) {
        for (int q = 0; q < 4; ++q) {
          const TQNode& c = tree->node(n.first_child + q);
          n.sub += c.sub;
          n.sub_agg.Add(c.sub_agg);
        }
      }
    }
    if (opt.variant == IndexVariant::kZOrder) tree->BuildAllZIndexes();
    return tree;
  }

 private:
  /// Reads and validates one page record into nodes [p·8, p·8 + in_page).
  static Status LoadPage(TQTree* tree, const TrajectorySet* users,
                         const TQTreeOptions& opt, size_t p,
                         uint64_t node_count, SnapshotSource* source) {
    // Record prefix: page index + node count; the body length depends on
    // the per-node entry counts, so the record is consumed incrementally
    // with a running CRC instead of buffered whole.
    std::string buf;
    TQ_RETURN_NOT_OK(ReadExact(source, &buf, 2 * sizeof(uint32_t), "page"));
    uint32_t crc = Crc32c(buf.data(), buf.size());
    PodReader pr(buf);
    uint32_t page_index = 0, in_page = 0;
    if (!pr.Get(&page_index) || !pr.Get(&in_page)) return Truncated("page");
    const size_t first = p * kNodePageSize;
    const auto expect = static_cast<uint32_t>(
        std::min(kNodePageSize, static_cast<size_t>(node_count) - first));
    if (page_index != p || in_page != expect) {
      return Status::InvalidArgument(
          "snapshot page record out of sequence (expected page " +
          std::to_string(p) + ")");
    }
    for (uint32_t i = 0; i < in_page; ++i) {
      const auto id = static_cast<int32_t>(first + i);
      TQNode& n = tree->MutableNode(id);
      TQ_RETURN_NOT_OK(ReadExact(
          source, &buf,
          4 * sizeof(double) + sizeof(int32_t) + sizeof(int16_t) +
              2 * sizeof(uint32_t),
          "node"));
      crc = Crc32cExtend(crc, buf.data(), buf.size());
      PodReader nr(buf);
      uint32_t entry_count = 0;
      if (!nr.GetRect(&n.rect) || !nr.Get(&n.first_child) ||
          !nr.Get(&n.depth) || !nr.Get(&n.split_failed_at) ||
          !nr.Get(&entry_count)) {
        return Truncated("node");
      }
      if (n.first_child >= 0 &&
          (static_cast<uint64_t>(n.first_child) + 4 > node_count ||
           n.first_child <= id)) {
        // Children always follow their parent in construction order; the
        // bottom-up aggregate pass depends on it.
        return Status::InvalidArgument(
            "snapshot child index out of range");
      }
      if (entry_count > 0) {
        TQ_RETURN_NOT_OK(ReadExact(source, &buf,
                                   entry_count * 2 * sizeof(uint32_t),
                                   "entries"));
        crc = Crc32cExtend(crc, buf.data(), buf.size());
        PodReader er(buf);
        n.entries.reserve(entry_count);
        for (uint32_t e = 0; e < entry_count; ++e) {
          uint32_t traj_id = 0, seg_index = 0;
          if (!er.Get(&traj_id) || !er.Get(&seg_index)) {
            return Truncated("entries");
          }
          if (traj_id >= users->size()) {
            return Status::InvalidArgument(
                "snapshot entry trajectory id " + std::to_string(traj_id) +
                " out of range");
          }
          // Rebuild geometry + bounds from the live user set.
          if (seg_index == kWholeUnit) {
            n.entries.push_back(MakeWholeEntry(*users, traj_id, opt.model));
          } else {
            if (seg_index + 1 >= users->NumPoints(traj_id)) {
              return Status::InvalidArgument(
                  "snapshot segment index " + std::to_string(seg_index) +
                  " out of range");
            }
            n.entries.push_back(
                MakeSegmentEntry(*users, traj_id, seg_index, opt.model));
          }
          tree->num_units_++;
        }
      }
      for (const TrajEntry& e : n.entries) {
        n.local_ub += e.ub;
        n.local_agg.Add(e.agg);
      }
      n.zindex_dirty = true;
    }
    std::string stored;
    TQ_RETURN_NOT_OK(ReadExact(source, &stored, sizeof(uint32_t), "page crc"));
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, stored.data(), sizeof(uint32_t));
    if (stored_crc != crc) {
      return Status::InvalidArgument("snapshot page " + std::to_string(p) +
                                     " CRC mismatch");
    }
    return Status::OK();
  }
};

Status WriteTQTreeSnapshot(const TQTree& tree, SnapshotSink* sink) {
  TQ_CHECK(sink != nullptr);
  return TQTreeSerializer::Write(tree, sink);
}

Result<std::unique_ptr<TQTree>> ReadTQTreeSnapshot(
    SnapshotSource* source, const TrajectorySet* users) {
  TQ_CHECK(source != nullptr);
  return TQTreeSerializer::Read(source, users);
}

Status SaveTQTree(const std::string& path, const TQTree& tree) {
  auto sink = FileSnapshotSink::Open(path);
  TQ_RETURN_NOT_OK(sink.status());
  TQ_RETURN_NOT_OK(WriteTQTreeSnapshot(tree, sink->get()));
  return (*sink)->Close();
}

Result<std::unique_ptr<TQTree>> LoadTQTree(const std::string& path,
                                           const TrajectorySet* users) {
  auto source = FileSnapshotSource::Open(path);
  TQ_RETURN_NOT_OK(source.status());
  return ReadTQTreeSnapshot(source->get(), users);
}

}  // namespace tq
