#include "tqtree/tq_tree.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/check.h"
#include "geom/distance.h"
#include "service/stop_grid.h"
#include "tqtree/aggregates.h"
#include "tqtree/point_raster.h"

namespace tq {

namespace {

/// Globally unique page-ownership tags. A page is writable in place only by
/// the tree whose epoch matches; Fork() hands BOTH trees fresh epochs so all
/// previously created pages become copy-on-write for either side.
uint64_t NewEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ZPruneMode DerivePruneMode(TrajMode mode, const ServiceModel& model,
                           size_t max_points) {
  if (mode == TrajMode::kSegmented) {
    // A segment unit exposes exactly its two endpoints. Scenario 3 serves a
    // segment only when both ends are within ψ (AND filter exact); Scenarios
    // 1/2 credit single points, so either covered end makes it a candidate.
    return model.scenario == Scenario::kLength ? ZPruneMode::kStartEnd
                                               : ZPruneMode::kStartOrEnd;
  }
  if (model.EndpointsOnly()) return ZPruneMode::kStartEnd;
  if (max_points <= 2) {
    return model.scenario == Scenario::kLength ? ZPruneMode::kStartEnd
                                               : ZPruneMode::kStartOrEnd;
  }
  return ZPruneMode::kMbr;
}

TQTree::TQTree(const TrajectorySet* users, TQTreeOptions options,
               DeserializeTag)
    : users_(users), options_(options), epoch_(NewEpoch()) {
  TQ_CHECK(users != nullptr);
  for (uint32_t u = 0; u < users_->size(); ++u) {
    max_points_ = std::max(max_points_, users_->NumPoints(u));
  }
  prune_mode_ = DerivePruneMode(options_.mode, options_.model, max_points_);
}

TQTree::TQTree(const TrajectorySet* users, TQTreeOptions options)
    : users_(users), options_(options), epoch_(NewEpoch()) {
  TQ_CHECK(users != nullptr);
  TQ_CHECK(options_.beta > 0);
  TQ_CHECK(options_.max_depth >= 1 && options_.max_depth <= 32);
  Rect box = users_->empty() ? Rect::Of(0, 0, 1, 1) : users_->BoundingBox();
  // Expand slightly so boundary points sit strictly inside and top splits
  // cannot degenerate.
  const double pad =
      0.001 * std::max({box.Width(), box.Height(), 1.0});
  world_ = box.Expanded(pad);

  for (uint32_t u = 0; u < users_->size(); ++u) {
    max_points_ = std::max(max_points_, users_->NumPoints(u));
  }
  prune_mode_ = DerivePruneMode(options_.mode, options_.model, max_points_);

  const int32_t root_id = AppendNode();
  TQNode& root = MutableNode(root_id);
  root.rect = world_;
  root.depth = 0;
  BulkBuild();
  if (options_.variant == IndexVariant::kZOrder) BuildAllZIndexes();
}

// ---------------------------------------------------------- page storage

void TQTree::CopyPage(size_t page_index) {
  const std::shared_ptr<NodePage>& old = pages_[page_index];
  pages_[page_index] = std::make_shared<NodePage>(*old, epoch_);
  cow_stats_.pages_copied++;
  // Count the live nodes physically duplicated (the last page may be
  // partially filled).
  const size_t first = page_index << kNodePageShift;
  cow_stats_.nodes_copied +=
      std::min(kNodePageSize, num_nodes_ - first);
}

int32_t TQTree::AppendNode() {
  bound_arena_.valid = false;  // new node id the arena doesn't cover
  const size_t slot = num_nodes_ & kNodePageMask;
  if (slot == 0) {
    // Fresh page: owned by construction, no copy.
    pages_.push_back(std::make_shared<NodePage>());
    pages_.back()->epoch = epoch_;
  } else if (pages_[num_nodes_ >> kNodePageShift]->epoch != epoch_) {
    // Appending into a shared page (fork whose last page has free slots):
    // copy it first so the parent never sees the new node.
    CopyPage(num_nodes_ >> kNodePageShift);
  }
  const auto id = static_cast<int32_t>(num_nodes_);
  ++num_nodes_;
  pages_[static_cast<size_t>(id) >> kNodePageShift]
      ->nodes[static_cast<size_t>(id) & kNodePageMask] = TQNode{};
  return id;
}

void TQTree::ResizeNodes(size_t n) {
  TQ_CHECK(pages_.empty() && num_nodes_ == 0);
  const size_t num_pages = (n + kNodePageSize - 1) / kNodePageSize;
  pages_.reserve(num_pages);
  for (size_t p = 0; p < num_pages; ++p) {
    pages_.push_back(std::make_shared<NodePage>());
    pages_.back()->epoch = epoch_;
  }
  num_nodes_ = n;
}

void TQTree::MarkAllZIndexesDirty() {
  for (size_t i = 0; i < num_nodes_; ++i) {
    TQNode& n = MutableNode(static_cast<int32_t>(i));
    n.zindex.reset();
    n.zindex_dirty = true;
  }
}

std::unique_ptr<TQTree> TQTree::Fork(const TrajectorySet* users) {
  TQ_CHECK(users != nullptr);
  // Every entry references a trajectory id of the original set; a superset
  // keeps them all valid (ids are stable — TrajectorySet is append-only).
  TQ_CHECK(users->size() >= users_->size());
  auto fork = std::unique_ptr<TQTree>(
      new TQTree(users, options_, DeserializeTag{}));
  fork->world_ = world_;
  fork->num_units_ = num_units_;
  fork->num_nodes_ = num_nodes_;
  fork->pages_ = pages_;  // structural sharing: O(num_pages) pointer copies
  fork->cow_stats_ = CowStats{};
  fork->cow_stats_.pages_at_fork = pages_.size();
  // Re-tag BOTH trees: every existing page now belongs to neither, so the
  // first write on either side copies the page instead of mutating shared
  // state. Readers of this (frozen, published) tree never look at epochs.
  epoch_ = NewEpoch();
  fork->epoch_ = NewEpoch();
  // The point-mass raster is shared the same way: neither side owns it
  // after the fork, so the first Insert/Remove on either copies it and
  // retained snapshots keep the mass their bounds were computed from.
  fork->raster_ = raster_;
  fork->raster_owned_ = false;
  raster_owned_ = false;
  if (fork->prune_mode_ != prune_mode_) {
    // The extended user set changed the soundness-preserving prune mode
    // (e.g. a longer trajectory appeared); every shared z-index was built
    // for the old mode and must be rebuilt. Degenerates to full-clone cost,
    // but stays correct. Rare: mode depends only on max_points crossing 2.
    fork->MarkAllZIndexesDirty();
  }
  return fork;
}

// ------------------------------------------------------------ build paths

void TQTree::BulkBuild() {
  for (uint32_t u = 0; u < users_->size(); ++u) Insert(u);
}

void TQTree::Insert(uint32_t traj_id) {
  TQ_CHECK(traj_id < users_->size());
  RasterApply(traj_id, 1.0);
  if (options_.mode == TrajMode::kWhole) {
    InsertEntry(MakeWholeEntry(*users_, traj_id, options_.model));
  } else {
    const size_t n = users_->NumPoints(traj_id);
    if (n < 2) {
      // A single-point trajectory degenerates to a zero-length segment so
      // it still participates in point-count service.
      InsertEntry(MakeWholeEntry(*users_, traj_id, options_.model));
      return;
    }
    for (uint32_t s = 0; s + 1 < n; ++s) {
      InsertEntry(MakeSegmentEntry(*users_, traj_id, s, options_.model));
    }
  }
}

int32_t TQTree::ChildContaining(int32_t idx, const Rect& mbr) const {
  const TQNode& n = node(idx);
  TQ_DCHECK(!n.IsLeaf());
  // The candidate child is the quadrant holding the MBR centre; containment
  // of the whole MBR still has to be verified.
  const int q = n.rect.QuadrantOf(mbr.Center());
  const int32_t child = n.first_child + q;
  if (node(child).rect.ContainsRect(mbr)) return child;
  return -1;
}

void TQTree::InsertEntry(const TrajEntry& e) {
  // Copy-on-write descent: only the root-to-store path is made writable
  // (aggregate repair happens along this copied spine), so a fork touches
  // O(depth) pages per inserted unit.
  int32_t idx = 0;
  for (;;) {
    TQNode& n = MutableNode(idx);
    n.sub += e.ub;
    n.sub_agg.Add(e.agg);
    if (n.IsLeaf()) {
      StoreAt(idx, e);
      MaybeSplit(idx);
      return;
    }
    const int32_t child = ChildContaining(idx, e.mbr);
    if (child < 0) {
      StoreAt(idx, e);  // inter-node unit
      return;
    }
    idx = child;
  }
}

void TQTree::StoreAt(int32_t idx, const TrajEntry& e) {
  TQNode& n = MutableNode(idx);
  n.entries.push_back(e);
  n.local_ub += e.ub;
  n.local_agg.Add(e.agg);
  n.zindex.reset();
  n.zindex_dirty = true;
  ++num_units_;
}

void TQTree::MaybeSplit(int32_t idx) {
  {
    const TQNode& n = node(idx);
    if (!n.IsLeaf()) return;
    if (n.entries.size() <= options_.beta) return;
    if (n.depth >= options_.max_depth) return;
    // Retry a failed split only after the list doubles.
    if (n.split_failed_at != 0 && n.entries.size() < 2 * n.split_failed_at) {
      return;
    }
    // Split only if at least one unit would move down (the paper partitions
    // while intra-node units remain; a split that leaves everything as
    // inter-node units is pure overhead).
    bool any_movable = false;
    for (const TrajEntry& e : n.entries) {
      const int q = n.rect.QuadrantOf(e.mbr.Center());
      if (n.rect.Quadrant(q).ContainsRect(e.mbr)) {
        any_movable = true;
        break;
      }
    }
    if (!any_movable) {
      const auto list_size = static_cast<uint32_t>(n.entries.size());
      MutableNode(idx).split_failed_at = list_size;  // may invalidate n
      return;
    }
  }

  // Allocate children. Appends never move existing nodes (pages are stable),
  // but AppendNode may copy-own the trailing page, so re-fetch references
  // after allocation anyway.
  const auto first = AppendNode();
  {
    const Rect rect = node(idx).rect;
    const auto depth = static_cast<int16_t>(node(idx).depth + 1);
    MutableNode(first).rect = rect.Quadrant(0);
    MutableNode(first).depth = depth;
    for (int q = 1; q < 4; ++q) {
      const int32_t child = AppendNode();
      TQ_CHECK(child == first + q);  // children contiguous in id space
      TQNode& c = MutableNode(child);
      c.rect = rect.Quadrant(q);
      c.depth = depth;
    }
    MutableNode(idx).first_child = first;
  }

  // Redistribute: units fitting a child sink; the rest stay as the
  // inter-node list of this (now internal) node.
  std::vector<TrajEntry> keep;
  std::vector<TrajEntry> moved;
  moved.reserve(node(idx).entries.size());
  {
    TQNode& n = MutableNode(idx);
    for (TrajEntry& e : n.entries) {
      const int q = n.rect.QuadrantOf(e.mbr.Center());
      if (n.rect.Quadrant(q).ContainsRect(e.mbr)) {
        moved.push_back(e);
      } else {
        keep.push_back(e);
      }
    }
    n.entries.swap(keep);
    n.zindex.reset();
    n.zindex_dirty = true;
    // Recompute local bookkeeping for the kept list.
    n.local_ub = 0.0;
    n.local_agg = ServiceAggregates{};
    for (const TrajEntry& e : n.entries) {
      n.local_ub += e.ub;
      n.local_agg.Add(e.agg);
    }
  }
  for (const TrajEntry& e : moved) {
    const int q = node(idx).rect.QuadrantOf(e.mbr.Center());
    const int32_t child = first + q;
    TQNode& c = MutableNode(child);
    c.sub += e.ub;
    c.sub_agg.Add(e.agg);
    c.entries.push_back(e);
    c.local_ub += e.ub;
    c.local_agg.Add(e.agg);
    c.zindex.reset();
    c.zindex_dirty = true;
  }
  for (int q = 0; q < 4; ++q) MaybeSplit(first + q);
}

int32_t TQTree::ContainingNode(const Rect& r) const {
  int32_t idx = 0;
  for (;;) {
    const TQNode& n = node(idx);
    if (n.IsLeaf()) return idx;
    const int32_t child = ChildContaining(idx, r);
    if (child < 0) return idx;
    idx = child;
  }
}

template <bool kUseArena, bool kScalar>
double TQTree::UpperBoundImpl(const StopGrid& grid, int max_levels,
                              size_t* nodes_visited) const {
  const Rect& embr = grid.embr();
  const int32_t q0 = ContainingNode(embr);
  const ZIndex::Corridor corridor{grid.stops(), grid.psi(), embr};
  double bound = 0.0;
  size_t visited = 0;

  const auto reaches = [&corridor](const Rect& r) {
    if constexpr (kScalar) {
      return corridor.ReachesScalar(r);
    } else {
      return corridor.Reaches(r);
    }
  };
  const auto sub_of = [this](int32_t i) -> double {
    if constexpr (kUseArena) {
      return bound_arena_.sub[static_cast<size_t>(i)];
    } else {
      return node(i).sub;
    }
  };
  const auto rect_of = [this](int32_t i) -> const Rect& {
    if constexpr (kUseArena) {
      return bound_arena_.rect[static_cast<size_t>(i)];
    } else {
      return node(i).rect;
    }
  };
  const auto first_child_of = [this](int32_t i) -> int32_t {
    if constexpr (kUseArena) {
      return bound_arena_.first_child[static_cast<size_t>(i)];
    } else {
      return node(i).first_child;
    }
  };
  // A node's own list, bounded at z-node granularity when the node has a
  // built z-index: Σ bucket ub over buckets the corridor can geometrically
  // reach (ZIndex::UpperBound). This is what gives the bound discriminating
  // power on real data — long-span units pool in the upper nodes' lists,
  // where `local_ub` alone would charge every facility the full pool.
  const auto local_bound = [this, &corridor](int32_t i) -> double {
    if constexpr (kUseArena) {
      const auto si = static_cast<size_t>(i);
      const ZIndex* zi = bound_arena_.zindex[si];
      if (zi != nullptr) {
        if constexpr (kScalar) {
          return zi->UpperBoundScalarReference(corridor,
                                               bound_arena_.entries[si]);
        } else {
          return zi->UpperBound(corridor, bound_arena_.entries[si]);
        }
      }
      return bound_arena_.local_ub[si];
    } else {
      const TQNode& n = node(i);
      if (n.entries.empty()) return 0.0;
      if (n.zindex != nullptr && !n.zindex_dirty) {
        if constexpr (kScalar) {
          return n.zindex->UpperBoundScalarReference(corridor, n.entries);
        } else {
          return n.zindex->UpperBound(corridor, n.entries);
        }
      }
      return n.local_ub;
    }
  };

  // Proper ancestors of q0 can store units whose MBR spills outside their
  // children yet still reaches into the EMBR — except under the two-point +
  // kStartEnd argument (see TopKFacilitiesTQ), where such a unit provably
  // scores zero and the whole path can be skipped.
  if (!(two_point_units() && prune_mode_ == ZPruneMode::kStartEnd)) {
    for (const int32_t a : PathTo(q0)) {
      if (a == q0) continue;
      ++visited;
      bound += local_bound(a);
    }
  }

  struct Frame {
    int32_t idx;
    int level;
  };
  std::vector<Frame> stack{{q0, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    ++visited;
    if (sub_of(frame.idx) <= 0.0) continue;  // nothing stored below
    // A unit can score only if one of its points is within ψ of a stop,
    // and every point of every unit in n's subtree lies inside n.rect.
    if (!reaches(rect_of(frame.idx))) continue;
    bound += local_bound(frame.idx);
    const int32_t first_child = first_child_of(frame.idx);
    if (first_child < 0) continue;  // leaf
    if (frame.level >= max_levels) {
      // Descent budget exhausted: close the subtree with the children's
      // aggregate bounds (skipping unreachable quadrants) instead of
      // n.sub, so the local part above still benefits from the z-node
      // refinement.
      for (int q = 0; q < 4; ++q) {
        const int32_t c = first_child + q;
        ++visited;
        if (sub_of(c) > 0.0 && reaches(rect_of(c))) bound += sub_of(c);
      }
      continue;
    }
    for (int q = 0; q < 4; ++q) {
      stack.push_back(Frame{first_child + q, frame.level + 1});
    }
  }
  // The point-mass raster bounds the same quantity from the opposite side
  // (per-point value caps near the stops, unit structure forgotten); each
  // bound is independently sound, so their min is too. On roaming-unit
  // workloads the raster is the discriminating one.
  if (raster_ != nullptr) {
    bound = std::min(bound,
                     raster_->MassNearStops(corridor.stops, corridor.psi));
  }
  if (nodes_visited != nullptr) *nodes_visited += visited;
  return bound;
}

double TQTree::UpperBound(const StopGrid& grid, int max_levels,
                          size_t* nodes_visited) const {
  if (bound_arena_.valid) {
    return UpperBoundImpl<true, false>(grid, max_levels, nodes_visited);
  }
  return UpperBoundImpl<false, false>(grid, max_levels, nodes_visited);
}

double TQTree::UpperBoundScalarReference(const StopGrid& grid, int max_levels,
                                         size_t* nodes_visited) const {
  return UpperBoundImpl<false, true>(grid, max_levels, nodes_visited);
}

std::vector<int32_t> TQTree::PathTo(int32_t idx) const {
  // Rebuild the path by re-descending toward idx's rectangle centre.
  std::vector<int32_t> path;
  const Rect target = node(idx).rect;
  int32_t cur = 0;
  path.push_back(cur);
  while (cur != idx) {
    const TQNode& n = node(cur);
    TQ_CHECK_MSG(!n.IsLeaf(), "PathTo: idx not reachable from root");
    cur = n.first_child + n.rect.QuadrantOf(target.Center());
    path.push_back(cur);
  }
  return path;
}

const ZIndex* TQTree::zindex(int32_t idx) {
  if (options_.variant != IndexVariant::kZOrder) return nullptr;
  // Const pre-checks first: an up-to-date (possibly shared) index must not
  // trigger a page copy, or forks would duplicate every queried page.
  const TQNode& cn = node(idx);
  if (cn.entries.empty()) return nullptr;
  if (!cn.zindex_dirty) return cn.zindex.get();
  TQNode& n = MutableNode(idx);
  n.zindex = std::make_shared<const ZIndex>(n.rect, n.entries, options_.beta,
                                            prune_mode_);
  n.zindex_dirty = false;
  return n.zindex.get();
}

void TQTree::BuildAllZIndexes() {
  for (size_t i = 0; i < num_nodes_; ++i) {
    (void)zindex(static_cast<int32_t>(i));
  }
  // Freezing also materialises the point-mass raster (first freeze, or a
  // deserialised tree): forks inherit it, so steady-state publishes only
  // pay the copy-on-write path in RasterApply.
  if (raster_ == nullptr && options_.bound_raster_resolution > 0) {
    BuildRaster();
  }
  // Last: the z-index rebuilds above go through MutableNode, which clears
  // the arena flag.
  BuildBoundArena();
}

void TQTree::BuildBoundArena() {
  BoundArena a;
  a.sub.resize(num_nodes_);
  a.rect.resize(num_nodes_);
  a.first_child.resize(num_nodes_);
  a.local_ub.resize(num_nodes_);
  a.zindex.resize(num_nodes_);
  a.entries.resize(num_nodes_);
  for (size_t i = 0; i < num_nodes_; ++i) {
    const TQNode& n = node(static_cast<int32_t>(i));
    a.sub[i] = n.sub;
    a.rect[i] = n.rect;
    a.first_child[i] = n.first_child;
    a.local_ub[i] = n.entries.empty() ? 0.0 : n.local_ub;
    a.zindex[i] = (!n.entries.empty() && n.zindex != nullptr &&
                   !n.zindex_dirty)
                      ? n.zindex.get()
                      : nullptr;
    a.entries[i] = std::span<const TrajEntry>(n.entries);
  }
  a.valid = true;
  bound_arena_ = std::move(a);
}

void TQTree::BuildRaster() {
  raster_ = std::make_shared<PointRaster>(
      world_, options_.bound_raster_resolution);
  raster_owned_ = true;
  // The indexed trajectory set is whatever the node lists currently hold
  // (bulk build indexes every user; Remove de-indexes): walk the entries,
  // depositing each trajectory once however many segments it spread into.
  std::vector<uint8_t> seen(users_->size(), 0);
  for (size_t i = 0; i < num_nodes_; ++i) {
    for (const TrajEntry& e : node(static_cast<int32_t>(i)).entries) {
      if (seen[e.traj_id]) continue;
      seen[e.traj_id] = 1;
      raster_->AddTrajectory(users_->points(e.traj_id), options_.model, 1.0);
    }
  }
}

void TQTree::RasterApply(uint32_t traj_id, double sign) {
  if (raster_ == nullptr) return;
  if (!raster_owned_) {
    // Copy-on-write: the raster is shared with a forked snapshot whose
    // bounds must stay frozen.
    raster_ = std::make_shared<PointRaster>(*raster_);
    raster_owned_ = true;
  }
  raster_->AddTrajectory(users_->points(traj_id), options_.model, sign);
}

bool TQTree::Remove(uint32_t traj_id) {
  TQ_CHECK(traj_id < users_->size());
  if (options_.mode == TrajMode::kWhole || users_->NumPoints(traj_id) < 2) {
    const TrajEntry e = MakeWholeEntry(*users_, traj_id, options_.model);
    if (!RemoveUnit(traj_id, e.seg_index, e.mbr, e.ub, e.agg)) return false;
    RasterApply(traj_id, -1.0);
    return true;
  }
  bool all = true;
  const size_t n = users_->NumPoints(traj_id);
  for (uint32_t s = 0; s + 1 < n; ++s) {
    const TrajEntry e = MakeSegmentEntry(*users_, traj_id, s, options_.model);
    all = RemoveUnit(traj_id, s, e.mbr, e.ub, e.agg) && all;
  }
  // Withdraw the raster mass only on a complete removal: leftover segments
  // keep their deposits, which can only overstate (never understate) the
  // bound.
  if (all) RasterApply(traj_id, -1.0);
  return all;
}

bool TQTree::RemoveUnit(uint32_t traj_id, uint32_t seg_index,
                        const Rect& unit_mbr, double ub,
                        const ServiceAggregates& agg) {
  // Locate the storing node by re-descending with the unit's MBR. Read-only:
  // pages are copied only once the unit is found (a miss costs nothing).
  std::vector<int32_t> path;
  int32_t idx = 0;
  int32_t store = -1;
  for (;;) {
    path.push_back(idx);
    const TQNode& n = node(idx);
    if (n.IsLeaf()) {
      store = idx;
      break;
    }
    const int32_t child = ChildContaining(idx, unit_mbr);
    if (child < 0) {
      store = idx;
      break;
    }
    idx = child;
  }
  std::ptrdiff_t pos = -1;
  {
    const TQNode& n = node(store);
    const auto it = std::find_if(n.entries.begin(), n.entries.end(),
                                 [&](const TrajEntry& e) {
                                   return e.traj_id == traj_id &&
                                          e.seg_index == seg_index;
                                 });
    if (it == n.entries.end()) return false;
    pos = it - n.entries.begin();
  }
  // A page copy preserves entry order, so the offset found on the shared
  // page stays valid on the writable copy.
  TQNode& n = MutableNode(store);
  n.entries.erase(n.entries.begin() + pos);
  n.local_ub -= ub;
  n.local_agg.Subtract(agg);
  n.zindex.reset();
  n.zindex_dirty = true;
  // Aggregate repair along the copied spine only.
  for (const int32_t p : path) {
    TQNode& pn = MutableNode(p);
    pn.sub -= ub;
    pn.sub_agg.Subtract(agg);
  }
  --num_units_;
  return true;
}

TQTreeStats TQTree::ComputeStats() const {
  TQTreeStats s;
  s.num_nodes = num_nodes_;
  for (size_t i = 0; i < num_nodes_; ++i) {
    const TQNode& n = node(static_cast<int32_t>(i));
    if (n.IsLeaf()) ++s.num_leaves;
    s.num_entries += n.entries.size();
    s.max_depth = std::max(s.max_depth, static_cast<size_t>(n.depth));
    s.max_list_len = std::max(s.max_list_len, n.entries.size());
  }
  s.avg_list_len = s.num_nodes == 0
                       ? 0.0
                       : static_cast<double>(s.num_entries) /
                             static_cast<double>(s.num_nodes);
  return s;
}

std::string TQTreeStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "nodes=%zu leaves=%zu entries=%zu max_depth=%zu "
                "max_list=%zu avg_list=%.2f",
                num_nodes, num_leaves, num_entries, max_depth, max_list_len,
                avg_list_len);
  return buf;
}

}  // namespace tq
