#include "tqtree/tq_tree.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "tqtree/aggregates.h"

namespace tq {

ZPruneMode DerivePruneMode(TrajMode mode, const ServiceModel& model,
                           size_t max_points) {
  if (mode == TrajMode::kSegmented) {
    // A segment unit exposes exactly its two endpoints. Scenario 3 serves a
    // segment only when both ends are within ψ (AND filter exact); Scenarios
    // 1/2 credit single points, so either covered end makes it a candidate.
    return model.scenario == Scenario::kLength ? ZPruneMode::kStartEnd
                                               : ZPruneMode::kStartOrEnd;
  }
  if (model.EndpointsOnly()) return ZPruneMode::kStartEnd;
  if (max_points <= 2) {
    return model.scenario == Scenario::kLength ? ZPruneMode::kStartEnd
                                               : ZPruneMode::kStartOrEnd;
  }
  return ZPruneMode::kMbr;
}

TQTree::TQTree(const TrajectorySet* users, TQTreeOptions options,
               DeserializeTag)
    : users_(users), options_(options) {
  TQ_CHECK(users != nullptr);
  for (uint32_t u = 0; u < users_->size(); ++u) {
    max_points_ = std::max(max_points_, users_->NumPoints(u));
  }
  prune_mode_ = DerivePruneMode(options_.mode, options_.model, max_points_);
}

TQTree::TQTree(const TrajectorySet* users, TQTreeOptions options)
    : users_(users), options_(options) {
  TQ_CHECK(users != nullptr);
  TQ_CHECK(options_.beta > 0);
  TQ_CHECK(options_.max_depth >= 1 && options_.max_depth <= 32);
  Rect box = users_->empty() ? Rect::Of(0, 0, 1, 1) : users_->BoundingBox();
  // Expand slightly so boundary points sit strictly inside and top splits
  // cannot degenerate.
  const double pad =
      0.001 * std::max({box.Width(), box.Height(), 1.0});
  world_ = box.Expanded(pad);

  for (uint32_t u = 0; u < users_->size(); ++u) {
    max_points_ = std::max(max_points_, users_->NumPoints(u));
  }
  prune_mode_ = DerivePruneMode(options_.mode, options_.model, max_points_);

  nodes_.push_back(TQNode{});
  nodes_[0].rect = world_;
  nodes_[0].depth = 0;
  BulkBuild();
  if (options_.variant == IndexVariant::kZOrder) BuildAllZIndexes();
}

void TQTree::BulkBuild() {
  for (uint32_t u = 0; u < users_->size(); ++u) Insert(u);
}

void TQTree::Insert(uint32_t traj_id) {
  TQ_CHECK(traj_id < users_->size());
  if (options_.mode == TrajMode::kWhole) {
    InsertEntry(MakeWholeEntry(*users_, traj_id, options_.model));
  } else {
    const size_t n = users_->NumPoints(traj_id);
    if (n < 2) {
      // A single-point trajectory degenerates to a zero-length segment so
      // it still participates in point-count service.
      InsertEntry(MakeWholeEntry(*users_, traj_id, options_.model));
      return;
    }
    for (uint32_t s = 0; s + 1 < n; ++s) {
      InsertEntry(MakeSegmentEntry(*users_, traj_id, s, options_.model));
    }
  }
}

int32_t TQTree::ChildContaining(int32_t idx, const Rect& mbr) const {
  const TQNode& n = nodes_[static_cast<size_t>(idx)];
  TQ_DCHECK(!n.IsLeaf());
  // The candidate child is the quadrant holding the MBR centre; containment
  // of the whole MBR still has to be verified.
  const int q = n.rect.QuadrantOf(mbr.Center());
  const int32_t child = n.first_child + q;
  if (nodes_[static_cast<size_t>(child)].rect.ContainsRect(mbr)) return child;
  return -1;
}

void TQTree::InsertEntry(const TrajEntry& e) {
  int32_t idx = 0;
  for (;;) {
    TQNode& n = nodes_[static_cast<size_t>(idx)];
    n.sub += e.ub;
    n.sub_agg.Add(e.agg);
    if (n.IsLeaf()) {
      StoreAt(idx, e);
      MaybeSplit(idx);
      return;
    }
    const int32_t child = ChildContaining(idx, e.mbr);
    if (child < 0) {
      StoreAt(idx, e);  // inter-node unit
      return;
    }
    idx = child;
  }
}

void TQTree::StoreAt(int32_t idx, const TrajEntry& e) {
  TQNode& n = nodes_[static_cast<size_t>(idx)];
  n.entries.push_back(e);
  n.local_ub += e.ub;
  n.local_agg.Add(e.agg);
  n.zindex_dirty = true;
  ++num_units_;
}

void TQTree::MaybeSplit(int32_t idx) {
  {
    TQNode& n = nodes_[static_cast<size_t>(idx)];
    if (!n.IsLeaf()) return;
    if (n.entries.size() <= options_.beta) return;
    if (n.depth >= options_.max_depth) return;
    // Retry a failed split only after the list doubles.
    if (n.split_failed_at != 0 && n.entries.size() < 2 * n.split_failed_at) {
      return;
    }
    // Split only if at least one unit would move down (the paper partitions
    // while intra-node units remain; a split that leaves everything as
    // inter-node units is pure overhead).
    bool any_movable = false;
    for (const TrajEntry& e : n.entries) {
      const int q = n.rect.QuadrantOf(e.mbr.Center());
      if (n.rect.Quadrant(q).ContainsRect(e.mbr)) {
        any_movable = true;
        break;
      }
    }
    if (!any_movable) {
      n.split_failed_at = static_cast<uint32_t>(n.entries.size());
      return;
    }
  }

  // Allocate children (invalidates references into nodes_).
  const auto first = static_cast<int32_t>(nodes_.size());
  {
    const Rect rect = nodes_[static_cast<size_t>(idx)].rect;
    const auto depth =
        static_cast<int16_t>(nodes_[static_cast<size_t>(idx)].depth + 1);
    for (int q = 0; q < 4; ++q) {
      TQNode child;
      child.rect = rect.Quadrant(q);
      child.depth = depth;
      nodes_.push_back(std::move(child));
    }
    nodes_[static_cast<size_t>(idx)].first_child = first;
  }

  // Redistribute: units fitting a child sink; the rest stay as the
  // inter-node list of this (now internal) node.
  std::vector<TrajEntry> keep;
  std::vector<TrajEntry> moved;
  moved.reserve(nodes_[static_cast<size_t>(idx)].entries.size());
  {
    TQNode& n = nodes_[static_cast<size_t>(idx)];
    for (TrajEntry& e : n.entries) {
      const int q = n.rect.QuadrantOf(e.mbr.Center());
      if (n.rect.Quadrant(q).ContainsRect(e.mbr)) {
        moved.push_back(e);
      } else {
        keep.push_back(e);
      }
    }
    n.entries.swap(keep);
    n.zindex_dirty = true;
    // Recompute local bookkeeping for the kept list.
    n.local_ub = 0.0;
    n.local_agg = ServiceAggregates{};
    for (const TrajEntry& e : n.entries) {
      n.local_ub += e.ub;
      n.local_agg.Add(e.agg);
    }
  }
  for (const TrajEntry& e : moved) {
    const int q =
        nodes_[static_cast<size_t>(idx)].rect.QuadrantOf(e.mbr.Center());
    const int32_t child = first + q;
    TQNode& c = nodes_[static_cast<size_t>(child)];
    c.sub += e.ub;
    c.sub_agg.Add(e.agg);
    c.entries.push_back(e);
    c.local_ub += e.ub;
    c.local_agg.Add(e.agg);
    c.zindex_dirty = true;
  }
  for (int q = 0; q < 4; ++q) MaybeSplit(first + q);
}

int32_t TQTree::ContainingNode(const Rect& r) const {
  int32_t idx = 0;
  for (;;) {
    const TQNode& n = nodes_[static_cast<size_t>(idx)];
    if (n.IsLeaf()) return idx;
    const int32_t child = ChildContaining(idx, r);
    if (child < 0) return idx;
    idx = child;
  }
}

std::vector<int32_t> TQTree::PathTo(int32_t idx) const {
  // Rebuild the path by re-descending toward idx's rectangle centre.
  std::vector<int32_t> path;
  const Rect target = nodes_[static_cast<size_t>(idx)].rect;
  int32_t cur = 0;
  path.push_back(cur);
  while (cur != idx) {
    const TQNode& n = nodes_[static_cast<size_t>(cur)];
    TQ_CHECK_MSG(!n.IsLeaf(), "PathTo: idx not reachable from root");
    cur = n.first_child + n.rect.QuadrantOf(target.Center());
    path.push_back(cur);
  }
  return path;
}

const ZIndex* TQTree::zindex(int32_t idx) {
  if (options_.variant != IndexVariant::kZOrder) return nullptr;
  TQNode& n = nodes_[static_cast<size_t>(idx)];
  if (n.entries.empty()) return nullptr;
  if (n.zindex_dirty) {
    n.zindex = std::make_unique<ZIndex>(n.rect, n.entries, options_.beta,
                                        prune_mode_);
    n.zindex_dirty = false;
  }
  return n.zindex.get();
}

void TQTree::BuildAllZIndexes() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    (void)zindex(static_cast<int32_t>(i));
  }
}

bool TQTree::Remove(uint32_t traj_id) {
  TQ_CHECK(traj_id < users_->size());
  if (options_.mode == TrajMode::kWhole || users_->NumPoints(traj_id) < 2) {
    const TrajEntry e = MakeWholeEntry(*users_, traj_id, options_.model);
    return RemoveUnit(traj_id, e.seg_index, e.mbr, e.ub, e.agg);
  }
  bool all = true;
  const size_t n = users_->NumPoints(traj_id);
  for (uint32_t s = 0; s + 1 < n; ++s) {
    const TrajEntry e = MakeSegmentEntry(*users_, traj_id, s, options_.model);
    all = RemoveUnit(traj_id, s, e.mbr, e.ub, e.agg) && all;
  }
  return all;
}

bool TQTree::RemoveUnit(uint32_t traj_id, uint32_t seg_index,
                        const Rect& unit_mbr, double ub,
                        const ServiceAggregates& agg) {
  // Locate the storing node by re-descending with the unit's MBR.
  std::vector<int32_t> path;
  int32_t idx = 0;
  int32_t store = -1;
  for (;;) {
    path.push_back(idx);
    const TQNode& n = nodes_[static_cast<size_t>(idx)];
    if (n.IsLeaf()) {
      store = idx;
      break;
    }
    const int32_t child = ChildContaining(idx, unit_mbr);
    if (child < 0) {
      store = idx;
      break;
    }
    idx = child;
  }
  TQNode& n = nodes_[static_cast<size_t>(store)];
  auto it = std::find_if(n.entries.begin(), n.entries.end(),
                         [&](const TrajEntry& e) {
                           return e.traj_id == traj_id &&
                                  e.seg_index == seg_index;
                         });
  if (it == n.entries.end()) return false;
  n.entries.erase(it);
  n.local_ub -= ub;
  n.local_agg.Subtract(agg);
  n.zindex_dirty = true;
  for (const int32_t p : path) {
    nodes_[static_cast<size_t>(p)].sub -= ub;
    nodes_[static_cast<size_t>(p)].sub_agg.Subtract(agg);
  }
  --num_units_;
  return true;
}

TQTreeStats TQTree::ComputeStats() const {
  TQTreeStats s;
  s.num_nodes = nodes_.size();
  for (const TQNode& n : nodes_) {
    if (n.IsLeaf()) ++s.num_leaves;
    s.num_entries += n.entries.size();
    s.max_depth = std::max(s.max_depth, static_cast<size_t>(n.depth));
    s.max_list_len = std::max(s.max_list_len, n.entries.size());
  }
  s.avg_list_len = s.num_nodes == 0
                       ? 0.0
                       : static_cast<double>(s.num_entries) /
                             static_cast<double>(s.num_nodes);
  return s;
}

std::string TQTreeStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "nodes=%zu leaves=%zu entries=%zu max_depth=%zu "
                "max_list=%zu avg_list=%.2f",
                num_nodes, num_leaves, num_entries, max_depth, max_list_len,
                avg_list_len);
  return buf;
}

}  // namespace tq
