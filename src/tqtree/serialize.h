// Streaming binary persistence for the TQ-tree.
//
// The paper sizes β as "a memory block (or a disk block for a disk-resident
// list)" — this module provides the disk side: a packed binary image of the
// quadtree skeleton plus per-node unit-id lists. Unit geometry, upper bounds
// and z-indexes are rebuilt from the user TrajectorySet on load, which keeps
// files small and makes stale files (wrong user set) detectable.
//
// The codec is STREAMING, not path-bound: WriteTQTreeSnapshot emits the tree
// one node PAGE at a time into any SnapshotSink, and ReadTQTreeSnapshot
// consumes any SnapshotSource — so the background checkpointer (streaming a
// retained fork to disk off the publish path), the fork-chain compactor
// (round-tripping a shard tree through a memory buffer into fresh dense
// pages), WAL recovery and the CLI all share exactly one format. The old
// path-string SaveTQTree/LoadTQTree survive as thin file wrappers.
//
// Format "TQT2" (little-endian, host-width doubles):
//   header   magic "TQT2", u32 version,
//            options (u64 beta, i32 max_depth, u8 variant, u8 mode,
//                     u8 scenario, u8 normalization, f64 psi, u8 precheck,
//                     u64 raster_resolution),
//            f64×4 world rect, u64 geometry hash (of the fields above),
//            u64 user-set size (validation), u64 node count,
//            u32 CRC32C of everything since the magic
//   pages    one record per node page, in page order:
//            u32 page index, u32 nodes in page,
//            per node: f64×4 rect, i32 first_child, i16 depth,
//                      u32 split_failed_at, u32 entry count,
//                      entries as (u32 traj_id, u32 seg_index),
//            u32 CRC32C of the record body
//   trailer  u32 0xFFFFFFFF sentinel (no page has this index),
//            u64 total units, u32 CRC32C of the trailer body
//
// split_failed_at is persisted so a restored tree defers split retries
// exactly like the live tree it was captured from — the crash-recovery
// bit-identity guarantee extends through FUTURE inserts, not just reads.
// Every structural mismatch (bad magic, unsupported version, geometry or
// user-set disagreement, CRC failure) is a typed Status, never an abort.
#ifndef TQCOVER_TQTREE_SERIALIZE_H_
#define TQCOVER_TQTREE_SERIALIZE_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "tqtree/tq_tree.h"

namespace tq {

/// Byte-stream sink the snapshot writer appends to. Implementations must
/// either accept all `n` bytes or fail; short writes are not modeled.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual Status Append(const void* data, size_t n) = 0;
};

/// Byte-stream source the snapshot reader consumes. Read() must fill the
/// buffer completely or fail (kIOError for I/O trouble, kInvalidArgument
/// for end-of-stream — the codec maps both to "truncated").
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  virtual Status Read(void* data, size_t n) = 0;
};

/// Sink writing a stdio file (buffered); Close() flushes and reports errors.
class FileSnapshotSink : public SnapshotSink {
 public:
  ~FileSnapshotSink() override;
  static Result<std::unique_ptr<FileSnapshotSink>> Open(
      const std::string& path);
  Status Append(const void* data, size_t n) override;
  /// Flushes, optionally fsyncs, and closes. Idempotent.
  Status Close(bool sync = false);

 private:
  explicit FileSnapshotSink(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  std::FILE* file_;
  std::string path_;
};

/// Source reading a stdio file.
class FileSnapshotSource : public SnapshotSource {
 public:
  ~FileSnapshotSource() override;
  static Result<std::unique_ptr<FileSnapshotSource>> Open(
      const std::string& path);
  Status Read(void* data, size_t n) override;

 private:
  explicit FileSnapshotSource(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}
  std::FILE* file_;
  std::string path_;
};

/// Sink appending to a caller-owned string (compaction, tests).
class StringSnapshotSink : public SnapshotSink {
 public:
  explicit StringSnapshotSink(std::string* out) : out_(out) {}
  Status Append(const void* data, size_t n) override {
    out_->append(static_cast<const char*>(data), n);
    return Status::OK();
  }

 private:
  std::string* out_;
};

/// Source over an in-memory byte range (compaction, WAL recovery, tests).
class StringSnapshotSource : public SnapshotSource {
 public:
  explicit StringSnapshotSource(std::string_view data) : data_(data) {}
  Status Read(void* data, size_t n) override;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Hash of the geometry a tree's answers depend on: construction options,
/// service model and world rectangle. Two trees with equal hashes index the
/// same space the same way; the checkpoint manifest stores it so every
/// per-shard snapshot stream can be verified against the partition geometry
/// without parsing, and workers can adopt a checkpoint's geometry wholesale.
uint64_t TQTreeGeometryHash(const TQTreeOptions& options, const Rect& world);

/// Streams `tree` into `sink`, one node page per record.
Status WriteTQTreeSnapshot(const TQTree& tree, SnapshotSink* sink);

/// Reads a snapshot stream written by WriteTQTreeSnapshot. `users` must be
/// the trajectory set the tree was built over (checked by size; per-entry
/// ids are bounds-checked) and must outlive the tree. Z-indexes are rebuilt
/// eagerly for kZOrder trees, mirroring the building constructor. All
/// failures are typed Status values (kInvalidArgument for format/geometry
/// trouble, kIOError passed through from the source).
Result<std::unique_ptr<TQTree>> ReadTQTreeSnapshot(SnapshotSource* source,
                                                   const TrajectorySet* users);

/// Thin file wrapper over WriteTQTreeSnapshot.
Status SaveTQTree(const std::string& path, const TQTree& tree);

/// Thin file wrapper over ReadTQTreeSnapshot.
Result<std::unique_ptr<TQTree>> LoadTQTree(const std::string& path,
                                           const TrajectorySet* users);

}  // namespace tq

#endif  // TQCOVER_TQTREE_SERIALIZE_H_
