// Binary persistence for the TQ-tree.
//
// The paper sizes β as "a memory block (or a disk block for a disk-resident
// list)" — this module provides the disk side: a packed binary image of the
// quadtree skeleton plus per-node unit-id lists. Unit geometry, upper bounds
// and z-indexes are rebuilt from the user TrajectorySet on load, which keeps
// files small and makes stale files (wrong user set) detectable.
//
// Format (little-endian, host-width doubles):
//   magic "TQT1", u32 version
//   options: u64 beta, i32 max_depth, u8 variant, u8 mode,
//            u8 scenario, u8 normalization, f64 psi, u8 precheck
//   f64×4 world rect, u64 user-set size (validation), u64 node count
//   per node: f64×4 rect, i32 first_child, i16 depth, u32 entry count,
//             entries as (u32 traj_id, u32 seg_index)
#ifndef TQCOVER_TQTREE_SERIALIZE_H_
#define TQCOVER_TQTREE_SERIALIZE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "tqtree/tq_tree.h"

namespace tq {

/// Writes `tree` to `path`.
Status SaveTQTree(const std::string& path, const TQTree& tree);

/// Reads a tree written by SaveTQTree. `users` must be the same trajectory
/// set the tree was built over (checked by size; per-entry ids are bounds-
/// checked). Z-indexes are rebuilt eagerly for kZOrder trees, mirroring the
/// building constructor.
///
/// (The runtime's old snapshot-cloning primitive, CloneTQTree, is gone:
/// writers now call TQTree::Fork(), which shares node pages with the parent
/// snapshot instead of deep-copying the tree — see tqtree/tq_tree.h.)
Result<std::unique_ptr<TQTree>> LoadTQTree(const std::string& path,
                                           const TrajectorySet* users);

}  // namespace tq

#endif  // TQCOVER_TQTREE_SERIALIZE_H_
