#include "tqtree/aggregates.h"

#include "common/check.h"
#include "geom/distance.h"

namespace tq {

double UnitUpperBound(const TrajectorySet& users, uint32_t traj, uint32_t seg,
                      const ServiceModel& model) {
  const size_t n = users.NumPoints(traj);
  if (seg == kWholeUnit) {
    switch (model.scenario) {
      case Scenario::kEndpoints:
        return 1.0;
      case Scenario::kPointCount:
        return model.normalization == Normalization::kPerUser
                   ? 1.0
                   : static_cast<double>(n);
      case Scenario::kLength:
        return model.normalization == Normalization::kPerUser
                   ? 1.0
                   : users.length(traj);
    }
    return 1.0;
  }
  TQ_DCHECK(seg + 1 < n);
  const uint32_t last_seg = static_cast<uint32_t>(n) - 2;
  switch (model.scenario) {
    case Scenario::kEndpoints:
      // Non-additive: each endpoint-touching segment must bound the full
      // value on its own (see header).
      return (seg == 0 || seg == last_seg) ? 1.0 : 0.0;
    case Scenario::kPointCount: {
      const double owned = (seg == 0) ? 2.0 : 1.0;  // seg i owns point i+1
      return model.normalization == Normalization::kPerUser
                 ? owned / static_cast<double>(n)
                 : owned;
    }
    case Scenario::kLength: {
      const auto pts = users.points(traj);
      const double seg_len = Distance(pts[seg], pts[seg + 1]);
      if (model.normalization == Normalization::kPerUser) {
        const double total = users.length(traj);
        return total > 0.0 ? seg_len / total : 0.0;
      }
      return seg_len;
    }
  }
  return 0.0;
}

TrajEntry MakeWholeEntry(const TrajectorySet& users, uint32_t traj,
                         const ServiceModel& model) {
  const auto pts = users.points(traj);
  TrajEntry e;
  e.traj_id = traj;
  e.seg_index = kWholeUnit;
  e.start = pts.front();
  e.end = pts.back();
  e.mbr = users.mbr(traj);
  e.ub = UnitUpperBound(users, traj, kWholeUnit, model);
  e.agg = ServiceAggregates::ForTrajectory(pts.size(), users.length(traj));
  return e;
}

TrajEntry MakeSegmentEntry(const TrajectorySet& users, uint32_t traj,
                           uint32_t seg, const ServiceModel& model) {
  const auto pts = users.points(traj);
  TQ_DCHECK(seg + 1 < pts.size());
  TrajEntry e;
  e.traj_id = traj;
  e.seg_index = seg;
  e.start = pts[seg];
  e.end = pts[seg + 1];
  e.mbr = Rect::Empty();
  e.mbr.Include(e.start);
  e.mbr.Include(e.end);
  e.ub = UnitUpperBound(users, traj, seg, model);
  e.agg = ServiceAggregates::ForTrajectory(2, Distance(e.start, e.end));
  return e;
}

}  // namespace tq
