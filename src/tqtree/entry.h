// The unit stored by a TQ-tree: either a whole trajectory (two-point or
// full-trajectory mode, §III) or one segment of a trajectory (segmented
// mode, §III-A).
#ifndef TQCOVER_TQTREE_ENTRY_H_
#define TQCOVER_TQTREE_ENTRY_H_

#include <cstdint>

#include "geom/point.h"
#include "geom/rect.h"
#include "service/models.h"

namespace tq {

/// seg_index value marking a whole-trajectory unit.
inline constexpr uint32_t kWholeUnit = 0xFFFFFFFFu;

/// One storable unit in a q-node's trajectory list UL(E).
struct TrajEntry {
  uint32_t traj_id = 0;
  uint32_t seg_index = kWholeUnit;  // segment i joins points i and i+1
  Point start;                      // first point of the unit
  Point end;                        // last point of the unit
  Rect mbr;                         // bounding box of all unit points
  /// Maximum service value this unit can still contribute under the tree's
  /// service model — the per-unit share of the node upper bound "sub" (§III).
  double ub = 0.0;
  /// Raw aggregates (trajectory/point/length counts) for stats & ablations.
  ServiceAggregates agg;

  bool IsWhole() const { return seg_index == kWholeUnit; }
};

}  // namespace tq

#endif  // TQCOVER_TQTREE_ENTRY_H_
