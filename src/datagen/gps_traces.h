// User generator: GPS movement traces (the BJG/Geolife stand-in).
#ifndef TQCOVER_DATAGEN_GPS_TRACES_H_
#define TQCOVER_DATAGEN_GPS_TRACES_H_

#include "datagen/city_model.h"
#include "traj/dataset.h"

namespace tq {

struct GpsTraceOptions {
  size_t num_traces = 30000;
  size_t min_points = 10;
  size_t max_points = 60;
  double min_step = 80.0;    // metres between consecutive fixes
  double max_step = 250.0;
  double turn_sigma = 0.5;   // radians of heading change per step
  uint64_t seed = 4;
};

/// Heading-persistent random walks anchored at hotspots — long, dense
/// multipoint trajectories like commuter GPS logs.
TrajectorySet GenerateGpsTraces(const CityModel& city,
                                const GpsTraceOptions& options);

}  // namespace tq

#endif  // TQCOVER_DATAGEN_GPS_TRACES_H_
