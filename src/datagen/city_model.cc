#include "datagen/city_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tq {

CityModel::CityModel(Rect extent, std::vector<Hotspot> hotspots)
    : extent_(extent), hotspots_(std::move(hotspots)) {
  TQ_CHECK(!hotspots_.empty());
  double acc = 0.0;
  cdf_.reserve(hotspots_.size());
  for (const Hotspot& h : hotspots_) {
    acc += h.weight;
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

CityModel CityModel::Make(Rect extent, size_t num_hotspots, uint64_t seed) {
  TQ_CHECK(num_hotspots > 0);
  Rng rng(seed);
  std::vector<Hotspot> spots;
  spots.reserve(num_hotspots);
  for (size_t i = 0; i < num_hotspots; ++i) {
    Hotspot h;
    h.center.x = rng.NextUniform(extent.min_x, extent.max_x);
    h.center.y = rng.NextUniform(extent.min_y, extent.max_y);
    h.sigma = rng.NextUniform(400.0, 2000.0);
    // Zipf-like popularity: a handful of dominant centres, a long tail.
    h.weight = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
    spots.push_back(h);
  }
  return CityModel(extent, std::move(spots));
}

size_t CityModel::SampleHotspot(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

Point CityModel::Clamp(const Point& p) const {
  return Point{std::clamp(p.x, extent_.min_x, extent_.max_x),
               std::clamp(p.y, extent_.min_y, extent_.max_y)};
}

Point CityModel::SamplePoint(Rng* rng) const {
  const Hotspot& h = hotspots_[SampleHotspot(rng)];
  return SampleNear(h.center, h.sigma, rng);
}

Point CityModel::SampleNear(const Point& p, double sigma, Rng* rng) const {
  return Clamp(Point{rng->NextGaussian(p.x, sigma),
                     rng->NextGaussian(p.y, sigma)});
}

}  // namespace tq
