#include "datagen/checkins.h"

#include <vector>

#include "common/check.h"

namespace tq {

TrajectorySet GenerateCheckins(const CityModel& city,
                               const CheckinOptions& options) {
  TQ_CHECK(options.num_pois > 0);
  TQ_CHECK(options.min_checkins >= 1);
  TQ_CHECK(options.max_checkins >= options.min_checkins);
  Rng rng(options.seed);

  // Venue universe, hotspot-clustered.
  std::vector<Point> pois;
  pois.reserve(options.num_pois);
  for (size_t i = 0; i < options.num_pois; ++i) {
    pois.push_back(city.SamplePoint(&rng));
  }

  TrajectorySet out;
  out.Reserve(options.num_trajectories,
              (options.min_checkins + options.max_checkins) / 2);
  std::vector<Point> seq;
  const double r2 = options.locality_radius * options.locality_radius;
  for (size_t t = 0; t < options.num_trajectories; ++t) {
    const size_t len = static_cast<size_t>(rng.NextInt(
        static_cast<int64_t>(options.min_checkins),
        static_cast<int64_t>(options.max_checkins)));
    seq.clear();
    size_t cur = rng.NextZipf(options.num_pois, options.zipf_popularity);
    seq.push_back(pois[cur]);
    while (seq.size() < len) {
      // Popularity-biased pick, retried a few times for spatial locality.
      size_t next = cur;
      for (int attempt = 0; attempt < 32; ++attempt) {
        next = rng.NextZipf(options.num_pois, options.zipf_popularity);
        if (next != cur &&
            DistanceSquared(pois[next], pois[cur]) <= r2) {
          break;
        }
      }
      seq.push_back(pois[next]);
      cur = next;
    }
    out.Add(seq);
  }
  return out;
}

}  // namespace tq
