#include "datagen/taxi_trips.h"

#include <cmath>

namespace tq {

TrajectorySet GenerateTaxiTrips(const CityModel& city,
                                const TaxiTripOptions& options) {
  Rng rng(options.seed);
  TrajectorySet trips;
  trips.Reserve(options.num_trips, 2);
  for (size_t i = 0; i < options.num_trips; ++i) {
    const Point pickup = city.SamplePoint(&rng);
    Point dropoff;
    if (rng.NextBernoulli(options.local_trip_prob)) {
      // Local ride: exponential trip length, uniform heading.
      double u = rng.NextDouble();
      if (u < 1e-12) u = 1e-12;
      const double len = std::min(-std::log(u) * options.mean_trip_m,
                                  8.0 * options.mean_trip_m);
      const double heading = rng.NextUniform(0.0, 2.0 * M_PI);
      dropoff = city.Clamp(Point{pickup.x + len * std::cos(heading),
                                 pickup.y + len * std::sin(heading)});
    } else {
      // Cross-town hop between activity centres.
      dropoff = city.SamplePoint(&rng);
    }
    const Point pts[2] = {pickup, dropoff};
    trips.Add(pts);
  }
  return trips;
}

}  // namespace tq
