#include "datagen/presets.h"

#include <cmath>

namespace tq::presets {

namespace {
constexpr uint64_t kNySeed = 0x4E59ULL;        // "NY"
constexpr uint64_t kBjSeed = 0x424AULL;        // "BJ"
constexpr uint64_t kNytSeed = 0x4E5954ULL;     // "NYT"
constexpr uint64_t kNyfSeed = 0x4E5946ULL;     // "NYF"
constexpr uint64_t kBjgSeed = 0x424A47ULL;     // "BJG"
constexpr uint64_t kNyBusSeed = 0x4E594255ULL;
constexpr uint64_t kBjBusSeed = 0x424A4255ULL;
}  // namespace

CityModel NewYork() {
  return CityModel::Make(Rect::Of(0, 0, 40000, 40000), 48, kNySeed);
}

CityModel Beijing() {
  return CityModel::Make(Rect::Of(0, 0, 50000, 50000), 64, kBjSeed);
}

TrajectorySet NytTrips(size_t num_trips) {
  TaxiTripOptions opt;
  opt.num_trips = num_trips;
  opt.seed = kNytSeed;
  return GenerateTaxiTrips(NewYork(), opt);
}

TrajectorySet NyfCheckins(size_t num_trajectories) {
  CheckinOptions opt;
  opt.num_trajectories = num_trajectories;
  opt.seed = kNyfSeed;
  return GenerateCheckins(NewYork(), opt);
}

TrajectorySet BjgTraces(size_t num_traces) {
  GpsTraceOptions opt;
  opt.num_traces = num_traces;
  opt.seed = kBjgSeed;
  return GenerateGpsTraces(Beijing(), opt);
}

TrajectorySet NyBusRoutes(size_t num_routes, size_t stops_per_route) {
  BusRouteOptions opt;
  opt.num_routes = num_routes;
  opt.stops_per_route = stops_per_route;
  opt.seed = kNyBusSeed;
  return GenerateBusRoutes(NewYork(), opt);
}

TrajectorySet BjBusRoutes(size_t num_routes, size_t stops_per_route) {
  BusRouteOptions opt;
  opt.num_routes = num_routes;
  opt.stops_per_route = stops_per_route;
  opt.seed = kBjBusSeed;
  return GenerateBusRoutes(Beijing(), opt);
}

std::vector<size_t> NytUserSweep(double scale) {
  // Table III: 12h / 1 day / 2 days / 3 days of NYC taxi trips.
  const std::vector<size_t> full = {203308, 357139, 697796, 1032637};
  std::vector<size_t> out;
  out.reserve(full.size());
  for (const size_t n : full) {
    out.push_back(static_cast<size_t>(
        std::max(1.0, std::round(static_cast<double>(n) * scale))));
  }
  return out;
}

}  // namespace tq::presets
