#include "datagen/bus_routes.h"

#include <cmath>

#include "common/check.h"
#include "geom/distance.h"

namespace tq {

namespace {

// Resamples `path` at even arc-length spacing into exactly `n` stops.
std::vector<Point> ResampleStops(const std::vector<Point>& path, size_t n) {
  TQ_CHECK(path.size() >= 2 && n >= 2);
  const double total = PolylineLength(path);
  std::vector<Point> stops;
  stops.reserve(n);
  const double step = total / static_cast<double>(n - 1);
  double next_at = 0.0;
  double walked = 0.0;
  size_t seg = 0;
  double seg_len = Distance(path[0], path[1]);
  while (stops.size() < n) {
    if (walked + seg_len >= next_at - 1e-9) {
      const double t =
          seg_len > 0.0 ? (next_at - walked) / seg_len : 0.0;
      stops.push_back(Point{path[seg].x + t * (path[seg + 1].x - path[seg].x),
                            path[seg].y +
                                t * (path[seg + 1].y - path[seg].y)});
      next_at += step;
    } else {
      walked += seg_len;
      ++seg;
      if (seg + 1 >= path.size()) {
        while (stops.size() < n) stops.push_back(path.back());
        break;
      }
      seg_len = Distance(path[seg], path[seg + 1]);
    }
  }
  return stops;
}

}  // namespace

TrajectorySet GenerateBusRoutes(const CityModel& city,
                                const BusRouteOptions& options) {
  TQ_CHECK(options.num_routes > 0);
  TQ_CHECK(options.stops_per_route >= 2);
  Rng rng(options.seed);
  TrajectorySet routes;
  routes.Reserve(options.num_routes, options.stops_per_route);

  // Target route length: even spacing between stops.
  const double target_len =
      options.stop_spacing * static_cast<double>(options.stops_per_route - 1);

  for (size_t r = 0; r < options.num_routes; ++r) {
    // A corridor of hotspot waypoints long enough for the target length.
    std::vector<Point> waypoints;
    waypoints.push_back(city.SamplePoint(&rng));
    double len = 0.0;
    while (len < target_len) {
      const Hotspot& h = city.hotspots()[city.SampleHotspot(&rng)];
      Point next = city.SampleNear(h.center, h.sigma * 0.5, &rng);
      // Bias toward nearby centres: reject hops longer than a quarter of
      // the city diagonal half the time.
      const double diag = std::hypot(city.extent().Width(),
                                     city.extent().Height());
      if (Distance(waypoints.back(), next) > 0.25 * diag &&
          rng.NextBernoulli(0.5)) {
        continue;
      }
      len += Distance(waypoints.back(), next);
      waypoints.push_back(next);
      if (waypoints.size() > 64) break;  // degenerate tiny hops
    }
    if (waypoints.size() < 2) waypoints.push_back(city.SamplePoint(&rng));
    const std::vector<Point> stops =
        ResampleStops(waypoints, options.stops_per_route);
    routes.Add(stops);
  }
  return routes;
}

}  // namespace tq
