// Named dataset presets mirroring the paper's Tables I–II. All presets are
// deterministic (fixed seeds) so experiments are reproducible bit-for-bit.
#ifndef TQCOVER_DATAGEN_PRESETS_H_
#define TQCOVER_DATAGEN_PRESETS_H_

#include "datagen/bus_routes.h"
#include "datagen/checkins.h"
#include "datagen/city_model.h"
#include "datagen/gps_traces.h"
#include "datagen/taxi_trips.h"

namespace tq::presets {

/// 40 km × 40 km "New York"-like city, 48 hotspots.
CityModel NewYork();

/// 50 km × 50 km "Beijing"-like city, 64 hotspots.
CityModel Beijing();

/// NYT: point-to-point taxi trips (paper full scale: 1,032,637).
TrajectorySet NytTrips(size_t num_trips);

/// NYF: multipoint check-in trajectories (paper full scale: 212,751).
TrajectorySet NyfCheckins(size_t num_trajectories);

/// BJG: multipoint GPS traces (paper full scale: 30,266).
TrajectorySet BjgTraces(size_t num_traces);

/// NY bus routes (paper: 2,024 routes / 16,999 stops).
TrajectorySet NyBusRoutes(size_t num_routes, size_t stops_per_route);

/// Beijing bus routes (paper: 1,842 routes / 21,489 stops).
TrajectorySet BjBusRoutes(size_t num_routes, size_t stops_per_route);

/// Paper user-count sweep for NYT (0.5/1/2/3 days), scaled by `scale`
/// (scale=1 reproduces Table III's 203308..1032637 row).
std::vector<size_t> NytUserSweep(double scale);

}  // namespace tq::presets

#endif  // TQCOVER_DATAGEN_PRESETS_H_
