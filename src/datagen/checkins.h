// User generator: multipoint check-in sequences (the NYF stand-in).
#ifndef TQCOVER_DATAGEN_CHECKINS_H_
#define TQCOVER_DATAGEN_CHECKINS_H_

#include "datagen/city_model.h"
#include "traj/dataset.h"

namespace tq {

struct CheckinOptions {
  size_t num_trajectories = 50000;
  size_t num_pois = 2000;        // venue universe
  size_t min_checkins = 3;
  size_t max_checkins = 10;
  double zipf_popularity = 1.0;  // venue popularity skew
  double locality_radius = 3000.0;  // next venue drawn near the current one
  uint64_t seed = 3;
};

/// Each trajectory is a day of check-ins: venues drawn by Zipf popularity,
/// with spatial locality (people hop between nearby venues).
TrajectorySet GenerateCheckins(const CityModel& city,
                               const CheckinOptions& options);

}  // namespace tq

#endif  // TQCOVER_DATAGEN_CHECKINS_H_
