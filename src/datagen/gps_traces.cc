#include "datagen/gps_traces.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace tq {

TrajectorySet GenerateGpsTraces(const CityModel& city,
                                const GpsTraceOptions& options) {
  TQ_CHECK(options.min_points >= 2);
  TQ_CHECK(options.max_points >= options.min_points);
  Rng rng(options.seed);
  TrajectorySet out;
  out.Reserve(options.num_traces,
              (options.min_points + options.max_points) / 2);
  std::vector<Point> trace;
  for (size_t t = 0; t < options.num_traces; ++t) {
    const size_t len = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(options.min_points),
                    static_cast<int64_t>(options.max_points)));
    trace.clear();
    Point cur = city.SamplePoint(&rng);
    double heading = rng.NextUniform(0.0, 2.0 * M_PI);
    trace.push_back(cur);
    while (trace.size() < len) {
      heading += rng.NextGaussian(0.0, options.turn_sigma);
      const double step = rng.NextUniform(options.min_step, options.max_step);
      Point next{cur.x + step * std::cos(heading),
                 cur.y + step * std::sin(heading)};
      // Bounce off the city boundary by reversing heading.
      if (!city.extent().Contains(next)) {
        heading += M_PI;
        next = city.Clamp(next);
      }
      trace.push_back(next);
      cur = next;
    }
    out.Add(trace);
  }
  return out;
}

}  // namespace tq
