// Facility generator: bus routes as stop-point sequences (Table I stand-in).
#ifndef TQCOVER_DATAGEN_BUS_ROUTES_H_
#define TQCOVER_DATAGEN_BUS_ROUTES_H_

#include "datagen/city_model.h"
#include "traj/dataset.h"

namespace tq {

struct BusRouteOptions {
  size_t num_routes = 128;
  size_t stops_per_route = 64;   // the paper's S parameter (8..512)
  double stop_spacing = 400.0;   // metres between consecutive stops
  uint64_t seed = 1;
};

/// Routes run between sequences of hotspots (as real bus lines connect
/// activity centres) with stops resampled at even spacing, so each route has
/// exactly `stops_per_route` stops.
TrajectorySet GenerateBusRoutes(const CityModel& city,
                                const BusRouteOptions& options);

}  // namespace tq

#endif  // TQCOVER_DATAGEN_BUS_ROUTES_H_
