// Synthetic city model: a Gaussian-hotspot mixture over a metric extent.
//
// Stand-in for the spatial skew of the paper's real datasets (NYC taxi
// pickups cluster in Manhattan; Geolife traces cluster around campuses). The
// TQ-tree's wins come precisely from such clustering — co-located,
// similarly-oriented trajectories — so the mixture is the property the
// substitution must preserve (see DESIGN.md §3).
#ifndef TQCOVER_DATAGEN_CITY_MODEL_H_
#define TQCOVER_DATAGEN_CITY_MODEL_H_

#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace tq {

/// A weighted Gaussian activity centre.
struct Hotspot {
  Point center;
  double sigma = 800.0;   // spread in metres
  double weight = 1.0;
};

/// Immutable city: extent plus hotspot mixture.
class CityModel {
 public:
  CityModel(Rect extent, std::vector<Hotspot> hotspots);

  /// Deterministic city: `num_hotspots` centres placed by `seed`, Zipf
  /// popularity weights, sigmas between 400 m and 2 km.
  static CityModel Make(Rect extent, size_t num_hotspots, uint64_t seed);

  const Rect& extent() const { return extent_; }
  const std::vector<Hotspot>& hotspots() const { return hotspots_; }

  /// Samples a location from the mixture, clamped into the extent.
  Point SamplePoint(Rng* rng) const;

  /// Samples near `p` with the given spread, clamped into the extent.
  Point SampleNear(const Point& p, double sigma, Rng* rng) const;

  /// Index of a hotspot drawn by weight.
  size_t SampleHotspot(Rng* rng) const;

  Point Clamp(const Point& p) const;

 private:
  Rect extent_;
  std::vector<Hotspot> hotspots_;
  std::vector<double> cdf_;
};

}  // namespace tq

#endif  // TQCOVER_DATAGEN_CITY_MODEL_H_
