// User generator: point-to-point taxi trips (the NYT stand-in, Table II).
#ifndef TQCOVER_DATAGEN_TAXI_TRIPS_H_
#define TQCOVER_DATAGEN_TAXI_TRIPS_H_

#include "datagen/city_model.h"
#include "traj/dataset.h"

namespace tq {

struct TaxiTripOptions {
  size_t num_trips = 100000;
  /// Probability of a local trip (drop-off a few km from the pickup, like
  /// most real taxi rides); the rest are cross-town hotspot-to-hotspot.
  double local_trip_prob = 0.75;
  /// Mean local trip distance in metres (exponential distribution).
  double mean_trip_m = 3000.0;
  uint64_t seed = 2;
};

/// Two-point trajectories: pickup from the hotspot mixture; drop-off mostly
/// a short exponential hop away (real taxi trips are kilometres, not city
/// diameters), with a cross-town tail. Short trips sink deep into the
/// TQ-tree; the tail populates the upper inter-node lists — the length mix
/// §III's hierarchy is designed around.
TrajectorySet GenerateTaxiTrips(const CityModel& city,
                                const TaxiTripOptions& options);

}  // namespace tq

#endif  // TQCOVER_DATAGEN_TAXI_TRIPS_H_
