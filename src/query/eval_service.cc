#include "query/eval_service.h"

#include <numeric>

#include "common/check.h"
#include "geom/distance.h"

namespace tq {

Component FullComponent(const StopGrid& grid) {
  Component comp(grid.stops().size());
  std::iota(comp.begin(), comp.end(), 0u);
  return comp;
}

Component ClipComponent(const StopGrid& grid, const Component& comp,
                        const Rect& rect) {
  Component out;
  const auto stops = grid.stops();
  const double psi = grid.psi();
  for (const uint32_t si : comp) {
    if (DiskIntersectsRect(stops[si], psi, rect)) out.push_back(si);
  }
  return out;
}

Rect ComponentEmbr(const StopGrid& grid, const Component& comp) {
  Rect mbr = Rect::Empty();
  const auto stops = grid.stops();
  for (const uint32_t si : comp) mbr.Include(stops[si]);
  return mbr.Expanded(grid.psi());
}

std::vector<Point> ComponentStops(const StopGrid& grid,
                                  const Component& comp) {
  std::vector<Point> out;
  out.reserve(comp.size());
  const auto stops = grid.stops();
  for (const uint32_t si : comp) out.push_back(stops[si]);
  return out;
}

namespace {

// Applies `fn` to every entry of node `idx`'s list that survives pruning
// against the facility component's serving corridor. This is the zReduce
// step for TQ(Z) trees and the plain linear scan for TQ(B). `zmode_override`
// weakens kStartEnd filtering for served-set collection (see
// ZIndex::ForEachCandidate).
template <typename Fn>
void VisitCandidates(TQTree* tree, int32_t idx,
                     const ZIndex::Corridor& corridor, Fn&& fn,
                     QueryStats* stats,
                     std::optional<ZPruneMode> zmode_override = std::nullopt) {
  const TQNode& node = tree->node(idx);
  if (node.entries.empty()) return;
  if (stats != nullptr) stats->lists_evaluated++;
  const Rect& comp_embr = corridor.embr;
  const ZIndex* zi = tree->zindex(idx);
  if (zi != nullptr) {
    ZIndex::ReduceStats rs;
    zi->ForEachCandidate(
        corridor,
        [&](uint32_t entry_index) {
          if (stats != nullptr) stats->exact_checks++;
          fn(node.entries[entry_index]);
        },
        stats != nullptr ? &rs : nullptr, zmode_override);
    if (stats != nullptr) {
      stats->zreduce.buckets_total += rs.buckets_total;
      stats->zreduce.buckets_visited += rs.buckets_visited;
      stats->zreduce.entries_scanned += rs.entries_scanned;
      stats->zreduce.candidates += rs.candidates;
      stats->entries_scanned += rs.entries_scanned;
    }
    return;
  }
  // TQ(B): flat list scan (the paper's "linear list" variant).
  const bool precheck = tree->options().basic_entry_mbr_precheck;
  for (const TrajEntry& e : node.entries) {
    if (stats != nullptr) stats->entries_scanned++;
    if (precheck && !e.mbr.Intersects(comp_embr)) continue;
    if (stats != nullptr) stats->exact_checks++;
    fn(e);
  }
}

// Exact per-entry service fold shared by value evaluation and served-set
// collection. `on_whole(traj)` handles a whole-trajectory unit; the
// mark callbacks handle segment units.
struct EntrySink {
  const ServiceEvaluator* eval;
  const StopGrid* grid;
  ServiceAccumulator* acc;  // segmented mode only
  double value = 0.0;

  void operator()(const TrajEntry& e) {
    if (e.IsWhole()) {
      if (acc == nullptr) {
        value += eval->Evaluate(e.traj_id, *grid);
      } else if (eval->model().scenario != Scenario::kLength &&
                 grid->Serves(e.start)) {
        // Segmented trees store single-point trajectories as whole units;
        // their value must flow through the accumulator like everything
        // else in the segmented pipeline.
        acc->MarkPoint(e.traj_id, 0);
      }
      return;
    }
    // Segment unit: credit each served constituent once via the accumulator.
    if (eval->model().scenario == Scenario::kLength) {
      if (grid->Serves(e.start) && grid->Serves(e.end)) {
        acc->MarkSegment(e.traj_id, e.seg_index);
      }
    } else {
      if (grid->Serves(e.start)) acc->MarkPoint(e.traj_id, e.seg_index);
      if (grid->Serves(e.end)) acc->MarkPoint(e.traj_id, e.seg_index + 1);
    }
  }
};

double EvaluateServiceRec(TQTree* tree, int32_t idx,
                          const ServiceEvaluator& eval, const StopGrid& grid,
                          const Component& comp, ServiceAccumulator* acc,
                          QueryStats* stats) {
  if (comp.empty()) return 0.0;  // Alg. 1 line 1.2
  if (stats != nullptr) stats->nodes_visited++;
  double so = 0.0;
  const TQNode& node = tree->node(idx);
  if (!node.IsLeaf()) {
    for (int q = 0; q < 4; ++q) {
      const int32_t child = node.first_child + q;
      if (tree->node(child).sub <= 0.0) continue;  // empty subtree
      const Component child_comp =
          ClipComponent(grid, comp, tree->node(child).rect);
      so += EvaluateServiceRec(tree, child, eval, grid, child_comp, acc,
                               stats);
    }
  }
  so += EvaluateNodeList(tree, idx, eval, grid, comp, acc, stats);
  return so;
}

}  // namespace

double EvaluateNodeList(TQTree* tree, int32_t idx,
                        const ServiceEvaluator& eval, const StopGrid& grid,
                        const Component& comp, ServiceAccumulator* acc,
                        QueryStats* stats) {
  if (comp.empty() || tree->node(idx).entries.empty()) return 0.0;
  TQ_DCHECK(tree->options().mode == TrajMode::kWhole || acc != nullptr);
  // Scratch reused across calls; safe because the recursion only builds the
  // corridor after returning from child subtrees.
  static thread_local std::vector<Point> comp_stops;
  comp_stops.clear();
  for (const uint32_t si : comp) comp_stops.push_back(grid.stops()[si]);
  const ZIndex::Corridor corridor{
      comp_stops, grid.psi(),
      Rect::BoundingBox(comp_stops).Expanded(grid.psi())};
  EntrySink sink{&eval, &grid, acc, 0.0};
  VisitCandidates(tree, idx, corridor, std::ref(sink), stats);
  return sink.value;
}

double EvaluateServiceTQ(TQTree* tree, const ServiceEvaluator& eval,
                         const StopGrid& grid, QueryStats* stats) {
  const Component full = FullComponent(grid);
  if (tree->options().mode == TrajMode::kSegmented) {
    // Arena accumulator reused across queries on this thread: Rebind clears
    // marks but keeps the table/word allocations warm.
    static thread_local ServiceAccumulator acc(&eval);
    acc.Rebind(&eval);
    EvaluateServiceRec(tree, tree->root(), eval, grid, full, &acc, stats);
    return acc.Total();
  }
  return EvaluateServiceRec(tree, tree->root(), eval, grid, full, nullptr,
                            stats);
}

namespace {

// Served-set gathering visitor: unions each candidate's ServeDetail.
void CollectServedRec(TQTree* tree, int32_t idx, const ServiceEvaluator& eval,
                      const StopGrid& grid, const Component& comp,
                      std::unordered_map<uint32_t, DynamicBitset>* out,
                      QueryStats* stats) {
  if (comp.empty()) return;
  if (stats != nullptr) stats->nodes_visited++;
  const TQNode& node = tree->node(idx);
  if (!node.IsLeaf()) {
    for (int q = 0; q < 4; ++q) {
      const int32_t child = node.first_child + q;
      if (tree->node(child).sub <= 0.0) continue;
      const Component child_comp =
          ClipComponent(grid, comp, tree->node(child).rect);
      CollectServedRec(tree, child, eval, grid, child_comp, out, stats);
    }
  }
  if (node.entries.empty()) return;
  // Lemma 1: a user whose source alone is served still matters for combined
  // coverage, so the AND filter (exact for SO evaluation under Scenario 1)
  // must weaken to OR when gathering served sets.
  std::optional<ZPruneMode> zmode_override;
  if (tree->prune_mode() == ZPruneMode::kStartEnd &&
      eval.model().scenario == Scenario::kEndpoints) {
    zmode_override = ZPruneMode::kStartOrEnd;
  }
  static thread_local std::vector<Point> comp_stops;
  comp_stops.clear();
  for (const uint32_t si : comp) comp_stops.push_back(grid.stops()[si]);
  const ZIndex::Corridor corridor{
      comp_stops, grid.psi(),
      Rect::BoundingBox(comp_stops).Expanded(grid.psi())};
  VisitCandidates(
      tree, idx, corridor,
      [&](const TrajEntry& e) {
        auto mask_for = [&](uint32_t user) -> DynamicBitset& {
          auto it = out->find(user);
          if (it == out->end()) {
            it = out->emplace(user, DynamicBitset(eval.MaskSize(user))).first;
          }
          return it->second;
        };
        if (e.IsWhole()) {
          ServeDetail d = eval.EvaluateDetail(e.traj_id, grid);
          if (d.Any()) mask_for(e.traj_id).UnionWith(d.mask);
          return;
        }
        if (eval.model().scenario == Scenario::kLength) {
          if (grid.Serves(e.start) && grid.Serves(e.end)) {
            mask_for(e.traj_id).Set(e.seg_index);
          }
        } else {
          const bool s = grid.Serves(e.start);
          const bool t = grid.Serves(e.end);
          if (s || t) {
            DynamicBitset& m = mask_for(e.traj_id);
            if (s) m.Set(e.seg_index);
            if (t) m.Set(e.seg_index + 1);
          }
        }
      },
      stats, zmode_override);
}

}  // namespace

void CollectServedTQ(TQTree* tree, const ServiceEvaluator& eval,
                     const StopGrid& grid,
                     std::unordered_map<uint32_t, DynamicBitset>* out,
                     QueryStats* stats) {
  const Component full = FullComponent(grid);
  CollectServedRec(tree, tree->root(), eval, grid, full, out, stats);
}

}  // namespace tq
