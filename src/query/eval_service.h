// Algorithms 1 & 2 of the paper: divide-and-conquer service-value evaluation
// over the TQ-tree, with the two-phase pruning (q-node pruning + zReduce).
#ifndef TQCOVER_QUERY_EVAL_SERVICE_H_
#define TQCOVER_QUERY_EVAL_SERVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/dynamic_bitset.h"
#include "query/query_stats.h"
#include "service/accumulator.h"
#include "service/evaluator.h"
#include "service/stop_grid.h"
#include "tqtree/tq_tree.h"

namespace tq {

/// A facility component: indices of the facility's stop points that are
/// relevant to the current subspace (the paper's f, f_c after division).
using Component = std::vector<uint32_t>;

/// Component containing every stop of the facility.
Component FullComponent(const StopGrid& grid);

/// The paper's intersectingComponents: stops of `comp` whose ψ-disk
/// intersects `rect` (i.e. that can serve some point inside `rect`).
Component ClipComponent(const StopGrid& grid, const Component& comp,
                        const Rect& rect);

/// EMBR of the component: MBR of its stops expanded by ψ (§IV-A).
Rect ComponentEmbr(const StopGrid& grid, const Component& comp);

/// Materialises the component's stop coordinates (the corridor zReduce
/// covers cells against).
std::vector<Point> ComponentStops(const StopGrid& grid,
                                  const Component& comp);

/// Algorithm 2 (evaluateNodeTrajectories): service contribution of node
/// `idx`'s own list UL for the facility component `comp`.
///
/// Whole-trajectory trees return the summed S(u, f) directly (each user is
/// stored exactly once, so summation is safe). Segmented trees mark served
/// points/segments into `acc` (deduplication across nodes) and return 0;
/// read the running total from the accumulator.
double EvaluateNodeList(TQTree* tree, int32_t idx,
                        const ServiceEvaluator& eval, const StopGrid& grid,
                        const Component& comp, ServiceAccumulator* acc,
                        QueryStats* stats);

/// Algorithm 1 (evaluateService): SO(U, f) by recursive division of the
/// facility over the TQ-tree, starting from the root.
double EvaluateServiceTQ(TQTree* tree, const ServiceEvaluator& eval,
                         const StopGrid& grid, QueryStats* stats = nullptr);

/// Same traversal, but collects each served user's ServeDetail mask instead
/// of a value (the per-facility served sets that MaxkCovRST consumes).
void CollectServedTQ(TQTree* tree, const ServiceEvaluator& eval,
                     const StopGrid& grid,
                     std::unordered_map<uint32_t, DynamicBitset>* out,
                     QueryStats* stats = nullptr);

}  // namespace tq

#endif  // TQCOVER_QUERY_EVAL_SERVICE_H_
