#include "query/baseline.h"

#include <algorithm>
#include <unordered_set>

namespace tq {

namespace {

// The paper's gather: one range query over the facility EMBR; every user
// with a point inside becomes a candidate. Templated over the point index
// (quadtree or R-tree) — both expose RangeQuery.
template <typename Index>
std::vector<uint32_t> GatherCandidates(const Index& index,
                                       const StopGrid& grid,
                                       QueryStats* stats) {
  std::unordered_set<uint32_t> seen;
  const std::vector<PointEntry> hits = index.RangeQuery(grid.embr());
  if (stats != nullptr) stats->entries_scanned += hits.size();
  for (const PointEntry& e : hits) seen.insert(e.traj_id);
  std::vector<uint32_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

// Near-minimal gather: ψ-disk probes around every stop.
std::vector<uint32_t> GatherCandidatesDisks(const PointQuadtree& index,
                                            const StopGrid& grid,
                                            QueryStats* stats) {
  std::unordered_set<uint32_t> seen;
  for (const Point& stop : grid.stops()) {
    index.ForEachInDisk(stop, grid.psi(), [&](const PointEntry& e) {
      if (stats != nullptr) stats->entries_scanned++;
      seen.insert(e.traj_id);
    });
  }
  std::vector<uint32_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

double ScoreCandidates(const std::vector<uint32_t>& candidates,
                       const ServiceEvaluator& eval, const StopGrid& grid,
                       QueryStats* stats) {
  double so = 0.0;
  for (const uint32_t user : candidates) {
    if (stats != nullptr) stats->exact_checks++;
    so += eval.Evaluate(user, grid);
  }
  return so;
}

}  // namespace

double EvaluateServiceBaseline(const PointQuadtree& index,
                               const ServiceEvaluator& eval,
                               const StopGrid& grid, QueryStats* stats) {
  return ScoreCandidates(GatherCandidates(index, grid, stats), eval, grid,
                         stats);
}

double EvaluateServiceBaselineDisks(const PointQuadtree& index,
                                    const ServiceEvaluator& eval,
                                    const StopGrid& grid,
                                    QueryStats* stats) {
  return ScoreCandidates(GatherCandidatesDisks(index, grid, stats), eval,
                         grid, stats);
}

TopKResult TopKFacilitiesBaseline(const PointQuadtree& index,
                                  const FacilityCatalog& catalog,
                                  const ServiceEvaluator& eval, size_t k) {
  TopKResult result;
  std::vector<RankedFacility> all(catalog.size());
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    all[f].id = f;
    all[f].value =
        EvaluateServiceBaseline(index, eval, catalog.grid(f), &result.stats);
  }
  std::sort(all.begin(), all.end(),
            [](const RankedFacility& a, const RankedFacility& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.id < b.id;
            });
  all.resize(std::min(k, all.size()));
  result.ranked = std::move(all);
  return result;
}

double EvaluateServiceBaselineRTree(const PointRTree& index,
                                    const ServiceEvaluator& eval,
                                    const StopGrid& grid, QueryStats* stats) {
  return ScoreCandidates(GatherCandidates(index, grid, stats), eval, grid,
                         stats);
}

TopKResult TopKFacilitiesBaselineRTree(const PointRTree& index,
                                       const FacilityCatalog& catalog,
                                       const ServiceEvaluator& eval,
                                       size_t k) {
  TopKResult result;
  std::vector<RankedFacility> all(catalog.size());
  for (uint32_t f = 0; f < catalog.size(); ++f) {
    all[f].id = f;
    all[f].value = EvaluateServiceBaselineRTree(index, eval, catalog.grid(f),
                                                &result.stats);
  }
  std::sort(all.begin(), all.end(),
            [](const RankedFacility& a, const RankedFacility& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.id < b.id;
            });
  all.resize(std::min(k, all.size()));
  result.ranked = std::move(all);
  return result;
}

void CollectServedBaseline(const PointQuadtree& index,
                           const ServiceEvaluator& eval, const StopGrid& grid,
                           std::unordered_map<uint32_t, DynamicBitset>* out) {
  const std::vector<uint32_t> candidates =
      GatherCandidates(index, grid, nullptr);
  for (const uint32_t user : candidates) {
    ServeDetail d = eval.EvaluateDetail(user, grid);
    if (!d.Any()) continue;
    auto it = out->find(user);
    if (it == out->end()) {
      out->emplace(user, std::move(d.mask));
    } else {
      it->second.UnionWith(d.mask);
    }
  }
}

}  // namespace tq
