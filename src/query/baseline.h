// The paper's baseline (BL, §VI): user trajectory points are indexed in a
// traditional point quadtree; per facility, candidate users are gathered by
// ψ-disk range queries around every stop, then scored exactly.
#ifndef TQCOVER_QUERY_BASELINE_H_
#define TQCOVER_QUERY_BASELINE_H_

#include <unordered_map>

#include "common/dynamic_bitset.h"
#include "quadtree/point_quadtree.h"
#include "query/query_stats.h"
#include "query/topk.h"
#include "rtree/point_rtree.h"
#include "service/evaluator.h"
#include "service/facility_index.h"

namespace tq {

/// SO(U, f) the paper's baseline way: ONE range query over the facility's
/// EMBR retrieves every user point in the serving area's bounding box, then
/// each touched user is scored exactly. For long routes the EMBR covers a
/// large fraction of the city — this is precisely why the paper's BL is
/// orders of magnitude slower than the TQ-tree.
double EvaluateServiceBaseline(const PointQuadtree& index,
                               const ServiceEvaluator& eval,
                               const StopGrid& grid,
                               QueryStats* stats = nullptr);

/// A stronger baseline than the paper's: per-stop ψ-disk queries instead of
/// one EMBR rectangle, so the gathered candidate set is near-minimal. Used
/// by the ablation bench to show how much of BL's deficit is the coarse
/// range predicate vs the index itself.
double EvaluateServiceBaselineDisks(const PointQuadtree& index,
                                    const ServiceEvaluator& eval,
                                    const StopGrid& grid,
                                    QueryStats* stats = nullptr);

/// kMaxRRST the baseline way: evaluate every facility, sort, take k. Runtime
/// is intentionally independent of k (the paper's Fig. 7(b) flat line).
TopKResult TopKFacilitiesBaseline(const PointQuadtree& index,
                                  const FacilityCatalog& catalog,
                                  const ServiceEvaluator& eval, size_t k);

/// Served-user detail masks, baseline way (for MaxkCovRST's G-BL).
void CollectServedBaseline(const PointQuadtree& index,
                           const ServiceEvaluator& eval, const StopGrid& grid,
                           std::unordered_map<uint32_t, DynamicBitset>* out);

/// The same baseline on the R-tree substrate (the index family used by the
/// trajectory-search related work, §VII). Answers are identical to the
/// quadtree baseline; only the traversal differs.
double EvaluateServiceBaselineRTree(const PointRTree& index,
                                    const ServiceEvaluator& eval,
                                    const StopGrid& grid,
                                    QueryStats* stats = nullptr);

/// kMaxRRST over the R-tree baseline.
TopKResult TopKFacilitiesBaselineRTree(const PointRTree& index,
                                       const FacilityCatalog& catalog,
                                       const ServiceEvaluator& eval,
                                       size_t k);

}  // namespace tq

#endif  // TQCOVER_QUERY_BASELINE_H_
