#include "query/topk.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "common/check.h"

namespace tq {

namespace {

// One ⟨q-node, facility-component⟩ pair of a state's qflist. `h_share` is
// the pair's contribution to the state's optimistic bound hserve;
// `local_only` marks ancestor pairs whose children must not be expanded
// (their subtrees are already covered by the main pair).
struct PairQF {
  int32_t node = 0;
  Component comp;
  double h_share = 0.0;
  bool local_only = false;
};

// Exploration state of one facility (the paper's S).
struct FacState {
  FacilityId id = 0;
  double aserve = 0.0;
  double hserve = 0.0;
  std::vector<PairQF> qflist;
  std::unique_ptr<ServiceAccumulator> acc;  // segmented trees only

  bool Completed() const { return qflist.empty(); }
  double fserve() const { return aserve + hserve; }
};

// Max-heap keyed by fserve; ties broken by facility id so results are
// deterministic across runs.
struct HeapItem {
  double fserve = 0.0;
  uint32_t state_index = 0;
  FacilityId id = 0;
};
struct HeapLess {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    if (a.fserve != b.fserve) return a.fserve < b.fserve;
    return a.id > b.id;  // smaller id pops first on ties
  }
};

// Algorithm 4: expand every pair of `s` one level; returns updated state.
void RelaxState(TQTree* tree, const ServiceEvaluator& eval,
                const StopGrid& grid, FacState* s, QueryStats* stats) {
  if (stats != nullptr) stats->relax_rounds++;
  std::vector<PairQF> next;
  const bool segmented = tree->options().mode == TrajMode::kSegmented;
  for (PairQF& pair : s->qflist) {
    s->hserve -= pair.h_share;
    const double gained = EvaluateNodeList(tree, pair.node, eval, grid,
                                           pair.comp, s->acc.get(), stats);
    if (!segmented) s->aserve += gained;
    const TQNode& node = tree->node(pair.node);
    if (pair.local_only || node.IsLeaf()) continue;
    for (int q = 0; q < 4; ++q) {
      const int32_t child = node.first_child + q;
      const TQNode& cn = tree->node(child);
      if (cn.sub <= 0.0) continue;
      Component child_comp = ClipComponent(grid, pair.comp, cn.rect);
      if (child_comp.empty()) continue;
      next.push_back(PairQF{child, std::move(child_comp), cn.sub, false});
      s->hserve += cn.sub;
    }
  }
  if (segmented) s->aserve = s->acc->Total();
  s->qflist = std::move(next);
}

}  // namespace

TopKResult TopKFacilitiesTQ(TQTree* tree, const FacilityCatalog& catalog,
                            const ServiceEvaluator& eval, size_t k) {
  TopKResult result;
  const size_t num_fac = catalog.size();
  k = std::min(k, num_fac);
  if (k == 0) return result;

  const bool segmented = tree->options().mode == TrajMode::kSegmented;
  // Ancestor inter-node lists can only be skipped when a unit stored at a
  // proper ancestor of ContainingNode(EMBR) provably scores zero. A unit is
  // stored at an ancestor exactly when its MBR is not contained in that
  // node's rect, so its MBR is not contained in the EMBR either. Two
  // conditions must then hold together:
  //   * kStartEnd pruning — only units with BOTH endpoints inside the EMBR
  //     can score at all (no partial credit), and
  //   * two-point units — the unit MBR is the endpoint MBR, so "both
  //     endpoints inside the EMBR" implies "MBR inside the EMBR".
  // Whole multipoint trajectories under the endpoints model satisfy the
  // first but not the second: middle points inflate the stored MBR beyond
  // the served endpoints, parking served units at ancestors.
  const bool include_ancestors =
      !(tree->two_point_units() &&
        tree->prune_mode() == ZPruneMode::kStartEnd);

  std::vector<FacState> states(num_fac);
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapLess> pq;
  for (uint32_t f = 0; f < num_fac; ++f) {
    FacState& s = states[f];
    s.id = f;
    if (segmented) s.acc = std::make_unique<ServiceAccumulator>(&eval);
    const StopGrid& grid = catalog.grid(f);
    const int32_t q0 = tree->ContainingNode(grid.embr());
    const Component full = FullComponent(grid);
    if (include_ancestors) {
      const std::vector<int32_t> path = tree->PathTo(q0);
      for (size_t i = 0; i + 1 < path.size(); ++i) {  // exclude q0 itself
        const TQNode& a = tree->node(path[i]);
        if (a.entries.empty()) continue;
        s.qflist.push_back(PairQF{path[i], full, a.local_ub, true});
        s.hserve += a.local_ub;
      }
    }
    s.qflist.push_back(PairQF{q0, full, tree->node(q0).sub, false});
    s.hserve += tree->node(q0).sub;
    pq.push(HeapItem{s.fserve(), f, s.id});
  }

  while (!pq.empty() && result.ranked.size() < k) {
    const HeapItem top = pq.top();
    pq.pop();
    result.stats.heap_pops++;
    FacState& s = states[top.state_index];
    if (s.Completed()) {
      result.ranked.push_back(RankedFacility{s.id, s.aserve});
      continue;
    }
    RelaxState(tree, eval, catalog.grid(s.id), &s, &result.stats);
    pq.push(HeapItem{s.fserve(), top.state_index, s.id});
  }
  return result;
}

TopKResult TopKFacilitiesExhaustiveTQ(TQTree* tree,
                                      const FacilityCatalog& catalog,
                                      const ServiceEvaluator& eval,
                                      size_t k) {
  TopKResult result;
  const size_t num_fac = catalog.size();
  std::vector<RankedFacility> all(num_fac);
  for (uint32_t f = 0; f < num_fac; ++f) {
    all[f].id = f;
    all[f].value =
        EvaluateServiceTQ(tree, eval, catalog.grid(f), &result.stats);
  }
  std::sort(all.begin(), all.end(), RankedBefore);
  k = std::min(k, all.size());
  all.resize(k);
  result.ranked = std::move(all);
  return result;
}

}  // namespace tq
