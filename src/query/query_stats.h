// Instrumentation counters shared by all query algorithms (used by the
// ablation benches and by tests asserting that pruning actually prunes).
#ifndef TQCOVER_QUERY_QUERY_STATS_H_
#define TQCOVER_QUERY_QUERY_STATS_H_

#include <cstddef>

#include "tqtree/zindex.h"

namespace tq {

/// Counters accumulated over one query. All fields are additive.
struct QueryStats {
  size_t nodes_visited = 0;      // q-nodes touched by the recursion
  size_t lists_evaluated = 0;    // node lists inspected
  size_t entries_scanned = 0;    // entries touched in node lists
  size_t exact_checks = 0;       // entries surviving pruning
  size_t heap_pops = 0;          // best-first top-k pops
  size_t relax_rounds = 0;       // relaxState invocations
  ZIndex::ReduceStats zreduce;

  void Add(const QueryStats& o) {
    nodes_visited += o.nodes_visited;
    lists_evaluated += o.lists_evaluated;
    entries_scanned += o.entries_scanned;
    exact_checks += o.exact_checks;
    heap_pops += o.heap_pops;
    relax_rounds += o.relax_rounds;
    zreduce.buckets_total += o.zreduce.buckets_total;
    zreduce.buckets_visited += o.zreduce.buckets_visited;
    zreduce.entries_scanned += o.zreduce.entries_scanned;
    zreduce.candidates += o.zreduce.candidates;
  }
};

}  // namespace tq

#endif  // TQCOVER_QUERY_QUERY_STATS_H_
