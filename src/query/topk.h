// Algorithms 3 & 4 of the paper: best-first top-k facility search
// (TopKFacilities / relaxState) over the TQ-tree, plus an exhaustive variant
// used by tests and by the MaxkCovRST candidate-pool step.
#ifndef TQCOVER_QUERY_TOPK_H_
#define TQCOVER_QUERY_TOPK_H_

#include <vector>

#include "query/eval_service.h"
#include "service/facility_index.h"

namespace tq {

/// One ranked answer.
struct RankedFacility {
  FacilityId id = 0;
  double value = 0.0;
};

/// THE ranking order of every kMaxRRST surface (exhaustive sort, best-first
/// completion, sharded gather merge): value descending, exact ties broken by
/// ascending facility id for determinism.
inline bool RankedBefore(const RankedFacility& a, const RankedFacility& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.id < b.id;
}

/// Result of a kMaxRRST query: `ranked` holds k facilities in descending
/// service-value order (ties broken by facility id for determinism).
struct TopKResult {
  std::vector<RankedFacility> ranked;
  QueryStats stats;
};

/// kMaxRRST via the paper's best-first strategy: one exploration state per
/// facility, keyed by fserve = aserve + hserve; the state with the largest
/// upper bound is relaxed one tree level at a time (Algorithm 4) until k
/// facilities complete (Algorithm 3).
TopKResult TopKFacilitiesTQ(TQTree* tree, const FacilityCatalog& catalog,
                            const ServiceEvaluator& eval, size_t k);

/// kMaxRRST by exhaustively evaluating SO(U, f) for every facility with
/// Algorithm 1, then sorting. Same answers as the best-first search; used as
/// a cross-check and wherever all service values are needed anyway.
TopKResult TopKFacilitiesExhaustiveTQ(TQTree* tree,
                                      const FacilityCatalog& catalog,
                                      const ServiceEvaluator& eval, size_t k);

}  // namespace tq

#endif  // TQCOVER_QUERY_TOPK_H_
