#include "runtime/engine.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "query/eval_service.h"

namespace tq::runtime {

Engine::Engine(TrajectorySet users, TrajectorySet facilities,
               EngineOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      pool_(options.num_threads, &metrics_) {
  auto users_ptr = std::make_shared<TrajectorySet>(std::move(users));
  auto facilities_ptr =
      std::make_shared<TrajectorySet>(std::move(facilities));
  auto tree = std::make_shared<TQTree>(users_ptr.get(), options_.tree);
  tree->BuildAllZIndexes();  // freeze: queries on a published tree never write
  auto snap = std::make_shared<Snapshot>();
  snap->version = 1;
  snap->users = users_ptr;
  snap->facilities = facilities_ptr;
  snap->tree = std::move(tree);
  snap->eval = std::make_shared<ServiceEvaluator>(users_ptr.get(),
                                                  options_.tree.model);
  snap->catalog = std::make_shared<FacilityCatalog>(facilities_ptr.get(),
                                                    options_.tree.model.psi);
  Publish(std::move(snap));
}

Engine::~Engine() = default;  // pool_ is the last member: joins first

void Engine::Publish(SnapshotPtr snap) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  metrics_.AddSnapshotPublished();
}

SnapshotPtr Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::future<QueryResponse> Engine::Submit(QueryRequest request) {
  // Submit-to-completion latency (includes pool queue wait, which the pool
  // also tracks separately as kQueueWait). The clock read is gated on the
  // recording toggle so disabling observability removes the whole cost.
  const uint64_t t0 = metrics_.latency_recording() ? NowNs() : 0;
  return pool_.Submit([this, request, t0]() {
    QueryResponse response = Execute(request);
    if (t0 != 0) {
      metrics_.RecordLatency(request.kind == QueryKind::kTopK
                                 ? OpFamily::kTopKQuery
                                 : OpFamily::kServiceQuery,
                             NowNs() - t0);
    }
    return response;
  });
}

std::vector<QueryResponse> Engine::RunBatch(
    const std::vector<QueryRequest>& batch) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const QueryRequest& request : batch) futures.push_back(Submit(request));
  std::vector<QueryResponse> responses;
  responses.reserve(batch.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

QueryResponse Engine::Execute(const QueryRequest& request) {
  const SnapshotPtr snap = snapshot();
  QueryResponse response;
  response.kind = request.kind;
  response.snapshot_version = snap->version;
  metrics_.AddQuery(request.kind == QueryKind::kTopK);

  if (request.kind == QueryKind::kTopK) {
    // Gathered top-k answers are memoised by (k, ψ, snapshot version) —
    // the unsharded engine's "generation vector" is just the version.
    const ResultCache::TopKKey key{
        request.k, PsiBits(snap->catalog->psi()), {snap->version}};
    if (cache_.GetTopK(key, &response.ranked)) {
      response.cache_hit = true;
      metrics_.AddCacheHit();
      return response;
    }
    TopKResult top =
        TopKFacilitiesTQ(snap->tree.get(), *snap->catalog, *snap->eval,
                         request.k);
    response.ranked = std::move(top.ranked);
    response.stats = top.stats;
    if (cache_.enabled()) {
      metrics_.AddCacheMiss();
      metrics_.AddCacheEvictions(cache_.PutTopK(key, response.ranked));
    }
    metrics_.RecordQueryStats(response.stats);
    return response;
  }

  if (request.facility >= snap->catalog->size()) {
    response.status = Status::OutOfRange(
        "facility id " + std::to_string(request.facility) +
        " out of range (catalog has " +
        std::to_string(snap->catalog->size()) + ")");
    return response;
  }
  const ResultCache::Key key{request.facility,
                             PsiBits(snap->catalog->psi()), snap->version};
  if (cache_.Get(key, &response.value)) {
    response.cache_hit = true;
    metrics_.AddCacheHit();
    return response;
  }
  response.value = EvaluateServiceTQ(snap->tree.get(), *snap->eval,
                                     snap->catalog->grid(request.facility),
                                     &response.stats);
  if (cache_.enabled()) {
    metrics_.AddCacheMiss();
    metrics_.AddCacheEvictions(cache_.Put(key, response.value));
  }
  metrics_.RecordQueryStats(response.stats);
  return response;
}

std::vector<uint32_t> Engine::ApplyUpdates(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const auto publish_start = std::chrono::steady_clock::now();
  const SnapshotPtr cur = snapshot();

  // Copy-on-write: the published user set is immutable, so appends go to a
  // private copy. Trajectory ids are stable across the copy (append-only).
  auto users = std::make_shared<TrajectorySet>(*cur->users);
  std::vector<uint32_t> new_ids;
  new_ids.reserve(batch.inserts.size());
  for (const std::vector<Point>& traj : batch.inserts) {
    new_ids.push_back(users->Add(traj));
  }

  // Persistent path copy: the fork shares every node page (and built
  // z-index) with the published tree; applying this batch's deltas copies
  // only the pages the touched root-to-leaf paths live in, so publish cost
  // is O(batch × depth), not O(tree).
  std::shared_ptr<TQTree> tree = cur->tree->Fork(users.get());
  for (const uint32_t id : new_ids) tree->Insert(id);
  uint64_t removed = 0;
  for (const uint32_t id : batch.removes) {
    if (tree->Remove(id)) ++removed;
  }
  tree->BuildAllZIndexes();  // freeze: rebuilds only the dirtied z-indexes

  const CowStats cow = tree->cow_stats();
  auto snap = std::make_shared<Snapshot>();
  snap->version = cur->version + 1;
  snap->users = users;
  snap->facilities = cur->facilities;
  snap->tree = std::move(tree);
  snap->eval =
      std::make_shared<ServiceEvaluator>(users.get(), options_.tree.model);
  snap->catalog = cur->catalog;
  Publish(std::move(snap));

  metrics_.AddInserted(new_ids.size());
  metrics_.AddRemoved(removed);
  metrics_.AddCacheInvalidated(cache_.InvalidateBefore(cur->version + 1));
  const auto publish_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - publish_start);
  metrics_.AddPublishCost(cow.nodes_copied, cow.pages_shared(),
                          static_cast<uint64_t>(publish_ns.count()));
  metrics_.RecordLatency(OpFamily::kPublish,
                         static_cast<uint64_t>(publish_ns.count()));
  return new_ids;
}

}  // namespace tq::runtime
