// Lock-free operational counters for the concurrent query runtime.
//
// One MetricsRegistry lives inside each runtime::Engine; every worker thread
// bumps the atomics as it executes queries, and the per-query QueryStats
// instrumentation (nodes visited, entries scanned, ...) is folded in through
// RecordQueryStats so serving-side dashboards see the same counters the
// ablation benches do. Read() takes a consistent-enough snapshot for
// monitoring (each field is individually atomic; cross-field skew of a few
// in-flight queries is acceptable by design).
#ifndef TQCOVER_RUNTIME_METRICS_H_
#define TQCOVER_RUNTIME_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "query/query_stats.h"

namespace tq::runtime {

/// Plain-value snapshot of a MetricsRegistry, safe to copy and format.
struct MetricsView {
  uint64_t queries_total = 0;
  uint64_t service_queries = 0;
  uint64_t topk_queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidated = 0;
  uint64_t snapshots_published = 0;
  /// Per-shard scatter tasks executed by the sharded engine (one query fans
  /// out into num_shards of these); 0 on the unsharded engine.
  uint64_t shard_tasks = 0;
  /// Individual shard snapshots republished by writers (a single publish
  /// touching 2 of 8 shards counts 2); 0 on the unsharded engine.
  uint64_t shard_publishes = 0;
  uint64_t trajectories_inserted = 0;
  uint64_t trajectories_removed = 0;
  /// Write-path copy-on-write accounting (persistent path-copying
  /// snapshots): nodes physically duplicated by forked publishes, node
  /// pages still shared with the previous snapshot at publish time, and
  /// total wall time spent inside ApplyUpdates (fork + deltas + freeze +
  /// swap), in nanoseconds. All 0 until the first post-construction publish.
  uint64_t nodes_copied = 0;
  uint64_t pages_shared = 0;
  uint64_t publish_ns = 0;
  /// Bound-and-prune top-k accounting (sharded engine): per-shard exact
  /// facility evaluations the pruned protocol performed vs. the ones the
  /// bound let it skip (exhaustive sweep = facilities × shards evaluations,
  /// facilities_pruned = 0), and coordinator rounds run (1 when round 1
  /// already refined every candidate, else 2). All 0 on the unsharded
  /// engine and for exhaustive-mode gathers.
  uint64_t facilities_evaluated = 0;
  uint64_t facilities_pruned = 0;
  uint64_t prune_rounds = 0;
  uint64_t nodes_visited = 0;
  uint64_t entries_scanned = 0;
  uint64_t exact_checks = 0;
  uint64_t heap_pops = 0;
  /// Network front-end accounting (src/net/server.h; all 0 when the engine
  /// is driven in-process): connections accepted, request frames decoded
  /// off the wire, update frames merged into an already-pending publish
  /// (a flush combining m frames adds m − 1), and payload bytes received /
  /// sent including the 4-byte frame headers.
  uint64_t net_connections = 0;
  uint64_t net_requests_decoded = 0;
  uint64_t net_batches_coalesced = 0;
  uint64_t net_bytes_in = 0;
  uint64_t net_bytes_out = 0;

  double CacheHitRate() const {
    const uint64_t looked = cache_hits + cache_misses;
    return looked == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(looked);
  }

  /// One-object JSON rendering (keys match the field names).
  std::string ToJson() const {
    std::string s = "{";
    auto field = [&s](const char* k, uint64_t v) {
      if (s.size() > 1) s += ",";
      s += "\"";
      s += k;
      s += "\":";
      s += std::to_string(v);
    };
    field("queries_total", queries_total);
    field("service_queries", service_queries);
    field("topk_queries", topk_queries);
    field("cache_hits", cache_hits);
    field("cache_misses", cache_misses);
    field("cache_evictions", cache_evictions);
    field("cache_invalidated", cache_invalidated);
    field("snapshots_published", snapshots_published);
    field("shard_tasks", shard_tasks);
    field("shard_publishes", shard_publishes);
    field("trajectories_inserted", trajectories_inserted);
    field("trajectories_removed", trajectories_removed);
    field("nodes_copied", nodes_copied);
    field("pages_shared", pages_shared);
    field("publish_ns", publish_ns);
    field("facilities_evaluated", facilities_evaluated);
    field("facilities_pruned", facilities_pruned);
    field("prune_rounds", prune_rounds);
    field("nodes_visited", nodes_visited);
    field("entries_scanned", entries_scanned);
    field("exact_checks", exact_checks);
    field("heap_pops", heap_pops);
    field("net_connections", net_connections);
    field("net_requests_decoded", net_requests_decoded);
    field("net_batches_coalesced", net_batches_coalesced);
    field("net_bytes_in", net_bytes_in);
    field("net_bytes_out", net_bytes_out);
    s += "}";
    return s;
  }
};

/// Thread-safe counter registry. All mutators are wait-free relaxed atomic
/// increments — these sit on the query hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddQuery(bool topk) {
    queries_total_.fetch_add(1, std::memory_order_relaxed);
    (topk ? topk_queries_ : service_queries_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheEvictions(uint64_t n) {
    if (n) cache_evictions_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCacheInvalidated(uint64_t n) {
    if (n) cache_invalidated_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSnapshotPublished() {
    snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShardTask() {
    shard_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShardPublishes(uint64_t n) {
    if (n) shard_publishes_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddInserted(uint64_t n) {
    if (n) trajectories_inserted_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddRemoved(uint64_t n) {
    if (n) trajectories_removed_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Folds one forked publish's copy-on-write cost into the registry.
  void AddPublishCost(uint64_t nodes_copied, uint64_t pages_shared,
                      uint64_t ns) {
    nodes_copied_.fetch_add(nodes_copied, std::memory_order_relaxed);
    pages_shared_.fetch_add(pages_shared, std::memory_order_relaxed);
    publish_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Folds one pruned top-k gather's work accounting into the registry.
  void AddTopKPruneWork(uint64_t evaluated, uint64_t pruned,
                        uint64_t rounds) {
    facilities_evaluated_.fetch_add(evaluated, std::memory_order_relaxed);
    facilities_pruned_.fetch_add(pruned, std::memory_order_relaxed);
    prune_rounds_.fetch_add(rounds, std::memory_order_relaxed);
  }

  /// Network front-end accounting (bumped by net::NetServer only).
  void AddNetConnection() {
    net_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddNetRequestsDecoded(uint64_t n) {
    if (n) net_requests_decoded_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBatchesCoalesced(uint64_t n) {
    if (n) net_batches_coalesced_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBytesIn(uint64_t n) {
    if (n) net_bytes_in_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBytesOut(uint64_t n) {
    if (n) net_bytes_out_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Folds one query's traversal counters into the registry.
  void RecordQueryStats(const QueryStats& s) {
    nodes_visited_.fetch_add(s.nodes_visited, std::memory_order_relaxed);
    entries_scanned_.fetch_add(s.entries_scanned, std::memory_order_relaxed);
    exact_checks_.fetch_add(s.exact_checks, std::memory_order_relaxed);
    heap_pops_.fetch_add(s.heap_pops, std::memory_order_relaxed);
  }

  MetricsView Read() const {
    MetricsView v;
    v.queries_total = queries_total_.load(std::memory_order_relaxed);
    v.service_queries = service_queries_.load(std::memory_order_relaxed);
    v.topk_queries = topk_queries_.load(std::memory_order_relaxed);
    v.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    v.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    v.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
    v.cache_invalidated = cache_invalidated_.load(std::memory_order_relaxed);
    v.snapshots_published =
        snapshots_published_.load(std::memory_order_relaxed);
    v.shard_tasks = shard_tasks_.load(std::memory_order_relaxed);
    v.shard_publishes = shard_publishes_.load(std::memory_order_relaxed);
    v.trajectories_inserted =
        trajectories_inserted_.load(std::memory_order_relaxed);
    v.trajectories_removed =
        trajectories_removed_.load(std::memory_order_relaxed);
    v.nodes_copied = nodes_copied_.load(std::memory_order_relaxed);
    v.pages_shared = pages_shared_.load(std::memory_order_relaxed);
    v.publish_ns = publish_ns_.load(std::memory_order_relaxed);
    v.facilities_evaluated =
        facilities_evaluated_.load(std::memory_order_relaxed);
    v.facilities_pruned = facilities_pruned_.load(std::memory_order_relaxed);
    v.prune_rounds = prune_rounds_.load(std::memory_order_relaxed);
    v.nodes_visited = nodes_visited_.load(std::memory_order_relaxed);
    v.entries_scanned = entries_scanned_.load(std::memory_order_relaxed);
    v.exact_checks = exact_checks_.load(std::memory_order_relaxed);
    v.heap_pops = heap_pops_.load(std::memory_order_relaxed);
    v.net_connections = net_connections_.load(std::memory_order_relaxed);
    v.net_requests_decoded =
        net_requests_decoded_.load(std::memory_order_relaxed);
    v.net_batches_coalesced =
        net_batches_coalesced_.load(std::memory_order_relaxed);
    v.net_bytes_in = net_bytes_in_.load(std::memory_order_relaxed);
    v.net_bytes_out = net_bytes_out_.load(std::memory_order_relaxed);
    return v;
  }

 private:
  std::atomic<uint64_t> queries_total_{0};
  std::atomic<uint64_t> service_queries_{0};
  std::atomic<uint64_t> topk_queries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> cache_evictions_{0};
  std::atomic<uint64_t> cache_invalidated_{0};
  std::atomic<uint64_t> snapshots_published_{0};
  std::atomic<uint64_t> shard_tasks_{0};
  std::atomic<uint64_t> shard_publishes_{0};
  std::atomic<uint64_t> trajectories_inserted_{0};
  std::atomic<uint64_t> trajectories_removed_{0};
  std::atomic<uint64_t> nodes_copied_{0};
  std::atomic<uint64_t> pages_shared_{0};
  std::atomic<uint64_t> publish_ns_{0};
  std::atomic<uint64_t> facilities_evaluated_{0};
  std::atomic<uint64_t> facilities_pruned_{0};
  std::atomic<uint64_t> prune_rounds_{0};
  std::atomic<uint64_t> nodes_visited_{0};
  std::atomic<uint64_t> entries_scanned_{0};
  std::atomic<uint64_t> exact_checks_{0};
  std::atomic<uint64_t> heap_pops_{0};
  std::atomic<uint64_t> net_connections_{0};
  std::atomic<uint64_t> net_requests_decoded_{0};
  std::atomic<uint64_t> net_batches_coalesced_{0};
  std::atomic<uint64_t> net_bytes_in_{0};
  std::atomic<uint64_t> net_bytes_out_{0};
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_METRICS_H_
