// Lock-free operational counters + latency histograms for the query runtime.
//
// One MetricsRegistry lives inside each runtime::Engine; every worker thread
// bumps the atomics as it executes queries, and the per-query QueryStats
// instrumentation (nodes visited, entries scanned, ...) is folded in through
// RecordQueryStats so serving-side dashboards see the same counters the
// ablation benches do. Read() takes a consistent-enough snapshot for
// monitoring (each field is individually atomic; cross-field skew of a few
// in-flight queries is acceptable by design).
//
// The counter set is declared ONCE, in the TQ_METRICS_COUNTERS X-macro
// below; the MetricsView fields, the registry atomics, Read(), ToJson()
// and ForEachCounter() are all generated from it, so the JSON key set, the
// stats wire frame, and the struct can never drift apart (the drift-guard
// test in tests/test_observability.cc holds by construction).
//
// Latency distributions (runtime/histogram.h) ride alongside the counters:
// one wait-free LatencyHistogram per OpFamily, recorded through
// RecordLatency(). set_latency_recording(false) turns the whole latency
// layer off — including the clock reads feeding it — which is how
// bench_net_throughput measures the instrumentation overhead.
#ifndef TQCOVER_RUNTIME_METRICS_H_
#define TQCOVER_RUNTIME_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "query/query_stats.h"
#include "runtime/histogram.h"

namespace tq::runtime {

// The single source of truth for the counter set. Field semantics:
//   queries_total/service_queries/topk_queries  queries submitted, by kind
//   cache_*                  result-cache hits / misses / LRU evictions /
//                            entries invalidated by republishes
//   snapshots_published      engine-wide snapshot swaps
//   shard_tasks              per-shard scatter tasks executed (sharded only)
//   shard_publishes          individual shard snapshots republished (a
//                            publish touching 2 of 8 shards counts 2)
//   trajectories_*           write-batch insert / remove totals
//   nodes_copied/pages_shared/publish_ns
//                            copy-on-write publish accounting: nodes
//                            physically duplicated, node pages still shared
//                            at publish time, total ApplyUpdates wall ns
//   facilities_evaluated/facilities_pruned/prune_rounds
//                            bound-and-prune top-k accounting: exact
//                            per-shard evaluations done vs. skipped, and
//                            coordinator rounds run (1 or 2 per query)
//   nodes_visited/entries_scanned/exact_checks/heap_pops
//                            folded per-query traversal QueryStats
//   net_*                    network front-end accounting (src/net/server.h):
//                            connections accepted, frames decoded, update
//                            frames merged into a pending publish, payload
//                            bytes in / out incl. the 4-byte frame headers,
//                            plus backpressure accounting — requests shed
//                            with kOverloaded by admission control,
//                            read-pause transitions taken when a
//                            connection's outbox crossed the high watermark,
//                            and bytes currently staged in outboxes
//                            (a gauge: Add/Sub, not monotone)
//   subs_*                   standing-query accounting (src/net/server.h):
//                            subscriptions registered over their lifetime,
//                            per-publish re-evaluations actually run vs.
//                            skipped because no subscribed shard's
//                            generation changed, and kPush frames staged
//   coord_*/heartbeats_sent/worker_failures
//                            coordinator accounting (runtime/remote_shard_set):
//                            worker RPCs issued, queries answered from fewer
//                            workers than configured, heartbeat probes sent,
//                            alive->dead worker transitions observed
//   wal_appends/wal_bytes/wal_replayed
//                            durability accounting (src/storage/): update
//                            batches logged, record payload bytes logged,
//                            batches replayed from the WAL during recovery
//   checkpoints/checkpoint_ns/pages_reclaimed
//                            checkpointer accounting: checkpoints committed,
//                            total checkpoint wall ns (stream + trim +
//                            compact), node pages released from live fork
//                            chains by post-checkpoint compaction
#define TQ_METRICS_COUNTERS(X) \
  X(queries_total)             \
  X(service_queries)           \
  X(topk_queries)              \
  X(cache_hits)                \
  X(cache_misses)              \
  X(cache_evictions)           \
  X(cache_invalidated)         \
  X(snapshots_published)       \
  X(shard_tasks)               \
  X(shard_publishes)           \
  X(trajectories_inserted)     \
  X(trajectories_removed)      \
  X(nodes_copied)              \
  X(pages_shared)              \
  X(publish_ns)                \
  X(facilities_evaluated)      \
  X(facilities_pruned)         \
  X(prune_rounds)              \
  X(nodes_visited)             \
  X(entries_scanned)           \
  X(exact_checks)              \
  X(heap_pops)                 \
  X(net_connections)           \
  X(net_requests_decoded)      \
  X(net_batches_coalesced)     \
  X(net_bytes_in)              \
  X(net_bytes_out)             \
  X(net_shed)                  \
  X(net_paused_connections)    \
  X(net_outbox_bytes)          \
  X(subs_registered)           \
  X(subs_evaluated)            \
  X(subs_skipped)              \
  X(subs_pushed)               \
  X(coord_rpcs)                \
  X(coord_partial)             \
  X(heartbeats_sent)           \
  X(worker_failures)           \
  X(wal_appends)               \
  X(wal_bytes)                 \
  X(wal_replayed)              \
  X(checkpoints)               \
  X(checkpoint_ns)             \
  X(pages_reclaimed)

/// Plain-value snapshot of a MetricsRegistry, safe to copy and format.
struct MetricsView {
#define TQ_METRICS_FIELD(name) uint64_t name = 0;
  TQ_METRICS_COUNTERS(TQ_METRICS_FIELD)
#undef TQ_METRICS_FIELD

  /// Merged per-OpFamily latency distributions, indexed by OpFamily value.
  std::array<HistogramSnapshot, kNumOpFamilies> op_histograms{};

  double CacheHitRate() const {
    const uint64_t looked = cache_hits + cache_misses;
    return looked == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(looked);
  }

  /// Visits every counter as (name, value) in declaration order — the
  /// stats wire encoding and the drift-guard test iterate this way.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
#define TQ_METRICS_VISIT(name) fn(#name, name);
    TQ_METRICS_COUNTERS(TQ_METRICS_VISIT)
#undef TQ_METRICS_VISIT
  }

  /// One-object JSON rendering: every counter keyed by its field name, plus
  /// a "histograms" sub-object keyed by OpFamilyName.
  std::string ToJson() const {
    std::string s = "{";
    ForEachCounter([&s](const char* k, uint64_t v) {
      if (s.size() > 1) s += ",";
      s += "\"";
      s += k;
      s += "\":";
      s += std::to_string(v);
    });
    s += ",\"histograms\":{";
    for (size_t f = 0; f < kNumOpFamilies; ++f) {
      if (f != 0) s += ",";
      s += "\"";
      s += OpFamilyName(static_cast<OpFamily>(f));
      s += "\":";
      s += op_histograms[f].ToJson();
    }
    s += "}}";
    return s;
  }
};

/// Thread-safe counter registry. All mutators are wait-free relaxed atomic
/// increments — these sit on the query hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddQuery(bool topk) {
    queries_total_.fetch_add(1, std::memory_order_relaxed);
    (topk ? topk_queries_ : service_queries_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheEvictions(uint64_t n) {
    if (n) cache_evictions_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCacheInvalidated(uint64_t n) {
    if (n) cache_invalidated_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSnapshotPublished() {
    snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShardTask() {
    shard_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShardPublishes(uint64_t n) {
    if (n) shard_publishes_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddInserted(uint64_t n) {
    if (n) trajectories_inserted_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddRemoved(uint64_t n) {
    if (n) trajectories_removed_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Folds one forked publish's copy-on-write cost into the registry.
  void AddPublishCost(uint64_t nodes_copied, uint64_t pages_shared,
                      uint64_t ns) {
    nodes_copied_.fetch_add(nodes_copied, std::memory_order_relaxed);
    pages_shared_.fetch_add(pages_shared, std::memory_order_relaxed);
    publish_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Folds one pruned top-k gather's work accounting into the registry.
  void AddTopKPruneWork(uint64_t evaluated, uint64_t pruned,
                        uint64_t rounds) {
    facilities_evaluated_.fetch_add(evaluated, std::memory_order_relaxed);
    facilities_pruned_.fetch_add(pruned, std::memory_order_relaxed);
    prune_rounds_.fetch_add(rounds, std::memory_order_relaxed);
  }

  /// Network front-end accounting (bumped by net::NetServer only).
  void AddNetConnection() {
    net_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddNetRequestsDecoded(uint64_t n) {
    if (n) net_requests_decoded_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBatchesCoalesced(uint64_t n) {
    if (n) net_batches_coalesced_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBytesIn(uint64_t n) {
    if (n) net_bytes_in_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBytesOut(uint64_t n) {
    if (n) net_bytes_out_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetShed() { net_shed_.fetch_add(1, std::memory_order_relaxed); }
  /// Read-pause transitions (pause events, cumulative — a connection that
  /// pauses, drains, and pauses again counts twice).
  void AddNetPause() {
    net_paused_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  /// net_outbox_bytes is a gauge of bytes currently staged across all
  /// connection outboxes: Add when staged, Sub when written to the socket
  /// or the connection closes.
  void AddNetOutboxBytes(uint64_t n) {
    if (n) net_outbox_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void SubNetOutboxBytes(uint64_t n) {
    if (n) net_outbox_bytes_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Standing-query accounting (bumped by net::NetServer only).
  void AddSubRegistered() {
    subs_registered_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddSubsEvaluated(uint64_t n) {
    if (n) subs_evaluated_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSubsSkipped(uint64_t n) {
    if (n) subs_skipped_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSubPushed() { subs_pushed_.fetch_add(1, std::memory_order_relaxed); }

  /// Coordinator accounting (bumped by runtime::RemoteShardSet only).
  void AddCoordRpcs(uint64_t n) {
    if (n) coord_rpcs_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCoordPartial() {
    coord_partial_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddHeartbeatsSent(uint64_t n) {
    if (n) heartbeats_sent_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddWorkerFailure() {
    worker_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Durability accounting (bumped by storage::DurabilityManager and the
  /// engine's recovery path only).
  void AddWalAppend(uint64_t payload_bytes) {
    wal_appends_.fetch_add(1, std::memory_order_relaxed);
    if (payload_bytes) {
      wal_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    }
  }
  void AddWalReplayed(uint64_t n) {
    if (n) wal_replayed_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCheckpoint(uint64_t ns) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    checkpoint_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddPagesReclaimed(uint64_t n) {
    if (n) pages_reclaimed_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Folds one query's traversal counters into the registry.
  void RecordQueryStats(const QueryStats& s) {
    nodes_visited_.fetch_add(s.nodes_visited, std::memory_order_relaxed);
    entries_scanned_.fetch_add(s.entries_scanned, std::memory_order_relaxed);
    exact_checks_.fetch_add(s.exact_checks, std::memory_order_relaxed);
    heap_pops_.fetch_add(s.heap_pops, std::memory_order_relaxed);
  }

  /// One latency sample for the given family. Callers gate the clock reads
  /// feeding this on latency_recording() so disabling the layer removes the
  /// whole cost, not just the fetch_add (see e.g. ShardedEngine).
  void RecordLatency(OpFamily family, uint64_t ns) {
    if (!latency_recording()) return;
    histograms_[static_cast<size_t>(family)].Record(ns);
  }
  bool latency_recording() const {
    return latency_recording_.load(std::memory_order_relaxed);
  }
  void set_latency_recording(bool on) {
    latency_recording_.store(on, std::memory_order_relaxed);
  }
  /// 1-in-32 gate for the PER-TASK families (kShardTask, kQueueWait): a
  /// query fans into num_shards tasks, each wanting 2-3 clock reads, which
  /// dominates the layer's hot-path cost when cores are scarce. The
  /// end-to-end families (service/topk/net_frame/publish) stay complete —
  /// sampling here only widens the per-task histograms' confidence
  /// interval, never breaks the count == queries_total invariant.
  /// Thread-local counter: contention-free, per-thread round-robin.
  static bool SampleTask() {
    thread_local uint32_t n = 0;
    return (n++ % kTaskSampleEvery) == 0;
  }
  static constexpr uint32_t kTaskSampleEvery = 32;
  const LatencyHistogram& histogram(OpFamily family) const {
    return histograms_[static_cast<size_t>(family)];
  }

  MetricsView Read() const {
    MetricsView v;
#define TQ_METRICS_LOAD(name) \
  v.name = name##_.load(std::memory_order_relaxed);
    TQ_METRICS_COUNTERS(TQ_METRICS_LOAD)
#undef TQ_METRICS_LOAD
    for (size_t f = 0; f < kNumOpFamilies; ++f) {
      v.op_histograms[f] = histograms_[f].Read();
    }
    return v;
  }

 private:
#define TQ_METRICS_ATOMIC(name) std::atomic<uint64_t> name##_{0};
  TQ_METRICS_COUNTERS(TQ_METRICS_ATOMIC)
#undef TQ_METRICS_ATOMIC

  std::atomic<bool> latency_recording_{true};
  LatencyHistogram histograms_[kNumOpFamilies];
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_METRICS_H_
