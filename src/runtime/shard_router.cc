#include "runtime/shard_router.h"

#include <algorithm>

#include "common/check.h"
#include "zorder/zid.h"

namespace tq::runtime {

ShardRouter::ShardRouter(const TrajectorySet& users, const Rect& world,
                         size_t num_shards)
    : world_(world) {
  const size_t n = std::max<size_t>(1, num_shards);
  if (n == 1) return;

  std::vector<uint64_t> keys;
  keys.reserve(users.size());
  for (uint32_t u = 0; u < users.size(); ++u) {
    keys.push_back(KeyOf(users.points(u)));
  }
  std::sort(keys.begin(), keys.end());

  // Equal-count quantile splits of the initial key multiset. With no users
  // every split is 0, so all traffic routes to the last shard — a degenerate
  // but still total partition.
  splits_.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    const size_t pos = i * keys.size() / n;
    splits_.push_back(keys.empty() ? 0 : keys[pos]);
  }
  TQ_DCHECK(std::is_sorted(splits_.begin(), splits_.end()));
}

ShardRouter::ShardRouter(const Rect& world, std::vector<uint64_t> splits)
    : world_(world), splits_(std::move(splits)) {
  TQ_CHECK(std::is_sorted(splits_.begin(), splits_.end()));
}

uint64_t ShardRouter::KeyOf(std::span<const Point> traj) const {
  // Hard check (release builds too): ApplyUpdates routes raw tenant input
  // before TrajectorySet::Add gets a chance to reject an empty trajectory.
  TQ_CHECK(!traj.empty());
  return MortonKey(world_, traj.front());
}

size_t ShardRouter::RouteKey(uint64_t key) const {
  // Number of split keys <= key; ranges are half-open [s_{i-1}, s_i), so a
  // key equal to a split belongs to the shard on its right.
  return static_cast<size_t>(
      std::upper_bound(splits_.begin(), splits_.end(), key) -
      splits_.begin());
}

}  // namespace tq::runtime
