// Liveness bookkeeping for the shard workers behind a coordinator.
//
// The registry is a small explicit state machine per worker, in the spirit
// of the cctools work_queue catalog: a worker is kUnregistered until its
// kRegister round-trip succeeds, kAlive while heartbeats (or any successful
// RPC) keep arriving, and kDead after an RPC failure or a heartbeat
// timeout. Death is sticky until a NEW registration round-trip succeeds —
// rejoin goes back through kRegister so the coordinator re-verifies the
// partition geometry before trusting the worker's answers again.
//
//   kUnregistered --RecordRegistered--> kAlive
//   kAlive --RecordFailure/CheckTimeouts--> kDead
//   kDead --RecordRegistered--> kAlive          (rejoin)
//
// Time is injected (a NowNs-compatible callable) so the timeout transitions
// are unit-testable without real sleeps. All methods are thread-safe; the
// registry holds no sockets — RPC success/failure is reported into it by
// the owner (RemoteShardSet), which also owns the per-worker RTT histograms.
#ifndef TQCOVER_RUNTIME_WORKER_REGISTRY_H_
#define TQCOVER_RUNTIME_WORKER_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "runtime/histogram.h"

namespace tq::runtime {

class WorkerRegistry {
 public:
  /// Numeric values are wire-visible (kStatus frames carry them as u8).
  enum class State : uint8_t {
    kUnregistered = 0,
    kAlive = 1,
    kDead = 2,
  };

  using Clock = std::function<uint64_t()>;  // monotone nanoseconds

  /// `heartbeat_timeout_ms`: silence longer than this moves an alive worker
  /// to kDead on the next CheckTimeouts() pass. The default clock is the
  /// histogram layer's steady NowNs; tests inject a hand-cranked one.
  explicit WorkerRegistry(uint64_t heartbeat_timeout_ms,
                          Clock clock = &NowNs)
      : timeout_ns_(heartbeat_timeout_ms * 1'000'000ull),
        clock_(std::move(clock)) {}

  /// Adds a worker slot (coordinator start-up); returns its index.
  size_t AddWorker(std::string address) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(Row{std::move(address)});
    return rows_.size() - 1;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
  }

  /// A kRegister round-trip succeeded: kUnregistered/kDead -> kAlive, with
  /// the (re-verified) owned shard range.
  void RecordRegistered(size_t w, uint32_t owned_begin, uint32_t owned_end) {
    std::lock_guard<std::mutex> lock(mu_);
    Row& row = RowAt(w);
    row.state = State::kAlive;
    row.owned_begin = owned_begin;
    row.owned_end = owned_end;
    row.last_contact_ns = clock_();
  }

  /// A heartbeat (or any successful RPC) round-tripped in `rtt_ns`.
  /// Contact alone never resurrects a dead worker — rejoin must go through
  /// RecordRegistered so the geometry is re-checked first.
  void RecordHeartbeat(size_t w, uint64_t rtt_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    Row& row = RowAt(w);
    row.heartbeats++;
    row.last_rtt_ns = rtt_ns;
    if (row.state == State::kAlive) row.last_contact_ns = clock_();
  }

  /// Any successful non-heartbeat RPC also proves liveness: refresh the
  /// recency without inflating the heartbeat count.
  void RecordContact(size_t w) {
    std::lock_guard<std::mutex> lock(mu_);
    Row& row = RowAt(w);
    if (row.state == State::kAlive) row.last_contact_ns = clock_();
  }

  /// An RPC against worker `w` failed. Returns true when this call was the
  /// alive -> dead transition (the caller bumps worker_failures exactly
  /// once per death, not once per failed RPC on an already-dead worker).
  bool RecordFailure(size_t w) {
    std::lock_guard<std::mutex> lock(mu_);
    Row& row = RowAt(w);
    row.failures++;
    const bool died = row.state == State::kAlive;
    if (died) row.state = State::kDead;
    return died;
  }

  /// Sweeps alive workers whose last contact is older than the heartbeat
  /// timeout; returns the indices that died on THIS pass.
  std::vector<size_t> CheckTimeouts() {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = clock_();
    std::vector<size_t> died;
    for (size_t w = 0; w < rows_.size(); ++w) {
      Row& row = rows_[w];
      if (row.state != State::kAlive) continue;
      if (now - row.last_contact_ns > timeout_ns_) {
        row.state = State::kDead;
        row.failures++;
        died.push_back(w);
      }
    }
    return died;
  }

  State state(size_t w) const {
    std::lock_guard<std::mutex> lock(mu_);
    return RowAt(w).state;
  }
  bool alive(size_t w) const { return state(w) == State::kAlive; }
  std::string address(size_t w) const {
    std::lock_guard<std::mutex> lock(mu_);
    return RowAt(w).address;
  }

  /// One worker's liveness row, snapshot form.
  struct RowView {
    std::string address;
    State state = State::kUnregistered;
    uint32_t owned_begin = 0;
    uint32_t owned_end = 0;
    uint64_t heartbeats = 0;
    uint64_t failures = 0;
    uint64_t age_ms = 0;  // since last successful contact (0 if none yet)
  };

  std::vector<RowView> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = clock_();
    std::vector<RowView> out;
    out.reserve(rows_.size());
    for (const Row& row : rows_) {
      RowView v;
      v.address = row.address;
      v.state = row.state;
      v.owned_begin = row.owned_begin;
      v.owned_end = row.owned_end;
      v.heartbeats = row.heartbeats;
      v.failures = row.failures;
      v.age_ms = row.last_contact_ns == 0
                     ? 0
                     : (now - row.last_contact_ns) / 1'000'000ull;
      out.push_back(std::move(v));
    }
    return out;
  }

 private:
  struct Row {
    std::string address;
    State state = State::kUnregistered;
    uint32_t owned_begin = 0;
    uint32_t owned_end = 0;
    uint64_t heartbeats = 0;
    uint64_t failures = 0;
    uint64_t last_contact_ns = 0;
    uint64_t last_rtt_ns = 0;
  };

  Row& RowAt(size_t w) {
    TQ_CHECK(w < rows_.size());
    return rows_[w];
  }
  const Row& RowAt(size_t w) const {
    TQ_CHECK(w < rows_.size());
    return rows_[w];
  }

  const uint64_t timeout_ns_;
  const Clock clock_;
  mutable std::mutex mu_;
  std::vector<Row> rows_;
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_WORKER_REGISTRY_H_
