// The coordinator side of multi-process serving: a ServingEngine whose
// "shards" are shard-worker PROCESSES reached over the wire protocol.
//
// A RemoteShardSet owns no trees. It holds one channel (a small pool of
// pipelined NetClient connections) per worker, a WorkerRegistry tracking
// liveness, and runs the SAME two-round bound-and-prune top-k protocol as
// ShardedEngine — one level up, with each worker acting as a "super-shard":
//
//   round 1   one kBound frame per alive worker. Worker w answers with
//             B_w(f) = Σ_{owned s} UB_s(f) per facility plus the exact
//             values E_w(f) its local cursors already settled.
//   coordinate  B(f) = Σ_w B_w(f), L(f) = Σ_{w that settled f} E_w(f),
//             τ = k-th largest L; candidates are the not-fully-settled
//             facilities with B(f) ≥ τ — every pruned facility satisfies
//             SO(f) ≤ B(f) < τ ≤ k-th exact value, the same proof as the
//             in-process protocol (sharded_engine.h).
//   round 2   one plain kSum frame per worker for the candidates that
//             worker has not settled; merge, rank by (value desc, id asc).
//
// Bit-identity: every per-facility total is a sum of per-shard values in
// ascending shard order — workers own contiguous ascending shard ranges and
// are summed in worker order, and a worker's non-owned shards contribute an
// exact 0.0. For integer-valued service models (point/endpoint counts, the
// NYF/NYBus presets) every partial sum is exact below 2^53, so coordinator
// answers equal the single-process ShardedEngine bit for bit — the property
// the CI distributed-smoke job diffs. Float-valued models (e.g. "length")
// agree only up to summation associativity.
//
// Failure handling: any failed RPC moves the worker to kDead in the
// registry (worker_failures increments on the transition). A query keeps
// going with the survivors — mid-protocol death drops ALL of that worker's
// round-1 data, recomputes τ and the candidate set from the survivors, and
// re-scatters the refinement wave — and the answer comes back with
// StatusCode::kUnavailable marking it partial (computed over the surviving
// workers' users only). Dead workers are re-registered by the periodic
// heartbeat pass (Tick, driven by the net server's timerfd) once they come
// back AND their geometry still matches.
//
// Writes fan out to every alive worker: each applies the identical batch,
// and because global-id assignment is deterministic (ShardedEngine routes
// and numbers from the same full-user-set geometry), every worker returns
// the same assigned ids; a worker that disagrees is treated as failed.
// ApplyUpdates blocks its caller for one fan-out round-trip — acceptable on
// the serving loop because updates are already batched there.
#ifndef TQCOVER_RUNTIME_REMOTE_SHARD_SET_H_
#define TQCOVER_RUNTIME_REMOTE_SHARD_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/client.h"
#include "runtime/histogram.h"
#include "runtime/metrics.h"
#include "runtime/serving_engine.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "runtime/worker_registry.h"

namespace tq::runtime {

struct RemoteShardSetOptions {
  /// Worker endpoints, in ascending owned-shard-range order (Connect
  /// verifies the ranges are contiguous and cover [0, num_shards)).
  std::vector<std::pair<std::string, uint16_t>> workers;
  /// Pool threads running distributed queries (each query occupies one
  /// thread for its scatter/gather round-trips).
  size_t num_threads = 4;
  /// Cap on any single worker send/recv; an expired RPC counts as a worker
  /// failure rather than hanging the query.
  uint64_t rpc_timeout_ms = 2000;
  /// Heartbeat probe period (surfaced as tick_period_ms to the front-end's
  /// timerfd) and the silence threshold that declares a worker dead.
  uint64_t heartbeat_period_ms = 1000;
  uint64_t heartbeat_timeout_ms = 5000;
  /// Top-k protocol selection, mirroring ShardedEngineOptions: skip the
  /// bound round (straight to exhaustive kSum scatter) once the effective k
  /// reaches `prune_skip_ratio` of the catalog.
  bool prune_topk = true;
  double prune_skip_ratio = 0.5;
};

class RemoteShardSet : public ServingEngine {
 public:
  explicit RemoteShardSet(RemoteShardSetOptions options);
  /// Drains in-flight distributed queries, then joins the pool.
  ~RemoteShardSet() override;

  RemoteShardSet(const RemoteShardSet&) = delete;
  RemoteShardSet& operator=(const RemoteShardSet&) = delete;

  /// Dials and registers every worker, verifies the partition geometry
  /// (shared num_shards / ψ / catalog size / users_total; contiguous
  /// ascending owned ranges covering every shard) and learns the initial
  /// shard generations. Must succeed before the first query.
  Status Connect();

  // ---- ServingEngine ----------------------------------------------------
  MetricsRegistry* mutable_metrics() override { return &metrics_; }
  const Tracer& tracer() const override { return tracer_; }
  Tracer* mutable_tracer() override { return &tracer_; }
  double psi() const override { return psi_; }
  uint64_t snapshot_version() const override;
  std::vector<uint64_t> shard_generations() const override;
  EngineInfo info() const override;
  std::vector<WorkerStatus> Workers() const override;
  void SubmitAsync(QueryRequest request, TraceContextPtr trace,
                   ResponseCallback done, uint64_t start_ns = 0) override;
  std::vector<uint32_t> ApplyUpdates(const UpdateBatch& batch) override;
  /// A coordinator could serve kBound itself (recursive coordination); this
  /// deployment never stacks coordinators, so it answers Unimplemented.
  void TopKBoundSweepAsync(size_t k, BoundSweepCallback done) override;
  uint64_t tick_period_ms() const override {
    return options_.heartbeat_period_ms;
  }
  /// Non-blocking: posts one heartbeat pass (probe alive workers, attempt
  /// re-registration of dead ones, sweep timeouts) onto the pool; at most
  /// one pass runs at a time.
  void Tick() override;

  size_t num_workers() const { return channels_.size(); }

  // ---- worker-set persistence (serve --coordinator --data-dir) ----------
  // The verified worker set persists as DIR/workers.txt, one HOST:PORT per
  // line, written atomically (tmp file + rename), so a coordinator restart
  // can recover its cluster membership without re-passing --workers.

  /// Creates `data_dir` if needed and writes `workers` to its worker-set
  /// file (atomic replace).
  static Status SaveWorkerSet(
      const std::string& data_dir,
      const std::vector<std::pair<std::string, uint16_t>>& workers);
  /// Appends the saved endpoints to `*workers`. NotFound when the file does
  /// not exist; IOError on an unparseable line.
  static Status LoadWorkerSet(
      const std::string& data_dir,
      std::vector<std::pair<std::string, uint16_t>>* workers);

 private:
  /// One worker's connection pool + RTT accounting. Channels are created at
  /// construction and never move (unique_ptr pins them for the histogram).
  struct Channel {
    std::string host;
    uint16_t port = 0;
    std::string address;  // "host:port"
    uint32_t owned_begin = 0;
    uint32_t owned_end = 0;
    std::mutex mu;
    std::vector<std::unique_ptr<net::NetClient>> idle;
    LatencyHistogram rtt;
  };

  /// Pops an idle connected client for worker `w`, dialing a fresh one if
  /// none is pooled. Null on connect failure (the caller scores it).
  std::unique_ptr<net::NetClient> AcquireClient(size_t w);
  void ReleaseClient(size_t w, std::unique_ptr<net::NetClient> client);
  /// Worker indices currently kAlive, ascending.
  std::vector<size_t> AliveWorkers() const;
  /// Scores one failed RPC: registry transition, worker_failures metric on
  /// alive -> dead, and the channel's (now stale) idle sockets dropped.
  void MarkFailed(size_t w);
  /// Runs one pipelined RPC wave over `*parts`: every request is flushed
  /// before any response is read — workers compute concurrently — then
  /// responses are consumed in ascending worker order. `consume` returning
  /// non-OK counts as that worker failing. Failed workers are scored dead
  /// and removed from `*parts`; returns true when any were.
  bool RunWave(
      std::vector<size_t>* parts,
      const std::function<net::NetRequest(size_t)>& make_request,
      const std::function<Status(size_t, net::NetResponse&&)>& consume);
  /// Runs `fn` against one client of worker `w`, recording the RTT into the
  /// channel histogram and liveness on success, scoring a worker failure on
  /// any error. `rtt_ns` (optional) receives the measured round-trip.
  Status Rpc(size_t w, const std::function<Status(net::NetClient*)>& fn,
             uint64_t* rtt_ns = nullptr);
  /// One kRegister round-trip + geometry verification against the cluster
  /// view; `initial` learns the geometry instead of checking it.
  Status RegisterWorker(size_t w, net::NetClient* client, bool initial);
  /// The heartbeat pass body (pool thread).
  void HeartbeatPass();

  // Distributed query execution (each runs on one pool thread; `trace`
  // nullable — the net server's sampled frame trace).
  QueryResponse RunSum(FacilityId facility, TraceContext* trace);
  QueryResponse RunTopK(size_t k, TraceContext* trace);
  /// Exhaustive fallback: kSum of every facility to every alive worker.
  QueryResponse RunTopKExhaustive(size_t k, TraceContext* trace);
  /// Ranks exact per-facility totals: (value desc, id asc), truncate to k.
  static void Rank(std::vector<RankedFacility> complete, size_t k,
                   QueryResponse* response);
  /// Stamps the partial-result marker when fewer workers answered than are
  /// configured (StatusCode::kUnavailable + coord_partial metric).
  void MarkPartialIfDegraded(size_t answered, QueryResponse* response);

  RemoteShardSetOptions options_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  WorkerRegistry registry_;
  std::vector<std::unique_ptr<Channel>> channels_;

  // Cluster geometry, fixed by Connect().
  bool connected_ = false;
  uint32_t num_shards_ = 0;
  double psi_ = 0.0;
  uint32_t num_facilities_ = 0;

  // Mutable cluster state (guarded by state_mu_).
  mutable std::mutex state_mu_;
  uint64_t snapshot_version_ = 0;
  std::vector<uint64_t> generations_;
  uint64_t users_total_ = 0;

  std::mutex writer_mu_;  // serializes ApplyUpdates fan-outs
  std::atomic<uint64_t> heartbeat_seq_{0};
  std::atomic<bool> heartbeat_inflight_{false};

  ThreadPool pool_;  // last member: joins before the rest is torn down
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_REMOTE_SHARD_SET_H_
