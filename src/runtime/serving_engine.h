// The abstract serving-engine surface the network front-end talks to.
//
// src/net/server.h used to be hard-wired to ShardedEngine; the distributed
// layer needs the SAME front-end (same wire protocol, same epoll loop, same
// pipelining) over a coordinator that owns no trees at all — only
// connections to shard-worker processes. This interface is exactly the
// slice of engine behaviour the front-end consumes, nothing more:
//
//   * async query dispatch (SubmitAsync) and synchronous write application
//     (ApplyUpdates) — the two data paths;
//   * metrics + tracer access, ψ, snapshot version and per-shard
//     generations — the introspection the stats/update frames report;
//   * the distributed-protocol hooks: identity (info), the round-1 top-k
//     bound sweep (TopKBoundSweepAsync, serving kBound frames), the
//     per-worker liveness table (Workers, serving kStatus frames), and the
//     periodic Tick the front-end's timerfd drives (heartbeats).
//
// ShardedEngine implements it in-process; RemoteShardSet implements it over
// the wire. The front-end cannot tell them apart — which is precisely the
// test the distributed smoke matrix runs.
#ifndef TQCOVER_RUNTIME_SERVING_ENGINE_H_
#define TQCOVER_RUNTIME_SERVING_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "runtime/engine.h"
#include "runtime/histogram.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"
#include "storage/durability.h"

namespace tq::runtime {

/// Engine durability knobs and recovery report, re-exported so front-end
/// code (net/, tools/) configures engines without spelling the storage
/// namespace. The subsystem itself lives in src/storage/.
using DurabilityOptions = storage::DurabilityOptions;
using RecoveryInfo = storage::RecoveryInfo;

/// A serving process's identity: the partition geometry every peer must
/// agree on before per-shard answers compose. Mirrors net::WireWorkerInfo
/// (kept separate so runtime/ does not depend on net/).
struct EngineInfo {
  uint32_t num_shards = 0;
  uint32_t owned_begin = 0;  // owned Z-order shard range [begin, end)
  uint32_t owned_end = 0;
  double psi = 0.0;
  uint32_t num_facilities = 0;
  uint64_t users_total = 0;
  uint64_t snapshot_version = 0;
};

/// Result of a round-1 top-k bound sweep over an engine's owned shards:
/// per-facility upper bounds plus the facilities the sweep already settled
/// exactly. The coordinator treats each worker as one "super-shard" —
/// B(f) = Σ_w bounds_w[f] and L(f) = Σ_{w that settled f} exact_w(f) feed
/// the same prune threshold proof as the in-process protocol.
struct BoundSweepResult {
  Status status;
  uint64_t snapshot_version = 0;
  std::vector<double> bounds;  // one per facility, facility order
  std::vector<std::pair<uint32_t, double>> exacts;  // (facility, exact sum)
};

/// One worker's liveness row (coordinator engines only; in-process engines
/// report an empty table). `state` uses WorkerRegistry::State values.
struct WorkerStatus {
  std::string address;
  uint8_t state = 0;
  uint32_t owned_begin = 0;
  uint32_t owned_end = 0;
  uint64_t heartbeats = 0;
  uint64_t failures = 0;
  uint64_t age_ms = 0;          // since last successful contact
  HistogramSnapshot rtt;        // per-worker RPC round-trip distribution
};

class ServingEngine {
 public:
  using ResponseCallback = std::function<void(QueryResponse)>;
  using BoundSweepCallback = std::function<void(BoundSweepResult)>;

  virtual ~ServingEngine() = default;

  // ---- introspection ---------------------------------------------------
  virtual MetricsRegistry* mutable_metrics() = 0;
  virtual const Tracer& tracer() const = 0;
  virtual Tracer* mutable_tracer() = 0;
  /// The serving ψ, fixed for the engine's lifetime.
  virtual double psi() const = 0;
  virtual uint64_t snapshot_version() const = 0;
  /// Per-shard publish generations, shard order (kUpdate responses, and
  /// the net server's standing-query affect detector). Contract: a shard's
  /// generation changes iff a publish modified that shard's contents, so
  /// an unchanged generation vector guarantees every query answer is
  /// unchanged — the basis for skipping subscription re-evaluations.
  virtual std::vector<uint64_t> shard_generations() const = 0;
  virtual EngineInfo info() const = 0;
  /// Liveness table for kStatus frames; empty unless this is a coordinator.
  virtual std::vector<WorkerStatus> Workers() const { return {}; }

  // ---- data paths ------------------------------------------------------
  /// Async query dispatch; `done` runs exactly once, possibly inline, and
  /// must not block. `start_ns` (0 = read the clock now) backdates the
  /// latency sample to the frame's receive timestamp.
  virtual void SubmitAsync(QueryRequest request, TraceContextPtr trace,
                           ResponseCallback done, uint64_t start_ns) = 0;
  /// Synchronous write application; returns the assigned global ids.
  virtual std::vector<uint32_t> ApplyUpdates(const UpdateBatch& batch) = 0;
  /// Round-1 bound sweep for one top-k query over this engine's owned
  /// shards (serves kBound frames). `done` runs exactly once, possibly
  /// inline, and must not block.
  virtual void TopKBoundSweepAsync(size_t k, BoundSweepCallback done) = 0;

  // ---- durability ------------------------------------------------------
  /// Forces one synchronous checkpoint → WAL-trim → compaction cycle.
  /// kUnimplemented on engines without a durability subsystem (the default,
  /// and any engine started without a data dir).
  virtual Status Checkpoint() {
    return Status::Unimplemented("engine has no durability subsystem");
  }
  /// What recovery did at startup (kStatus frames, CLI status). All-zero /
  /// non-durable on engines without a durability subsystem.
  virtual storage::RecoveryInfo recovery_info() const { return {}; }

  // ---- periodic maintenance --------------------------------------------
  /// How often the front-end should call Tick(); 0 = never (no timer).
  virtual uint64_t tick_period_ms() const { return 0; }
  /// Called from the front-end's event loop on the tick period. Must not
  /// block: long work (heartbeat RPCs, say) is handed to a pool inside.
  virtual void Tick() {}
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_SERVING_ENGINE_H_
