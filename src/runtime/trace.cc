#include "runtime/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace tq::runtime {

namespace {

int64_t UnixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendSpanJson(std::string* out, const Trace::Span& span) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"shard\":%d,\"start_us\":%.1f,"
                "\"end_us\":%.1f}",
                span.name.c_str(), span.shard,
                static_cast<double>(span.start_ns) / 1e3,
                static_cast<double>(span.end_ns) / 1e3);
  out->append(buf);
}

}  // namespace

std::string TraceToJson(const Trace& trace) {
  std::string out;
  out.reserve(128 + trace.spans.size() * 96);
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"op\":\"%s\",\"detail\":%llu,\"total_ms\":%.3f,"
                "\"snapshot_version\":%llu,\"unix_ms\":%lld,"
                "\"dropped_spans\":%u,\"spans\":[",
                trace.op.c_str(),
                static_cast<unsigned long long>(trace.detail),
                static_cast<double>(trace.total_ns) / 1e6,
                static_cast<unsigned long long>(trace.snapshot_version),
                static_cast<long long>(trace.unix_ms), trace.dropped_spans);
  out.append(buf);
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendSpanJson(&out, trace.spans[i]);
  }
  out.append("]}");
  return out;
}

Tracer::Tracer(size_t ring_size)
    : ring_size_(ring_size == 0 ? 1 : ring_size),
      ring_(std::make_unique<Slot[]>(ring_size == 0 ? 1 : ring_size)) {}

void Tracer::Finish(const TraceContext& ctx, uint64_t snapshot_version) {
  const uint64_t now = NowNs();
  const uint64_t start = ctx.start_ns();

  Trace trace;
  trace.op = ctx.op();
  trace.detail = ctx.detail();
  trace.total_ns = now > start ? now - start : 0;
  trace.snapshot_version = snapshot_version;
  trace.unix_ms = UnixMillisNow();
  trace.dropped_spans = ctx.dropped_spans();
  const size_t n = ctx.num_spans();
  trace.spans.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const TraceSpan& s = ctx.span(i);
    Trace::Span out;
    out.name = s.name != nullptr ? s.name : "?";
    out.shard = s.shard;
    // Saturating re-base onto the trace start; a span clocked marginally
    // before the context was constructed clamps to offset 0.
    out.start_ns = s.start_ns > start ? s.start_ns - start : 0;
    out.end_ns = s.end_ns > start ? s.end_ns - start : 0;
    trace.spans.push_back(std::move(out));
  }
  // Spans land in ring order of slot claims, which under concurrent shard
  // tasks is arbitrary — present them chronologically.
  std::sort(trace.spans.begin(), trace.spans.end(),
            [](const Trace::Span& a, const Trace::Span& b) {
              return a.start_ns < b.start_ns;
            });

  finished_.fetch_add(1, std::memory_order_relaxed);

  if (trace.total_ns >=
      slow_threshold_ns_.load(std::memory_order_relaxed)) {
    std::function<void(const std::string&)> sink;
    {
      std::lock_guard<std::mutex> lock(sink_mu_);
      sink = sink_;
    }
    if (sink) sink(TraceToJson(trace));
  }

  const uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[seq % ring_size_];
  // Never block a serving thread on the ring: a contended slot (another
  // writer or a reader mid-copy) drops this trace instead.
  if (!slot.mu.try_lock()) {
    ring_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.used = true;
  slot.trace = std::move(trace);
  slot.mu.unlock();
}

void Tracer::SetSlowLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

std::vector<Trace> Tracer::Recent(size_t max_traces) const {
  std::vector<Trace> out;
  if (max_traces == 0) return out;
  const uint64_t end = cursor_.load(std::memory_order_relaxed);
  const uint64_t span = std::min<uint64_t>(end, ring_size_);
  out.reserve(std::min<uint64_t>(span, max_traces));
  // Walk newest-first from the write cursor backwards.
  for (uint64_t i = 0; i < span && out.size() < max_traces; ++i) {
    Slot& slot = ring_[(end - 1 - i) % ring_size_];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.used) out.push_back(slot.trace);
  }
  return out;
}

}  // namespace tq::runtime
