// Thread-striped log-bucketed latency histograms for the serving runtime.
//
// One LatencyHistogram per operation family (OpFamily) lives inside the
// MetricsRegistry; every worker/loop thread records nanosecond durations
// into its own stripe with one relaxed fetch_add per sample — wait-free,
// no cross-thread cache-line ping-pong on the hot path. Read() merges the
// stripes into a plain-value HistogramSnapshot, which is mergeable across
// histograms (bench clients each record locally and merge at the end) and
// supports p50/p90/p99 extraction.
//
// Bucketing: values < 16 ns get exact unit buckets; above that each power
// of two is split into 4 sub-buckets (relative quantile error ≤ 12.5%,
// the mid-point of a bucket whose width is a quarter of its base). The
// scheme tops out just above 18 minutes (2^40 ns); anything longer lands
// in a single overflow bucket whose quantile reports the cap — a latency
// that long is an outage, not a distribution point.
#ifndef TQCOVER_RUNTIME_HISTOGRAM_H_
#define TQCOVER_RUNTIME_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace tq::runtime {

/// Monotonic now in nanoseconds (steady_clock; never 0 on any real system,
/// so 0 doubles as "timestamp not taken" in gated instrumentation paths).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The per-operation latency families the registry keeps histograms for.
/// OpFamilyName() and the stats wire frame use the enumerator order; append
/// only (the JSON/wire names are part of the observability surface).
enum class OpFamily : uint8_t {
  kServiceQuery = 0,  // submit -> completion of one kServiceValue query
  kTopKQuery,         // submit -> completion of one kTopK query
  kPublish,           // ApplyUpdates wall time (fork + deltas + freeze + swap)
  kShardTask,         // one per-shard scatter task (sweep, eval or refine);
                      // SAMPLED 1-in-32 (MetricsRegistry::SampleTask)
  kQueueWait,         // thread-pool Post -> task start; SAMPLED 1-in-32
  kNetFrame,          // net frame decoded -> response staged for writing
};
inline constexpr size_t kNumOpFamilies = 6;

constexpr const char* OpFamilyName(OpFamily f) {
  switch (f) {
    case OpFamily::kServiceQuery:
      return "service_query";
    case OpFamily::kTopKQuery:
      return "topk_query";
    case OpFamily::kPublish:
      return "publish";
    case OpFamily::kShardTask:
      return "shard_task";
    case OpFamily::kQueueWait:
      return "queue_wait";
    case OpFamily::kNetFrame:
      return "net_frame";
  }
  return "unknown";
}

/// Bucket layout shared by LatencyHistogram and HistogramSnapshot.
///   [0, 16)            16 exact unit buckets
///   [2^m, 2^(m+1))     4 sub-buckets each, m = 4 .. 39
///   [2^40, inf)        1 overflow bucket
inline constexpr size_t kHistSubBits = 2;          // 4 sub-buckets / octave
inline constexpr size_t kHistMinOctave = 4;        // exact below 2^4 ns
inline constexpr size_t kHistMaxOctave = 40;       // overflow at 2^40 ns
inline constexpr size_t kHistOverflowBucket =
    16 + (kHistMaxOctave - kHistMinOctave) * (1u << kHistSubBits);
inline constexpr size_t kHistNumBuckets = kHistOverflowBucket + 1;  // 161

constexpr size_t HistBucketFor(uint64_t ns) {
  if (ns < (1u << kHistMinOctave)) return static_cast<size_t>(ns);
  const auto octave = static_cast<size_t>(std::bit_width(ns)) - 1;
  if (octave >= kHistMaxOctave) return kHistOverflowBucket;
  const size_t sub =
      static_cast<size_t>(ns >> (octave - kHistSubBits)) &
      ((1u << kHistSubBits) - 1);
  return 16 + (octave - kHistMinOctave) * (1u << kHistSubBits) + sub;
}

constexpr uint64_t HistBucketLowerBound(size_t bucket) {
  if (bucket < 16) return bucket;
  if (bucket >= kHistOverflowBucket) return uint64_t{1} << kHistMaxOctave;
  const size_t rel = bucket - 16;
  const size_t octave = kHistMinOctave + rel / (1u << kHistSubBits);
  const size_t sub = rel % (1u << kHistSubBits);
  return (uint64_t{1} << octave) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (octave - kHistSubBits));
}

/// Half-open width of a bucket (0 for the overflow bucket: its "width" is
/// unbounded, quantiles report the cap instead of a mid-point).
constexpr uint64_t HistBucketWidth(size_t bucket) {
  if (bucket < 16) return 1;
  if (bucket >= kHistOverflowBucket) return 0;
  const size_t octave =
      kHistMinOctave + (bucket - 16) / (1u << kHistSubBits);
  return uint64_t{1} << (octave - kHistSubBits);
}

/// Plain-value merged view of a histogram: counts per bucket plus totals.
/// Safe to copy, Merge and format from any thread.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  std::array<uint64_t, kHistNumBuckets> buckets{};

  /// Quantile in nanoseconds (bucket mid-point; overflow reports the cap).
  /// p in [0, 1]; 0 observations yield 0.
  uint64_t Percentile(double p) const;
  /// Upper edge of the highest non-empty bucket (the cap for overflow) —
  /// an upper bound on the largest recorded value.
  uint64_t MaxNs() const;
  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count);
  }
  /// Pointwise accumulation — stripes, bench clients and shards merge into
  /// one distribution this way.
  void Merge(const HistogramSnapshot& other);
  /// {"count":..,"sum_ns":..,"p50_ns":..,"p90_ns":..,"p99_ns":..,"max_ns":..}
  std::string ToJson() const;
};

/// Wait-free multi-writer latency histogram. Record() is one bucket index
/// computation plus two relaxed fetch_adds on a thread-local stripe; Read()
/// (the monitoring path) merges all stripes.
class LatencyHistogram {
 public:
  static constexpr size_t kStripes = 8;  // power of two

  LatencyHistogram() : stripes_(std::make_unique<Stripe[]>(kStripes)) {}
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t ns) {
    Stripe& s = stripes_[StripeIndex()];
    s.buckets[HistBucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
    s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  HistogramSnapshot Read() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> buckets[kHistNumBuckets] = {};
    std::atomic<uint64_t> sum_ns{0};
  };

  /// Threads are assigned stripes round-robin on first record; the index is
  /// cached thread-local, so the steady-state cost is one TLS read.
  static size_t StripeIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
    return idx;
  }

  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_HISTOGRAM_H_
