// Sharded LRU cache memoising EvaluateServiceTQ results for the serving
// engine.
//
// Key = (facility id, ψ bits, snapshot version, data shard): a service value
// is a pure function of the user set and the facility's stop disk radius,
// and the user set is identified by the snapshot version — so a hit is
// exact, never approximate. Entries from superseded snapshots become
// unreachable the moment the engine publishes a new version;
// InvalidateBefore() reclaims their memory eagerly on publish, LRU eviction
// reclaims the rest lazily.
//
// The data-shard component serves the sharded engine (sharded_engine.h): it
// caches one entry per (facility, user shard), versioned by that shard's own
// publish generation, so republishing a single shard invalidates only that
// shard's entries (InvalidateShardBefore) and the other shards keep hitting.
// The unsharded engine leaves the field at 0.
//
// A second, smaller section memoises gathered TOP-K answers keyed by
// (k, ψ, per-shard generation vector): a ranked list is a pure function of
// every shard's user set, so the key carries the whole generation vector
// and a single-shard republish invalidates exactly the lists that shard
// contributed to (the unsharded engine uses a one-element vector holding
// its snapshot version). Bound-and-prune top-k answers are exact, so they
// memoise under the SAME keys as exhaustive ones; only response-level hit
// accounting moved with the protocol — a pruned gather evaluates few
// per-(facility, shard) entries, so its QueryResponse reports cache_hit
// solely for memoised whole-answer hits, while the per-entry lookups it
// does perform still count in the hit/miss metrics.
//
// Sharding: key-hash partitioning into independently locked shards keeps the
// cache off the critical path — worker threads contend only when they hash
// to the same shard.
#ifndef TQCOVER_RUNTIME_RESULT_CACHE_H_
#define TQCOVER_RUNTIME_RESULT_CACHE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "query/topk.h"
#include "traj/trajectory.h"

namespace tq::runtime {

/// Bit pattern of ψ for exact-equality cache keying.
inline uint64_t PsiBits(double psi) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(psi));
  std::memcpy(&bits, &psi, sizeof(bits));
  return bits;
}

/// Thread-safe sharded LRU map from (facility, ψ, snapshot version) to a
/// cached service value. A zero capacity disables the cache (every Get
/// misses, Put is a no-op) — used by benches measuring raw compute scaling.
class ResultCache {
 public:
  struct Key {
    FacilityId facility = 0;
    uint64_t psi_bits = 0;  // bit pattern of ψ (doubles as exact equality)
    /// Snapshot version (unsharded engine) or the owning shard's publish
    /// generation (sharded engine).
    uint64_t snapshot_version = 0;
    /// Data shard the value was computed on; 0 for the unsharded engine.
    uint32_t shard = 0;

    bool operator==(const Key& o) const {
      return facility == o.facility && psi_bits == o.psi_bits &&
             snapshot_version == o.snapshot_version && shard == o.shard;
    }
  };

  /// Key of one memoised gathered top-k answer. `gens` holds every data
  /// shard's publish generation at computation time (one element — the
  /// snapshot version — for the unsharded engine); equality is exact, so a
  /// hit can never mix shard states.
  struct TopKKey {
    size_t k = 0;
    uint64_t psi_bits = 0;
    std::vector<uint64_t> gens;

    bool operator==(const TopKKey& o) const {
      return k == o.k && psi_bits == o.psi_bits && gens == o.gens;
    }
  };

  /// `capacity` is the total per-facility entry budget across all shards.
  /// The top-k section adds max(8, capacity / 64) entries on top of it
  /// (0 disables both sections).
  explicit ResultCache(size_t capacity, size_t num_shards = 8);

  bool enabled() const { return per_shard_capacity_ > 0; }
  size_t num_shards() const { return shards_.size(); }

  /// True and fills `*value` on a hit; refreshes the entry's LRU position.
  bool Get(const Key& key, double* value);

  /// Inserts or refreshes `key`. Returns the number of entries evicted to
  /// make room (0 or 1).
  size_t Put(const Key& key, double value);

  /// Drops every entry whose snapshot version is older than `version`
  /// (publish-time invalidation). Returns the number dropped.
  size_t InvalidateBefore(uint64_t version);

  /// Drops every entry of data shard `shard` whose generation is older than
  /// `generation`, leaving other shards' entries untouched (single-shard
  /// publish invalidation). Returns the number dropped.
  size_t InvalidateShardBefore(uint32_t shard, uint64_t generation);

  /// Same, for all of `shards` in one pass over the cache — a write batch
  /// republishing several data shards at one generation invalidates them
  /// with a single scan instead of one per shard. Both passes also drop
  /// top-k entries whose generation vector is stale for an affected shard.
  size_t InvalidateShardsBefore(const std::vector<uint32_t>& shards,
                                uint64_t generation);

  /// True and fills `*ranked` on a memoised top-k answer for exactly this
  /// (k, ψ, generation vector); refreshes the entry's LRU position.
  bool GetTopK(const TopKKey& key, std::vector<RankedFacility>* ranked);

  /// Memoises one gathered top-k answer. Returns entries evicted (0 or 1).
  size_t PutTopK(const TopKKey& key, std::vector<RankedFacility> ranked);

  /// Current number of cached entries (sums shard sizes plus top-k entries;
  /// approximate under concurrent mutation).
  size_t size() const;

 private:
  struct Entry {
    Key key;
    double value = 0.0;
  };
  /// splitmix64 finalizer, shared by both key hashers.
  static uint64_t Mix64(uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
  }
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // 64-bit mix of the four components.
      const uint64_t h =
          k.psi_bits ^ (k.snapshot_version * 0x9e3779b97f4a7c15ull) ^
          (static_cast<uint64_t>(k.facility) << 32) ^
          (static_cast<uint64_t>(k.shard) * 0xd1342543de82ef95ull);
      return static_cast<size_t>(Mix64(h));
    }
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  struct TopKEntry {
    TopKKey key;
    std::vector<RankedFacility> ranked;
  };
  struct TopKKeyHash {
    size_t operator()(const TopKKey& k) const {
      uint64_t h = k.psi_bits ^ (static_cast<uint64_t>(k.k) << 48);
      for (const uint64_t g : k.gens) {
        h ^= g + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(Mix64(h));
    }
  };

  /// Drops every top-k entry whose key `pred` deems stale; returns the
  /// number dropped. Shared by both invalidation passes.
  template <typename Pred>
  size_t EraseStaleTopK(Pred&& pred) {
    size_t dropped = 0;
    std::lock_guard<std::mutex> lock(topk_mu_);
    for (auto it = topk_lru_.begin(); it != topk_lru_.end();) {
      if (pred(it->key)) {
        topk_index_.erase(it->key);
        it = topk_lru_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Top-k section: answers are few (one per (k, ψ) in steady state) and
  // each is worth a full catalog scan per data shard, so a small single-
  // mutex LRU off the per-facility fast path is enough.
  size_t topk_capacity_ = 0;
  mutable std::mutex topk_mu_;
  std::list<TopKEntry> topk_lru_;  // front = most recently used
  std::unordered_map<TopKKey, std::list<TopKEntry>::iterator, TopKKeyHash>
      topk_index_;
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_RESULT_CACHE_H_
