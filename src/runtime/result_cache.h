// Sharded LRU cache memoising EvaluateServiceTQ results for the serving
// engine.
//
// Key = (facility id, ψ bits, snapshot version, data shard): a service value
// is a pure function of the user set and the facility's stop disk radius,
// and the user set is identified by the snapshot version — so a hit is
// exact, never approximate. Entries from superseded snapshots become
// unreachable the moment the engine publishes a new version;
// InvalidateBefore() reclaims their memory eagerly on publish, LRU eviction
// reclaims the rest lazily.
//
// The data-shard component serves the sharded engine (sharded_engine.h): it
// caches one entry per (facility, user shard), versioned by that shard's own
// publish generation, so republishing a single shard invalidates only that
// shard's entries (InvalidateShardBefore) and the other shards keep hitting.
// The unsharded engine leaves the field at 0.
//
// Sharding: key-hash partitioning into independently locked shards keeps the
// cache off the critical path — worker threads contend only when they hash
// to the same shard.
#ifndef TQCOVER_RUNTIME_RESULT_CACHE_H_
#define TQCOVER_RUNTIME_RESULT_CACHE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "traj/trajectory.h"

namespace tq::runtime {

/// Bit pattern of ψ for exact-equality cache keying.
inline uint64_t PsiBits(double psi) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(psi));
  std::memcpy(&bits, &psi, sizeof(bits));
  return bits;
}

/// Thread-safe sharded LRU map from (facility, ψ, snapshot version) to a
/// cached service value. A zero capacity disables the cache (every Get
/// misses, Put is a no-op) — used by benches measuring raw compute scaling.
class ResultCache {
 public:
  struct Key {
    FacilityId facility = 0;
    uint64_t psi_bits = 0;  // bit pattern of ψ (doubles as exact equality)
    /// Snapshot version (unsharded engine) or the owning shard's publish
    /// generation (sharded engine).
    uint64_t snapshot_version = 0;
    /// Data shard the value was computed on; 0 for the unsharded engine.
    uint32_t shard = 0;

    bool operator==(const Key& o) const {
      return facility == o.facility && psi_bits == o.psi_bits &&
             snapshot_version == o.snapshot_version && shard == o.shard;
    }
  };

  /// `capacity` is the total entry budget across all shards.
  explicit ResultCache(size_t capacity, size_t num_shards = 8);

  bool enabled() const { return per_shard_capacity_ > 0; }
  size_t num_shards() const { return shards_.size(); }

  /// True and fills `*value` on a hit; refreshes the entry's LRU position.
  bool Get(const Key& key, double* value);

  /// Inserts or refreshes `key`. Returns the number of entries evicted to
  /// make room (0 or 1).
  size_t Put(const Key& key, double value);

  /// Drops every entry whose snapshot version is older than `version`
  /// (publish-time invalidation). Returns the number dropped.
  size_t InvalidateBefore(uint64_t version);

  /// Drops every entry of data shard `shard` whose generation is older than
  /// `generation`, leaving other shards' entries untouched (single-shard
  /// publish invalidation). Returns the number dropped.
  size_t InvalidateShardBefore(uint32_t shard, uint64_t generation);

  /// Same, for all of `shards` in one pass over the cache — a write batch
  /// republishing several data shards at one generation invalidates them
  /// with a single scan instead of one per shard.
  size_t InvalidateShardsBefore(const std::vector<uint32_t>& shards,
                                uint64_t generation);

  /// Current number of cached entries (sums shard sizes; approximate under
  /// concurrent mutation).
  size_t size() const;

 private:
  struct Entry {
    Key key;
    double value = 0.0;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // 64-bit mix of the four components (splitmix64 finalizer).
      uint64_t h = k.psi_bits ^ (k.snapshot_version * 0x9e3779b97f4a7c15ull) ^
                   (static_cast<uint64_t>(k.facility) << 32) ^
                   (static_cast<uint64_t>(k.shard) *
                    0xd1342543de82ef95ull);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebull;
      h ^= h >> 31;
      return static_cast<size_t>(h);
    }
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_RESULT_CACHE_H_
