// The concurrent query engine: multi-tenant kMaxRRST serving on top of the
// single-query TQ-tree library.
//
// Concurrency model — single-writer, many lock-free readers:
//   * The engine owns an immutable Snapshot: {user set, TQ-tree, facility
//     catalog, evaluator} behind shared_ptrs, tagged with a monotonically
//     increasing version. Readers grab the current snapshot pointer (one
//     mutex-protected shared_ptr copy) and then run entirely lock-free on
//     frozen structures.
//   * A published tree is FROZEN: every z-index is built eagerly before
//     publication (TQTree rebuilds them lazily inside queries otherwise,
//     which would race), and Insert/Remove are never called on it again.
//   * Writers (ApplyUpdates) never block readers: they copy the user set,
//     fork the tree (TQTree::Fork — persistent path-copying node pages
//     shared with the published snapshot, tqtree/tq_tree.h), apply
//     trajectory inserts/removes to the fork (copying only the pages the
//     touched paths live in), freeze it, and publish it as version N+1.
//     In-flight queries keep their old snapshot alive through the
//     shared_ptr until they finish; shared pages make that retention cheap.
//   * Service values are memoised in a sharded LRU ResultCache keyed by
//     (facility, ψ, snapshot version), and gathered top-k answers in its
//     top-k section keyed by (k, ψ, snapshot version); publication
//     invalidates superseded versions of both.
#ifndef TQCOVER_RUNTIME_ENGINE_H_
#define TQCOVER_RUNTIME_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "query/topk.h"
#include "runtime/metrics.h"
#include "runtime/result_cache.h"
#include "runtime/thread_pool.h"
#include "service/evaluator.h"
#include "service/facility_index.h"
#include "tqtree/tq_tree.h"
#include "traj/dataset.h"

namespace tq::runtime {

/// Engine construction parameters.
struct EngineOptions {
  /// Worker threads executing queries.
  size_t num_threads = 4;
  /// Total service-value cache entries across shards; 0 disables caching.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// TQ-tree construction parameters (the service model lives here).
  TQTreeOptions tree;
};

/// One immutable published version of the serving state. Everything reachable
/// from a Snapshot is read-only until the last reader drops its reference.
struct Snapshot {
  uint64_t version = 0;
  std::shared_ptr<const TrajectorySet> users;
  std::shared_ptr<const TrajectorySet> facilities;
  /// Frozen (all z-indexes built); non-const only because the query API
  /// takes TQTree* — no query mutates a frozen tree.
  std::shared_ptr<TQTree> tree;
  std::shared_ptr<const ServiceEvaluator> eval;
  std::shared_ptr<const FacilityCatalog> catalog;
};
using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Query kinds the engine serves.
enum class QueryKind {
  kServiceValue,  // SO(U, f) for one facility (Algorithms 1–2)
  kTopK,          // kMaxRRST (Algorithms 3–4)
};

struct QueryRequest {
  QueryKind kind = QueryKind::kServiceValue;
  FacilityId facility = 0;  // kServiceValue only
  size_t k = 8;             // kTopK only

  static QueryRequest ServiceValue(FacilityId f) {
    return QueryRequest{QueryKind::kServiceValue, f, 0};
  }
  static QueryRequest TopK(size_t k) {
    return QueryRequest{QueryKind::kTopK, 0, k};
  }
};

struct QueryResponse {
  QueryKind kind = QueryKind::kServiceValue;
  /// Non-OK when the request was rejected (e.g. facility id out of range);
  /// a serving engine must survive malformed tenant requests, so they come
  /// back as errors, never crashes. All other fields are meaningless then.
  Status status;
  /// Version of the snapshot this answer was computed against.
  uint64_t snapshot_version = 0;
  bool cache_hit = false;
  double value = 0.0;                  // kServiceValue
  std::vector<RankedFacility> ranked;  // kTopK
  QueryStats stats;                    // zero for cache hits
};

/// One writer batch: trajectories to add to the user set and/or trajectory
/// ids to de-index. Applied atomically — queries see either the old snapshot
/// or the new one, never a half-applied state.
struct UpdateBatch {
  std::vector<std::vector<Point>> inserts;
  std::vector<uint32_t> removes;
};

/// Multi-threaded serving engine. Thread-safe: any thread may Submit /
/// RunBatch / ApplyUpdates / snapshot() concurrently. Writers are serialized
/// among themselves; readers never block.
class Engine {
 public:
  /// Builds version 1 from the given users and facilities. `model` comes
  /// from `options.tree.model`.
  Engine(TrajectorySet users, TrajectorySet facilities, EngineOptions options);
  /// Drains in-flight queries, then joins the worker pool.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The currently published snapshot (cheap: one shared_ptr copy).
  SnapshotPtr snapshot() const;

  /// Enqueues one query on the worker pool.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Submits every request, then blocks for all answers (in request order).
  std::vector<QueryResponse> RunBatch(const std::vector<QueryRequest>& batch);

  /// Applies `batch` copy-on-write and publishes the result as a new
  /// snapshot. Returns the ids assigned to `batch.inserts` (in order).
  /// Serialized internally; concurrent readers are never blocked.
  std::vector<uint32_t> ApplyUpdates(const UpdateBatch& batch);

 private:
  QueryResponse Execute(const QueryRequest& request);
  void Publish(SnapshotPtr snap);

  EngineOptions options_;
  MetricsRegistry metrics_;
  ResultCache cache_;

  mutable std::mutex snapshot_mu_;  // guards snapshot_ pointer swap only
  SnapshotPtr snapshot_;

  std::mutex writer_mu_;  // serializes ApplyUpdates

  ThreadPool pool_;  // last member: joins before the rest is torn down
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_ENGINE_H_
