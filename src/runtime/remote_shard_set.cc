#include "runtime/remote_shard_set.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace tq::runtime {

namespace {

constexpr char kWorkerSetFile[] = "workers.txt";

// Span names must have static storage duration (trace.h contract).
constexpr const char* kSpanRound1 = "rpc_round1";
constexpr const char* kSpanCoordinate = "coordinate";
constexpr const char* kSpanRound2 = "rpc_round2";
constexpr const char* kSpanScatter = "rpc_scatter";
constexpr const char* kSpanMerge = "merge";

}  // namespace

RemoteShardSet::RemoteShardSet(RemoteShardSetOptions options)
    : options_(std::move(options)),
      registry_(options_.heartbeat_timeout_ms),
      pool_(options_.num_threads, &metrics_) {
  for (const auto& [host, port] : options_.workers) {
    auto ch = std::make_unique<Channel>();
    ch->host = host;
    ch->port = port;
    ch->address = host + ":" + std::to_string(port);
    registry_.AddWorker(ch->address);
    channels_.push_back(std::move(ch));
  }
}

RemoteShardSet::~RemoteShardSet() { pool_.Drain(); }

Status RemoteShardSet::Connect() {
  TQ_CHECK(!connected_);
  if (channels_.empty()) {
    return Status::InvalidArgument("no worker endpoints configured");
  }
  uint64_t version = 0;
  std::vector<uint64_t> generations;
  for (size_t w = 0; w < channels_.size(); ++w) {
    Channel& ch = *channels_[w];
    auto client = std::make_unique<net::NetClient>();
    client->set_timeout_ms(options_.rpc_timeout_ms);
    Status st = client->Connect(ch.host, ch.port);
    if (!st.ok()) {
      return Status::IOError("worker " + ch.address + ": " + st.message());
    }
    st = RegisterWorker(w, client.get(), /*initial=*/w == 0);
    if (!st.ok()) {
      return Status(st.code(), "worker " + ch.address + ": " + st.message());
    }
    if (w == 0) generations.assign(num_shards_, 0);
    // An empty kUpdate publishes nothing but reports the worker's current
    // per-shard generations and snapshot version — the cheapest way to
    // learn the initial state without a dedicated frame type.
    net::NetResponse resp;
    st = client->Update({}, {}, &resp);
    if (st.ok() && !resp.status.ok()) st = resp.status;
    if (st.ok() && resp.shard_generations.size() != num_shards_) {
      st = Status::Internal("generation vector size mismatch");
    }
    if (!st.ok()) {
      return Status(st.code(), "worker " + ch.address + ": " + st.message());
    }
    for (uint32_t s = ch.owned_begin; s < ch.owned_end; ++s) {
      generations[s] = resp.shard_generations[s];
    }
    version = std::max(version, resp.snapshot_version);
    registry_.RecordRegistered(w, ch.owned_begin, ch.owned_end);
    ReleaseClient(w, std::move(client));
  }
  // The owned ranges must tile [0, num_shards) contiguously IN THE GIVEN
  // ORDER: summing workers in index order is then identical to summing
  // shards in ascending order, which is what bit-identity with the
  // single-process engine rests on.
  uint32_t expect = 0;
  for (size_t w = 0; w < channels_.size(); ++w) {
    const Channel& ch = *channels_[w];
    if (ch.owned_begin != expect || ch.owned_end <= ch.owned_begin) {
      return Status::InvalidArgument(
          "worker " + ch.address + " owns [" +
          std::to_string(ch.owned_begin) + ", " +
          std::to_string(ch.owned_end) + ") but the partition needs [" +
          std::to_string(expect) + ", ...): workers must be listed in "
          "ascending contiguous shard-range order");
    }
    expect = ch.owned_end;
  }
  if (expect != num_shards_) {
    return Status::InvalidArgument(
        "worker ranges cover [0, " + std::to_string(expect) + ") of " +
        std::to_string(num_shards_) + " shards");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    snapshot_version_ = std::max(snapshot_version_, version);
    generations_ = std::move(generations);
  }
  connected_ = true;
  return Status::OK();
}

Status RemoteShardSet::RegisterWorker(size_t w, net::NetClient* client,
                                      bool initial) {
  net::NetResponse resp;
  TQ_RETURN_NOT_OK(client->Register(&resp));
  if (!resp.status.ok()) return resp.status;
  const net::WireWorkerInfo& info = resp.worker_info;
  if (info.num_shards == 0 || info.owned_end <= info.owned_begin ||
      info.owned_end > info.num_shards) {
    return Status::Internal("registration reported an empty shard range");
  }
  Channel& ch = *channels_[w];
  if (initial) {
    num_shards_ = info.num_shards;
    psi_ = info.psi;
    num_facilities_ = info.num_facilities;
    std::lock_guard<std::mutex> lock(state_mu_);
    users_total_ = info.users_total;
    snapshot_version_ = resp.snapshot_version;
  } else {
    // Geometry agreement: per-shard answers only compose when every worker
    // partitioned the SAME user set the same way. ψ is compared exactly —
    // it is a configured constant, not a computed value.
    uint64_t users_total;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      users_total = users_total_;
    }
    if (info.num_shards != num_shards_ || info.psi != psi_ ||
        info.num_facilities != num_facilities_ ||
        info.users_total != users_total) {
      return Status::InvalidArgument(
          "partition geometry disagrees with the cluster (num_shards/psi/"
          "num_facilities/users_total)");
    }
    if (ch.owned_end != 0 && (info.owned_begin != ch.owned_begin ||
                              info.owned_end != ch.owned_end)) {
      return Status::InvalidArgument("owned shard range changed across rejoin");
    }
  }
  ch.owned_begin = info.owned_begin;
  ch.owned_end = info.owned_end;
  return Status::OK();
}

std::unique_ptr<net::NetClient> RemoteShardSet::AcquireClient(size_t w) {
  Channel& ch = *channels_[w];
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    if (!ch.idle.empty()) {
      std::unique_ptr<net::NetClient> client = std::move(ch.idle.back());
      ch.idle.pop_back();
      return client;
    }
  }
  auto client = std::make_unique<net::NetClient>();
  client->set_timeout_ms(options_.rpc_timeout_ms);
  if (!client->Connect(ch.host, ch.port).ok()) return nullptr;
  return client;
}

void RemoteShardSet::ReleaseClient(size_t w,
                                   std::unique_ptr<net::NetClient> client) {
  if (!client || !client->connected()) return;
  Channel& ch = *channels_[w];
  std::lock_guard<std::mutex> lock(ch.mu);
  ch.idle.push_back(std::move(client));
}

std::vector<size_t> RemoteShardSet::AliveWorkers() const {
  std::vector<size_t> alive;
  for (size_t w = 0; w < channels_.size(); ++w) {
    if (registry_.alive(w)) alive.push_back(w);
  }
  return alive;
}

void RemoteShardSet::MarkFailed(size_t w) {
  if (registry_.RecordFailure(w)) {
    metrics_.AddWorkerFailure();
    // Sockets pooled before the death are stale (the peer is gone or
    // restarted); drop them so a rejoin starts from fresh dials.
    std::lock_guard<std::mutex> lock(channels_[w]->mu);
    channels_[w]->idle.clear();
  }
}

bool RemoteShardSet::RunWave(
    std::vector<size_t>* parts,
    const std::function<net::NetRequest(size_t)>& make_request,
    const std::function<Status(size_t, net::NetResponse&&)>& consume) {
  struct Slot {
    size_t w = 0;
    std::unique_ptr<net::NetClient> client;
    uint64_t t0 = 0;
    bool sent = false;
  };
  std::vector<Slot> slots;
  slots.reserve(parts->size());
  metrics_.AddCoordRpcs(parts->size());
  // Scatter: send + flush to every participant before reading anyone's
  // answer, so the workers compute concurrently.
  for (size_t w : *parts) {
    Slot slot;
    slot.w = w;
    slot.client = AcquireClient(w);
    slot.t0 = NowNs();
    if (slot.client) {
      Status st = slot.client->Send(make_request(w));
      if (st.ok()) st = slot.client->Flush();
      if (st.ok()) {
        slot.sent = true;
      } else {
        slot.client.reset();
      }
    }
    slots.push_back(std::move(slot));
  }
  // Gather in ascending worker order (parts is ascending).
  std::vector<size_t> failed;
  for (Slot& slot : slots) {
    Status st = slot.sent ? Status::OK()
                          : Status::IOError("worker unreachable");
    if (st.ok()) {
      net::NetResponse resp;
      st = slot.client->Receive(&resp);
      if (st.ok()) {
        channels_[slot.w]->rtt.Record(NowNs() - slot.t0);
        st = consume(slot.w, std::move(resp));
      }
    }
    if (st.ok()) {
      registry_.RecordContact(slot.w);
      ReleaseClient(slot.w, std::move(slot.client));
    } else {
      MarkFailed(slot.w);
      failed.push_back(slot.w);
    }
  }
  if (failed.empty()) return false;
  parts->erase(std::remove_if(parts->begin(), parts->end(),
                              [&failed](size_t w) {
                                return std::find(failed.begin(), failed.end(),
                                                 w) != failed.end();
                              }),
               parts->end());
  return true;
}

Status RemoteShardSet::Rpc(size_t w,
                           const std::function<Status(net::NetClient*)>& fn,
                           uint64_t* rtt_ns) {
  std::unique_ptr<net::NetClient> client = AcquireClient(w);
  if (!client) {
    MarkFailed(w);
    return Status::IOError("worker " + channels_[w]->address +
                           " unreachable");
  }
  metrics_.AddCoordRpcs(1);
  const uint64_t t0 = NowNs();
  const Status st = fn(client.get());
  if (!st.ok()) {
    MarkFailed(w);
    return st;
  }
  const uint64_t rtt = NowNs() - t0;
  channels_[w]->rtt.Record(rtt);
  if (rtt_ns != nullptr) *rtt_ns = rtt;
  registry_.RecordContact(w);
  ReleaseClient(w, std::move(client));
  return st;
}

uint64_t RemoteShardSet::snapshot_version() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return snapshot_version_;
}

std::vector<uint64_t> RemoteShardSet::shard_generations() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return generations_;
}

EngineInfo RemoteShardSet::info() const {
  EngineInfo info;
  info.num_shards = num_shards_;
  info.owned_begin = 0;
  info.owned_end = num_shards_;  // the cluster as a whole owns every shard
  info.psi = psi_;
  info.num_facilities = num_facilities_;
  std::lock_guard<std::mutex> lock(state_mu_);
  info.users_total = users_total_;
  info.snapshot_version = snapshot_version_;
  return info;
}

std::vector<WorkerStatus> RemoteShardSet::Workers() const {
  const std::vector<WorkerRegistry::RowView> rows = registry_.Snapshot();
  std::vector<WorkerStatus> out;
  out.reserve(rows.size());
  for (size_t w = 0; w < rows.size(); ++w) {
    WorkerStatus s;
    s.address = rows[w].address;
    s.state = static_cast<uint8_t>(rows[w].state);
    s.owned_begin = rows[w].owned_begin;
    s.owned_end = rows[w].owned_end;
    s.heartbeats = rows[w].heartbeats;
    s.failures = rows[w].failures;
    s.age_ms = rows[w].age_ms;
    s.rtt = channels_[w]->rtt.Read();
    out.push_back(std::move(s));
  }
  return out;
}

void RemoteShardSet::SubmitAsync(QueryRequest request, TraceContextPtr trace,
                                 ResponseCallback done, uint64_t start_ns) {
  const bool topk = request.kind == QueryKind::kTopK;
  metrics_.AddQuery(topk);
  const uint64_t t0 =
      metrics_.latency_recording() ? (start_ns != 0 ? start_ns : NowNs()) : 0;
  const OpFamily family =
      topk ? OpFamily::kTopKQuery : OpFamily::kServiceQuery;
  if (topk && (request.k == 0 || num_facilities_ == 0)) {
    QueryResponse response;
    response.kind = QueryKind::kTopK;
    response.snapshot_version = snapshot_version();
    if (t0 != 0) metrics_.RecordLatency(family, NowNs() - t0);
    done(std::move(response));
    return;
  }
  pool_.Post([this, request, trace = std::move(trace),
              done = std::move(done), t0, family]() {
    QueryResponse response =
        request.kind == QueryKind::kServiceValue
            ? RunSum(request.facility, trace.get())
            : RunTopK(request.k, trace.get());
    if (t0 != 0) metrics_.RecordLatency(family, NowNs() - t0);
    done(std::move(response));
  });
}

void RemoteShardSet::MarkPartialIfDegraded(size_t answered,
                                           QueryResponse* response) {
  if (answered >= channels_.size()) return;
  metrics_.AddCoordPartial();
  if (response->status.ok()) {
    response->status = Status::Unavailable(
        "partial result: answered by " + std::to_string(answered) + " of " +
        std::to_string(channels_.size()) + " workers");
  }
}

QueryResponse RemoteShardSet::RunSum(FacilityId facility,
                                     TraceContext* trace) {
  QueryResponse response;
  response.kind = QueryKind::kServiceValue;
  response.snapshot_version = snapshot_version();
  if (facility >= num_facilities_) {
    response.status = Status::OutOfRange(
        "facility " + std::to_string(facility) + " >= " +
        std::to_string(num_facilities_));
    return response;
  }
  std::vector<size_t> parts = AliveWorkers();
  const size_t n = channels_.size();
  std::vector<double> values(n, 0.0);
  std::vector<uint8_t> answered(n, 0);
  uint64_t version = 0;
  Status query_status;  // first per-query (not transport) error, if any
  const uint64_t span0 = trace != nullptr ? NowNs() : 0;
  RunWave(
      &parts,
      [facility](size_t) {
        return net::NetRequest::Sum({facility});
      },
      [&](size_t w, net::NetResponse&& resp) -> Status {
        if (!resp.status.ok()) return resp.status;
        if (resp.sums.size() != 1) {
          return Status::Internal("sum frame answer-count mismatch");
        }
        if (resp.sums[0].code != StatusCode::kOk) {
          // The worker rejected the QUERY (not the transport): propagate
          // without scoring the worker dead.
          if (query_status.ok()) {
            query_status = Status(resp.sums[0].code,
                                  "worker rejected facility query");
          }
          return Status::OK();
        }
        values[w] = resp.sums[0].value;
        answered[w] = 1;
        version = std::max(version, resp.snapshot_version);
        return Status::OK();
      });
  if (trace != nullptr) trace->AddSpan(kSpanScatter, -1, span0, NowNs());
  if (!query_status.ok()) {
    response.status = query_status;
    return response;
  }
  // Ascending worker order == ascending shard order (Connect() verified the
  // tiling), so this sum is bit-identical to the single-process gather for
  // integer-valued models.
  double sum = 0.0;
  size_t count = 0;
  for (size_t w = 0; w < n; ++w) {
    if (answered[w] == 0) continue;
    sum += values[w];
    ++count;
  }
  response.value = sum;
  if (version != 0) response.snapshot_version = version;
  MarkPartialIfDegraded(count, &response);
  return response;
}

QueryResponse RemoteShardSet::RunTopK(size_t k, TraceContext* trace) {
  const size_t num_fac = num_facilities_;
  const size_t eff_k = std::min(k, static_cast<size_t>(num_fac));
  const bool prune =
      options_.prune_topk &&
      static_cast<double>(eff_k) <
          options_.prune_skip_ratio * static_cast<double>(num_fac);
  if (!prune) return RunTopKExhaustive(k, trace);

  QueryResponse response;
  response.kind = QueryKind::kTopK;
  response.snapshot_version = snapshot_version();

  const size_t n = channels_.size();
  std::vector<size_t> parts = AliveWorkers();
  // Per-worker round-1 state; only slots in `parts` are ever read, so a
  // worker dying mid-protocol implicitly drops its contribution.
  std::vector<std::vector<double>> bounds(n);
  std::vector<std::vector<double>> exact(n);
  std::vector<std::vector<uint8_t>> known(n);
  uint64_t version = 0;

  const uint64_t r1_t0 = trace != nullptr ? NowNs() : 0;
  RunWave(
      &parts,
      [eff_k](size_t) {
        return net::NetRequest::Bound(static_cast<uint32_t>(eff_k));
      },
      [&](size_t w, net::NetResponse&& resp) -> Status {
        if (!resp.status.ok()) return resp.status;
        if (resp.bounds.size() != num_fac) {
          return Status::Internal("bound sweep facility-count mismatch");
        }
        bounds[w] = std::move(resp.bounds);
        exact[w].assign(num_fac, 0.0);
        known[w].assign(num_fac, 0);
        for (const auto& [f, value] : resp.bound_exacts) {
          if (f >= num_fac) {
            return Status::Internal("bound sweep exact id out of range");
          }
          exact[w][f] = value;
          known[w][f] = 1;
        }
        version = std::max(version, resp.snapshot_version);
        return Status::OK();
      });
  if (trace != nullptr) trace->AddSpan(kSpanRound1, -1, r1_t0, NowNs());

  // Refinement: recompute the candidate set from the CURRENT survivors and
  // re-scatter until nothing is missing. Each iteration either finishes
  // (no deaths during its wave) or loses at least one worker, so the loop
  // runs at most num_workers times.
  for (;;) {
    if (parts.empty()) {
      response.status =
          Status::Unavailable("no workers available for top-k");
      metrics_.AddCoordPartial();
      return response;
    }
    const uint64_t co_t0 = trace != nullptr ? NowNs() : 0;
    // B(f) over survivors, L(f) over survivors that settled f exactly.
    std::vector<double> b(num_fac, 0.0);
    std::vector<double> l(num_fac, 0.0);
    for (size_t w : parts) {
      for (size_t f = 0; f < num_fac; ++f) {
        b[f] += bounds[w][f];
        if (known[w][f] != 0) l[f] += exact[w][f];
      }
    }
    // τ = k-th largest known lower bound; B(f) < τ proves f is not top-k.
    std::vector<double> order = l;
    std::nth_element(order.begin(), order.begin() + (eff_k - 1), order.end(),
                     std::greater<double>());
    const double tau = order[eff_k - 1];
    std::vector<std::vector<FacilityId>> need(n);
    bool any_need = false;
    for (size_t f = 0; f < num_fac; ++f) {
      bool fully = true;
      for (size_t w : parts) {
        if (known[w][f] == 0) fully = false;
      }
      if (fully || b[f] < tau) continue;
      for (size_t w : parts) {
        if (known[w][f] == 0) {
          need[w].push_back(static_cast<FacilityId>(f));
          any_need = true;
        }
      }
    }
    if (trace != nullptr) trace->AddSpan(kSpanCoordinate, -1, co_t0, NowNs());
    if (!any_need) break;

    std::vector<size_t> wave;
    for (size_t w : parts) {
      if (!need[w].empty()) wave.push_back(w);
    }
    const uint64_t r2_t0 = trace != nullptr ? NowNs() : 0;
    const bool lost = RunWave(
        &wave,
        [&need](size_t w) { return net::NetRequest::Sum(need[w]); },
        [&](size_t w, net::NetResponse&& resp) -> Status {
          if (!resp.status.ok()) return resp.status;
          if (resp.sums.size() != need[w].size()) {
            return Status::Internal("refinement answer-count mismatch");
          }
          for (size_t i = 0; i < need[w].size(); ++i) {
            if (resp.sums[i].code != StatusCode::kOk) {
              return Status::Internal("refinement per-query error");
            }
            exact[w][need[w][i]] = resp.sums[i].value;
            known[w][need[w][i]] = 1;
          }
          version = std::max(version, resp.snapshot_version);
          return Status::OK();
        });
    if (trace != nullptr) trace->AddSpan(kSpanRound2, -1, r2_t0, NowNs());
    if (!lost) break;
    parts.erase(std::remove_if(parts.begin(), parts.end(),
                               [this](size_t w) { return !registry_.alive(w); }),
                parts.end());
  }

  // Merge: a facility is complete when every survivor settled it. At least
  // k are (the ≥ τ candidates were all refined), and every pruned facility
  // provably ranks below them.
  const uint64_t mg_t0 = trace != nullptr ? NowNs() : 0;
  std::vector<RankedFacility> complete;
  for (size_t f = 0; f < num_fac; ++f) {
    bool fully = true;
    for (size_t w : parts) {
      if (known[w][f] == 0) fully = false;
    }
    if (!fully) continue;
    double sum = 0.0;
    for (size_t w : parts) sum += exact[w][f];
    complete.push_back(RankedFacility{static_cast<FacilityId>(f), sum});
  }
  Rank(std::move(complete), eff_k, &response);
  if (version != 0) response.snapshot_version = version;
  if (trace != nullptr) trace->AddSpan(kSpanMerge, -1, mg_t0, NowNs());
  MarkPartialIfDegraded(parts.size(), &response);
  return response;
}

QueryResponse RemoteShardSet::RunTopKExhaustive(size_t k,
                                                TraceContext* trace) {
  QueryResponse response;
  response.kind = QueryKind::kTopK;
  response.snapshot_version = snapshot_version();
  const size_t num_fac = num_facilities_;
  const size_t eff_k = std::min(k, static_cast<size_t>(num_fac));
  std::vector<FacilityId> all(num_fac);
  for (size_t f = 0; f < num_fac; ++f) all[f] = static_cast<FacilityId>(f);

  const size_t n = channels_.size();
  std::vector<size_t> parts = AliveWorkers();
  std::vector<std::vector<double>> values(n);
  uint64_t version = 0;
  const uint64_t sc_t0 = trace != nullptr ? NowNs() : 0;
  RunWave(
      &parts,
      [&all](size_t) { return net::NetRequest::Sum(all); },
      [&](size_t w, net::NetResponse&& resp) -> Status {
        if (!resp.status.ok()) return resp.status;
        if (resp.sums.size() != num_fac) {
          return Status::Internal("exhaustive answer-count mismatch");
        }
        values[w].resize(num_fac);
        for (size_t f = 0; f < num_fac; ++f) {
          if (resp.sums[f].code != StatusCode::kOk) {
            return Status::Internal("exhaustive per-query error");
          }
          values[w][f] = resp.sums[f].value;
        }
        version = std::max(version, resp.snapshot_version);
        return Status::OK();
      });
  if (trace != nullptr) trace->AddSpan(kSpanScatter, -1, sc_t0, NowNs());
  if (parts.empty()) {
    response.status = Status::Unavailable("no workers available for top-k");
    metrics_.AddCoordPartial();
    return response;
  }
  const uint64_t mg_t0 = trace != nullptr ? NowNs() : 0;
  std::vector<RankedFacility> complete;
  complete.reserve(num_fac);
  for (size_t f = 0; f < num_fac; ++f) {
    double sum = 0.0;
    for (size_t w : parts) sum += values[w][f];
    complete.push_back(RankedFacility{static_cast<FacilityId>(f), sum});
  }
  Rank(std::move(complete), eff_k, &response);
  if (version != 0) response.snapshot_version = version;
  if (trace != nullptr) trace->AddSpan(kSpanMerge, -1, mg_t0, NowNs());
  MarkPartialIfDegraded(parts.size(), &response);
  return response;
}

void RemoteShardSet::Rank(std::vector<RankedFacility> complete, size_t k,
                          QueryResponse* response) {
  const size_t take = std::min(k, complete.size());
  std::partial_sort(complete.begin(), complete.begin() + take, complete.end(),
                    RankedBefore);
  complete.resize(take);
  response->ranked = std::move(complete);
}

std::vector<uint32_t> RemoteShardSet::ApplyUpdates(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  // Global ids are assigned deterministically (dense append in arrival
  // order over the full user set), so the coordinator can compute them
  // without any worker — and every worker's echo must agree.
  uint64_t base;
  std::vector<uint64_t> merged;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    base = users_total_;
    merged = generations_;
  }
  std::vector<uint32_t> ids(batch.inserts.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<uint32_t>(base + i);
  }

  std::vector<size_t> parts = AliveWorkers();
  uint64_t version = 0;
  RunWave(
      &parts,
      [&batch](size_t) {
        return net::NetRequest::Update(batch.inserts, batch.removes);
      },
      [&](size_t w, net::NetResponse&& resp) -> Status {
        if (!resp.status.ok()) return resp.status;
        if (resp.assigned_ids != ids) {
          return Status::Internal("assigned-id divergence");
        }
        if (resp.shard_generations.size() != num_shards_) {
          return Status::Internal("generation vector size mismatch");
        }
        const Channel& ch = *channels_[w];
        for (uint32_t s = ch.owned_begin; s < ch.owned_end; ++s) {
          merged[s] = resp.shard_generations[s];
        }
        version = std::max(version, resp.snapshot_version);
        return Status::OK();
      });
  metrics_.AddInserted(ids.size());
  metrics_.AddRemoved(batch.removes.size());
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    users_total_ = base + ids.size();
    generations_ = std::move(merged);
    snapshot_version_ = std::max(snapshot_version_, version);
  }
  return ids;
}

void RemoteShardSet::TopKBoundSweepAsync(size_t, BoundSweepCallback done) {
  BoundSweepResult result;
  result.status =
      Status::Unimplemented("coordinators do not serve bound sweeps");
  result.snapshot_version = snapshot_version();
  done(std::move(result));
}

void RemoteShardSet::Tick() {
  if (!connected_) return;
  if (heartbeat_inflight_.exchange(true, std::memory_order_acq_rel)) return;
  pool_.Post([this]() { HeartbeatPass(); });
}

void RemoteShardSet::HeartbeatPass() {
  for (size_t w = 0; w < channels_.size(); ++w) {
    if (registry_.alive(w)) {
      const uint64_t seq =
          heartbeat_seq_.fetch_add(1, std::memory_order_relaxed);
      metrics_.AddHeartbeatsSent(1);
      uint64_t rtt = 0;
      const Status st = Rpc(
          w,
          [seq](net::NetClient* client) -> Status {
            net::NetResponse resp;
            TQ_RETURN_NOT_OK(client->Heartbeat(seq, &resp));
            if (!resp.status.ok()) return resp.status;
            if (resp.heartbeat_seq != seq) {
              return Status::Internal("heartbeat sequence echo mismatch");
            }
            return Status::OK();
          },
          &rtt);
      if (st.ok()) registry_.RecordHeartbeat(w, rtt);
    } else {
      // Dead worker: attempt a rejoin. Fresh dial (the pool was cleared on
      // death), full re-registration so the geometry is re-verified — a
      // restarted worker that missed updates reports a stale users_total
      // and is refused until it is rebuilt consistently.
      auto client = std::make_unique<net::NetClient>();
      client->set_timeout_ms(options_.rpc_timeout_ms);
      if (!client->Connect(channels_[w]->host, channels_[w]->port).ok()) {
        continue;
      }
      if (RegisterWorker(w, client.get(), /*initial=*/false).ok()) {
        registry_.RecordRegistered(w, channels_[w]->owned_begin,
                                   channels_[w]->owned_end);
        ReleaseClient(w, std::move(client));
      }
    }
  }
  for (size_t w : registry_.CheckTimeouts()) {
    metrics_.AddWorkerFailure();
    std::lock_guard<std::mutex> lock(channels_[w]->mu);
    channels_[w]->idle.clear();
  }
  heartbeat_inflight_.store(false, std::memory_order_release);
}

Status RemoteShardSet::SaveWorkerSet(
    const std::string& data_dir,
    const std::vector<std::pair<std::string, uint16_t>>& workers) {
  if (::mkdir(data_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + data_dir + ": " +
                           std::strerror(errno));
  }
  const std::string path = data_dir + "/" + kWorkerSetFile;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  for (const auto& [host, port] : workers) {
    std::fprintf(f, "%s:%u\n", host.c_str(), port);
  }
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("write " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status RemoteShardSet::LoadWorkerSet(
    const std::string& data_dir,
    std::vector<std::pair<std::string, uint16_t>>* workers) {
  const std::string path = data_dir + "/" + kWorkerSetFile;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("no saved worker set at " + path);
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string endpoint(line);
    while (!endpoint.empty() &&
           (endpoint.back() == '\n' || endpoint.back() == '\r')) {
      endpoint.pop_back();
    }
    if (endpoint.empty()) continue;
    const size_t colon = endpoint.rfind(':');
    unsigned long port = 0;
    if (colon == 0 || colon == std::string::npos ||
        colon + 1 == endpoint.size()) {
      std::fclose(f);
      return Status::IOError("bad worker endpoint '" + endpoint + "' in " +
                             path);
    }
    const std::string digits = endpoint.substr(colon + 1);
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        std::fclose(f);
        return Status::IOError("bad worker endpoint '" + endpoint +
                               "' in " + path);
      }
    }
    port = std::strtoul(digits.c_str(), nullptr, 10);
    if (port == 0 || port > 65535) {
      std::fclose(f);
      return Status::IOError("bad worker endpoint '" + endpoint + "' in " +
                             path);
    }
    workers->emplace_back(endpoint.substr(0, colon),
                          static_cast<uint16_t>(port));
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace tq::runtime
