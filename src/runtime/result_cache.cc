#include "runtime/result_cache.h"

#include <algorithm>

namespace tq::runtime {

ResultCache::ResultCache(size_t capacity, size_t num_shards) {
  const size_t n = std::max<size_t>(1, num_shards);
  // Round the per-shard budget up so the total is never below `capacity`.
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
  // A small top-k section ON TOP of `capacity` (see header) memoises
  // gathered answers; they are few but each one saves a full per-shard
  // catalog sweep.
  topk_capacity_ = capacity == 0 ? 0 : std::max<size_t>(8, capacity / 64);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool ResultCache::Get(const Key& key, double* value) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->value;
  return true;
}

size_t ResultCache::Put(const Key& key, double value) {
  if (!enabled()) return 0;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return 0;
  }
  shard.lru.push_front(Entry{key, value});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() <= per_shard_capacity_) return 0;
  shard.index.erase(shard.lru.back().key);
  shard.lru.pop_back();
  return 1;
}

bool ResultCache::GetTopK(const TopKKey& key,
                          std::vector<RankedFacility>* ranked) {
  if (topk_capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(topk_mu_);
  const auto it = topk_index_.find(key);
  if (it == topk_index_.end()) return false;
  topk_lru_.splice(topk_lru_.begin(), topk_lru_, it->second);
  *ranked = it->second->ranked;
  return true;
}

size_t ResultCache::PutTopK(const TopKKey& key,
                            std::vector<RankedFacility> ranked) {
  if (topk_capacity_ == 0) return 0;
  std::lock_guard<std::mutex> lock(topk_mu_);
  const auto it = topk_index_.find(key);
  if (it != topk_index_.end()) {
    it->second->ranked = std::move(ranked);
    topk_lru_.splice(topk_lru_.begin(), topk_lru_, it->second);
    return 0;
  }
  topk_lru_.push_front(TopKEntry{key, std::move(ranked)});
  topk_index_.emplace(key, topk_lru_.begin());
  if (topk_lru_.size() <= topk_capacity_) return 0;
  topk_index_.erase(topk_lru_.back().key);
  topk_lru_.pop_back();
  return 1;
}

size_t ResultCache::InvalidateBefore(uint64_t version) {
  size_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.snapshot_version < version) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  // Top-k answers of superseded snapshots: every generation component is the
  // snapshot version on the unsharded engine; on the sharded engine a
  // version bump republished at least one shard, so a vector with any
  // stale component can never hit again and is safe to drop.
  dropped += EraseStaleTopK([version](const TopKKey& key) {
    for (const uint64_t g : key.gens) {
      if (g < version) return true;
    }
    return false;
  });
  return dropped;
}

size_t ResultCache::InvalidateShardBefore(uint32_t shard,
                                          uint64_t generation) {
  return InvalidateShardsBefore({shard}, generation);
}

size_t ResultCache::InvalidateShardsBefore(
    const std::vector<uint32_t>& shards, uint64_t generation) {
  if (shards.empty()) return 0;
  size_t dropped = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (auto it = s->lru.begin(); it != s->lru.end();) {
      if (it->key.snapshot_version < generation &&
          std::find(shards.begin(), shards.end(), it->key.shard) !=
              shards.end()) {
        s->index.erase(it->key);
        it = s->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  // Per-shard top-k invalidation: a gathered answer dies exactly when one
  // of the republished shards contributed an older generation to its key.
  dropped += EraseStaleTopK([&shards, generation](const TopKKey& key) {
    for (const uint32_t shard : shards) {
      if (shard < key.gens.size() && key.gens[shard] < generation) {
        return true;
      }
    }
    return false;
  });
  return dropped;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  std::lock_guard<std::mutex> lock(topk_mu_);
  total += topk_lru_.size();
  return total;
}

}  // namespace tq::runtime
