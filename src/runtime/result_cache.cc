#include "runtime/result_cache.h"

#include <algorithm>

namespace tq::runtime {

ResultCache::ResultCache(size_t capacity, size_t num_shards) {
  const size_t n = std::max<size_t>(1, num_shards);
  // Round the per-shard budget up so the total is never below `capacity`.
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool ResultCache::Get(const Key& key, double* value) {
  if (!enabled()) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->value;
  return true;
}

size_t ResultCache::Put(const Key& key, double value) {
  if (!enabled()) return 0;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return 0;
  }
  shard.lru.push_front(Entry{key, value});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() <= per_shard_capacity_) return 0;
  shard.index.erase(shard.lru.back().key);
  shard.lru.pop_back();
  return 1;
}

size_t ResultCache::InvalidateBefore(uint64_t version) {
  size_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.snapshot_version < version) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

size_t ResultCache::InvalidateShardBefore(uint32_t shard,
                                          uint64_t generation) {
  return InvalidateShardsBefore({shard}, generation);
}

size_t ResultCache::InvalidateShardsBefore(
    const std::vector<uint32_t>& shards, uint64_t generation) {
  if (shards.empty()) return 0;
  size_t dropped = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (auto it = s->lru.begin(); it != s->lru.end();) {
      if (it->key.snapshot_version < generation &&
          std::find(shards.begin(), shards.end(), it->key.shard) !=
              shards.end()) {
        s->index.erase(it->key);
        it = s->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace tq::runtime
