// Scatter/gather serving across N sharded TQ-trees.
//
// The unsharded Engine (engine.h) clones and republishes the WHOLE tree on
// every write batch and answers every query from one tree. This layer
// partitions the user set into N shards by Z-order range (shard_router.h),
// each shard owning its own TQ-tree + evaluator over its own user subset:
//
//   * Queries scatter: a Submit fans one task per shard onto the thread
//     pool; each task answers from its shard's frozen snapshot (cache-
//     assisted), and the last finisher gathers — summing per-shard service
//     values in ascending shard order, or merging per-shard per-facility
//     value vectors into one ranked top-k list with the library's
//     (value desc, facility id asc) tie-break. No pool thread ever blocks
//     waiting on another task, so a pool of any size cannot deadlock.
//   * Writers are incremental twice over: a trajectory insert/remove batch
//     is routed per shard, and only the AFFECTED shards are forked
//     (TQTree::Fork) and republished — and each fork path-copies only the
//     node pages the batch's root-to-leaf paths touch, sharing the rest
//     (z-indexes included) with the previous shard state. Untouched shards
//     keep their snapshot, generation, and — because cache keys carry
//     (shard, shard generation) — their warm result-cache entries. Gathered
//     top-k answers are memoised under the full per-shard generation
//     vector, so they too survive writes to shards and die exactly when a
//     contributing shard republishes.
//   * Correctness of the merge: service is additive over a disjoint user
//     partition, SO(U, f) = Σ_s SO(U_s, f). Whole trajectories (and, in
//     segmented mode, all segments of a trajectory) stay within one shard,
//     so no cross-shard deduplication is needed. Per-shard top-k lists
//     alone would NOT compose — a global winner may rank low in every
//     shard — so the gather works with per-facility values, not lists.
//     For integer-valued service models (point counts, endpoint counts)
//     the gathered sums are exactly the unsharded values, bit for bit.
//   * Top-k is BOUND-AND-PRUNE, not an exhaustive per-facility sweep
//     (two rounds; see GatherState in sharded_engine.cc):
//       round 1  every shard computes a cheap aggregate upper bound
//                UB_s(f) for every facility (TQTree::UpperBound — node
//                aggregates only, no entry ever scanned), then walks its
//                facilities in descending-bound order with an incremental
//                next-best cursor, exactly evaluating until the cursor's
//                bound falls below the running threshold — the larger of
//                the shard's own k-th exact value and the global floor
//                other shards have already published.
//       gather   the coordinator (the last round-1 task) sums bounds
//                B(f) = Σ_s UB_s(f) and partial exact values
//                L(f) = Σ_{s evaluated f} SO_s(f) ≤ SO(U, f), takes the
//                running k-th threshold τ = k-th largest L, and keeps as
//                candidates only facilities with B(f) ≥ τ — every pruned
//                facility satisfies SO(U, f) ≤ B(f) < τ ≤ k-th exact
//                value, so it cannot reach the answer even on a tie.
//       round 2  shards refine just the candidates they have not already
//                evaluated; the final merge ranks fully-evaluated
//                facilities with the usual (value desc, id asc) order.
//     Answers are bit-identical to the exhaustive gather: the winners'
//     values are the same per-shard sums in the same shard order, and the
//     pruned facilities are provably strictly below the k-th value.
//     Cache keys are unchanged; only hit accounting moves — a top-k
//     response reports cache_hit solely for memoised whole-answer hits,
//     while per-(facility, shard) hits inside the rounds still count in
//     the hit/miss metrics.
#ifndef TQCOVER_RUNTIME_SHARDED_ENGINE_H_
#define TQCOVER_RUNTIME_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/engine.h"
#include "runtime/metrics.h"
#include "runtime/result_cache.h"
#include "runtime/serving_engine.h"
#include "runtime/shard_router.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "storage/checkpoint.h"
#include "storage/durability.h"

namespace tq::runtime {

/// Sharded engine construction parameters.
struct ShardedEngineOptions {
  /// Number of user-set partitions, each with its own TQ-tree.
  size_t num_shards = 4;
  /// Worker threads executing per-shard scatter tasks.
  size_t num_threads = 4;
  /// Total service-value cache entries across lock shards; 0 disables.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Top-k protocol: bound-and-prune (default) or the exhaustive per-shard
  /// facility sweep. Both return bit-identical answers; the switch exists
  /// for A/B measurement and cross-checking tests.
  bool prune_topk = true;
  /// TQ-tree descent budget of the per-facility bound sweep
  /// (TQTree::UpperBound): deeper = tighter bounds, more nodes visited.
  int bound_levels = 4;
  /// Adaptive protocol selection: when the effective k (min(k, |F|)) reaches
  /// `prune_skip_ratio · |F|`, the bound sweep cannot prune enough to pay
  /// for itself — the query goes straight to the exhaustive gather instead
  /// (still bit-identical). > 1.0 never skips (the effective k tops out at
  /// |F|, so exactly 1.0 still skips at k = |F|); 0.0 always skips (i.e.
  /// always exhaustive, like prune_topk = false).
  double prune_skip_ratio = 0.5;
  /// Engine-owned traces for scatter queries submitted WITHOUT a caller
  /// context: start one every `trace_sample` queries (0 = never). A trace
  /// costs an allocation plus span clock reads in every shard task, so
  /// tracing every query would tax the hot path; sampling keeps the ring
  /// representative instead. Ignored — every query is traced — while the
  /// slow-query log is armed (a slow query can only be logged if it was
  /// traced from the start).
  size_t trace_sample = 32;
  /// Owned Z-order shard range [owned_begin, owned_end) for shard-worker
  /// processes: the router still partitions the FULL user set `num_shards`
  /// ways (so every worker agrees on the geometry and on global id
  /// assignment), but only the owned shards get trees built — the others
  /// stay empty and contribute an exact 0.0 to every sum, keeping a set of
  /// workers with disjoint covering ranges bit-identical to one process.
  /// (0, 0) means "own everything" (the single-process default).
  uint32_t owned_begin = 0;
  uint32_t owned_end = 0;
  /// Durability subsystem configuration (storage/durability.h). With a
  /// non-empty data_dir the constructor demands a VIRGIN directory (recover
  /// existing state with ShardedEngine::Recover instead), writes an initial
  /// checkpoint, and WAL-logs every ApplyUpdates batch before publishing it.
  storage::DurabilityOptions durability;
  /// TQ-tree construction parameters (the service model lives here).
  TQTreeOptions tree;
};

/// One shard's immutable published state. `generation` is the engine version
/// at which this shard was last republished — it only moves when a write
/// batch touches this shard, and it versions the shard's cache entries.
struct ShardState {
  uint32_t shard = 0;
  uint64_t generation = 0;
  std::shared_ptr<const TrajectorySet> users;  // this shard's users only
  /// Frozen (all z-indexes built); non-const only because the query API
  /// takes TQTree* — no query mutates a frozen tree.
  std::shared_ptr<TQTree> tree;
  std::shared_ptr<const ServiceEvaluator> eval;
};
using ShardStatePtr = std::shared_ptr<const ShardState>;

/// The engine-wide immutable snapshot: the vector of per-shard states plus
/// the shared facility side. A single-shard publish swaps one slot and bumps
/// `version`; the other slots are shared with the previous snapshot.
struct ShardedSnapshot {
  uint64_t version = 0;
  std::vector<ShardStatePtr> shards;
  std::shared_ptr<const TrajectorySet> facilities;
  std::shared_ptr<const FacilityCatalog> catalog;
};
using ShardedSnapshotPtr = std::shared_ptr<const ShardedSnapshot>;

/// Multi-threaded scatter/gather engine over sharded TQ-trees. Thread-safe:
/// any thread may Submit / RunBatch / ApplyUpdates / snapshot() concurrently.
/// Writers are serialized among themselves; readers never block. Speaks the
/// same QueryRequest/QueryResponse/UpdateBatch protocol as Engine.
class ShardedEngine : public ServingEngine {
 public:
  ShardedEngine(TrajectorySet users, TrajectorySet facilities,
                ShardedEngineOptions options);

  /// Rebuilds an engine from `options.durability.data_dir`: loads the
  /// current checkpoint (geometry, facilities, registry, owned shard trees),
  /// replays the WAL records after its LSN through the normal update path,
  /// and resumes logging — the recovered engine is bit-identical to the
  /// SIGKILL'd one, including snapshot version and per-shard generations.
  /// `options.tree` must match the checkpoint's geometry hash;
  /// `options.num_shards` is taken from the manifest. kNotFound when the
  /// data dir has no committed checkpoint (callers fall back to the
  /// constructor for a first boot).
  static Result<std::unique_ptr<ShardedEngine>> Recover(
      ShardedEngineOptions options);

  /// Stops the checkpointer, drains in-flight scatter tasks, then joins the
  /// worker pool.
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  const ShardedEngineOptions& options() const { return options_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Mutable registry access for front-ends layered on the engine (the net
  /// server folds its connection/byte counters in here so one JSON snapshot
  /// covers the whole serving stack).
  MetricsRegistry* mutable_metrics() override { return &metrics_; }
  /// Recent-trace ring + slow-query log for this engine's queries. The net
  /// server reads Recent() for the stats frame; `serve` wires the slow-log
  /// sink and threshold through the mutable accessor.
  const Tracer& tracer() const override { return tracer_; }
  Tracer* mutable_tracer() override { return &tracer_; }
  const ShardRouter& router() const { return router_; }
  size_t num_shards() const { return router_.num_shards(); }
  /// Whether shard `s` is in this engine's owned range.
  bool Owns(size_t s) const { return s >= owned_begin_ && s < owned_end_; }

  // ServingEngine introspection (see serving_engine.h).
  double psi() const override { return options_.tree.model.psi; }
  uint64_t snapshot_version() const override { return snapshot()->version; }
  std::vector<uint64_t> shard_generations() const override;
  EngineInfo info() const override;

  /// The currently published snapshot (cheap: one shared_ptr copy).
  ShardedSnapshotPtr snapshot() const;

  /// Where a global trajectory id lives. Global ids are assigned densely in
  /// insertion order (initial set first, then ApplyUpdates batches).
  struct UserLocation {
    uint32_t shard = 0;
    uint32_t local_id = 0;  // id within the shard's TrajectorySet
  };
  /// Lookup for tests/tools; `global_id` must be < total inserted users.
  UserLocation LocateUser(uint32_t global_id) const;
  /// Total users ever added (inserts are append-only; removes de-index).
  size_t NumUsersTotal() const;

  /// Scatters one query across all shards; the returned future completes
  /// when the last shard's task has been gathered.
  std::future<QueryResponse> Submit(QueryRequest request);

  /// Completion callback for SubmitAsync. Runs exactly once: on the pool
  /// thread that finishes the gather, or inline on the submitting thread
  /// for cache hits, rejected requests, and degenerate queries.
  using ResponseCallback = ServingEngine::ResponseCallback;

  /// Callback-style Submit — the dispatch hook event-driven front-ends
  /// (src/net/server.h) use to avoid parking a thread per in-flight query.
  /// The callback must not block and must not destroy the engine.
  void SubmitAsync(QueryRequest request, ResponseCallback done);

  /// SubmitAsync with a caller-owned trace context: the scatter/gather path
  /// appends its spans (queue wait, per-shard sweep/eval/refine, coordinate,
  /// merge) to `trace`, and the CALLER finishes it (Tracer::Finish) — the
  /// net server shares one frame trace across all of a frame's sub-queries
  /// this way. Passing nullptr is identical to the two-argument overload:
  /// scatter queries get an engine-owned trace finished just before `done`.
  /// `start_ns` (optional) backdates the query's latency-histogram sample
  /// to an earlier NowNs() reading — the net server passes the frame's
  /// receive timestamp, which both amortizes one clock read across the
  /// frame's whole batch and charges decode + dispatch time to the query,
  /// where it belongs. 0 means "read the clock here".
  void SubmitAsync(QueryRequest request, TraceContextPtr trace,
                   ResponseCallback done, uint64_t start_ns = 0) override;

  /// Round-1 bound sweep over the owned shards, packaged for a remote
  /// coordinator (serves kBound frames): per-facility Σ UB_s(f) over the
  /// owned shards plus the facilities the sweep settled exactly. Runs the
  /// SAME per-shard cursor machinery as a local pruned top-k query round 1
  /// — the sweep is advisory there and is advisory here; the coordinator's
  /// threshold proof is what makes pruning sound.
  void TopKBoundSweepAsync(size_t k, BoundSweepCallback done) override;

  /// Submits every request, then blocks for all answers (in request order).
  std::vector<QueryResponse> RunBatch(const std::vector<QueryRequest>& batch);

  /// Routes `batch` per shard and republishes ONLY the affected shards
  /// (copy-on-write clone per shard). Returns the global ids assigned to
  /// `batch.inserts` (in order). Serialized internally; concurrent readers
  /// are never blocked.
  std::vector<uint32_t> ApplyUpdates(const UpdateBatch& batch) override;

  /// Forces one synchronous checkpoint → WAL-trim → compaction cycle
  /// (storage::DurabilityManager::CheckpointNow). kUnimplemented without a
  /// data dir.
  Status Checkpoint() override;
  /// What recovery did at startup; checkpoint_lsn and last_lsn track the
  /// live subsystem state, the replay fields are frozen at construction.
  storage::RecoveryInfo recovery_info() const override;

 private:
  struct GatherState;
  struct RecoverTag {};

  /// Recovery shell: adopts the manifest's partition geometry (world +
  /// splits) and resolves the owned range, but loads no state — RecoverFrom
  /// does that next.
  ShardedEngine(RecoverTag, ShardedEngineOptions options,
                const storage::CheckpointManifest& manifest);
  /// Loads registry + shard states from `checkpoint_dir` and replays the
  /// WAL; only Recover calls this, before the engine is visible to anyone.
  Status RecoverFrom(const std::string& checkpoint_dir,
                     const storage::CheckpointManifest& manifest);
  /// Creates the DurabilityManager and opens the WAL at `next_lsn`;
  /// `initial_checkpoint` additionally writes the first checkpoint (fresh
  /// durable start). Crashes the process on failure — a durable engine that
  /// cannot log is misconfigured, not degraded.
  void StartDurability(uint64_t next_lsn, bool initial_checkpoint);

  /// Per-shard task entry points. `post_ns` is the Post() timestamp of the
  /// task (0 when the query is untraced) — the queue-wait span.
  void ExecuteShard(const std::shared_ptr<GatherState>& state, size_t shard,
                    uint64_t post_ns);
  void Gather(GatherState* state);
  /// Round 1 of the pruned top-k protocol: one shard's bound sweep plus
  /// cursor-driven exact evaluation of its candidate frontier.
  void ExecuteTopKBoundRound(const std::shared_ptr<GatherState>& state,
                             size_t shard, uint64_t post_ns);
  /// Round 2: one shard refines the coordinator's surviving candidates.
  void ExecuteTopKRefineRound(const std::shared_ptr<GatherState>& state,
                              size_t shard, uint64_t post_ns);
  /// Coordinator: runs in the last round-1 task; computes the global k-th
  /// threshold, selects candidates, and either finishes or fans out round 2.
  void CoordinateTopK(const std::shared_ptr<GatherState>& state);
  /// Final merge of a pruned top-k query; fulfils the promise.
  void FinishTopK(GatherState* state);
  /// Final merge of a TopKBoundSweepAsync: sums per-shard bounds and
  /// collects exactly-settled facilities instead of ranking.
  void FinishBoundSweep(GatherState* state);
  /// The ranking-and-memoisation tail both top-k paths share: sorts
  /// `complete` (exact per-facility totals) by (value desc, id asc),
  /// truncates to k, and memoises under the snapshot's generation vector.
  /// Keeping it in one place keeps the pruned path provably bit-identical
  /// to the exhaustive one.
  void RankTopK(GatherState* state, std::vector<RankedFacility> complete,
                QueryResponse* response);
  /// Cache-assisted SO(U_s, f) on one shard's frozen snapshot.
  double ShardServiceValue(const ShardState& shard,
                           const FacilityCatalog& catalog, FacilityId f,
                           QueryStats* stats, bool* cache_hit);
  void Publish(ShardedSnapshotPtr snap, uint64_t shards_republished);

  /// ApplyUpdates body. `log_to_wal` is false only during WAL replay (the
  /// records being applied are already on disk).
  std::vector<uint32_t> ApplyUpdatesImpl(const UpdateBatch& batch,
                                         bool log_to_wal);
  /// DurabilityManager's WriteCheckpointFn: captures (snapshot, registry,
  /// logical counts) consistently under writer_mu_, then streams everything
  /// into a CheckpointWriter OFF the lock — the snapshot shared_ptr pins the
  /// trees while writers keep publishing. Returns the captured LSN.
  Result<uint64_t> WriteCheckpointImpl();
  /// DurabilityManager's CompactFn: round-trips each owned shard tree
  /// through the snapshot codec into fresh dense pages and swaps it in at
  /// the SAME version + generation (answers, cache keys, and the recovery
  /// LSN sequence are all unchanged — only the page backing is). Returns
  /// node pages the live snapshot stopped pinning.
  uint64_t CompactShards(uint64_t lsn);

  ShardedEngineOptions options_;
  /// Resolved owned range ((0,0) in options = own all shards).
  uint32_t owned_begin_ = 0;
  uint32_t owned_end_ = 0;
  MetricsRegistry metrics_;
  Tracer tracer_;
  ResultCache cache_;
  ShardRouter router_;

  mutable std::mutex snapshot_mu_;  // guards snapshot_ pointer swap only
  ShardedSnapshotPtr snapshot_;

  std::mutex writer_mu_;  // serializes ApplyUpdates
  mutable std::mutex registry_mu_;  // guards users_ global-id registry
  std::vector<UserLocation> users_;  // global id -> (shard, local id)
  /// Logical user count per shard — what the shard's TrajectorySet size
  /// WOULD be if the shard were owned. Owned shards match their set's size
  /// exactly; non-owned shards advance only this counter, so local-id
  /// assignment (and therefore the global registry) is identical across
  /// every worker and the single process. Written in the constructor and
  /// under writer_mu_ only.
  std::vector<uint32_t> shard_user_counts_;

  /// Frozen at construction (replay fields); see recovery_info().
  storage::RecoveryInfo recovery_info_;
  /// Null without a data dir. The destructor Stop()s it before members are
  /// torn down — its closures touch everything above.
  std::unique_ptr<storage::DurabilityManager> durability_;

  ThreadPool pool_;  // last member: joins before the rest is torn down
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_SHARDED_ENGINE_H_
