// Per-query tracing: named spans recorded into a fixed-size ring of recent
// traces, plus a threshold-gated slow-query log of structured JSON lines.
//
// Ownership model (who starts and who finishes a trace):
//   * The net server starts one sampled TraceContext per decoded frame
//     (decode span), hands it to every sub-query of the frame via the
//     ShardedEngine::SubmitAsync(request, trace, done) overload, appends
//     the encode span, and calls Tracer::Finish when the frame's last
//     response is staged.
//   * For in-process scatter queries submitted WITHOUT a caller trace, the
//     sharded engine starts its own context (sampled 1-in-trace_sample,
//     or every query while the slow log is armed) and finishes it right
//     before invoking the completion callback — so slow queries are traced
//     even when no front-end asked for it.
// Shard tasks only ever APPEND spans to whatever context the GatherState
// carries; they never finish it.
//
// Concurrency: TraceContext::AddSpan is wait-free (atomic slot claim into a
// fixed array; over-budget spans are counted as dropped, never reallocated).
// Span slots are plain writes — the query's completion edge (the gather
// barrier's release/acquire on the remaining-counter, or a thread join)
// must order all AddSpan calls before Finish reads them, which holds for
// every engine path by construction. The Tracer ring serializes per slot
// with a try_lock so a publishing writer never blocks: on contention the
// trace is counted dropped and the writer moves on.
#ifndef TQCOVER_RUNTIME_TRACE_H_
#define TQCOVER_RUNTIME_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/histogram.h"

namespace tq::runtime {

/// One timed, named region inside a query. `name` must point at a string
/// with static storage duration (span recording never copies it).
struct TraceSpan {
  const char* name = nullptr;
  int32_t shard = -1;  // -1 = not shard-specific (decode, merge, encode)
  uint64_t start_ns = 0;  // NowNs() timestamps; made trace-relative on Finish
  uint64_t end_ns = 0;
};

/// Mutable in-flight trace. Created via Tracer::Start (or directly for
/// tests); shared by pointer across the scatter tasks of one query/frame.
class TraceContext {
 public:
  static constexpr size_t kMaxSpans = 48;

  /// `op` must be a static-storage string ("sum", "topk", "net_sum", ...);
  /// `detail` is op-defined (facility id for sums, k for top-k, sub-query
  /// count for net frames). `start_ns` = 0 means "now"; the net server
  /// passes the frame arrival time so the decode span sits inside the trace.
  TraceContext(const char* op, uint64_t detail, uint64_t start_ns = 0)
      : op_(op), detail_(detail),
        start_ns_(start_ns != 0 ? start_ns : NowNs()) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Wait-free append. Timestamps are absolute NowNs() values; spans beyond
  /// kMaxSpans are counted in dropped_spans() instead of recorded.
  void AddSpan(const char* name, int32_t shard, uint64_t start_ns,
               uint64_t end_ns) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= kMaxSpans) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    spans_[i] = TraceSpan{name, shard, start_ns, end_ns};
  }

  const char* op() const { return op_; }
  uint64_t detail() const { return detail_; }
  uint64_t start_ns() const { return start_ns_; }
  size_t num_spans() const {
    const size_t n = next_.load(std::memory_order_relaxed);
    return n < kMaxSpans ? n : kMaxSpans;
  }
  uint32_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const TraceSpan& span(size_t i) const { return spans_[i]; }

 private:
  const char* op_;
  uint64_t detail_;
  uint64_t start_ns_;
  std::atomic<size_t> next_{0};
  std::atomic<uint32_t> dropped_{0};
  TraceSpan spans_[kMaxSpans];
};

using TraceContextPtr = std::shared_ptr<TraceContext>;

/// A finished, self-contained trace as stored in the ring / sent on the
/// wire. Span timestamps are RELATIVE to the trace start (offsets in ns),
/// so they stay meaningful across processes and machines.
struct Trace {
  struct Span {
    std::string name;
    int32_t shard = -1;
    uint64_t start_ns = 0;  // offset from trace start
    uint64_t end_ns = 0;
  };
  std::string op;
  uint64_t detail = 0;
  uint64_t total_ns = 0;
  uint64_t snapshot_version = 0;
  int64_t unix_ms = 0;  // wall-clock completion time (system_clock)
  uint32_t dropped_spans = 0;
  std::vector<Span> spans;
};

/// One structured JSON line, the slow-query-log format:
/// {"op":..,"detail":..,"total_ms":..,"snapshot_version":..,"unix_ms":..,
///  "dropped_spans":..,"spans":[{"name":..,"shard":..,"start_us":..,
///  "end_us":..},...]}
std::string TraceToJson(const Trace& trace);

/// Ring of recently finished traces + slow-query log dispatch. One Tracer
/// per engine; Finish() is safe from any thread and never blocks on the
/// ring (contended slots drop the trace and count it).
class Tracer {
 public:
  static constexpr size_t kDefaultRingSize = 128;
  /// Threshold sentinel: slow-query logging disabled.
  static constexpr uint64_t kSlowLogDisabled = UINT64_MAX;

  explicit Tracer(size_t ring_size = kDefaultRingSize);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocates a fresh in-flight context (plain factory; the tracer only
  /// learns about the trace when Finish is called).
  TraceContextPtr Start(const char* op, uint64_t detail,
                        uint64_t start_ns = 0) const {
    return std::make_shared<TraceContext>(op, detail, start_ns);
  }

  /// Seals `ctx` into a Trace (total time, relative span offsets), stores
  /// it in the ring, and emits a slow-log line if total >= threshold.
  /// All AddSpan calls must happen-before this (see header comment).
  void Finish(const TraceContext& ctx, uint64_t snapshot_version);

  /// ms-to-ns helpers live with the callers; the threshold itself is ns.
  /// kSlowLogDisabled (the default) disables emission; 0 logs every trace.
  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Sink for slow-query JSON lines (e.g. writes to stderr or a log file).
  /// Called inline from Finish — keep it cheap and never re-enter the
  /// tracer from inside it.
  void SetSlowLogSink(std::function<void(const std::string&)> sink);

  /// Most-recent finished traces, newest first, at most `max_traces`.
  std::vector<Trace> Recent(size_t max_traces) const;

  uint64_t finished() const {
    return finished_.load(std::memory_order_relaxed);
  }
  /// Traces lost to ring-slot contention (writer try_lock failed).
  uint64_t ring_dropped() const {
    return ring_dropped_.load(std::memory_order_relaxed);
  }
  size_t ring_size() const { return ring_size_; }

 private:
  struct Slot {
    std::mutex mu;
    bool used = false;
    Trace trace;
  };

  const size_t ring_size_;
  std::unique_ptr<Slot[]> ring_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> slow_threshold_ns_{kSlowLogDisabled};
  std::atomic<uint64_t> finished_{0};
  std::atomic<uint64_t> ring_dropped_{0};

  mutable std::mutex sink_mu_;
  std::function<void(const std::string&)> sink_;
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_TRACE_H_
