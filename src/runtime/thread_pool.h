// Fixed-size worker pool + FIFO work queue — the execution substrate of the
// concurrent query runtime.
//
// Deliberately minimal: queries are CPU-bound and uniform enough that a
// single mutex-guarded queue does not contend at the thread counts we target
// (the per-query work is milliseconds; the queue critical section is
// nanoseconds). Work stealing / sharded queues are a later scaling PR.
#ifndef TQCOVER_RUNTIME_THREAD_POOL_H_
#define TQCOVER_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/metrics.h"

namespace tq::runtime {

/// Fixed pool of worker threads draining a FIFO task queue. Tasks submitted
/// before destruction are all executed; the destructor drains the queue and
/// joins every worker.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). When `metrics` is
  /// non-null (and must outlive the pool), every task's queue wait —
  /// Post() to execution start — is recorded into its
  /// OpFamily::kQueueWait histogram.
  explicit ThreadPool(size_t num_threads,
                      MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task.
  void Post(std::function<void()> task);

  /// Enqueues a task and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    Post([task]() { (*task)(); });
    return future;
  }

  /// Blocks until every task submitted so far has finished executing.
  void Drain();

 private:
  void WorkerLoop();

  MetricsRegistry* metrics_ = nullptr;  // optional; not owned

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / stop
  std::condition_variable drain_cv_;  // Drain() waits for quiescence
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;  // 0 when queue-wait tracking is off
  };
  std::deque<QueuedTask> queue_;
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_THREAD_POOL_H_
