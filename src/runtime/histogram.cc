#include "runtime/histogram.h"

#include <cmath>
#include <cstdio>

namespace tq::runtime {

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target observation, 1-based: the smallest r with
  // r >= p * count (at least 1 so p=0 reports the smallest bucket).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Mid-point of the bucket; the overflow bucket has no upper edge, so
      // it reports its lower bound (the 2^40 ns cap).
      return HistBucketLowerBound(b) + HistBucketWidth(b) / 2;
    }
  }
  return HistBucketLowerBound(kHistOverflowBucket);
}

uint64_t HistogramSnapshot::MaxNs() const {
  for (size_t b = kHistNumBuckets; b-- > 0;) {
    if (buckets[b] != 0) {
      return HistBucketLowerBound(b) + HistBucketWidth(b);
    }
  }
  return 0;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum_ns += other.sum_ns;
  for (size_t b = 0; b < kHistNumBuckets; ++b) buckets[b] += other.buckets[b];
}

std::string HistogramSnapshot::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum_ns\":%llu,\"p50_ns\":%llu,"
                "\"p90_ns\":%llu,\"p99_ns\":%llu,\"max_ns\":%llu}",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(sum_ns),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.90)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(MaxNs()));
  return std::string(buf);
}

HistogramSnapshot LatencyHistogram::Read() const {
  HistogramSnapshot snap;
  for (size_t s = 0; s < kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    snap.sum_ns += stripe.sum_ns.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistNumBuckets; ++b) {
      const uint64_t c = stripe.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += c;
      snap.count += c;
    }
  }
  return snap;
}

}  // namespace tq::runtime
