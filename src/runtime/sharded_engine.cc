#include "runtime/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <functional>
#include <queue>
#include <utility>

#include "common/check.h"
#include "net/protocol.h"
#include "query/eval_service.h"
#include "tqtree/serialize.h"

namespace {

/// Raises `floor` to at least `v` (monotone max over non-negative doubles:
/// for values ≥ 0 the IEEE-754 bit patterns sort like the values, so the
/// global prune floor can live in one lock-free atomic word).
void RaiseFloor(std::atomic<uint64_t>* floor, double v) {
  const uint64_t nb = std::bit_cast<uint64_t>(v);
  uint64_t cur = floor->load(std::memory_order_relaxed);
  while (cur < nb && !floor->compare_exchange_weak(
                         cur, nb, std::memory_order_relaxed)) {
  }
}

/// The top-k cache key of a sharded snapshot: every shard's generation, in
/// shard order. Exact vector equality means a hit can never mix two shard
/// states.
tq::runtime::ResultCache::TopKKey TopKKeyFor(
    const tq::runtime::ShardedSnapshot& snap, size_t k) {
  tq::runtime::ResultCache::TopKKey key;
  key.k = k;
  key.psi_bits = tq::runtime::PsiBits(snap.catalog->psi());
  key.gens.reserve(snap.shards.size());
  for (const auto& shard : snap.shards) key.gens.push_back(shard->generation);
  return key;
}

}  // namespace

namespace tq::runtime {

// Shared per-query scatter/gather state. Each shard task writes only its own
// slots; the last task to finish (remaining hits zero) performs the gather —
// which for pruned top-k is the COORDINATOR step that may fan out a second
// round of per-shard refinement tasks. No pool thread ever blocks on another
// task; the rounds are sequenced by the remaining-counter barrier alone.
struct ShardedEngine::GatherState {
  QueryRequest request;
  ShardedSnapshotPtr snap;  // pins every shard's tree for the query
  ResponseCallback done;    // fulfilled exactly once by the last finisher
  std::vector<double> values;                   // kServiceValue: per shard
  std::vector<std::vector<double>> fac_values;  // kTopK: per shard, per fac
  std::vector<QueryStats> stats;                // per shard
  std::vector<uint8_t> hits;                    // per shard: all lookups hit
  std::atomic<size_t> remaining{0};
  /// Span sink for this query, shared by every task; null when untraced.
  /// Tasks only APPEND — whoever started the trace finishes it (the net
  /// server for frame traces, the engine's done-wrapper for its own).
  TraceContextPtr trace;

  // Bound-and-prune top-k protocol state (prune_topk mode only).
  std::vector<std::vector<double>> bounds;   // round 1: per shard, per fac
  std::vector<std::vector<uint8_t>> known;   // fac_values[s][f] is exact
  std::vector<uint32_t> candidates;          // round 2 refinement set
  /// Running global lower bound on the k-th exact value (double bits):
  /// shards raise it as their local top-k completes; round-1 cursors stop
  /// once their next-best local bound falls below it.
  std::atomic<uint64_t> floor_bits{0};
  /// Exact per-(facility, shard) evaluations performed so far.
  std::atomic<uint64_t> evaluated{0};
  /// Coordinator rounds executed (1 when round 1 settled everything).
  uint32_t rounds = 0;
  /// Set for TopKBoundSweepAsync: the query stops after round 1 and emits
  /// bounds + exactly-settled facilities for a REMOTE coordinator instead
  /// of coordinating locally.
  BoundSweepCallback bound_done;
};

ShardedEngine::ShardedEngine(TrajectorySet users, TrajectorySet facilities,
                             ShardedEngineOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      router_(users,
              users.empty() ? Rect::Of(0, 0, 1, 1) : users.BoundingBox(),
              std::max<size_t>(1, options.num_shards)),
      pool_(options.num_threads, &metrics_) {
  // Partition the initial users; global id = position in `users`, preserved
  // by the registry so later removes can find (shard, local id).
  const size_t n = router_.num_shards();
  owned_begin_ = options_.owned_begin;
  owned_end_ = options_.owned_end;
  if (owned_begin_ == 0 && owned_end_ == 0) {
    owned_end_ = static_cast<uint32_t>(n);  // single-process: own everything
  }
  TQ_CHECK(owned_begin_ < owned_end_ && owned_end_ <= n);
  std::vector<TrajectorySet> shard_sets(n);
  shard_user_counts_.assign(n, 0);
  users_.reserve(users.size());
  for (uint32_t u = 0; u < users.size(); ++u) {
    const auto shard = static_cast<uint32_t>(router_.Route(users.points(u)));
    // Non-owned shards advance only the logical counter: the (shard, local)
    // assignment stays identical to a worker that DOES own the shard, but
    // no set (and later no tree) is materialized for it.
    const uint32_t local = Owns(shard)
                               ? shard_sets[shard].Add(users.points(u))
                               : shard_user_counts_[shard];
    shard_user_counts_[shard]++;
    users_.push_back(UserLocation{shard, local});
  }

  auto facilities_ptr =
      std::make_shared<TrajectorySet>(std::move(facilities));
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->version = 1;
  snap->facilities = facilities_ptr;
  snap->catalog = std::make_shared<FacilityCatalog>(facilities_ptr.get(),
                                                    options_.tree.model.psi);
  snap->shards.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto shard_users =
        std::make_shared<TrajectorySet>(std::move(shard_sets[s]));
    auto tree = std::make_shared<TQTree>(shard_users.get(), options_.tree);
    tree->BuildAllZIndexes();  // freeze: published trees are never written
    auto state = std::make_shared<ShardState>();
    state->shard = static_cast<uint32_t>(s);
    state->generation = 1;
    state->tree = std::move(tree);
    state->eval = std::make_shared<ServiceEvaluator>(shard_users.get(),
                                                     options_.tree.model);
    state->users = std::move(shard_users);
    snap->shards.push_back(std::move(state));
  }
  Publish(std::move(snap), n);

  if (options_.durability.enabled()) {
    // A fresh durable engine demands a virgin data dir: silently shadowing
    // an existing checkpoint would fork its history. Recover() is the path
    // for existing state; callers decide via storage::CurrentCheckpointDir.
    TQ_CHECK_MSG(
        storage::CurrentCheckpointDir(options_.durability.data_dir)
                .status()
                .code() == StatusCode::kNotFound,
        "data dir already holds a checkpoint; use ShardedEngine::Recover");
    recovery_info_.durable = true;
    recovery_info_.last_lsn = snapshot()->version;
    // The initial checkpoint captures version 1 (this constructor's state);
    // WAL records then start at LSN 2, the first ApplyUpdates publish.
    StartDurability(/*next_lsn=*/2, /*initial_checkpoint=*/true);
  }
}

ShardedEngine::~ShardedEngine() {
  // Stop the checkpointer before any member is torn down: its closures walk
  // the snapshot, registry, and metrics. pool_ (last member) then joins
  // in-flight scatter tasks as before.
  if (durability_) durability_->Stop();
}

ShardedEngine::ShardedEngine(RecoverTag, ShardedEngineOptions options,
                             const storage::CheckpointManifest& manifest)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      router_(manifest.world, manifest.splits),
      pool_(options_.num_threads, &metrics_) {
  const size_t n = router_.num_shards();
  owned_begin_ = options_.owned_begin;
  owned_end_ = options_.owned_end;
  if (owned_begin_ == 0 && owned_end_ == 0) {
    owned_end_ = static_cast<uint32_t>(n);
  }
  TQ_CHECK(owned_begin_ < owned_end_ && owned_end_ <= n);
  shard_user_counts_.assign(n, 0);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Recover(
    ShardedEngineOptions options) {
  TQ_CHECK(options.durability.enabled());
  const uint64_t start_ns = NowNs();
  auto dir = storage::CurrentCheckpointDir(options.durability.data_dir);
  TQ_RETURN_NOT_OK(dir.status());
  auto manifest = storage::ReadCheckpointManifest(*dir);
  TQ_RETURN_NOT_OK(manifest.status());
  // The recovering process must be CONFIGURED with the geometry the
  // checkpoint was written under — a different ψ, service model, or world
  // would rebuild different trees and silently change answers.
  const uint64_t hash = TQTreeGeometryHash(options.tree, manifest->world);
  if (hash != manifest->geometry_hash) {
    return Status::InvalidArgument(
        "tree options do not match the checkpoint's geometry hash");
  }
  // The partition geometry is adopted wholesale; a configured shard count
  // is ignored in favour of the manifest's.
  options.num_shards = manifest->shards.size();
  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(RecoverTag{}, std::move(options), *manifest));
  TQ_RETURN_NOT_OK(engine->RecoverFrom(*dir, *manifest));
  engine->recovery_info_.recovery_ns = NowNs() - start_ns;
  return engine;
}

Status ShardedEngine::RecoverFrom(
    const std::string& checkpoint_dir,
    const storage::CheckpointManifest& manifest) {
  const size_t n = router_.num_shards();

  // Registry: global id -> (shard, local id), exactly as the crashed
  // process assigned them. It cannot be re-derived from the per-shard sets
  // (cross-shard insertion interleaving is lost), hence registry.bin.
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  TQ_RETURN_NOT_OK(storage::LoadCheckpointRegistry(checkpoint_dir, &entries));
  if (entries.size() != manifest.users_total) {
    return Status::InvalidArgument("checkpoint registry size mismatch");
  }
  users_.clear();
  users_.reserve(entries.size());
  for (const auto& [shard, local] : entries) {
    if (shard >= n) {
      return Status::InvalidArgument("checkpoint registry shard out of range");
    }
    users_.push_back(UserLocation{shard, local});
  }
  for (size_t s = 0; s < n; ++s) {
    shard_user_counts_[s] =
        static_cast<uint32_t>(manifest.shards[s].user_count);
  }

  auto facilities = storage::LoadCheckpointFacilities(checkpoint_dir);
  TQ_RETURN_NOT_OK(facilities.status());
  auto facilities_ptr =
      std::make_shared<TrajectorySet>(std::move(*facilities));
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->version = manifest.lsn;
  snap->facilities = facilities_ptr;
  snap->catalog = std::make_shared<FacilityCatalog>(facilities_ptr.get(),
                                                    options_.tree.model.psi);
  snap->shards.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto state = std::make_shared<ShardState>();
    state->shard = static_cast<uint32_t>(s);
    // Generations restore verbatim so the recovered generation vector
    // (cache keys, kUpdate responses) matches the uninterrupted run.
    state->generation = manifest.shards[s].generation;
    if (Owns(s)) {
      if (!manifest.shards[s].has_tree) {
        return Status::InvalidArgument(
            "checkpoint has no tree for owned shard " + std::to_string(s));
      }
      auto users = storage::LoadCheckpointShardUsers(
          checkpoint_dir, static_cast<uint32_t>(s));
      TQ_RETURN_NOT_OK(users.status());
      std::shared_ptr<TrajectorySet> shard_users = std::move(*users);
      if (shard_users->size() != manifest.shards[s].user_count) {
        return Status::InvalidArgument("checkpoint shard user count mismatch");
      }
      auto tree = LoadTQTree(
          storage::CheckpointShardTreePath(checkpoint_dir,
                                           static_cast<uint32_t>(s)),
          shard_users.get());
      TQ_RETURN_NOT_OK(tree.status());
      state->tree = std::shared_ptr<TQTree>(std::move(*tree));
      state->eval = std::make_shared<ServiceEvaluator>(shard_users.get(),
                                                       options_.tree.model);
      state->users = std::move(shard_users);
    } else {
      // Non-owned shards mirror a live worker: empty set, empty tree, an
      // exact 0.0 contribution to every sum.
      auto shard_users = std::make_shared<TrajectorySet>();
      auto tree = std::make_shared<TQTree>(shard_users.get(), options_.tree);
      tree->BuildAllZIndexes();
      state->tree = std::move(tree);
      state->eval = std::make_shared<ServiceEvaluator>(shard_users.get(),
                                                       options_.tree.model);
      state->users = std::move(shard_users);
    }
    snap->shards.push_back(std::move(state));
  }
  Publish(std::move(snap), n);
  recovery_info_.durable = true;
  recovery_info_.recovered = true;
  recovery_info_.checkpoint_lsn = manifest.lsn;

  // Redo: replay every WAL record past the checkpoint through the normal
  // update path. LSNs are dense (one record per publish), so replay asserts
  // exact version continuity — a gap means lost records, a hard error.
  storage::WalReplayStats stats;
  Status replayed = storage::ReplayWal(
      storage::WalDir(options_.durability.data_dir), manifest.lsn,
      [this](uint64_t lsn, std::string_view payload) -> Status {
        UpdateBatch batch;
        TQ_RETURN_NOT_OK(
            net::DecodeUpdateBody(payload, &batch.inserts, &batch.removes));
        const uint64_t version = snapshot()->version;
        if (lsn != version + 1) {
          return Status::IOError("WAL gap: record " + std::to_string(lsn) +
                                 " after version " + std::to_string(version));
        }
        ApplyUpdatesImpl(batch, /*log_to_wal=*/false);
        return Status::OK();
      },
      &stats);
  TQ_RETURN_NOT_OK(replayed);
  metrics_.AddWalReplayed(stats.records);
  recovery_info_.last_lsn = snapshot()->version;
  recovery_info_.replayed_batches = stats.records;
  recovery_info_.replayed_bytes = stats.bytes;
  recovery_info_.wal_torn_tail = stats.torn_tail;

  StartDurability(snapshot()->version + 1, /*initial_checkpoint=*/false);
  return Status::OK();
}

void ShardedEngine::StartDurability(uint64_t next_lsn,
                                    bool initial_checkpoint) {
  durability_ = std::make_unique<storage::DurabilityManager>(
      options_.durability, [this] { return WriteCheckpointImpl(); },
      [this](uint64_t lsn) { return CompactShards(lsn); }, &metrics_,
      &tracer_);
  const Status started = durability_->Start(next_lsn);
  TQ_CHECK_MSG(started.ok(), started.message().c_str());
  if (initial_checkpoint) {
    const auto stats = durability_->CheckpointNow();
    TQ_CHECK_MSG(stats.ok(), stats.status().message().c_str());
  }
}

Status ShardedEngine::Checkpoint() {
  if (!durability_) {
    return Status::Unimplemented("engine has no durability subsystem");
  }
  return durability_->CheckpointNow().status();
}

storage::RecoveryInfo ShardedEngine::recovery_info() const {
  storage::RecoveryInfo info = recovery_info_;
  if (durability_) {
    const uint64_t lsn = durability_->last_checkpoint_lsn();
    if (lsn != 0) info.checkpoint_lsn = lsn;
    info.last_lsn = snapshot_version();
  }
  return info;
}

Result<uint64_t> ShardedEngine::WriteCheckpointImpl() {
  // Capture (snapshot, registry, logical counts) as one consistent cut:
  // publishes happen under writer_mu_, so holding it pins all three at the
  // same LSN. The capture is O(users) copies; the expensive streaming below
  // runs OFF the lock, with the snapshot shared_ptr keeping every shard
  // tree alive while writers move on.
  ShardedSnapshotPtr snap;
  std::vector<UserLocation> registry;
  std::vector<uint32_t> counts;
  {
    std::lock_guard<std::mutex> writer_lock(writer_mu_);
    snap = snapshot();
    {
      std::lock_guard<std::mutex> reg_lock(registry_mu_);
      registry = users_;
    }
    counts = shard_user_counts_;
  }

  auto writer = storage::CheckpointWriter::Begin(
      options_.durability.data_dir, snap->version);
  TQ_RETURN_NOT_OK(writer.status());
  TQ_RETURN_NOT_OK((*writer)->WriteFacilities(*snap->facilities));
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  entries.reserve(registry.size());
  for (const UserLocation& loc : registry) {
    entries.emplace_back(loc.shard, loc.local_id);
  }
  TQ_RETURN_NOT_OK((*writer)->WriteRegistry(entries));

  const size_t n = snap->shards.size();
  storage::CheckpointManifest manifest;
  manifest.lsn = snap->version;
  manifest.users_total = registry.size();
  manifest.geometry_hash = TQTreeGeometryHash(options_.tree, router_.world());
  manifest.world = router_.world();
  manifest.splits = router_.splits();
  manifest.shards.resize(n);
  for (size_t s = 0; s < n; ++s) {
    manifest.shards[s].generation = snap->shards[s]->generation;
    manifest.shards[s].user_count = counts[s];
    manifest.shards[s].has_tree = Owns(s);
    if (Owns(s)) {
      TQ_RETURN_NOT_OK((*writer)->WriteShard(static_cast<uint32_t>(s),
                                             *snap->shards[s]->users,
                                             *snap->shards[s]->tree));
    }
  }
  TQ_RETURN_NOT_OK((*writer)->Commit(manifest));
  return snap->version;
}

uint64_t ShardedEngine::CompactShards(uint64_t /*lsn*/) {
  // Round-trip each owned shard tree through the snapshot codec into fresh
  // dense pages. NEVER rebuild from the user set: the codec restores the
  // stored structure (node geometry, entries, split history) so query
  // answers stay bit-identical; only upper/aggregate BOUNDS are re-derived,
  // and the prune-threshold proof makes bounds answer-neutral.
  uint64_t reclaimed = 0;
  const ShardedSnapshotPtr captured = snapshot();
  for (size_t s = owned_begin_; s < owned_end_; ++s) {
    const ShardStatePtr old_state = captured->shards[s];
    std::string buf;
    StringSnapshotSink sink(&buf);
    if (!WriteTQTreeSnapshot(*old_state->tree, &sink).ok()) continue;
    StringSnapshotSource source(buf);
    auto fresh = ReadTQTreeSnapshot(&source, old_state->users.get());
    if (!fresh.ok()) continue;

    // Swap only if the shard has not republished meanwhile: same version,
    // same generation, same users/eval — readers and the result cache
    // cannot tell, and the recovery LSN sequence is untouched. A racing
    // publish wins by pointer inequality (its fork replaced the chain we
    // compacted anyway).
    std::lock_guard<std::mutex> writer_lock(writer_mu_);
    const ShardedSnapshotPtr live = snapshot();
    if (live->shards[s] != old_state) continue;
    auto state = std::make_shared<ShardState>(*old_state);
    state->tree = std::shared_ptr<TQTree>(std::move(*fresh));
    auto next = std::make_shared<ShardedSnapshot>(*live);
    next->shards[s] = std::move(state);
    {
      std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
      snapshot_ = std::move(next);
    }
    // The live snapshot dropped its references to the old tree's pages (the
    // tail of the fork chain it pinned).
    reclaimed += old_state->tree->num_pages();
  }
  return reclaimed;
}

void ShardedEngine::Publish(ShardedSnapshotPtr snap,
                            uint64_t shards_republished) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  metrics_.AddSnapshotPublished();
  metrics_.AddShardPublishes(shards_republished);
}

ShardedSnapshotPtr ShardedEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

ShardedEngine::UserLocation ShardedEngine::LocateUser(
    uint32_t global_id) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  TQ_CHECK(global_id < users_.size());
  return users_[global_id];
}

size_t ShardedEngine::NumUsersTotal() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return users_.size();
}

std::vector<uint64_t> ShardedEngine::shard_generations() const {
  const ShardedSnapshotPtr snap = snapshot();
  std::vector<uint64_t> gens;
  gens.reserve(snap->shards.size());
  for (const auto& shard : snap->shards) gens.push_back(shard->generation);
  return gens;
}

EngineInfo ShardedEngine::info() const {
  const ShardedSnapshotPtr snap = snapshot();
  EngineInfo info;
  info.num_shards = static_cast<uint32_t>(router_.num_shards());
  info.owned_begin = owned_begin_;
  info.owned_end = owned_end_;
  info.psi = options_.tree.model.psi;
  info.num_facilities = static_cast<uint32_t>(snap->catalog->size());
  info.users_total = NumUsersTotal();
  info.snapshot_version = snap->version;
  return info;
}

std::future<QueryResponse> ShardedEngine::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  SubmitAsync(request, [promise](QueryResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void ShardedEngine::SubmitAsync(QueryRequest request, ResponseCallback done) {
  SubmitAsync(std::move(request), nullptr, std::move(done));
}

void ShardedEngine::SubmitAsync(QueryRequest request, TraceContextPtr trace,
                                ResponseCallback done, uint64_t start_ns) {
  auto state = std::make_shared<GatherState>();
  state->request = request;
  state->snap = snapshot();
  const bool topk = request.kind == QueryKind::kTopK;
  metrics_.AddQuery(topk);
  // Submit-to-completion latency, recorded on EVERY completion path below
  // (error, cache hit, degenerate, scatter) so the per-kind histogram
  // counts sum exactly to queries_total — the invariant the CI
  // observability smoke asserts. The clock read is gated on the recording
  // toggle so disabling observability removes the whole cost; a caller
  // start_ns (the net server's frame receive time) replaces it entirely.
  const uint64_t t0 = metrics_.latency_recording()
                          ? (start_ns != 0 ? start_ns : NowNs())
                          : 0;
  const OpFamily family =
      topk ? OpFamily::kTopKQuery : OpFamily::kServiceQuery;
  auto finish_inline = [&](QueryResponse response) {
    if (t0 != 0) metrics_.RecordLatency(family, NowNs() - t0);
    done(std::move(response));
  };

  // Malformed tenant requests come back as errors before any scatter.
  if (request.kind == QueryKind::kServiceValue &&
      request.facility >= state->snap->catalog->size()) {
    QueryResponse response;
    response.kind = request.kind;
    response.snapshot_version = state->snap->version;
    response.status = Status::OutOfRange(
        "facility id " + std::to_string(request.facility) +
        " out of range (catalog has " +
        std::to_string(state->snap->catalog->size()) + ")");
    finish_inline(std::move(response));
    return;
  }

  // A memoised gathered top-k answer for this exact generation vector
  // short-circuits the whole scatter (per-shard invalidation: only a
  // republish of a contributing shard can stale it).
  if (request.kind == QueryKind::kTopK) {
    QueryResponse response;
    response.kind = request.kind;
    response.snapshot_version = state->snap->version;
    if (cache_.GetTopK(TopKKeyFor(*state->snap, request.k),
                       &response.ranked)) {
      response.cache_hit = true;
      metrics_.AddCacheHit();
      finish_inline(std::move(response));
      return;
    }
    // Degenerate ranking (k = 0 or an empty catalog) needs no scatter at
    // all — answer empty immediately, like the malformed-request path.
    if (request.k == 0 || state->snap->catalog->size() == 0) {
      finish_inline(std::move(response));
      return;
    }
  }

  // Scatter path. Queries arriving without a caller trace get an
  // engine-owned one — SAMPLED 1-in-trace_sample, because a trace costs an
  // allocation plus per-shard-task clock reads and a ring write. The
  // armed slow-query log overrides the sampling: a slow query can only be
  // logged if it was traced from the start, so arming the log buys full
  // tracing at full cost, deliberately.
  const bool owns_trace = trace == nullptr;
  if (owns_trace) {
    const bool slow_log_armed =
        tracer_.slow_threshold_ns() != Tracer::kSlowLogDisabled;
    thread_local uint64_t trace_seq = 0;
    if (slow_log_armed ||
        (options_.trace_sample != 0 &&
         trace_seq++ % options_.trace_sample == 0)) {
      trace = tracer_.Start(topk ? "topk" : "sum",
                            topk ? request.k : request.facility);
    }
  }
  state->trace = trace;
  state->done = [this, t0, family, trace, owns_trace,
                 inner = std::move(done)](QueryResponse response) {
    if (owns_trace && trace) {
      tracer_.Finish(*trace, response.snapshot_version);
    }
    if (t0 != 0) metrics_.RecordLatency(family, NowNs() - t0);
    inner(std::move(response));
  };

  const size_t n = state->snap->shards.size();
  state->values.resize(n, 0.0);
  state->fac_values.resize(n);
  state->stats.resize(n);
  state->hits.assign(n, 0);
  state->remaining.store(n, std::memory_order_relaxed);
  // Adaptive protocol selection: once the effective k covers
  // prune_skip_ratio of the catalog, the answer must contain most
  // facilities anyway — the bound sweep cannot prune enough to pay for
  // itself, so the query skips straight to the exhaustive gather (same
  // bit-identical answer, no sweep overhead).
  const size_t num_fac = state->snap->catalog->size();
  const bool prune =
      options_.prune_topk &&
      static_cast<double>(std::min(request.k, num_fac)) <
          options_.prune_skip_ratio * static_cast<double>(num_fac);
  // Post timestamps feed the per-shard queue-wait spans; one clock read
  // covers the whole fan-out.
  const uint64_t post_ns = NowNs();
  if (state->request.kind == QueryKind::kTopK && prune) {
    // Bound-and-prune protocol: scatter round-1 bound-sweep tasks; the
    // coordinator (last finisher) decides what round 2 must refine.
    state->bounds.resize(n);
    state->known.resize(n);
    for (size_t s = 0; s < n; ++s) {
      pool_.Post([this, state, s, post_ns]() {
        ExecuteTopKBoundRound(state, s, post_ns);
      });
    }
    return;
  }
  for (size_t s = 0; s < n; ++s) {
    pool_.Post(
        [this, state, s, post_ns]() { ExecuteShard(state, s, post_ns); });
  }
}

std::vector<QueryResponse> ShardedEngine::RunBatch(
    const std::vector<QueryRequest>& batch) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(batch.size());
  for (const QueryRequest& request : batch) futures.push_back(Submit(request));
  std::vector<QueryResponse> responses;
  responses.reserve(batch.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

double ShardedEngine::ShardServiceValue(const ShardState& shard,
                                        const FacilityCatalog& catalog,
                                        FacilityId f, QueryStats* stats,
                                        bool* cache_hit) {
  const ResultCache::Key key{f, PsiBits(catalog.psi()), shard.generation,
                             shard.shard};
  double value = 0.0;
  if (cache_.Get(key, &value)) {
    *cache_hit = true;
    metrics_.AddCacheHit();
    return value;
  }
  *cache_hit = false;
  // Pool threads land here concurrently on the same frozen shard tree; the
  // kernel layer underneath (StopGrid neighborhood lists, the tree's bound
  // arena, the evaluator's served-mask batch path) is immutable after
  // freeze, and each thread's segmented-evaluation scratch lives in a
  // thread_local ServiceAccumulator arena inside EvaluateServiceTQ — so a
  // cache miss costs zero allocation on the steady state and no locks.
  value = EvaluateServiceTQ(shard.tree.get(), *shard.eval, catalog.grid(f),
                            stats);
  if (cache_.enabled()) {
    metrics_.AddCacheMiss();
    metrics_.AddCacheEvictions(cache_.Put(key, value));
  }
  return value;
}

void ShardedEngine::ExecuteShard(const std::shared_ptr<GatherState>& state,
                                 size_t shard_idx, uint64_t post_ns) {
  const uint64_t t0 =
      ((metrics_.latency_recording() && MetricsRegistry::SampleTask()) ||
       state->trace)
          ? NowNs()
          : 0;
  if (state->trace && post_ns != 0) {
    state->trace->AddSpan("queue_wait", static_cast<int32_t>(shard_idx),
                          post_ns, t0);
  }
  const ShardState& shard = *state->snap->shards[shard_idx];
  const FacilityCatalog& catalog = *state->snap->catalog;
  QueryStats stats;
  bool hit = false;
  if (state->request.kind == QueryKind::kServiceValue) {
    state->values[shard_idx] = ShardServiceValue(
        shard, catalog, state->request.facility, &stats, &hit);
  } else {
    // Top-k needs this shard's contribution for EVERY facility: a global
    // winner may rank arbitrarily low within a single shard, so per-shard
    // top-k lists alone cannot be merged soundly. Warm cache entries from
    // earlier service-value traffic (same keys) short-circuit most of it.
    std::vector<double>& values = state->fac_values[shard_idx];
    values.resize(catalog.size(), 0.0);
    hit = true;
    for (uint32_t f = 0; f < catalog.size(); ++f) {
      bool f_hit = false;
      values[f] = ShardServiceValue(shard, catalog, f, &stats, &f_hit);
      hit = hit && f_hit;
    }
  }
  state->stats[shard_idx] = stats;
  state->hits[shard_idx] = hit ? 1 : 0;
  metrics_.AddShardTask();
  if (t0 != 0) {
    const uint64_t t1 = NowNs();
    metrics_.RecordLatency(OpFamily::kShardTask, t1 - t0);
    if (state->trace) {
      state->trace->AddSpan("shard_eval", static_cast<int32_t>(shard_idx),
                            t0, t1);
    }
  }
  // acq_rel: the last decrementer acquires every other task's slot writes.
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Gather(state.get());
  }
}

void ShardedEngine::Gather(GatherState* state) {
  const uint64_t merge_t0 = state->trace ? NowNs() : 0;
  const ShardedSnapshot& snap = *state->snap;
  const size_t n = snap.shards.size();
  QueryResponse response;
  response.kind = state->request.kind;
  response.snapshot_version = snap.version;

  QueryStats total;
  bool all_hit = true;
  for (size_t s = 0; s < n; ++s) {
    total.Add(state->stats[s]);
    all_hit = all_hit && state->hits[s] != 0;
  }
  response.cache_hit = all_hit;
  response.stats = total;

  if (state->request.kind == QueryKind::kServiceValue) {
    // Disjoint user partition: SO(U, f) = Σ_s SO(U_s, f), summed in
    // ascending shard order so the gather is deterministic.
    double sum = 0.0;
    for (const double v : state->values) sum += v;
    response.value = sum;
  } else {
    const size_t num_fac = snap.catalog->size();
    std::vector<RankedFacility> all(num_fac);
    for (uint32_t f = 0; f < num_fac; ++f) {
      double sum = 0.0;
      for (size_t s = 0; s < n; ++s) sum += state->fac_values[s][f];
      all[f] = RankedFacility{f, sum};
    }
    RankTopK(state, std::move(all), &response);
  }
  metrics_.RecordQueryStats(total);
  if (merge_t0 != 0) state->trace->AddSpan("merge", -1, merge_t0, NowNs());
  state->done(std::move(response));
}

void ShardedEngine::RankTopK(GatherState* state,
                             std::vector<RankedFacility> complete,
                             QueryResponse* response) {
  const size_t num_fac = state->snap->catalog->size();
  const size_t k = std::min(state->request.k, num_fac);
  TQ_CHECK(complete.size() >= k);
  std::partial_sort(complete.begin(),
                    complete.begin() + static_cast<std::ptrdiff_t>(k),
                    complete.end(), RankedBefore);
  complete.resize(k);
  response->ranked = std::move(complete);
  if (cache_.enabled()) {
    metrics_.AddCacheMiss();
    metrics_.AddCacheEvictions(cache_.PutTopK(
        TopKKeyFor(*state->snap, state->request.k), response->ranked));
  }
}

void ShardedEngine::ExecuteTopKBoundRound(
    const std::shared_ptr<GatherState>& state, size_t shard_idx,
    uint64_t post_ns) {
  const uint64_t t0 =
      ((metrics_.latency_recording() && MetricsRegistry::SampleTask()) ||
       state->trace)
          ? NowNs()
          : 0;
  if (state->trace && post_ns != 0) {
    state->trace->AddSpan("queue_wait", static_cast<int32_t>(shard_idx),
                          post_ns, t0);
  }
  const ShardState& shard = *state->snap->shards[shard_idx];
  const FacilityCatalog& catalog = *state->snap->catalog;
  const size_t num_fac = catalog.size();
  // Submit answers k = 0 / empty-catalog requests directly, so k ≥ 1 here.
  const size_t k = std::min(state->request.k, num_fac);
  QueryStats stats;

  // Bound sweep: one cheap aggregate bound per facility, no entry scanned.
  std::vector<double>& bounds = state->bounds[shard_idx];
  bounds.resize(num_fac, 0.0);
  for (uint32_t f = 0; f < num_fac; ++f) {
    bounds[f] = shard.tree->UpperBound(catalog.grid(f), options_.bound_levels,
                                       &stats.nodes_visited);
  }

  // Incremental next-best cursor: exact evaluation in descending-bound
  // order, stopping as soon as the next bound falls below the running
  // threshold — the larger of this shard's own k-th exact value and the
  // global floor other shards have already raised. Everything this round
  // produces is advisory (it seeds the coordinator's threshold and warms
  // the cache); stopping early can cost round-2 work but never exactness.
  std::vector<double>& values = state->fac_values[shard_idx];
  std::vector<uint8_t>& known = state->known[shard_idx];
  values.resize(num_fac, 0.0);
  known.assign(num_fac, 0);
  std::vector<uint32_t> order(num_fac);
  for (uint32_t f = 0; f < num_fac; ++f) order[f] = f;
  std::sort(order.begin(), order.end(), [&bounds](uint32_t a, uint32_t b) {
    if (bounds[a] != bounds[b]) return bounds[a] > bounds[b];
    return a < b;
  });
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      local_topk;  // min-heap over this shard's k largest exact values
  uint64_t evaluated = 0;
  for (const uint32_t f : order) {
    if (bounds[f] <= 0.0) {
      // A zero bound IS the exact value: 0 ≤ SO_s(f) ≤ UB_s(f) = 0. The
      // sorted cursor means every remaining facility is settled the same
      // way, for free.
      values[f] = 0.0;
      known[f] = 1;
      continue;
    }
    if (local_topk.size() >= k) {
      const double threshold = std::max(
          local_topk.top(),
          std::bit_cast<double>(
              state->floor_bits.load(std::memory_order_relaxed)));
      if (bounds[f] < threshold) break;  // cursor stops; so would all later
    }
    bool hit = false;
    values[f] = ShardServiceValue(shard, catalog, f, &stats, &hit);
    known[f] = 1;
    ++evaluated;
    local_topk.push(values[f]);
    if (local_topk.size() > k) local_topk.pop();
    if (local_topk.size() == k) {
      // SO(U, f) ≥ SO_s(f), so this shard's k-th exact value lower-bounds
      // the global k-th value — publish it for the other cursors.
      RaiseFloor(&state->floor_bits, local_topk.top());
    }
  }

  state->stats[shard_idx] = stats;
  state->evaluated.fetch_add(evaluated, std::memory_order_relaxed);
  metrics_.AddShardTask();
  if (t0 != 0) {
    const uint64_t t1 = NowNs();
    metrics_.RecordLatency(OpFamily::kShardTask, t1 - t0);
    if (state->trace) {
      // One span covers the shard's bound sweep AND its cursor-driven
      // exact evaluations — the round-1 unit of work.
      state->trace->AddSpan("shard_sweep", static_cast<int32_t>(shard_idx),
                            t0, t1);
    }
  }
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (state->bound_done) {
      FinishBoundSweep(state.get());
    } else {
      CoordinateTopK(state);
    }
  }
}

void ShardedEngine::CoordinateTopK(const std::shared_ptr<GatherState>& state) {
  const uint64_t coord_t0 = state->trace ? NowNs() : 0;
  const size_t n = state->snap->shards.size();
  const FacilityCatalog& catalog = *state->snap->catalog;
  const size_t num_fac = catalog.size();
  const size_t k = std::min(state->request.k, num_fac);
  state->rounds++;

  // Global bound B(f) = Σ_s UB_s(f) and partial lower bound
  // L(f) = Σ_{s that evaluated f} SO_s(f) ≤ SO(U, f) (values are
  // non-negative, so missing shards only understate).
  std::vector<double> global_bound(num_fac, 0.0);
  std::vector<double> global_lower(num_fac, 0.0);
  for (uint32_t f = 0; f < num_fac; ++f) {
    for (size_t s = 0; s < n; ++s) {
      global_bound[f] += state->bounds[s][f];
      if (state->known[s][f]) global_lower[f] += state->fac_values[s][f];
    }
    if (global_bound[f] <= 0.0) {
      // Nothing anywhere can serve f: settle every shard slot exactly.
      for (size_t s = 0; s < n; ++s) {
        state->fac_values[s][f] = 0.0;
        state->known[s][f] = 1;
      }
    }
  }

  // Running k-th threshold τ: the k-th largest partial lower bound. Any
  // facility with B(f) < τ has SO(U, f) ≤ B(f) < τ ≤ k-th exact value —
  // strictly below the answer even on exact ties, so pruning it is safe
  // under the (value desc, id asc) order. B(f) == τ stays a candidate.
  std::vector<double> lower = global_lower;
  std::nth_element(lower.begin(), lower.begin() + (k - 1), lower.end(),
                   std::greater<double>());
  const double threshold = lower[k - 1];

  state->candidates.clear();
  for (uint32_t f = 0; f < num_fac; ++f) {
    bool fully_known = true;
    for (size_t s = 0; s < n && fully_known; ++s) {
      fully_known = state->known[s][f] != 0;
    }
    if (fully_known) continue;
    if (global_bound[f] >= threshold) state->candidates.push_back(f);
    // else pruned: provably absent from the top-k.
  }

  if (coord_t0 != 0) {
    state->trace->AddSpan("coordinate", -1, coord_t0, NowNs());
  }
  if (state->candidates.empty()) {
    FinishTopK(state.get());
    return;
  }
  // Round 2: refine only the surviving candidates, on every shard that has
  // not already evaluated them. The remaining-counter barrier is reset
  // before the fan-out; Post's queue ordering makes the candidate list
  // visible to the round-2 tasks.
  state->rounds++;
  state->remaining.store(n, std::memory_order_relaxed);
  const uint64_t post_ns = NowNs();
  for (size_t s = 0; s < n; ++s) {
    pool_.Post([this, state, s, post_ns]() {
      ExecuteTopKRefineRound(state, s, post_ns);
    });
  }
}

void ShardedEngine::ExecuteTopKRefineRound(
    const std::shared_ptr<GatherState>& state, size_t shard_idx,
    uint64_t post_ns) {
  const uint64_t t0 =
      ((metrics_.latency_recording() && MetricsRegistry::SampleTask()) ||
       state->trace)
          ? NowNs()
          : 0;
  if (state->trace && post_ns != 0) {
    state->trace->AddSpan("queue_wait", static_cast<int32_t>(shard_idx),
                          post_ns, t0);
  }
  const ShardState& shard = *state->snap->shards[shard_idx];
  const FacilityCatalog& catalog = *state->snap->catalog;
  QueryStats stats;
  std::vector<double>& values = state->fac_values[shard_idx];
  std::vector<uint8_t>& known = state->known[shard_idx];
  uint64_t evaluated = 0;
  for (const uint32_t f : state->candidates) {
    if (known[f]) continue;  // round 1 already settled it
    if (state->bounds[shard_idx][f] <= 0.0) {
      // Round 1's cursor stopped before reaching this zero-bound tail
      // entry, but 0 ≤ SO_s(f) ≤ UB_s(f) = 0 settles it without a tree
      // traversal (another shard's positive bound made f a candidate).
      values[f] = 0.0;
      known[f] = 1;
      continue;
    }
    bool hit = false;
    values[f] = ShardServiceValue(shard, catalog, f, &stats, &hit);
    known[f] = 1;
    ++evaluated;
  }
  state->stats[shard_idx].Add(stats);
  state->evaluated.fetch_add(evaluated, std::memory_order_relaxed);
  metrics_.AddShardTask();
  if (t0 != 0) {
    const uint64_t t1 = NowNs();
    metrics_.RecordLatency(OpFamily::kShardTask, t1 - t0);
    if (state->trace) {
      state->trace->AddSpan("shard_refine", static_cast<int32_t>(shard_idx),
                            t0, t1);
    }
  }
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    FinishTopK(state.get());
  }
}

void ShardedEngine::FinishTopK(GatherState* state) {
  const uint64_t merge_t0 = state->trace ? NowNs() : 0;
  const ShardedSnapshot& snap = *state->snap;
  const size_t n = snap.shards.size();
  const size_t num_fac = snap.catalog->size();
  QueryResponse response;
  response.kind = state->request.kind;
  response.snapshot_version = snap.version;

  QueryStats total;
  for (size_t s = 0; s < n; ++s) total.Add(state->stats[s]);
  response.stats = total;

  // Rank the fully-evaluated facilities only: every other facility is
  // provably strictly below the k-th value. Summing in ascending shard
  // order reproduces the exhaustive gather's doubles bit for bit.
  std::vector<RankedFacility> complete;
  complete.reserve(num_fac);
  for (uint32_t f = 0; f < num_fac; ++f) {
    bool fully_known = true;
    for (size_t s = 0; s < n && fully_known; ++s) {
      fully_known = state->known[s][f] != 0;
    }
    if (!fully_known) continue;
    double sum = 0.0;
    for (size_t s = 0; s < n; ++s) sum += state->fac_values[s][f];
    complete.push_back(RankedFacility{f, sum});
  }
  RankTopK(state, std::move(complete), &response);
  const uint64_t evaluated =
      state->evaluated.load(std::memory_order_relaxed);
  const uint64_t slots = static_cast<uint64_t>(num_fac) * n;
  metrics_.AddTopKPruneWork(evaluated, slots - evaluated, state->rounds);
  metrics_.RecordQueryStats(total);
  if (merge_t0 != 0) state->trace->AddSpan("merge", -1, merge_t0, NowNs());
  state->done(std::move(response));
}

void ShardedEngine::FinishBoundSweep(GatherState* state) {
  const ShardedSnapshot& snap = *state->snap;
  const size_t n = snap.shards.size();
  const size_t num_fac = snap.catalog->size();
  BoundSweepResult result;
  result.snapshot_version = snap.version;
  result.bounds.assign(num_fac, 0.0);

  QueryStats total;
  for (size_t s = 0; s < n; ++s) total.Add(state->stats[s]);

  // Per-facility bound over the owned shards (non-owned shards hold empty
  // trees, so their UB is exactly 0), plus the exact sum for facilities
  // EVERY shard settled in round 1 — the coordinator's partial lower
  // bounds, summed in ascending shard order for bit-identity.
  for (uint32_t f = 0; f < num_fac; ++f) {
    double bound = 0.0;
    bool fully_known = true;
    for (size_t s = 0; s < n; ++s) {
      bound += state->bounds[s][f];
      fully_known = fully_known && state->known[s][f] != 0;
    }
    result.bounds[f] = bound;
    if (fully_known) {
      double sum = 0.0;
      for (size_t s = 0; s < n; ++s) sum += state->fac_values[s][f];
      result.exacts.emplace_back(f, sum);
    }
  }

  const uint64_t evaluated = state->evaluated.load(std::memory_order_relaxed);
  const uint64_t slots = static_cast<uint64_t>(num_fac) * n;
  metrics_.AddTopKPruneWork(evaluated, slots - evaluated, 1);
  metrics_.RecordQueryStats(total);
  state->bound_done(std::move(result));
}

void ShardedEngine::TopKBoundSweepAsync(size_t k, BoundSweepCallback done) {
  auto state = std::make_shared<GatherState>();
  state->snap = snapshot();
  // A bound sweep is one top-k query's round 1 worth of work — count and
  // time it as a top-k query so the histogram-vs-counter invariant the CI
  // observability smoke asserts holds on workers too.
  metrics_.AddQuery(/*topk=*/true);
  const uint64_t t0 = metrics_.latency_recording() ? NowNs() : 0;
  state->bound_done = [this, t0,
                       inner = std::move(done)](BoundSweepResult result) {
    if (t0 != 0) metrics_.RecordLatency(OpFamily::kTopKQuery, NowNs() - t0);
    inner(std::move(result));
  };

  const size_t num_fac = state->snap->catalog->size();
  if (num_fac == 0) {
    BoundSweepResult result;
    result.snapshot_version = state->snap->version;
    state->bound_done(std::move(result));
    return;
  }
  state->request.kind = QueryKind::kTopK;
  state->request.k = std::max<size_t>(1, std::min(k, num_fac));

  const size_t n = state->snap->shards.size();
  state->fac_values.resize(n);
  state->stats.resize(n);
  state->hits.assign(n, 0);
  state->bounds.resize(n);
  state->known.resize(n);
  state->remaining.store(n, std::memory_order_relaxed);
  for (size_t s = 0; s < n; ++s) {
    pool_.Post([this, state, s]() {
      ExecuteTopKBoundRound(state, s, /*post_ns=*/0);
    });
  }
}

std::vector<uint32_t> ShardedEngine::ApplyUpdates(const UpdateBatch& batch) {
  return ApplyUpdatesImpl(batch, /*log_to_wal=*/true);
}

std::vector<uint32_t> ShardedEngine::ApplyUpdatesImpl(const UpdateBatch& batch,
                                                      bool log_to_wal) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const auto publish_start = std::chrono::steady_clock::now();
  const ShardedSnapshotPtr cur = snapshot();
  const size_t n = cur->shards.size();

  // Route inserts and pre-assign shard-local ids (append positions in each
  // shard's copy-on-write user set), then register global ids — in batch
  // order, so a remove in this same batch can already reference them. The
  // LOGICAL per-shard counts drive the assignment, not the materialized set
  // sizes: a worker's non-owned shards have empty sets but must hand out
  // the same local ids as the worker that owns them, or global ids diverge
  // across the cluster.
  std::vector<std::vector<uint32_t>> shard_inserts(n);  // batch indices
  std::vector<uint32_t> next_local = shard_user_counts_;
  std::vector<UserLocation> new_locations;
  new_locations.reserve(batch.inserts.size());
  for (size_t i = 0; i < batch.inserts.size(); ++i) {
    const auto shard = static_cast<uint32_t>(router_.Route(batch.inserts[i]));
    shard_inserts[shard].push_back(static_cast<uint32_t>(i));
    new_locations.push_back(UserLocation{shard, next_local[shard]++});
  }
  shard_user_counts_ = next_local;
  std::vector<uint32_t> new_ids;
  new_ids.reserve(batch.inserts.size());
  std::vector<std::vector<uint32_t>> shard_removes(n);  // local ids
  {
    std::lock_guard<std::mutex> reg_lock(registry_mu_);
    for (const UserLocation& loc : new_locations) {
      new_ids.push_back(static_cast<uint32_t>(users_.size()));
      users_.push_back(loc);
    }
    for (const uint32_t gid : batch.removes) {
      if (gid >= users_.size()) continue;  // unknown id: ignore, like Remove
      shard_removes[users_[gid].shard].push_back(users_[gid].local_id);
    }
  }

  // Copy-on-write per shard: clone and republish ONLY shards this batch
  // touches; the rest share their state (and cache entries) with `cur`.
  auto next = std::make_shared<ShardedSnapshot>();
  next->version = cur->version + 1;
  next->facilities = cur->facilities;
  next->catalog = cur->catalog;
  next->shards = cur->shards;
  uint64_t removed = 0;
  uint64_t nodes_copied = 0;
  uint64_t pages_shared = 0;
  std::vector<uint32_t> touched_shards;
  for (size_t s = 0; s < n; ++s) {
    // Writes routed to a non-owned shard are someone else's work: the
    // owning worker applies them from the same fanned-out batch, and the
    // registry bookkeeping above already advanced this worker's view.
    if (!Owns(s)) continue;
    if (shard_inserts[s].empty() && shard_removes[s].empty()) continue;
    const ShardState& old = *cur->shards[s];
    auto users = std::make_shared<TrajectorySet>(*old.users);
    std::vector<uint32_t> locals;
    locals.reserve(shard_inserts[s].size());
    for (const uint32_t i : shard_inserts[s]) {
      locals.push_back(users->Add(batch.inserts[i]));
    }
    // Persistent path copy: the forked shard tree shares untouched node
    // pages (and their z-indexes) with the published shard state.
    std::shared_ptr<TQTree> tree = old.tree->Fork(users.get());
    for (const uint32_t local : locals) tree->Insert(local);
    for (const uint32_t local : shard_removes[s]) {
      if (tree->Remove(local)) ++removed;
    }
    tree->BuildAllZIndexes();  // freeze: rebuilds only dirtied z-indexes
    nodes_copied += tree->cow_stats().nodes_copied;
    pages_shared += tree->cow_stats().pages_shared();

    auto state = std::make_shared<ShardState>();
    state->shard = static_cast<uint32_t>(s);
    // Generation advances ONLY for republished shards (this loop skips
    // untouched ones entirely) — the shard_generations() contract that
    // both the result cache and standing-query skipping rely on.
    state->generation = next->version;
    state->tree = std::move(tree);
    state->eval =
        std::make_shared<ServiceEvaluator>(users.get(), options_.tree.model);
    state->users = std::move(users);
    next->shards[s] = std::move(state);
    touched_shards.push_back(static_cast<uint32_t>(s));
  }
  // Write-ahead: the batch is logged (and, under --wal-sync=always, on the
  // platter) BEFORE its snapshot becomes visible, so every observable state
  // is "checkpoint + replayed WAL prefix". Replay passes log_to_wal=false —
  // its records are already the log. A failed append is fail-stop:
  // ApplyUpdates has no error channel, and publishing an unlogged batch
  // would silently void the recovery contract.
  if (durability_ != nullptr && log_to_wal) {
    std::string payload;
    net::EncodeUpdateBody(batch.inserts, batch.removes, &payload);
    const Status logged = durability_->Append(next->version, payload);
    TQ_CHECK_MSG(logged.ok(), logged.message().c_str());
  }

  // One cache pass for the whole batch, however many shards it republished.
  const size_t invalidated =
      cache_.InvalidateShardsBefore(touched_shards, next->version);
  Publish(std::move(next), touched_shards.size());

  metrics_.AddInserted(new_ids.size());
  metrics_.AddRemoved(removed);
  metrics_.AddCacheInvalidated(invalidated);
  const auto publish_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - publish_start);
  metrics_.AddPublishCost(nodes_copied, pages_shared,
                          static_cast<uint64_t>(publish_ns.count()));
  metrics_.RecordLatency(OpFamily::kPublish,
                         static_cast<uint64_t>(publish_ns.count()));
  return new_ids;
}

}  // namespace tq::runtime
