// Z-order range partitioning of the user set across TQ-tree shards.
//
// The sharded engine (sharded_engine.h) splits the user trajectories into N
// disjoint shards, each owning its own TQ-tree. The router decides, once and
// deterministically, which shard a trajectory belongs to:
//
//   * Every trajectory is keyed by the full-depth Morton code of its FIRST
//     point inside a fixed world rectangle (zorder/zid.h). Co-located users
//     therefore land in the same shard, which keeps a facility query's
//     per-shard work spatially coherent instead of touching every shard's
//     whole tree.
//   * The 48-bit Morton key space is cut into N contiguous ranges by N-1
//     split keys chosen at construction so the INITIAL users spread evenly
//     (equal-count quantiles of the sorted key multiset). The ranges cover
//     the entire key space, so every trajectory — including ones inserted
//     later, even outside the original extent (MortonKey clamps to the
//     world) — lands in exactly one shard.
//   * Split keys never change after construction: routing is stable across
//     snapshot republishes by design, so a shard's user population only
//     changes when a write batch explicitly touches it.
#ifndef TQCOVER_RUNTIME_SHARD_ROUTER_H_
#define TQCOVER_RUNTIME_SHARD_ROUTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "traj/dataset.h"

namespace tq::runtime {

/// Immutable Z-order range partitioner. Cheap to copy; thread-safe after
/// construction (all queries are const reads of frozen state).
class ShardRouter {
 public:
  /// Single-shard router (everything routes to shard 0).
  ShardRouter() = default;

  /// Builds an equal-count partition of `users` into `num_shards` Morton key
  /// ranges over `world`. `num_shards` is clamped to >= 1; with fewer users
  /// than shards (or heavy key duplication) some shards may start empty.
  ShardRouter(const TrajectorySet& users, const Rect& world,
              size_t num_shards);

  /// Adopts a previously frozen partition verbatim (checkpoint recovery):
  /// the manifest records world + split keys, and routing must reproduce the
  /// writing process's decisions exactly. `splits` must be ascending.
  ShardRouter(const Rect& world, std::vector<uint64_t> splits);

  size_t num_shards() const { return splits_.size() + 1; }
  const Rect& world() const { return world_; }

  /// N-1 ascending split keys; shard i owns keys in [splits[i-1], splits[i]).
  const std::vector<uint64_t>& splits() const { return splits_; }

  /// Morton key of the trajectory's routing point (its first point).
  uint64_t KeyOf(std::span<const Point> traj) const;

  /// Shard owning `key`: the number of split keys <= key.
  size_t RouteKey(uint64_t key) const;

  /// Shard owning the trajectory. Total: every trajectory maps to exactly
  /// one shard in [0, num_shards()).
  size_t Route(std::span<const Point> traj) const {
    return RouteKey(KeyOf(traj));
  }

 private:
  Rect world_ = Rect::Of(0, 0, 1, 1);
  std::vector<uint64_t> splits_;  // ascending; may contain duplicates
};

}  // namespace tq::runtime

#endif  // TQCOVER_RUNTIME_SHARD_ROUTER_H_
