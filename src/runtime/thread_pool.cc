#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tq::runtime {

ThreadPool::ThreadPool(size_t num_threads, MetricsRegistry* metrics)
    : metrics_(metrics) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> task) {
  // Stamp the enqueue time only while latency recording is on (so the
  // observability off-switch removes the clock read too) and only for a
  // 1-in-N sample of tasks (see MetricsRegistry::SampleTask) — the
  // unstamped tasks propagate the zero sentinel and skip the dequeue-side
  // clock read as well.
  const uint64_t enqueue_ns = (metrics_ != nullptr &&
                               metrics_->latency_recording() &&
                               MetricsRegistry::SampleTask())
                                  ? NowNs()
                                  : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(task), enqueue_ns});
  }
  work_cv_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so pending futures resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (task.enqueue_ns != 0 && metrics_ != nullptr) {
      const uint64_t now = NowNs();
      metrics_->RecordLatency(
          OpFamily::kQueueWait,
          now > task.enqueue_ns ? now - task.enqueue_ns : 0);
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace tq::runtime
