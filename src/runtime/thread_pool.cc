#include "runtime/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tq::runtime {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so pending futures resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace tq::runtime
