#include "storage/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "tqtree/serialize.h"
#include "traj/io.h"

namespace tq::storage {

namespace {

constexpr char kManifestMagic[4] = {'T', 'Q', 'C', 'K'};
constexpr uint32_t kManifestVersion = 1;
constexpr char kRegistryMagic[4] = {'T', 'Q', 'R', 'G'};

Status IOErr(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IOErr("cannot open directory", dir);
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return IOErr("cannot fsync directory", dir);
  return Status::OK();
}

/// Re-opens and fsyncs a file written through an API that does not expose
/// its descriptor (SaveTrajectoryBinary).
Status SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IOErr("cannot open for fsync", path);
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return IOErr("cannot fsync", path);
  return Status::OK();
}

/// Best-effort recursive removal of a checkpoint directory (flat: one level
/// of regular files). Used for GC and abandoned tmp dirs.
void RemoveDirTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (struct dirent* e = ::readdir(d)) {
      if (std::strcmp(e->d_name, ".") == 0 || std::strcmp(e->d_name, "..") == 0)
        continue;
      ::unlink((dir + "/" + e->d_name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}
void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}
void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  bool GetU8(uint8_t* v) {
    if (data_.size() - pos_ < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return IOErr("cannot open", path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return IOErr("cannot read", path);
  return out;
}

/// Writes a whole buffer to `path` and fsyncs it.
Status WriteFileSynced(const std::string& path, std::string_view data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return IOErr("cannot create", path);
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IOErr("cannot write", path);
    }
    off += static_cast<size_t>(n);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return IOErr("cannot fsync", path);
  return Status::OK();
}

/// Validates a trailing-CRC file body (magic already checked): returns the
/// body without the magic and CRC, or a typed error.
Result<std::string_view> CheckedBody(std::string_view raw, const char* what) {
  if (raw.size() < 8) {
    return Status::InvalidArgument(std::string(what) + " truncated");
  }
  const std::string_view body = raw.substr(4, raw.size() - 8);
  uint32_t stored = 0;
  std::memcpy(&stored, raw.data() + raw.size() - 4, 4);
  if (Crc32c(body.data(), body.size()) != stored) {
    return Status::InvalidArgument(std::string(what) + " CRC mismatch");
  }
  return body;
}

std::string CheckpointDirName(uint64_t lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%016" PRIx64, lsn);
  return buf;
}

std::string ShardUsersPath(const std::string& dir, uint32_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".users";
}

}  // namespace

std::string CheckpointShardTreePath(const std::string& checkpoint_dir,
                                    uint32_t shard) {
  return checkpoint_dir + "/shard-" + std::to_string(shard) + ".tree";
}

Result<std::unique_ptr<CheckpointWriter>> CheckpointWriter::Begin(
    const std::string& data_dir, uint64_t lsn) {
  if (::mkdir(data_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return IOErr("cannot create data directory", data_dir);
  }
  auto writer = std::unique_ptr<CheckpointWriter>(
      new CheckpointWriter(data_dir, CheckpointDirName(lsn)));
  RemoveDirTree(writer->tmp_dir_);  // a crash may have left one behind
  if (::mkdir(writer->tmp_dir_.c_str(), 0777) != 0) {
    return IOErr("cannot create checkpoint directory", writer->tmp_dir_);
  }
  return writer;
}

CheckpointWriter::~CheckpointWriter() {
  if (!committed_) RemoveDirTree(tmp_dir_);
}

Status CheckpointWriter::WriteFacilities(const TrajectorySet& facilities) {
  const std::string path = tmp_dir_ + "/facilities.bin";
  TQ_RETURN_NOT_OK(SaveTrajectoryBinary(path, facilities));
  return SyncFile(path);
}

Status CheckpointWriter::WriteRegistry(
    const std::vector<std::pair<uint32_t, uint32_t>>& entries) {
  std::string buf;
  buf.reserve(16 + entries.size() * 8);
  buf.append(kRegistryMagic, sizeof(kRegistryMagic));
  PutU64(&buf, entries.size());
  for (const auto& [shard, local] : entries) {
    PutU32(&buf, shard);
    PutU32(&buf, local);
  }
  const uint32_t crc = Crc32c(buf.data() + 4, buf.size() - 4);
  PutU32(&buf, crc);
  return WriteFileSynced(tmp_dir_ + "/registry.bin", buf);
}

Status CheckpointWriter::WriteShard(uint32_t shard, const TrajectorySet& users,
                                    const TQTree& tree) {
  const std::string users_path = ShardUsersPath(tmp_dir_, shard);
  TQ_RETURN_NOT_OK(SaveTrajectoryBinary(users_path, users));
  TQ_RETURN_NOT_OK(SyncFile(users_path));
  auto sink = FileSnapshotSink::Open(CheckpointShardTreePath(tmp_dir_, shard));
  TQ_RETURN_NOT_OK(sink.status());
  TQ_RETURN_NOT_OK(WriteTQTreeSnapshot(tree, sink->get()));
  return (*sink)->Close(/*sync=*/true);
}

Status CheckpointWriter::Commit(const CheckpointManifest& manifest) {
  std::string buf;
  buf.append(kManifestMagic, sizeof(kManifestMagic));
  PutU32(&buf, kManifestVersion);
  PutU64(&buf, manifest.lsn);
  PutU64(&buf, manifest.users_total);
  PutU64(&buf, manifest.geometry_hash);
  PutF64(&buf, manifest.world.min_x);
  PutF64(&buf, manifest.world.min_y);
  PutF64(&buf, manifest.world.max_x);
  PutF64(&buf, manifest.world.max_y);
  PutU32(&buf, static_cast<uint32_t>(manifest.shards.size()));
  PutU32(&buf, static_cast<uint32_t>(manifest.splits.size()));
  for (const uint64_t split : manifest.splits) PutU64(&buf, split);
  for (const CheckpointShardInfo& s : manifest.shards) {
    PutU64(&buf, s.generation);
    PutU64(&buf, s.user_count);
    buf.push_back(s.has_tree ? 1 : 0);
  }
  const uint32_t crc = Crc32c(buf.data() + 4, buf.size() - 4);
  PutU32(&buf, crc);
  TQ_RETURN_NOT_OK(WriteFileSynced(tmp_dir_ + "/MANIFEST", buf));
  TQ_RETURN_NOT_OK(SyncDir(tmp_dir_));

  // Atomic publication: rename the complete directory into place, durably
  // record the new name in CURRENT, then reclaim whatever it supersedes.
  const std::string final_dir = data_dir_ + "/" + final_name_;
  RemoveDirTree(final_dir);  // re-checkpoint at the same LSN (tests)
  if (::rename(tmp_dir_.c_str(), final_dir.c_str()) != 0) {
    return IOErr("cannot publish checkpoint", final_dir);
  }
  TQ_RETURN_NOT_OK(SyncDir(data_dir_));
  const std::string current_tmp = data_dir_ + "/CURRENT.tmp";
  TQ_RETURN_NOT_OK(WriteFileSynced(current_tmp, final_name_ + "\n"));
  if (::rename(current_tmp.c_str(), (data_dir_ + "/CURRENT").c_str()) != 0) {
    return IOErr("cannot swap CURRENT in", data_dir_);
  }
  TQ_RETURN_NOT_OK(SyncDir(data_dir_));
  committed_ = true;

  // GC: every other checkpoint-* entry (older checkpoints, stale tmp dirs)
  // is now unreachable. Best-effort — a leftover costs disk, not safety.
  if (DIR* d = ::opendir(data_dir_.c_str())) {
    std::vector<std::string> stale;
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.rfind("checkpoint-", 0) == 0 && name != final_name_) {
        stale.push_back(data_dir_ + "/" + name);
      }
    }
    ::closedir(d);
    for (const std::string& dir : stale) RemoveDirTree(dir);
  }
  return Status::OK();
}

Result<std::string> CurrentCheckpointDir(const std::string& data_dir) {
  auto raw = ReadFileToString(data_dir + "/CURRENT");
  if (!raw.ok()) {
    if (raw.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no checkpoint committed in " + data_dir);
    }
    return raw.status();
  }
  std::string name = *raw;
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("corrupt CURRENT file in " + data_dir);
  }
  return data_dir + "/" + name;
}

Result<CheckpointManifest> ReadCheckpointManifest(
    const std::string& checkpoint_dir) {
  auto raw = ReadFileToString(checkpoint_dir + "/MANIFEST");
  TQ_RETURN_NOT_OK(raw.status());
  if (raw->size() < 4 ||
      std::memcmp(raw->data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::InvalidArgument("not a checkpoint manifest: " +
                                   checkpoint_dir);
  }
  auto body = CheckedBody(*raw, "checkpoint manifest");
  TQ_RETURN_NOT_OK(body.status());
  Reader r(*body);
  CheckpointManifest m;
  uint32_t version = 0, num_shards = 0, num_splits = 0;
  if (!r.GetU32(&version) || !r.GetU64(&m.lsn) || !r.GetU64(&m.users_total) ||
      !r.GetU64(&m.geometry_hash) || !r.GetF64(&m.world.min_x) ||
      !r.GetF64(&m.world.min_y) || !r.GetF64(&m.world.max_x) ||
      !r.GetF64(&m.world.max_y) || !r.GetU32(&num_shards) ||
      !r.GetU32(&num_splits)) {
    return Status::InvalidArgument("checkpoint manifest truncated");
  }
  if (version != kManifestVersion) {
    return Status::InvalidArgument("unsupported checkpoint manifest version " +
                                   std::to_string(version));
  }
  if (num_shards == 0 || num_splits + 1 != num_shards ||
      r.remaining() != num_splits * 8ull + num_shards * 17ull) {
    return Status::InvalidArgument("checkpoint manifest malformed");
  }
  m.splits.resize(num_splits);
  for (uint32_t i = 0; i < num_splits; ++i) {
    if (!r.GetU64(&m.splits[i])) {
      return Status::InvalidArgument("checkpoint manifest truncated");
    }
  }
  m.shards.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint8_t has_tree = 0;
    if (!r.GetU64(&m.shards[s].generation) ||
        !r.GetU64(&m.shards[s].user_count) || !r.GetU8(&has_tree)) {
      return Status::InvalidArgument("checkpoint manifest truncated");
    }
    m.shards[s].has_tree = has_tree != 0;
  }
  return m;
}

Result<TrajectorySet> LoadCheckpointFacilities(
    const std::string& checkpoint_dir) {
  TrajectorySet facilities;
  TQ_RETURN_NOT_OK(
      LoadTrajectoryBinary(checkpoint_dir + "/facilities.bin", &facilities));
  return facilities;
}

Status LoadCheckpointRegistry(
    const std::string& checkpoint_dir,
    std::vector<std::pair<uint32_t, uint32_t>>* out) {
  auto raw = ReadFileToString(checkpoint_dir + "/registry.bin");
  TQ_RETURN_NOT_OK(raw.status());
  if (raw->size() < 4 ||
      std::memcmp(raw->data(), kRegistryMagic, sizeof(kRegistryMagic)) != 0) {
    return Status::InvalidArgument("not a checkpoint registry: " +
                                   checkpoint_dir);
  }
  auto body = CheckedBody(*raw, "checkpoint registry");
  TQ_RETURN_NOT_OK(body.status());
  Reader r(*body);
  uint64_t count = 0;
  if (!r.GetU64(&count) || r.remaining() != count * 8ull) {
    return Status::InvalidArgument("checkpoint registry malformed");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t shard = 0, local = 0;
    if (!r.GetU32(&shard) || !r.GetU32(&local)) {
      return Status::InvalidArgument("checkpoint registry truncated");
    }
    out->emplace_back(shard, local);
  }
  return Status::OK();
}

Result<std::shared_ptr<TrajectorySet>> LoadCheckpointShardUsers(
    const std::string& checkpoint_dir, uint32_t shard) {
  auto users = std::make_shared<TrajectorySet>();
  TQ_RETURN_NOT_OK(
      LoadTrajectoryBinary(ShardUsersPath(checkpoint_dir, shard),
                           users.get()));
  return users;
}

}  // namespace tq::storage
