#include "storage/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "common/crc32c.h"

namespace tq::storage {

namespace {

constexpr size_t kRecordHeaderBytes = 8;   // u32 len + u32 crc
constexpr size_t kLsnBytes = 8;
/// A length field above this is treated as damage, not an allocation order.
constexpr uint32_t kMaxRecordPayload = 1u << 30;

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", first_lsn);
  return buf;
}

bool ParseSegmentName(const char* name, uint64_t* first_lsn) {
  unsigned long long lsn = 0;  // NOLINT(runtime/int)
  int consumed = 0;
  if (std::sscanf(name, "wal-%16llx.log%n", &lsn, &consumed) != 1 ||
      name[consumed] != '\0') {
    return false;
  }
  *first_lsn = lsn;
  return true;
}

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status IOErr(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// fsyncs the directory itself so entry creation/removal is durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IOErr("cannot open directory", dir);
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return IOErr("cannot fsync directory", dir);
  return Status::OK();
}

/// Scans one segment's records. Delivers every CRC-valid record through `fn`
/// (which may be null) and reports the byte length of the valid prefix. A
/// short or CRC-failing record ends the scan with *torn = true; bytes after
/// it are unreachable by construction (appends are sequential), so they are
/// never inspected.
Status ScanSegment(
    const std::string& path,
    const std::function<Status(uint64_t, std::string_view)>& fn,
    uint64_t* valid_bytes, bool* torn) {
  *valid_bytes = 0;
  *torn = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IOErr("cannot open WAL segment", path);
  std::string buf;
  Status st = Status::OK();
  for (;;) {
    char header[kRecordHeaderBytes];
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0 && std::feof(f)) break;  // clean end
    if (got < sizeof(header)) {
      *torn = true;
      break;
    }
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len > kMaxRecordPayload) {
      *torn = true;
      break;
    }
    buf.resize(kLsnBytes + len);
    if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
      *torn = true;
      break;
    }
    if (Crc32c(buf.data(), buf.size()) != crc) {
      *torn = true;
      break;
    }
    const uint64_t lsn = GetU64(buf.data());
    if (fn) {
      st = fn(lsn, std::string_view(buf).substr(kLsnBytes));
      if (!st.ok()) break;
    }
    *valid_bytes += kRecordHeaderBytes + buf.size();
  }
  std::fclose(f);
  return st;
}

}  // namespace

bool ParseWalSync(std::string_view text, WalSync* out) {
  if (text == "always") {
    *out = WalSync::kAlways;
  } else if (text == "batch") {
    *out = WalSync::kBatch;
  } else if (text == "off") {
    *out = WalSync::kOff;
  } else {
    return false;
  }
  return true;
}

const char* WalSyncName(WalSync sync) {
  switch (sync) {
    case WalSync::kAlways: return "always";
    case WalSync::kBatch: return "batch";
    case WalSync::kOff: return "off";
  }
  return "unknown";
}

Result<std::vector<WalSegmentInfo>> ListWalSegments(const std::string& dir) {
  std::vector<WalSegmentInfo> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return segments;  // no WAL yet
    return IOErr("cannot list WAL directory", dir);
  }
  while (struct dirent* e = ::readdir(d)) {
    uint64_t first_lsn = 0;
    if (!ParseSegmentName(e->d_name, &first_lsn)) continue;
    WalSegmentInfo info;
    info.path = dir + "/" + e->d_name;
    info.first_lsn = first_lsn;
    struct stat st{};
    if (::stat(info.path.c_str(), &st) == 0) {
      info.bytes = static_cast<uint64_t>(st.st_size);
    }
    segments.push_back(std::move(info));
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

Status ReplayWal(
    const std::string& dir, uint64_t after_lsn,
    const std::function<Status(uint64_t lsn, std::string_view payload)>& fn,
    WalReplayStats* stats) {
  *stats = WalReplayStats{};
  auto segments = ListWalSegments(dir);
  TQ_RETURN_NOT_OK(segments.status());
  for (size_t i = 0; i < segments->size(); ++i) {
    const WalSegmentInfo& seg = (*segments)[i];
    const bool last = i + 1 == segments->size();
    // A segment whose successor starts at or below the replay floor holds
    // only covered records — skip it without reading.
    if (!last && (*segments)[i + 1].first_lsn <= after_lsn + 1) continue;
    uint64_t valid_bytes = 0;
    bool torn = false;
    TQ_RETURN_NOT_OK(ScanSegment(
        seg.path,
        [&](uint64_t lsn, std::string_view payload) {
          if (lsn <= after_lsn) return Status::OK();
          Status st = fn(lsn, payload);
          if (st.ok()) {
            stats->records++;
            stats->bytes += payload.size();
            stats->last_lsn = lsn;
          }
          return st;
        },
        &valid_bytes, &torn));
    if (torn) {
      if (!last) {
        return Status::IOError("WAL corruption in non-final segment " +
                               seg.path + " (valid prefix " +
                               std::to_string(valid_bytes) + " of " +
                               std::to_string(seg.bytes) + " bytes)");
      }
      stats->torn_tail = true;
    }
  }
  return Status::OK();
}

Result<uint64_t> TrimWalSegments(const std::string& dir, uint64_t keep_lsn) {
  auto segments = ListWalSegments(dir);
  TQ_RETURN_NOT_OK(segments.status());
  uint64_t reclaimed = 0;
  bool removed_any = false;
  for (size_t i = 0; i + 1 < segments->size(); ++i) {
    // All of segment i's records precede segment i+1's first LSN; LSNs are
    // dense, so "next starts at keep_lsn + 1 or earlier" means everything
    // in segment i is checkpoint-covered.
    if ((*segments)[i + 1].first_lsn > keep_lsn + 1) break;
    const WalSegmentInfo& seg = (*segments)[i];
    if (::unlink(seg.path.c_str()) != 0) {
      return IOErr("cannot remove WAL segment", seg.path);
    }
    reclaimed += seg.bytes;
    removed_any = true;
  }
  if (removed_any) TQ_RETURN_NOT_OK(SyncDir(dir));
  return reclaimed;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   uint64_t next_lsn,
                                                   WalOptions options) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return IOErr("cannot create WAL directory", dir);
  }
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(dir, options));
  auto segments = ListWalSegments(dir);
  TQ_RETURN_NOT_OK(segments.status());
  if (segments->empty()) {
    TQ_RETURN_NOT_OK(writer->OpenSegmentLocked(next_lsn, /*create=*/true));
    TQ_RETURN_NOT_OK(SyncDir(dir));
    return writer;
  }
  // Truncate the torn tail a crash may have left in the last segment, then
  // keep appending to it — this is what preserves the "only the last
  // segment can ever be torn" replay invariant across repeated crashes.
  const WalSegmentInfo& last = segments->back();
  uint64_t valid_bytes = 0;
  bool torn = false;
  TQ_RETURN_NOT_OK(ScanSegment(last.path, nullptr, &valid_bytes, &torn));
  if (torn) {
    if (::truncate(last.path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return IOErr("cannot truncate torn WAL tail of", last.path);
    }
    const int fd = ::open(last.path.c_str(), O_WRONLY);
    if (fd < 0) return IOErr("cannot reopen WAL segment", last.path);
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) return IOErr("cannot fsync truncated WAL segment", last.path);
  }
  writer->segment_path_ = last.path;
  writer->segment_bytes_ = valid_bytes;
  writer->fd_ = ::open(last.path.c_str(), O_WRONLY | O_APPEND);
  if (writer->fd_ < 0) return IOErr("cannot append to WAL segment", last.path);
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (dirty_ && options_.sync != WalSync::kOff) ::fsync(fd_);
    ::close(fd_);
  }
}

Status WalWriter::OpenSegmentLocked(uint64_t lsn, bool create) {
  if (fd_ >= 0) {
    if (dirty_ && options_.sync != WalSync::kOff) {
      if (::fsync(fd_) != 0) return IOErr("cannot fsync", segment_path_);
      dirty_ = false;
    }
    ::close(fd_);
    fd_ = -1;
  }
  segment_path_ = dir_ + "/" + SegmentName(lsn);
  const int flags = O_WRONLY | O_APPEND | (create ? O_CREAT | O_TRUNC : 0);
  fd_ = ::open(segment_path_.c_str(), flags, 0666);
  if (fd_ < 0) return IOErr("cannot open WAL segment", segment_path_);
  segment_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::Append(uint64_t lsn, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  if (segment_bytes_ >= options_.segment_bytes) {
    TQ_RETURN_NOT_OK(OpenSegmentLocked(lsn, /*create=*/true));
    TQ_RETURN_NOT_OK(SyncDir(dir_));
  }
  std::string record;
  record.reserve(kRecordHeaderBytes + kLsnBytes + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, 0);  // crc, patched below
  char lsn_bytes[kLsnBytes];
  for (size_t i = 0; i < kLsnBytes; ++i) {
    lsn_bytes[i] = static_cast<char>(lsn >> (8 * i));
  }
  record.append(lsn_bytes, kLsnBytes);
  record.append(payload);
  const uint32_t crc =
      Crc32cExtend(Crc32c(lsn_bytes, kLsnBytes), payload.data(),
                   payload.size());
  record[4] = static_cast<char>(crc);
  record[5] = static_cast<char>(crc >> 8);
  record[6] = static_cast<char>(crc >> 16);
  record[7] = static_cast<char>(crc >> 24);

  // One write() per record: either the whole record lands or the tail is
  // torn — replay handles both. (A short write leaves a torn tail exactly
  // like a crash would; report it and let the caller fail the batch.)
  size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = ::write(fd_, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOErr("WAL append failed on", segment_path_);
    }
    off += static_cast<size_t>(n);
  }
  segment_bytes_ += record.size();
  bytes_appended_ += record.size();
  dirty_ = true;
  if (options_.sync == WalSync::kAlways) {
    if (::fsync(fd_) != 0) return IOErr("cannot fsync", segment_path_);
    dirty_ = false;
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || !dirty_) return Status::OK();
  if (::fsync(fd_) != 0) return IOErr("cannot fsync", segment_path_);
  dirty_ = false;
  return Status::OK();
}

}  // namespace tq::storage
