// Write-ahead log of update batches: the redo side of the durability pair
// (storage/checkpoint.h is the base-image side).
//
// The sharded engine appends one record per write batch, under its writer
// lock, BEFORE publishing the batch's snapshot — so every state a reader can
// ever observe is reconstructible as "checkpoint + replayed WAL prefix".
// The payload is the batch's kUpdate request body (net/protocol.h
// EncodeUpdateBody): the one encoding the wire, the log, and replay share.
//
// Record framing, little-endian:
//
//   [u32 payload_len][u32 crc32c(lsn || payload)][u64 lsn][payload]
//
// The LSN is the engine snapshot version the batch publishes (versions start
// at 1 and each batch increments by exactly 1, so LSNs are dense and replay
// can assert generation continuity). Records live in segment files named
//
//   wal-<first lsn, %016llx>.log
//
// rotated once a segment exceeds WalOptions::segment_bytes. Checkpoints trim
// segments whose records are all covered (TrimWalSegments).
//
// Crash tolerance: a SIGKILL can tear at most the tail of the LAST segment
// (appends are sequential; earlier segments are immutable once rotated, and
// WalWriter::Open truncates any torn tail before appending again — so the
// "only the last segment may be torn" invariant survives repeated crashes).
// Replay therefore treats a short or CRC-failing record in the last segment
// as the end of the log, but the same damage in an earlier segment as data
// corruption — a hard error, never a silent skip.
#ifndef TQCOVER_STORAGE_WAL_H_
#define TQCOVER_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tq::storage {

/// When an appended record reaches the platter.
enum class WalSync : uint8_t {
  /// fsync after every Append — a batch is durable before it is published
  /// (and before the client's update response is sent).
  kAlways = 0,
  /// fsync on the durability manager's background tick — bounded data loss
  /// (one tick) for near-zero publish overhead.
  kBatch = 1,
  /// Never fsync — the OS page cache decides. Survives process death, not
  /// power loss. For benchmarks and bulk loads.
  kOff = 2,
};

/// Parses "always" / "batch" / "off" (the --wal-sync CLI values).
bool ParseWalSync(std::string_view text, WalSync* out);
const char* WalSyncName(WalSync sync);

struct WalOptions {
  WalSync sync = WalSync::kAlways;
  /// Rotate to a fresh segment once the current one exceeds this.
  uint64_t segment_bytes = 64ull << 20;
};

/// One WAL segment on disk, by ascending first LSN.
struct WalSegmentInfo {
  std::string path;
  uint64_t first_lsn = 0;
  uint64_t bytes = 0;
};

/// Lists `dir`'s wal-*.log segments sorted by first LSN. A missing directory
/// lists as empty (a fresh data dir has no WAL yet).
Result<std::vector<WalSegmentInfo>> ListWalSegments(const std::string& dir);

/// Cumulative replay outcome.
struct WalReplayStats {
  uint64_t records = 0;        // records delivered (lsn > after_lsn)
  uint64_t bytes = 0;          // payload bytes delivered
  uint64_t last_lsn = 0;       // highest LSN delivered (0 = none)
  bool torn_tail = false;      // last segment ended in a partial record
};

/// Replays every record with lsn > after_lsn, in LSN order, through `fn`.
/// Stops with `fn`'s status on the first non-OK return. A torn tail in the
/// last segment ends replay cleanly (stats->torn_tail); the same damage in
/// any earlier segment returns kIOError.
Status ReplayWal(
    const std::string& dir, uint64_t after_lsn,
    const std::function<Status(uint64_t lsn, std::string_view payload)>& fn,
    WalReplayStats* stats);

/// Deletes segments whose records are ALL at or below `keep_lsn` (decided by
/// the next segment's first LSN; the active last segment is never deleted).
/// Returns the bytes reclaimed.
Result<uint64_t> TrimWalSegments(const std::string& dir, uint64_t keep_lsn);

/// Appender. Thread-safe (internal mutex: the engine appends under its
/// writer lock while the durability manager's background tick may Sync()).
class WalWriter {
 public:
  /// Opens `dir` (created if missing) for appending records starting at
  /// `next_lsn`. Truncates a torn tail left in the last segment by a crash,
  /// then continues appending to it (or starts wal-<next_lsn> if none).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                 uint64_t next_lsn,
                                                 WalOptions options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; with WalSync::kAlways the record is on disk when
  /// this returns. LSNs must be passed in ascending order.
  Status Append(uint64_t lsn, std::string_view payload);

  /// Flushes appended-but-unsynced records (the kBatch tick; a no-op when
  /// nothing is pending).
  Status Sync();

  const std::string& dir() const { return dir_; }
  /// Total record bytes appended through this writer (for wal_bytes).
  uint64_t bytes_appended() const { return bytes_appended_; }

 private:
  WalWriter(std::string dir, WalOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// Opens (or creates) the segment whose first record will be `lsn`.
  Status OpenSegmentLocked(uint64_t lsn, bool create);

  std::string dir_;
  WalOptions options_;
  std::mutex mu_;
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_bytes_ = 0;    // current segment size
  uint64_t bytes_appended_ = 0;
  bool dirty_ = false;            // bytes written since the last fsync
};

}  // namespace tq::storage

#endif  // TQCOVER_STORAGE_WAL_H_
