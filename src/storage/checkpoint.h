// On-disk checkpoints: the base-image side of the durability pair
// (storage/wal.h is the redo side).
//
// A checkpoint is one directory holding everything a process needs to
// reconstruct the engine state as of one LSN — no raw dataset files, no
// full user set (that is what lets shard workers recover without loading
// the global user set just to agree on geometry):
//
//   <data_dir>/
//     CURRENT                     # text: name of the live checkpoint dir
//     checkpoint-<lsn %016x>/
//       MANIFEST                  # "TQCK": lsn, partition geometry, shard rows
//       facilities.bin            # facility TrajectorySet ("TQJ1")
//       registry.bin              # "TQRG": global id -> (shard, local id)
//       shard-<s>.users           # shard s's user TrajectorySet ("TQJ1")
//       shard-<s>.tree            # shard s's TQ-tree snapshot ("TQT2")
//     wal/                        # storage/wal.h segments
//
// Atomicity: everything is streamed into checkpoint-<lsn>.tmp, each file
// fsync'd, then the directory is renamed into place and CURRENT is swapped
// (write-temp + rename + parent fsync). A SIGKILL anywhere leaves either
// the old checkpoint current or the new one — never a half state; stale
// .tmp directories and superseded checkpoints are garbage-collected on the
// next successful Commit.
//
// Shard files exist only for the shards the writing process OWNED (manifest
// rows record which). A recovering process may own any subrange of those;
// owning a shard the checkpoint has no tree for is a typed error.
#ifndef TQCOVER_STORAGE_CHECKPOINT_H_
#define TQCOVER_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geom/rect.h"
#include "traj/dataset.h"
#include "tqtree/tq_tree.h"

namespace tq::storage {

/// One shard's manifest row.
struct CheckpointShardInfo {
  /// Engine version at the shard's last republish (restored verbatim so the
  /// recovered generation vector matches the uninterrupted run bit for bit).
  uint64_t generation = 0;
  /// LOGICAL routed user count — what the shard's set size would be if the
  /// shard were owned. Restores local-id assignment for non-owned shards.
  uint64_t user_count = 0;
  /// Whether shard-<s>.users / shard-<s>.tree exist in this checkpoint.
  bool has_tree = false;
};

struct CheckpointManifest {
  /// Engine snapshot version the checkpoint captures. Replay resumes at
  /// lsn + 1.
  uint64_t lsn = 0;
  /// Global-id registry size at capture (== registry.bin entry count).
  uint64_t users_total = 0;
  /// TQTreeGeometryHash(tree options, world): a recovering process must be
  /// configured with matching tree options or its answers would diverge.
  uint64_t geometry_hash = 0;
  Rect world;
  /// Router split keys (num_shards - 1 of them) — the partition geometry,
  /// adopted wholesale on recovery instead of re-derived from raw data.
  std::vector<uint64_t> splits;
  std::vector<CheckpointShardInfo> shards;
};

/// Streams one checkpoint into <data_dir>/checkpoint-<lsn>.tmp and commits
/// it atomically. Destroying an uncommitted writer removes the tmp dir.
class CheckpointWriter {
 public:
  static Result<std::unique_ptr<CheckpointWriter>> Begin(
      const std::string& data_dir, uint64_t lsn);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  Status WriteFacilities(const TrajectorySet& facilities);
  /// Registry entries are (shard, local id), global-id order.
  Status WriteRegistry(
      const std::vector<std::pair<uint32_t, uint32_t>>& entries);
  Status WriteShard(uint32_t shard, const TrajectorySet& users,
                    const TQTree& tree);
  /// Writes MANIFEST, fsyncs, renames the directory into place, swaps
  /// CURRENT, and garbage-collects superseded checkpoints.
  Status Commit(const CheckpointManifest& manifest);

 private:
  CheckpointWriter(std::string data_dir, std::string final_name)
      : data_dir_(std::move(data_dir)), final_name_(std::move(final_name)),
        tmp_dir_(data_dir_ + "/" + final_name_ + ".tmp") {}

  std::string data_dir_;
  std::string final_name_;  // "checkpoint-<lsn>"
  std::string tmp_dir_;
  bool committed_ = false;
};

/// Absolute path of the live checkpoint directory (from CURRENT), or
/// kNotFound when the data dir has no committed checkpoint yet.
Result<std::string> CurrentCheckpointDir(const std::string& data_dir);

Result<CheckpointManifest> ReadCheckpointManifest(
    const std::string& checkpoint_dir);
Result<TrajectorySet> LoadCheckpointFacilities(
    const std::string& checkpoint_dir);
Status LoadCheckpointRegistry(
    const std::string& checkpoint_dir,
    std::vector<std::pair<uint32_t, uint32_t>>* out);
Result<std::shared_ptr<TrajectorySet>> LoadCheckpointShardUsers(
    const std::string& checkpoint_dir, uint32_t shard);
/// Path of shard `shard`'s tree snapshot (read it with LoadTQTree against
/// the set LoadCheckpointShardUsers returned).
std::string CheckpointShardTreePath(const std::string& checkpoint_dir,
                                    uint32_t shard);

/// The conventional WAL subdirectory of a data dir.
inline std::string WalDir(const std::string& data_dir) {
  return data_dir + "/wal";
}

}  // namespace tq::storage

#endif  // TQCOVER_STORAGE_CHECKPOINT_H_
