#include "storage/durability.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "storage/checkpoint.h"

namespace tq::storage {

DurabilityManager::DurabilityManager(DurabilityOptions options,
                                     WriteCheckpointFn write_checkpoint,
                                     CompactFn compact,
                                     runtime::MetricsRegistry* metrics,
                                     runtime::Tracer* tracer)
    : options_(std::move(options)),
      write_checkpoint_(std::move(write_checkpoint)),
      compact_(std::move(compact)),
      metrics_(metrics),
      tracer_(tracer) {
  TQ_CHECK(options_.enabled());
  TQ_CHECK(metrics_ != nullptr && tracer_ != nullptr);
}

DurabilityManager::~DurabilityManager() { Stop(); }

Status DurabilityManager::Start(uint64_t next_lsn) {
  // First durable boot: the data dir itself may not exist yet (the WAL
  // opens before the initial checkpoint, which would otherwise create it).
  if (::mkdir(options_.data_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create data dir " + options_.data_dir +
                           ": " + std::strerror(errno));
  }
  WalOptions wal_options;
  wal_options.sync = options_.wal_sync;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  auto wal = WalWriter::Open(WalDir(options_.data_dir), next_lsn, wal_options);
  TQ_RETURN_NOT_OK(wal.status());
  wal_ = std::move(*wal);
  if (options_.checkpoint_interval_ms > 0 ||
      options_.wal_sync == WalSync::kBatch) {
    thread_ = std::thread([this] { BackgroundLoop(); });
  }
  return Status::OK();
}

Status DurabilityManager::Append(uint64_t lsn, std::string_view payload) {
  TQ_CHECK_MSG(wal_ != nullptr, "DurabilityManager::Start was not called");
  Status st = wal_->Append(lsn, payload);
  if (st.ok()) metrics_->AddWalAppend(payload.size());
  return st;
}

Result<CheckpointStats> DurabilityManager::CheckpointNow() {
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  CheckpointStats stats;
  const uint64_t start_ns = runtime::NowNs();
  runtime::TraceContextPtr trace =
      tracer_->Start("checkpoint", /*detail=*/0, start_ns);

  const uint64_t stream_start = runtime::NowNs();
  auto lsn = write_checkpoint_();
  TQ_RETURN_NOT_OK(lsn.status());
  stats.lsn = *lsn;
  trace->AddSpan("stream", -1, stream_start, runtime::NowNs());
  last_checkpoint_lsn_.store(stats.lsn, std::memory_order_relaxed);

  // The checkpoint covers every record at or below its LSN; the segments
  // holding only those are dead weight now.
  const uint64_t trim_start = runtime::NowNs();
  auto trimmed = TrimWalSegments(WalDir(options_.data_dir), stats.lsn);
  TQ_RETURN_NOT_OK(trimmed.status());
  stats.wal_bytes_trimmed = *trimmed;
  trace->AddSpan("trim_wal", -1, trim_start, runtime::NowNs());

  if (options_.compact_after_checkpoint && compact_) {
    const uint64_t compact_start = runtime::NowNs();
    stats.pages_reclaimed = compact_(stats.lsn);
    trace->AddSpan("compact", -1, compact_start, runtime::NowNs());
  }

  stats.checkpoint_ns = runtime::NowNs() - start_ns;
  metrics_->AddCheckpoint(stats.checkpoint_ns);
  metrics_->AddPagesReclaimed(stats.pages_reclaimed);
  tracer_->Finish(*trace, stats.lsn);
  return stats;
}

void DurabilityManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (wal_ != nullptr) wal_->Sync();
}

void DurabilityManager::BackgroundLoop() {
  using Clock = std::chrono::steady_clock;
  // Tick well under the checkpoint interval so kBatch's loss window stays
  // small and Stop() never waits long.
  const auto tick = std::chrono::milliseconds(
      options_.checkpoint_interval_ms > 0
          ? std::min<uint64_t>(options_.checkpoint_interval_ms, 100)
          : 100);
  auto last_checkpoint = Clock::now();
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_) {
    wake_.wait_for(lock, tick, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    if (options_.wal_sync == WalSync::kBatch) wal_->Sync();
    if (options_.checkpoint_interval_ms > 0 &&
        Clock::now() - last_checkpoint >=
            std::chrono::milliseconds(options_.checkpoint_interval_ms)) {
      // A failed background checkpoint (disk full, say) is retried next
      // interval; the WAL keeps growing meanwhile, so no updates are lost.
      CheckpointNow();
      last_checkpoint = Clock::now();
    }
    lock.lock();
  }
}

}  // namespace tq::storage
