// The durability subsystem's front door: one object owning the WAL writer,
// the background checkpointer thread, and the WAL-trim / compaction
// plumbing that runs after each checkpoint commits.
//
// Division of labour with the engine (runtime/sharded_engine.cc):
//
//   * The ENGINE knows its own state — so it provides two closures: one that
//     streams a consistent snapshot into a CheckpointWriter and returns the
//     captured LSN, and one that compacts the live fork chains a committed
//     checkpoint makes droppable (returning pages reclaimed).
//   * The MANAGER owns everything else: WAL append with the sync policy,
//     the background thread that ticks the kBatch fsync and fires interval
//     checkpoints, trimming WAL segments the checkpoint covers, and the
//     wal_* / checkpoint* / pages_reclaimed metrics + trace spans.
//
// Checkpoints never run on the publish path: the engine's capture closure
// retains the published snapshot (shared_ptr pin) and streams it while
// writers keep publishing.
#ifndef TQCOVER_STORAGE_DURABILITY_H_
#define TQCOVER_STORAGE_DURABILITY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"
#include "storage/wal.h"

namespace tq::storage {

/// Engine-facing durability configuration (the CLI's --data-dir /
/// --wal-sync / --checkpoint-interval-ms flags).
struct DurabilityOptions {
  /// Root of the persistent state (checkpoints + wal/). Empty = durability
  /// off: no WAL, no checkpoints, restarts lose everything (the default).
  std::string data_dir;
  WalSync wal_sync = WalSync::kAlways;
  uint64_t wal_segment_bytes = 64ull << 20;
  /// Background checkpoint cadence; 0 = manual Checkpoint() calls only.
  uint64_t checkpoint_interval_ms = 0;
  /// Round-trip live shard trees into fresh dense pages after each
  /// checkpoint, releasing the historical pages long fork chains pin.
  bool compact_after_checkpoint = true;

  bool enabled() const { return !data_dir.empty(); }
};

/// What recovery (or a fresh durable start) did — surfaced through
/// ServingEngine::recovery_info(), the kStatus wire frame, and the CLI.
struct RecoveryInfo {
  bool durable = false;    // engine runs with a data dir
  bool recovered = false;  // state was rebuilt from checkpoint + WAL
  uint64_t checkpoint_lsn = 0;     // latest committed checkpoint (0 = none)
  uint64_t last_lsn = 0;           // snapshot version after recovery
  uint64_t replayed_batches = 0;   // WAL records applied during recovery
  uint64_t replayed_bytes = 0;
  bool wal_torn_tail = false;      // recovery truncated a torn WAL tail
  uint64_t recovery_ns = 0;        // load + replay wall time
};

/// One committed checkpoint's accounting.
struct CheckpointStats {
  uint64_t lsn = 0;
  uint64_t pages_reclaimed = 0;
  uint64_t wal_bytes_trimmed = 0;
  uint64_t checkpoint_ns = 0;
};

class DurabilityManager {
 public:
  /// Streams a consistent engine snapshot to disk (CheckpointWriter) and
  /// returns its LSN. Runs on the checkpointer thread; must synchronize
  /// with publishes internally.
  using WriteCheckpointFn = std::function<Result<uint64_t>()>;
  /// Compacts what checkpoint `lsn` made droppable; returns pages freed
  /// from the live fork chains.
  using CompactFn = std::function<uint64_t(uint64_t lsn)>;

  /// `metrics` and `tracer` must outlive the manager (the engine owns all
  /// three). Call Start() before anything else.
  DurabilityManager(DurabilityOptions options,
                    WriteCheckpointFn write_checkpoint, CompactFn compact,
                    runtime::MetricsRegistry* metrics,
                    runtime::Tracer* tracer);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Opens the WAL for appends starting at `next_lsn` (truncating any torn
  /// tail a crash left) and launches the background thread when a
  /// checkpoint interval or the kBatch sync policy needs one.
  Status Start(uint64_t next_lsn);

  /// Appends one update batch record (engine writer path, pre-publish).
  Status Append(uint64_t lsn, std::string_view payload);

  /// Runs one synchronous checkpoint → trim → compact cycle. Serialized
  /// against the background thread's own cycles.
  Result<CheckpointStats> CheckpointNow();

  /// Stops the background thread and syncs the WAL. Idempotent; called by
  /// the destructor, and by the engine before tearing down the state the
  /// closures touch.
  void Stop();

  uint64_t last_checkpoint_lsn() const {
    return last_checkpoint_lsn_.load(std::memory_order_relaxed);
  }

 private:
  void BackgroundLoop();

  DurabilityOptions options_;
  WriteCheckpointFn write_checkpoint_;
  CompactFn compact_;
  runtime::MetricsRegistry* metrics_;
  runtime::Tracer* tracer_;

  std::unique_ptr<WalWriter> wal_;
  std::mutex checkpoint_mu_;  // serializes manual + background checkpoints
  std::atomic<uint64_t> last_checkpoint_lsn_{0};

  std::mutex thread_mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace tq::storage

#endif  // TQCOVER_STORAGE_DURABILITY_H_
