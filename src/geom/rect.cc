#include "geom/rect.h"

namespace tq {

Rect Rect::BoundingBox(std::span<const Point> points) {
  Rect r = Rect::Empty();
  for (const Point& p : points) r.Include(p);
  return r;
}

Rect Rect::Quadrant(int q) const {
  const Point c = Center();
  switch (q & 3) {
    case 0:
      return Rect{min_x, min_y, c.x, c.y};  // SW
    case 1:
      return Rect{c.x, min_y, max_x, c.y};  // SE
    case 2:
      return Rect{min_x, c.y, c.x, max_y};  // NW
    default:
      return Rect{c.x, c.y, max_x, max_y};  // NE
  }
}

double MinDistance(const Rect& r, const Point& p) {
  const double dx =
      p.x < r.min_x ? r.min_x - p.x : (p.x > r.max_x ? p.x - r.max_x : 0.0);
  const double dy =
      p.y < r.min_y ? r.min_y - p.y : (p.y > r.max_y ? p.y - r.max_y : 0.0);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace tq
