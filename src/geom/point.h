// 2-D point in a local projected frame (metres).
#ifndef TQCOVER_GEOM_POINT_H_
#define TQCOVER_GEOM_POINT_H_

#include <cmath>

namespace tq {

/// Planar point. Coordinates are metres in a city-local projection; all
/// distance thresholds (ψ) are in the same unit.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& o) const = default;
};

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (avoids the sqrt on hot comparison paths).
inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace tq

#endif  // TQCOVER_GEOM_POINT_H_
