// Axis-aligned rectangle; the building block for quadtree cells, MBRs and
// EMBRs (ψ-extended MBRs, §IV-A of the paper).
#ifndef TQCOVER_GEOM_RECT_H_
#define TQCOVER_GEOM_RECT_H_

#include <algorithm>
#include <limits>
#include <span>

#include "geom/point.h"

namespace tq {

/// Closed axis-aligned rectangle [min_x, max_x] × [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  static Rect Of(double min_x, double min_y, double max_x, double max_y) {
    return Rect{min_x, min_y, max_x, max_y};
  }

  /// An "empty" rectangle that unions as the identity element.
  static Rect Empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Rect{inf, inf, -inf, -inf};
  }

  /// Minimum bounding rectangle of a point sequence.
  static Rect BoundingBox(std::span<const Point> points);

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }
  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  Point Center() const { return Point{(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool ContainsRect(const Rect& r) const {
    return r.min_x >= min_x && r.max_x <= max_x && r.min_y >= min_y &&
           r.max_y <= max_y;
  }

  bool Intersects(const Rect& r) const {
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  /// Smallest rectangle containing both.
  Rect UnionWith(const Rect& r) const {
    return Rect{std::min(min_x, r.min_x), std::min(min_y, r.min_y),
                std::max(max_x, r.max_x), std::max(max_y, r.max_y)};
  }

  /// Grows the rectangle by `margin` on every side. This is the paper's EMBR:
  /// the ψ-extended MBR enclosing the serving area of a facility component.
  Rect Expanded(double margin) const {
    return Rect{min_x - margin, min_y - margin, max_x + margin,
                max_y + margin};
  }

  /// Extends to include a point.
  void Include(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Quadrant `q` (Morton order: 0 = SW, 1 = SE, 2 = NW, 3 = NE) of this
  /// rectangle when split at its centre. Matches zorder cell numbering.
  Rect Quadrant(int q) const;

  /// Index of the quadrant containing `p` (Morton order, ties go to the
  /// higher quadrant so a point on the split line lands in exactly one cell).
  int QuadrantOf(const Point& p) const {
    const Point c = Center();
    return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0);
  }

  bool operator==(const Rect& o) const = default;
};

/// Minimum distance from a point to a rectangle (0 when inside).
double MinDistance(const Rect& r, const Point& p);

}  // namespace tq

#endif  // TQCOVER_GEOM_RECT_H_
