#include "geom/distance.h"

namespace tq {

bool WithinPsiOfAny(const Point& p, std::span<const Point> stops, double psi) {
  const double psi2 = psi * psi;
  for (const Point& s : stops) {
    if (DistanceSquared(p, s) <= psi2) return true;
  }
  return false;
}

double PolylineLength(std::span<const Point> points) {
  double len = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    len += Distance(points[i - 1], points[i]);
  }
  return len;
}

}  // namespace tq
