// Distance helpers shared by service evaluation and index pruning.
#ifndef TQCOVER_GEOM_DISTANCE_H_
#define TQCOVER_GEOM_DISTANCE_H_

#include <span>

#include "geom/point.h"
#include "geom/rect.h"

namespace tq {

/// True iff `p` is within `psi` of at least one point in `stops`.
/// Linear scan — used by tests and tiny inputs; hot paths use StopGrid.
bool WithinPsiOfAny(const Point& p, std::span<const Point> stops, double psi);

/// Total polyline length of a point sequence (sum of segment lengths).
double PolylineLength(std::span<const Point> points);

/// True iff the disk of radius `psi` centred at `p` intersects `r`.
inline bool DiskIntersectsRect(const Point& p, double psi, const Rect& r) {
  return MinDistance(r, p) <= psi;
}

}  // namespace tq

#endif  // TQCOVER_GEOM_DISTANCE_H_
