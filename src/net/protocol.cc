#include "net/protocol.h"

#include <cstdio>
#include <cstring>

namespace tq::net {
namespace {

// Fixed-width little-endian primitives. memcpy keeps the accesses aligned-
// agnostic; on LE hosts (everything we target) the byte swap is a no-op, and
// the explicit shifts keep the format well-defined elsewhere.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}
void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}
void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked sequential reader over a payload. Every Get returns false
/// once the payload is exhausted; callers bail out on the first failure, so
/// a truncated frame can never read out of bounds.
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetBytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size() || pos_ + n < pos_) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  /// u8 length + bytes — the short-string form stats frames use for names.
  bool GetName(std::string* out) {
    uint8_t n = 0;
    return GetU8(&n) && GetBytes(n, out);
  }
  /// A count field must leave at least `min_entry_bytes × count` bytes in
  /// the payload — rejects absurd counts before any allocation.
  bool Plausible(uint32_t count, size_t min_entry_bytes) const {
    return static_cast<uint64_t>(count) * min_entry_bytes <=
           data_.size() - pos_;
  }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " payload");
}

StatusCode CodeFromWire(uint8_t raw) {
  // Unknown codes (a newer peer) collapse to kInternal rather than UB.
  return raw > static_cast<uint8_t>(StatusCode::kOverloaded)
             ? StatusCode::kInternal
             : static_cast<StatusCode>(raw);
}

/// Replaces the placeholder length header at `frame_start` once the payload
/// is fully appended.
void PatchLength(std::string* out, size_t frame_start) {
  const size_t payload = out->size() - frame_start - kFrameHeaderBytes;
  const auto v = static_cast<uint32_t>(payload);
  (*out)[frame_start + 0] = static_cast<char>(v);
  (*out)[frame_start + 1] = static_cast<char>(v >> 8);
  (*out)[frame_start + 2] = static_cast<char>(v >> 16);
  (*out)[frame_start + 3] = static_cast<char>(v >> 24);
}

/// Short-string encoding for counter / histogram / span names: u8 length +
/// bytes. All producers are static identifiers well under 255 bytes; a
/// longer string is truncated rather than corrupting the frame.
void PutName(std::string* out, const std::string& s) {
  const size_t n = s.size() > 255 ? 255 : s.size();
  PutU8(out, static_cast<uint8_t>(n));
  out->append(s.data(), n);
}

/// 28-byte fixed layout shared by kRegister and kStatus responses.
void PutWorkerInfo(std::string* out, const WireWorkerInfo& info) {
  PutU32(out, info.num_shards);
  PutU32(out, info.owned_begin);
  PutU32(out, info.owned_end);
  PutF64(out, info.psi);
  PutU32(out, info.num_facilities);
  PutU64(out, info.users_total);
}

bool GetWorkerInfo(Reader* r, WireWorkerInfo* info) {
  return r->GetU32(&info->num_shards) && r->GetU32(&info->owned_begin) &&
         r->GetU32(&info->owned_end) && r->GetF64(&info->psi) &&
         r->GetU32(&info->num_facilities) && r->GetU64(&info->users_total);
}

/// Update-body reader shared by DecodeRequest's kUpdate branch and the
/// public DecodeUpdateBody (WAL replay). The two paths MUST stay one code
/// path: a payload the server accepted from the wire must replay.
Status ReadUpdateBody(Reader* r, std::vector<std::vector<Point>>* inserts,
                      std::vector<uint32_t>* removes) {
  uint32_t count = 0;
  if (!r->GetU32(&count) || !r->Plausible(count, 4)) {
    return Truncated("update request");
  }
  inserts->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t num_points = 0;
    if (!r->GetU32(&num_points) || !r->Plausible(num_points, 16)) {
      return Truncated("update request");
    }
    // Trajectories are non-empty by library invariant (routing keys off
    // the first point); reject here so no wire bytes can reach the
    // engine's checks.
    if (num_points == 0) {
      return Status::InvalidArgument("empty insert trajectory");
    }
    (*inserts)[i].resize(num_points);
    for (uint32_t p = 0; p < num_points; ++p) {
      Point& pt = (*inserts)[i][p];
      if (!r->GetF64(&pt.x) || !r->GetF64(&pt.y)) {
        return Truncated("update request");
      }
    }
  }
  if (!r->GetU32(&count) || !r->Plausible(count, 4)) {
    return Truncated("update request");
  }
  removes->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r->GetU32(&(*removes)[i])) return Truncated("update request");
  }
  return Status::OK();
}

}  // namespace

void EncodeUpdateBody(const std::vector<std::vector<Point>>& inserts,
                      const std::vector<uint32_t>& removes,
                      std::string* out) {
  PutU32(out, static_cast<uint32_t>(inserts.size()));
  for (const auto& traj : inserts) {
    PutU32(out, static_cast<uint32_t>(traj.size()));
    for (const Point& p : traj) {
      PutF64(out, p.x);
      PutF64(out, p.y);
    }
  }
  PutU32(out, static_cast<uint32_t>(removes.size()));
  for (const uint32_t id : removes) PutU32(out, id);
}

Status DecodeUpdateBody(std::string_view body,
                        std::vector<std::vector<Point>>* inserts,
                        std::vector<uint32_t>* removes) {
  Reader r(body);
  const Status st = ReadUpdateBody(&r, inserts, removes);
  if (!st.ok()) return st;
  if (!r.Done()) return Status::InvalidArgument("trailing update body bytes");
  return Status::OK();
}

void EncodeRequest(const NetRequest& request, std::string* out) {
  const size_t frame_start = out->size();
  PutU32(out, 0);  // length, patched below
  PutU8(out, kProtocolVersion);
  PutU8(out, static_cast<uint8_t>(request.type));
  PutF64(out, request.psi);
  switch (request.type) {
    case MessageType::kSum:
      PutU32(out, static_cast<uint32_t>(request.facilities.size()));
      for (const FacilityId f : request.facilities) PutU32(out, f);
      break;
    case MessageType::kTopK:
      PutU32(out, static_cast<uint32_t>(request.ks.size()));
      for (const uint32_t k : request.ks) PutU32(out, k);
      break;
    case MessageType::kUpdate:
      EncodeUpdateBody(request.inserts, request.removes, out);
      break;
    case MessageType::kStats:
      PutU32(out, request.stats_max_traces);
      break;
    case MessageType::kBound:
      PutU32(out, request.bound_k);
      break;
    case MessageType::kHeartbeat:
      PutU64(out, request.heartbeat_seq);
      break;
    case MessageType::kRegister:
    case MessageType::kStatus:
      break;  // identity / status requests carry no body
    case MessageType::kSubscribe:
      PutU8(out, request.sub_op);
      if (request.sub_op == 0) {
        PutU8(out, static_cast<uint8_t>(request.sub_kind));
        PutU32(out, request.sub_kind == SubscriptionKind::kSum
                        ? request.sub_facility
                        : request.sub_k);
      } else {
        PutU64(out, request.sub_id);
      }
      break;
    case MessageType::kError:
    case MessageType::kPush:
      break;  // never encoded as a request; empty body
  }
  PatchLength(out, frame_start);
}

void EncodeResponse(const NetResponse& response, std::string* out) {
  const size_t frame_start = out->size();
  PutU32(out, 0);  // length, patched below
  PutU8(out, kProtocolVersion);
  PutU8(out, static_cast<uint8_t>(response.type));
  PutU8(out, static_cast<uint8_t>(response.status.code()));
  const std::string& msg = response.status.message();
  PutU32(out, static_cast<uint32_t>(msg.size()));
  out->append(msg);
  PutU64(out, response.snapshot_version);
  if (response.status.ok()) {
    switch (response.type) {
      case MessageType::kSum:
        PutU32(out, static_cast<uint32_t>(response.sums.size()));
        for (const SumResult& r : response.sums) {
          PutU8(out, static_cast<uint8_t>(r.code));
          PutF64(out, r.value);
        }
        break;
      case MessageType::kTopK:
        PutU32(out, static_cast<uint32_t>(response.topks.size()));
        for (const RankedResult& r : response.topks) {
          PutU8(out, static_cast<uint8_t>(r.code));
          PutU32(out, static_cast<uint32_t>(r.ranked.size()));
          for (const RankedFacility& rf : r.ranked) {
            PutU32(out, rf.id);
            PutF64(out, rf.value);
          }
        }
        break;
      case MessageType::kUpdate:
        PutU32(out, static_cast<uint32_t>(response.shard_generations.size()));
        for (const uint64_t g : response.shard_generations) PutU64(out, g);
        PutU32(out, static_cast<uint32_t>(response.assigned_ids.size()));
        for (const uint32_t id : response.assigned_ids) PutU32(out, id);
        break;
      case MessageType::kStats: {
        const WireStats& st = response.stats;
        PutU32(out, static_cast<uint32_t>(st.counters.size()));
        for (const auto& [name, value] : st.counters) {
          PutName(out, name);
          PutU64(out, value);
        }
        PutU32(out, static_cast<uint32_t>(st.histograms.size()));
        for (const WireHistogram& h : st.histograms) {
          PutName(out, h.name);
          PutU64(out, h.count);
          PutU64(out, h.sum_ns);
          PutU64(out, h.p50_ns);
          PutU64(out, h.p90_ns);
          PutU64(out, h.p99_ns);
          PutU64(out, h.max_ns);
        }
        PutU32(out, static_cast<uint32_t>(st.traces.size()));
        for (const WireTrace& t : st.traces) {
          PutName(out, t.op);
          PutU64(out, t.detail);
          PutU64(out, t.total_ns);
          PutU64(out, t.snapshot_version);
          PutU64(out, t.unix_ms);
          PutU32(out, t.dropped_spans);
          PutU32(out, static_cast<uint32_t>(t.spans.size()));
          for (const WireSpan& s : t.spans) {
            PutName(out, s.name);
            PutU32(out, static_cast<uint32_t>(s.shard));  // two's complement
            PutU64(out, s.start_ns);
            PutU64(out, s.end_ns);
          }
        }
        break;
      }
      case MessageType::kRegister:
        PutWorkerInfo(out, response.worker_info);
        break;
      case MessageType::kHeartbeat:
        PutU64(out, response.heartbeat_seq);
        PutU64(out, response.heartbeat_queries);
        break;
      case MessageType::kBound:
        PutU32(out, static_cast<uint32_t>(response.bounds.size()));
        for (const double b : response.bounds) PutF64(out, b);
        PutU32(out, static_cast<uint32_t>(response.bound_exacts.size()));
        for (const auto& [f, v] : response.bound_exacts) {
          PutU32(out, f);
          PutF64(out, v);
        }
        break;
      case MessageType::kStatus:
        PutWorkerInfo(out, response.worker_info);
        PutU32(out, static_cast<uint32_t>(response.workers.size()));
        for (const WireWorkerStatus& w : response.workers) {
          PutName(out, w.address);
          PutU8(out, w.state);
          PutU32(out, w.owned_begin);
          PutU32(out, w.owned_end);
          PutU64(out, w.heartbeats);
          PutU64(out, w.failures);
          PutU64(out, w.age_ms);
          PutU64(out, w.rtt_count);
          PutU64(out, w.rtt_p50_ns);
          PutU64(out, w.rtt_p99_ns);
        }
        PutU8(out, response.durability.flags);
        PutU64(out, response.durability.checkpoint_lsn);
        PutU64(out, response.durability.last_lsn);
        PutU64(out, response.durability.replayed_batches);
        PutU64(out, response.durability.recovery_ns);
        break;
      case MessageType::kSubscribe:
        PutU64(out, response.sub_id);
        break;
      case MessageType::kPush:
        PutU64(out, response.sub_id);
        PutU64(out, response.push_epoch);
        PutU8(out, static_cast<uint8_t>(response.push_kind));
        if (response.push_kind == SubscriptionKind::kSum) {
          PutU8(out, static_cast<uint8_t>(response.push_sum.code));
          PutF64(out, response.push_sum.value);
        } else {
          PutU8(out, static_cast<uint8_t>(response.push_topk.code));
          PutU32(out, static_cast<uint32_t>(response.push_topk.ranked.size()));
          for (const RankedFacility& rf : response.push_topk.ranked) {
            PutU32(out, rf.id);
            PutF64(out, rf.value);
          }
        }
        break;
      case MessageType::kError:
        break;  // status carries everything
    }
  }
  PatchLength(out, frame_start);
}

Status DecodeRequest(std::string_view payload, NetRequest* out) {
  Reader r(payload);
  uint8_t version = 0, type = 0;
  if (!r.GetU8(&version) || !r.GetU8(&type) || !r.GetF64(&out->psi)) {
    return Truncated("request");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("protocol version " +
                                   std::to_string(version) +
                                   " not supported (server speaks " +
                                   std::to_string(kProtocolVersion) + ")");
  }
  uint32_t count = 0;
  switch (static_cast<MessageType>(type)) {
    case MessageType::kSum: {
      out->type = MessageType::kSum;
      if (!r.GetU32(&count) || !r.Plausible(count, 4)) {
        return Truncated("sum request");
      }
      out->facilities.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetU32(&out->facilities[i])) return Truncated("sum request");
      }
      break;
    }
    case MessageType::kTopK: {
      out->type = MessageType::kTopK;
      if (!r.GetU32(&count) || !r.Plausible(count, 4)) {
        return Truncated("topk request");
      }
      out->ks.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetU32(&out->ks[i])) return Truncated("topk request");
      }
      break;
    }
    case MessageType::kUpdate: {
      out->type = MessageType::kUpdate;
      const Status st = ReadUpdateBody(&r, &out->inserts, &out->removes);
      if (!st.ok()) return st;
      break;
    }
    case MessageType::kStats: {
      out->type = MessageType::kStats;
      if (!r.GetU32(&out->stats_max_traces)) return Truncated("stats request");
      break;
    }
    case MessageType::kBound: {
      out->type = MessageType::kBound;
      if (!r.GetU32(&out->bound_k)) return Truncated("bound request");
      break;
    }
    case MessageType::kHeartbeat: {
      out->type = MessageType::kHeartbeat;
      if (!r.GetU64(&out->heartbeat_seq)) {
        return Truncated("heartbeat request");
      }
      break;
    }
    case MessageType::kRegister:
      out->type = MessageType::kRegister;
      break;
    case MessageType::kStatus:
      out->type = MessageType::kStatus;
      break;
    case MessageType::kSubscribe: {
      out->type = MessageType::kSubscribe;
      if (!r.GetU8(&out->sub_op)) return Truncated("subscribe request");
      if (out->sub_op == 0) {
        uint8_t kind = 0;
        uint32_t arg = 0;
        if (!r.GetU8(&kind) || !r.GetU32(&arg)) {
          return Truncated("subscribe request");
        }
        if (kind > static_cast<uint8_t>(SubscriptionKind::kTopK)) {
          return Status::InvalidArgument("unknown subscription kind " +
                                         std::to_string(kind));
        }
        out->sub_kind = static_cast<SubscriptionKind>(kind);
        if (out->sub_kind == SubscriptionKind::kSum) {
          out->sub_facility = arg;
        } else {
          out->sub_k = arg;
        }
      } else if (out->sub_op == 1) {
        if (!r.GetU64(&out->sub_id)) return Truncated("subscribe request");
      } else {
        return Status::InvalidArgument("unknown subscribe op " +
                                       std::to_string(out->sub_op));
      }
      break;
    }
    default:
      return Status::InvalidArgument("unknown request type " +
                                     std::to_string(type));
  }
  if (!r.Done()) return Status::InvalidArgument("trailing request bytes");
  return Status::OK();
}

Status DecodeResponse(std::string_view payload, NetResponse* out) {
  Reader r(payload);
  uint8_t version = 0, type = 0, code = 0;
  uint32_t msg_len = 0;
  std::string msg;
  if (!r.GetU8(&version) || !r.GetU8(&type) || !r.GetU8(&code) ||
      !r.GetU32(&msg_len) || !r.GetBytes(msg_len, &msg) ||
      !r.GetU64(&out->snapshot_version)) {
    return Truncated("response");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("protocol version " +
                                   std::to_string(version) +
                                   " not supported");
  }
  if (type > static_cast<uint8_t>(MessageType::kPush)) {
    return Status::InvalidArgument("unknown response type " +
                                   std::to_string(type));
  }
  out->type = static_cast<MessageType>(type);
  out->status = code == 0 ? Status::OK()
                          : Status(CodeFromWire(code), std::move(msg));
  if (!out->status.ok()) {
    if (!r.Done()) return Status::InvalidArgument("trailing response bytes");
    return Status::OK();  // transport fine; the frame carries the error
  }
  uint32_t count = 0;
  switch (out->type) {
    case MessageType::kSum: {
      if (!r.GetU32(&count) || !r.Plausible(count, 9)) {
        return Truncated("sum response");
      }
      out->sums.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t c = 0;
        if (!r.GetU8(&c) || !r.GetF64(&out->sums[i].value)) {
          return Truncated("sum response");
        }
        out->sums[i].code = CodeFromWire(c);
      }
      break;
    }
    case MessageType::kTopK: {
      if (!r.GetU32(&count) || !r.Plausible(count, 5)) {
        return Truncated("topk response");
      }
      out->topks.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t c = 0;
        uint32_t n = 0;
        if (!r.GetU8(&c) || !r.GetU32(&n) || !r.Plausible(n, 12)) {
          return Truncated("topk response");
        }
        out->topks[i].code = CodeFromWire(c);
        out->topks[i].ranked.resize(n);
        for (uint32_t j = 0; j < n; ++j) {
          RankedFacility& rf = out->topks[i].ranked[j];
          if (!r.GetU32(&rf.id) || !r.GetF64(&rf.value)) {
            return Truncated("topk response");
          }
        }
      }
      break;
    }
    case MessageType::kUpdate: {
      if (!r.GetU32(&count) || !r.Plausible(count, 8)) {
        return Truncated("update response");
      }
      out->shard_generations.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetU64(&out->shard_generations[i])) {
          return Truncated("update response");
        }
      }
      if (!r.GetU32(&count) || !r.Plausible(count, 4)) {
        return Truncated("update response");
      }
      out->assigned_ids.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetU32(&out->assigned_ids[i])) {
          return Truncated("update response");
        }
      }
      break;
    }
    case MessageType::kStats: {
      WireStats& st = out->stats;
      if (!r.GetU32(&count) || !r.Plausible(count, 9)) {
        return Truncated("stats response");
      }
      st.counters.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetName(&st.counters[i].first) ||
            !r.GetU64(&st.counters[i].second)) {
          return Truncated("stats response");
        }
      }
      if (!r.GetU32(&count) || !r.Plausible(count, 49)) {
        return Truncated("stats response");
      }
      st.histograms.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        WireHistogram& h = st.histograms[i];
        if (!r.GetName(&h.name) || !r.GetU64(&h.count) ||
            !r.GetU64(&h.sum_ns) || !r.GetU64(&h.p50_ns) ||
            !r.GetU64(&h.p90_ns) || !r.GetU64(&h.p99_ns) ||
            !r.GetU64(&h.max_ns)) {
          return Truncated("stats response");
        }
      }
      if (!r.GetU32(&count) || !r.Plausible(count, 41)) {
        return Truncated("stats response");
      }
      st.traces.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        WireTrace& t = st.traces[i];
        uint32_t num_spans = 0;
        if (!r.GetName(&t.op) || !r.GetU64(&t.detail) ||
            !r.GetU64(&t.total_ns) || !r.GetU64(&t.snapshot_version) ||
            !r.GetU64(&t.unix_ms) || !r.GetU32(&t.dropped_spans) ||
            !r.GetU32(&num_spans) || !r.Plausible(num_spans, 21)) {
          return Truncated("stats response");
        }
        t.spans.resize(num_spans);
        for (uint32_t j = 0; j < num_spans; ++j) {
          WireSpan& s = t.spans[j];
          uint32_t shard_bits = 0;
          if (!r.GetName(&s.name) || !r.GetU32(&shard_bits) ||
              !r.GetU64(&s.start_ns) || !r.GetU64(&s.end_ns)) {
            return Truncated("stats response");
          }
          s.shard = static_cast<int32_t>(shard_bits);
        }
      }
      break;
    }
    case MessageType::kRegister: {
      if (!GetWorkerInfo(&r, &out->worker_info)) {
        return Truncated("register response");
      }
      break;
    }
    case MessageType::kHeartbeat: {
      if (!r.GetU64(&out->heartbeat_seq) ||
          !r.GetU64(&out->heartbeat_queries)) {
        return Truncated("heartbeat response");
      }
      break;
    }
    case MessageType::kBound: {
      if (!r.GetU32(&count) || !r.Plausible(count, 8)) {
        return Truncated("bound response");
      }
      out->bounds.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetF64(&out->bounds[i])) return Truncated("bound response");
      }
      if (!r.GetU32(&count) || !r.Plausible(count, 12)) {
        return Truncated("bound response");
      }
      out->bound_exacts.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetU32(&out->bound_exacts[i].first) ||
            !r.GetF64(&out->bound_exacts[i].second)) {
          return Truncated("bound response");
        }
      }
      break;
    }
    case MessageType::kStatus: {
      if (!GetWorkerInfo(&r, &out->worker_info) || !r.GetU32(&count) ||
          !r.Plausible(count, 58)) {
        return Truncated("status response");
      }
      out->workers.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        WireWorkerStatus& w = out->workers[i];
        if (!r.GetName(&w.address) || !r.GetU8(&w.state) ||
            !r.GetU32(&w.owned_begin) || !r.GetU32(&w.owned_end) ||
            !r.GetU64(&w.heartbeats) || !r.GetU64(&w.failures) ||
            !r.GetU64(&w.age_ms) || !r.GetU64(&w.rtt_count) ||
            !r.GetU64(&w.rtt_p50_ns) || !r.GetU64(&w.rtt_p99_ns)) {
          return Truncated("status response");
        }
      }
      WireDurability& d = out->durability;
      if (!r.GetU8(&d.flags) || !r.GetU64(&d.checkpoint_lsn) ||
          !r.GetU64(&d.last_lsn) || !r.GetU64(&d.replayed_batches) ||
          !r.GetU64(&d.recovery_ns)) {
        return Truncated("status response");
      }
      break;
    }
    case MessageType::kSubscribe: {
      if (!r.GetU64(&out->sub_id)) return Truncated("subscribe response");
      break;
    }
    case MessageType::kPush: {
      uint8_t kind = 0;
      if (!r.GetU64(&out->sub_id) || !r.GetU64(&out->push_epoch) ||
          !r.GetU8(&kind)) {
        return Truncated("push response");
      }
      if (kind > static_cast<uint8_t>(SubscriptionKind::kTopK)) {
        return Status::InvalidArgument("unknown push kind " +
                                       std::to_string(kind));
      }
      out->push_kind = static_cast<SubscriptionKind>(kind);
      uint8_t c = 0;
      if (out->push_kind == SubscriptionKind::kSum) {
        if (!r.GetU8(&c) || !r.GetF64(&out->push_sum.value)) {
          return Truncated("push response");
        }
        out->push_sum.code = CodeFromWire(c);
      } else {
        uint32_t n = 0;
        if (!r.GetU8(&c) || !r.GetU32(&n) || !r.Plausible(n, 12)) {
          return Truncated("push response");
        }
        out->push_topk.code = CodeFromWire(c);
        out->push_topk.ranked.resize(n);
        for (uint32_t j = 0; j < n; ++j) {
          RankedFacility& rf = out->push_topk.ranked[j];
          if (!r.GetU32(&rf.id) || !r.GetF64(&rf.value)) {
            return Truncated("push response");
          }
        }
      }
      break;
    }
    case MessageType::kError:
      break;  // ok-status error frame: nothing further
  }
  if (!r.Done()) return Status::InvalidArgument("trailing response bytes");
  return Status::OK();
}

std::string WireStatsToJson(const WireStats& stats) {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < stats.counters.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += "\"" + stats.counters[i].first +
           "\":" + std::to_string(stats.counters[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < stats.histograms.size(); ++i) {
    const WireHistogram& h = stats.histograms[i];
    if (i != 0) out.push_back(',');
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%llu,\"sum_ns\":%llu,\"p50_ns\":%llu,"
                  "\"p90_ns\":%llu,\"p99_ns\":%llu,\"max_ns\":%llu}",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum_ns),
                  static_cast<unsigned long long>(h.p50_ns),
                  static_cast<unsigned long long>(h.p90_ns),
                  static_cast<unsigned long long>(h.p99_ns),
                  static_cast<unsigned long long>(h.max_ns));
    out += buf;
  }
  out += "},\"traces\":[";
  for (size_t i = 0; i < stats.traces.size(); ++i) {
    const WireTrace& t = stats.traces[i];
    if (i != 0) out.push_back(',');
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"op\":\"%s\",\"detail\":%llu,\"total_ms\":%.3f,"
                  "\"snapshot_version\":%llu,\"unix_ms\":%llu,"
                  "\"dropped_spans\":%u,\"spans\":[",
                  t.op.c_str(), static_cast<unsigned long long>(t.detail),
                  static_cast<double>(t.total_ns) / 1e6,
                  static_cast<unsigned long long>(t.snapshot_version),
                  static_cast<unsigned long long>(t.unix_ms),
                  t.dropped_spans);
    out += buf;
    for (size_t j = 0; j < t.spans.size(); ++j) {
      const WireSpan& s = t.spans[j];
      if (j != 0) out.push_back(',');
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"shard\":%d,\"start_us\":%.1f,"
                    "\"end_us\":%.1f}",
                    s.name.c_str(), s.shard,
                    static_cast<double>(s.start_ns) / 1e3,
                    static_cast<double>(s.end_ns) / 1e3);
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string WireStatusToJson(const WireWorkerInfo& self,
                             const std::vector<WireWorkerStatus>& workers,
                             const WireDurability& durability) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"self\":{\"num_shards\":%u,\"owned_begin\":%u,"
                "\"owned_end\":%u,\"psi\":%.3f,\"num_facilities\":%u,"
                "\"users_total\":%llu},\"workers\":[",
                self.num_shards, self.owned_begin, self.owned_end, self.psi,
                self.num_facilities,
                static_cast<unsigned long long>(self.users_total));
  std::string out = buf;
  for (size_t i = 0; i < workers.size(); ++i) {
    const WireWorkerStatus& w = workers[i];
    if (i != 0) out.push_back(',');
    // Numeric WorkerRegistry::State values, rendered self-describing for
    // scrapers (the CI distributed-smoke job keys on these strings).
    const char* state = w.state == 1   ? "alive"
                        : w.state == 2 ? "dead"
                        : w.state == 0 ? "unregistered"
                                       : "unknown";
    std::snprintf(buf, sizeof(buf),
                  "{\"address\":\"%s\",\"state\":\"%s\",\"owned_begin\":%u,"
                  "\"owned_end\":%u,\"heartbeats\":%llu,\"failures\":%llu,"
                  "\"age_ms\":%llu,\"rtt_count\":%llu,\"rtt_p50_us\":%.1f,"
                  "\"rtt_p99_us\":%.1f}",
                  w.address.c_str(), state, w.owned_begin, w.owned_end,
                  static_cast<unsigned long long>(w.heartbeats),
                  static_cast<unsigned long long>(w.failures),
                  static_cast<unsigned long long>(w.age_ms),
                  static_cast<unsigned long long>(w.rtt_count),
                  static_cast<double>(w.rtt_p50_ns) / 1e3,
                  static_cast<double>(w.rtt_p99_ns) / 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"durability\":{\"durable\":%s,\"recovered\":%s,"
                "\"wal_torn_tail\":%s,\"checkpoint_lsn\":%llu,"
                "\"last_lsn\":%llu,\"replayed_batches\":%llu,"
                "\"recovery_ms\":%.3f}}",
                durability.durable() ? "true" : "false",
                durability.recovered() ? "true" : "false",
                durability.wal_torn_tail() ? "true" : "false",
                static_cast<unsigned long long>(durability.checkpoint_lsn),
                static_cast<unsigned long long>(durability.last_lsn),
                static_cast<unsigned long long>(durability.replayed_batches),
                static_cast<double>(durability.recovery_ns) / 1e6);
  out += buf;
  return out;
}

FrameAssembler::Result FrameAssembler::Next(std::string* payload) {
  // Compact the consumed prefix opportunistically so a long-lived pipelined
  // connection does not grow the buffer without bound.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (64u << 10) && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Result::kNeedMore;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  if (len == 0 || len > max_frame_bytes_) return Result::kBad;
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return Result::kNeedMore;
  payload->assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  return Result::kFrame;
}

}  // namespace tq::net
