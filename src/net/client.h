// Client side of the network front-end (net/protocol.h): a blocking TCP
// connection with two API levels.
//
//   * Sync — Sum / TopK / Update send one request frame and block for its
//     response. One round-trip per call; simple, right for low rates.
//   * Async batch — Send() queues any number of request frames locally,
//     Flush() writes them in one burst, Receive() drains the responses in
//     send order. Because the server pipelines responses per connection in
//     arrival order, N requests cost one round-trip instead of N — this is
//     the API the throughput bench and any high-rate caller should use.
//
// A NetClient is NOT thread-safe; use one per thread (connections are
// cheap — the server spends no thread on them).
#ifndef TQCOVER_NET_CLIENT_H_
#define TQCOVER_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"

namespace tq::net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to `host:port` (IPv4 dotted quad or a resolvable name).
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Caps how long any single send/recv may block (0 = forever, the
  /// default). Applies to the current connection immediately and to later
  /// Connect()s. A coordinator probing possibly-dead workers needs this:
  /// an RPC that would otherwise hang becomes an IOError it can score as a
  /// worker failure.
  void set_timeout_ms(uint64_t ms);

  // ---- sync API: one frame out, one frame back -------------------------

  /// Batched service values, one per facility id. Transport errors come
  /// back as the return Status; per-query errors in response->sums[i].code.
  Status Sum(const std::vector<FacilityId>& facilities,
             NetResponse* response);
  /// Batched kMaxRRST queries, one per k.
  Status TopK(const std::vector<uint32_t>& ks, NetResponse* response);
  /// One write batch: trajectories to insert and global ids to remove.
  /// response->assigned_ids holds the ids given to `inserts`, in order.
  Status Update(std::vector<std::vector<Point>> inserts,
                std::vector<uint32_t> removes, NetResponse* response);
  /// Scrapes the server's metrics, per-op latency histograms, and up to
  /// `max_traces` recent traces (slowest first) into response->stats.
  Status Stats(uint32_t max_traces, NetResponse* response);

  // ---- coordinator/worker RPCs (the distributed serving layer) ---------

  /// Asks the peer to identify itself: response->worker_info carries its
  /// partition geometry (num_shards, owned range, ψ, catalog size, users).
  Status Register(NetResponse* response);
  /// Liveness probe; the response echoes `seq` and reports queries_total.
  Status Heartbeat(uint64_t seq, NetResponse* response);
  /// Round-1 top-k bound sweep over the peer's owned shards: response->
  /// bounds (per facility) and response->bound_exacts (settled facilities).
  Status Bound(uint32_t k, NetResponse* response);
  /// Cluster status: the peer's own info plus, on a coordinator, its
  /// per-worker liveness table.
  Status ClusterStatus(NetResponse* response);

  // ---- standing queries: subscribe once, receive pushes ----------------
  //
  // A subscription registers a query on the server; every publish that
  // could change its answer produces an unsolicited kPush frame. Pushes
  // arrive interleaved with solicited responses: Receive() transparently
  // buffers any push it runs into (drain with ReceivePush), and
  // ReceivePush() buffers any solicited response it runs into. Each push
  // carries a per-subscription epoch starting at 1 and incrementing by
  // one; a skipped number means the server dropped a push for this slow
  // consumer — push_gaps() counts those, and the next push carries a
  // fresh full answer anyway.

  /// Registers a standing service-value query; response->sub_id is the id.
  /// The first push (epoch 1) carries the answer as of registration.
  Status SubscribeSum(FacilityId facility, NetResponse* response);
  /// Registers a standing top-k query.
  Status SubscribeTopK(uint32_t k, NetResponse* response);
  /// Deregisters one subscription (ids are per-connection).
  Status Unsubscribe(uint64_t sub_id, NetResponse* response);
  /// Blocks for the next push frame (buffered first, then the wire).
  /// Solicited responses encountered on the way are buffered for
  /// Receive(). Set a timeout to poll instead of blocking forever.
  Status ReceivePush(NetResponse* push);
  /// Pushes buffered by Receive() and not yet handed out.
  size_t buffered_pushes() const { return pushes_.size(); }
  /// Epoch discontinuities observed across every subscription so far.
  uint64_t push_gaps() const { return push_gaps_; }
  /// Highest epoch seen for one subscription (0 = no push yet).
  uint64_t last_push_epoch(uint64_t sub_id) const {
    const auto it = last_epoch_.find(sub_id);
    return it == last_epoch_.end() ? 0 : it->second;
  }

  // ---- async batch API: pipeline frames, then drain --------------------

  /// Queues one request frame locally (no I/O). Pair every Send with one
  /// later Receive, in order.
  Status Send(const NetRequest& request);
  /// Writes every queued frame to the socket.
  Status Flush();
  /// Blocks for the next response frame (send order). Flushes first if
  /// frames are still queued locally.
  Status Receive(NetResponse* response);
  /// Frames sent (or queued) whose responses have not been received yet.
  size_t pending() const { return pending_; }

 private:
  Status WriteAll(const char* data, size_t n);
  Status ReadFrame(std::string* payload);
  /// Epoch bookkeeping for one just-decoded push frame.
  void NotePush(const NetResponse& push);

  void ApplyTimeout();

  int fd_ = -1;
  uint64_t timeout_ms_ = 0;  // 0 = block forever
  std::string sendbuf_;  // frames queued by Send, drained by Flush
  FrameAssembler frames_;
  size_t pending_ = 0;
  // Frames read while looking for the other kind (see ReceivePush docs).
  std::deque<NetResponse> pushes_;
  std::deque<NetResponse> solicited_;
  std::unordered_map<uint64_t, uint64_t> last_epoch_;  // sub_id → epoch
  uint64_t push_gaps_ = 0;
};

}  // namespace tq::net

#endif  // TQCOVER_NET_CLIENT_H_
