#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace tq::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

/// Monotone max over an atomic (sub-queries of one frame may straddle a
/// publish; the frame reports the newest snapshot any of them saw).
void RaiseVersion(std::atomic<uint64_t>* v, uint64_t seen) {
  uint64_t cur = v->load(std::memory_order_relaxed);
  while (cur < seen && !v->compare_exchange_weak(
                           cur, seen, std::memory_order_relaxed)) {
  }
}

/// One response slot in a connection's arrival-order FIFO. A request frame
/// claims its slot when decoded; the slot turns ready when the last of the
/// frame's sub-queries completes.
struct Slot {
  bool ready = false;
  std::string bytes;  // the encoded response frame
};

}  // namespace

struct NetServer::Connection {
  Connection(int fd, size_t max_frame_bytes)
      : fd(fd), frames(max_frame_bytes) {}

  const int fd;
  // --- event-loop thread only ---
  FrameAssembler frames;
  uint64_t frames_seen = 0;  // drives frame-trace sampling
  bool want_write = false;  // EPOLLOUT armed
  bool closing = false;     // stop reading; close once fifo+outbox drain
  bool paused = false;      // EPOLLIN dropped: outbox crossed the high mark

  // --- guarded by mu (completion callbacks run on pool threads) ---
  std::mutex mu;
  std::deque<Slot> fifo;
  uint64_t base_seq = 0;  // sequence number of fifo.front()
  std::string outbox;     // staged, not-yet-sent response bytes
  size_t out_off = 0;     // sent prefix of outbox
  bool closed = false;    // fd closed; stage nothing further
  bool dirty = false;     // already queued on the server's dirty list
};

/// A decoded update frame parked for coalescing: it is applied (and its
/// response slot filled) by the next FlushUpdates.
struct NetServer::PendingUpdate {
  std::shared_ptr<Connection> conn;
  uint64_t seq = 0;
  uint64_t rx_ns = 0;  // decode timestamp; coalescing wait counts as frame time
  std::vector<std::vector<Point>> inserts;
  std::vector<uint32_t> removes;
};

/// One standing query. All fields are guarded by the server's subs_mu_.
/// `last_gens` is the per-shard generation vector at the subscription's most
/// recent evaluation DISPATCH — a publish whose post-publish generations
/// equal it cannot have changed the answer (every per-shard contribution is
/// keyed by its shard generation, the result cache's own invariant), so the
/// subscription is skipped without any engine work.
struct NetServer::Subscription {
  uint64_t id = 0;
  std::shared_ptr<Connection> conn;
  SubscriptionKind kind = SubscriptionKind::kSum;
  FacilityId facility = 0;  // kind kSum
  uint32_t k = 0;           // kind kTopK
  std::vector<uint64_t> last_gens;
  uint64_t epoch = 0;     // pushes assigned so far (staged OR dropped)
  bool inflight = false;  // one evaluation outstanding at most
  bool repeat = false;    // generations advanced while inflight: run again
};

namespace {

/// Fan-in state of one batched read frame: sub-query i writes its own slot;
/// the last decrement owns the vectors and encodes the response.
template <typename Result>
struct FrameState {
  explicit FrameState(size_t count) : remaining(count), results(count) {}
  std::atomic<size_t> remaining;
  std::vector<Result> results;
  std::atomic<uint64_t> snapshot_version{0};
};

/// The server answers a kStats frame from a registry snapshot plus the
/// tracer's recent ring, slowest trace first (the "recent slow traces" the
/// protocol promises). Computed at frame-DECODE time — responses pipelined
/// behind in-flight queries do not include them; see docs/PROTOCOL.md.
WireStats BuildWireStats(const runtime::MetricsView& m,
                         std::vector<runtime::Trace> traces) {
  WireStats st;
  m.ForEachCounter([&st](const char* name, uint64_t value) {
    st.counters.emplace_back(name, value);
  });
  st.histograms.reserve(runtime::kNumOpFamilies);
  for (size_t f = 0; f < runtime::kNumOpFamilies; ++f) {
    const runtime::HistogramSnapshot& h = m.op_histograms[f];
    WireHistogram wh;
    wh.name = runtime::OpFamilyName(static_cast<runtime::OpFamily>(f));
    wh.count = h.count;
    wh.sum_ns = h.sum_ns;
    wh.p50_ns = h.Percentile(0.50);
    wh.p90_ns = h.Percentile(0.90);
    wh.p99_ns = h.Percentile(0.99);
    wh.max_ns = h.MaxNs();
    st.histograms.push_back(std::move(wh));
  }
  std::sort(traces.begin(), traces.end(),
            [](const runtime::Trace& a, const runtime::Trace& b) {
              return a.total_ns > b.total_ns;
            });
  st.traces.reserve(traces.size());
  for (runtime::Trace& t : traces) {
    WireTrace wt;
    wt.op = std::move(t.op);
    wt.detail = t.detail;
    wt.total_ns = t.total_ns;
    wt.snapshot_version = t.snapshot_version;
    wt.unix_ms = static_cast<uint64_t>(t.unix_ms);
    wt.dropped_spans = t.dropped_spans;
    wt.spans.reserve(t.spans.size());
    for (runtime::Trace::Span& s : t.spans) {
      wt.spans.push_back(
          WireSpan{std::move(s.name), s.shard, s.start_ns, s.end_ns});
    }
    st.traces.push_back(std::move(wt));
  }
  return st;
}

/// Hard cap on traces in one stats response, whatever the client asked for.
constexpr uint32_t kMaxStatsTraces = 64;

WireWorkerInfo ToWireInfo(const runtime::EngineInfo& info) {
  WireWorkerInfo w;
  w.num_shards = info.num_shards;
  w.owned_begin = info.owned_begin;
  w.owned_end = info.owned_end;
  w.psi = info.psi;
  w.num_facilities = info.num_facilities;
  w.users_total = info.users_total;
  return w;
}

}  // namespace

NetServer::NetServer(runtime::ServingEngine* engine, NetServerOptions options)
    : engine_(engine),
      metrics_(engine->mutable_metrics()),
      options_(options) {
  TQ_CHECK(engine != nullptr);
  engine_psi_ = engine_->psi();
  if (options_.update_batch == 0) options_.update_batch = 1;
  // A low watermark at or above the high one would pause and resume in the
  // same breath; clamp it to half the span so pausing always hysteresis-es.
  if (options_.outbox_high_bytes != 0 &&
      options_.outbox_low_bytes >= options_.outbox_high_bytes) {
    options_.outbox_low_bytes = options_.outbox_high_bytes / 2;
  }
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0 || timer_fd_ < 0) {
    const Status st = Errno("epoll/eventfd/timerfd");
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.fd = timer_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
  tick_period_ns_ = engine_->tick_period_ms() * 1'000'000ull;
  flush_deadline_ns_ = 0;
  next_tick_ns_ = 0;
  timer_armed_ns_ = 0;

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread(&NetServer::EventLoop, this);
  return Status::OK();
}

void NetServer::Stop() {
  if (loop_.joinable()) {
    stopping_.store(true, std::memory_order_release);
    WakeLoop();
    loop_.join();
  }
  running_.store(false, std::memory_order_release);
  // Every dispatched sub-query must complete before sockets go away: the
  // completion callbacks hold connection pointers and this server.
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  // Best-effort delivery of whatever completed during shutdown, then close.
  for (auto& [fd, conn] : connections_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->out_off < conn->outbox.size()) {
      const ssize_t n =
          ::send(fd, conn->outbox.data() + conn->out_off,
                 conn->outbox.size() - conn->out_off,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) metrics_->AddNetBytesOut(static_cast<uint64_t>(n));
      // Sent or dropped, every staged byte leaves the outboxes now.
      metrics_->SubNetOutboxBytes(conn->outbox.size() - conn->out_off);
    }
    conn->closed = true;
    ::close(fd);
  }
  connections_.clear();
  {
    // Standing queries die with their connections.
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.clear();
  }
  for (int* fd :
       {&listen_fd_, &epoll_fd_, &wake_fd_, &timer_fd_, &spare_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

void NetServer::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void NetServer::RearmTimer() {
  uint64_t want = flush_deadline_ns_;
  if (next_tick_ns_ != 0 && (want == 0 || next_tick_ns_ < want)) {
    want = next_tick_ns_;
  }
  if (want == timer_armed_ns_) return;  // same target: no syscall
  itimerspec its{};  // all-zero it_value disarms
  if (want != 0) {
    // Relative one-shot arm: independent of any epoch agreement between
    // NowNs and the timerfd clock. A deadline already in the past becomes
    // a 1 ns timer — an immediate wake. If the fd ever fires early, the
    // expiry handler re-arms with the remainder (timer_armed_ns_ is reset
    // to 0 on every fire), so nothing is ever missed.
    const uint64_t now = runtime::NowNs();
    const uint64_t delta = want > now ? want - now : 1;
    its.it_value.tv_sec = static_cast<time_t>(delta / 1'000'000'000ull);
    its.it_value.tv_nsec = static_cast<long>(delta % 1'000'000'000ull);
    if (its.it_value.tv_sec == 0 && its.it_value.tv_nsec == 0) {
      its.it_value.tv_nsec = 1;
    }
  }
  ::timerfd_settime(timer_fd_, 0, &its, nullptr);
  timer_armed_ns_ = want;
}

void NetServer::EventLoop() {
  if (tick_period_ns_ != 0) {
    next_tick_ns_ = runtime::NowNs() + tick_period_ns_;
  }
  RearmTimer();
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    // The loop always parks with an infinite timeout: every timed duty —
    // the parked-update flush and the periodic engine tick — lives on the
    // one-shot timerfd, re-armed only when the nearest deadline changes,
    // instead of a per-round timeout recomputation.
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool timer_fired = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        Accept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == timer_fd_) {
        uint64_t expirations = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(timer_fd_, &expirations, sizeof(expirations));
        timer_armed_ns_ = 0;  // one-shot consumed; RearmTimer re-targets
        timer_fired = true;
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      const std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        ReadFrom(conn);
      }
      if ((events[i].events & EPOLLOUT) && connections_.count(fd)) {
        FlushOutbox(conn);
      }
    }
    if (timer_fired) {
      const uint64_t now = runtime::NowNs();
      // Pending coalesced updates flush within one poll round of parking:
      // the flush deadline is the parking instant itself, so the timer is
      // already expired when armed and the very next round flushes —
      // whatever arrived in between coalesces with it, and busy traffic on
      // OTHER connections cannot starve it.
      if (flush_deadline_ns_ != 0 && now >= flush_deadline_ns_) {
        FlushUpdates();
      }
      if (next_tick_ns_ != 0 && now >= next_tick_ns_) {
        engine_->Tick();
        next_tick_ns_ = runtime::NowNs() + tick_period_ns_;
      }
    }
    // Stage-to-socket handoff: connections whose callbacks completed
    // responses since the last round.
    std::vector<std::shared_ptr<Connection>> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const auto& conn : dirty) {
      // Pointer identity, not just fd: a closed connection's fd number may
      // already belong to a newer accept.
      const auto it = connections_.find(conn->fd);
      if (it != connections_.end() && it->second == conn) FlushOutbox(conn);
    }
    RearmTimer();
  }
  // Shutdown: parked update frames still get applied and answered (their
  // responses are flushed best-effort by Stop()).
  FlushUpdates();
}

void NetServer::Accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // Out of file descriptors: the backlog entry would keep the
      // level-triggered listener ready forever and busy-spin the loop.
      // Shed the connection instead — close the reserve fd, accept, close
      // the accepted socket (client sees a clean ECONNRESET/EOF), reopen
      // the reserve. If a previous reacquire lost the ENFILE race, retry
      // it now — some fd was just released or this branch would not help.
      if (errno == EMFILE || errno == ENFILE) {
        if (spare_fd_ < 0) {
          spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        }
        if (spare_fd_ < 0) return;  // truly nothing to sacrifice
        ::close(spare_fd_);
        spare_fd_ = -1;
        const int shed = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (shed >= 0) ::close(shed);
        spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        continue;
      }
      return;  // EAGAIN (or a transient error): nothing to accept
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }
    auto conn = std::make_shared<Connection>(fd, options_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    metrics_->AddNetConnection();
  }
}

void NetServer::ReadFrom(const std::shared_ptr<Connection>& conn) {
  if (conn->closing) return;  // EOF or protocol failure already seen
  char buf[64 << 10];
  const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    CloseConnection(conn);
    return;
  }
  if (n == 0) {
    // Peer half-closed: answer what is already pipelined, then hang up.
    bool idle;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      idle = conn->fifo.empty() && conn->out_off == conn->outbox.size();
    }
    if (idle) {
      CloseConnection(conn);
    } else {
      conn->closing = true;
      UpdateInterest(conn.get());
    }
    return;
  }
  metrics_->AddNetBytesIn(static_cast<uint64_t>(n));
  conn->frames.Feed(buf, static_cast<size_t>(n));
  std::string payload;
  for (;;) {
    const FrameAssembler::Result r = conn->frames.Next(&payload);
    if (r == FrameAssembler::Result::kNeedMore) break;
    if (r == FrameAssembler::Result::kBad) {
      FailConnection(conn, MessageType::kError,
                     Status::InvalidArgument(
                         "unframeable stream: zero or oversized length "
                         "prefix (max " +
                         std::to_string(options_.max_frame_bytes) +
                         " payload bytes)"));
      return;
    }
    HandleFrame(conn, payload);
    if (conn->closing) return;  // a malformed frame ended the conversation
  }
}

uint64_t NetServer::AllocSlot(Connection* conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->fifo.emplace_back();
  return conn->base_seq + conn->fifo.size() - 1;
}

void NetServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                            const std::string& payload) {
  // Frame receive timestamp: start of the kNetFrame decode→respond
  // histogram window (0 when latency recording is off — no clock read).
  const uint64_t rx_ns =
      metrics_->latency_recording() ? runtime::NowNs() : 0;
  const uint64_t frame_idx = conn->frames_seen++;
  NetRequest request;
  const Status st = DecodeRequest(payload, &request);
  if (!st.ok()) {
    FailConnection(conn, MessageType::kError, st);
    return;
  }
  metrics_->AddNetRequestsDecoded(1);
  // The engine's index is built for exactly one ψ; a mismatched request is
  // answerable only wrongly, so it gets a per-frame error (the connection
  // survives — the frame itself was well-formed).
  if (request.psi != 0.0 && request.psi != engine_psi_) {
    NetResponse resp;
    resp.type = request.type;
    resp.status = Status::InvalidArgument(
        "engine serves psi=" + std::to_string(engine_psi_) +
        ", request asked for psi=" + std::to_string(request.psi));
    AnswerInline(conn, std::move(resp), rx_ns);
    return;
  }
  // Admission control: the dispatchable read paths are the unbounded work
  // queue — once the global backlog crosses the limit, answer in-protocol
  // with kOverloaded instead of queueing more. The frame is still answered
  // (pipelining never stalls) and the connection survives; a well-behaved
  // client backs off and retries. Inline types (stats, heartbeat, status,
  // subscribe) cost no pool work and are never shed — so overload stays
  // observable and subscriptions stay manageable while shedding.
  if ((request.type == MessageType::kSum ||
       request.type == MessageType::kTopK ||
       request.type == MessageType::kBound) &&
      Overloaded()) {
    metrics_->AddNetShed();
    NetResponse resp;
    resp.type = request.type;
    resp.status = Status::Overloaded(
        "server overloaded: " +
        std::to_string(queued_work_.load(std::memory_order_relaxed)) +
        " queries queued (limit " + std::to_string(options_.max_queued) +
        "); back off and retry");
    AnswerInline(conn, std::move(resp), rx_ns);
    return;
  }
  // Sampled frame trace for the read paths: the frame's sub-queries share
  // one context (decode span here, per-shard spans in the engine, encode
  // span + Finish in the last completion).
  runtime::TraceContextPtr trace;
  if (options_.trace_sample != 0 &&
      frame_idx % options_.trace_sample == 0 &&
      (request.type == MessageType::kSum ||
       request.type == MessageType::kTopK)) {
    const bool sum = request.type == MessageType::kSum;
    trace = engine_->tracer().Start(
        sum ? "net_sum" : "net_topk",
        sum ? request.facilities.size() : request.ks.size(), rx_ns);
    if (rx_ns != 0) trace->AddSpan("decode", -1, rx_ns, runtime::NowNs());
  }
  switch (request.type) {
    case MessageType::kSum:
      DispatchSum(conn, AllocSlot(conn.get()), std::move(request),
                  std::move(trace), rx_ns);
      break;
    case MessageType::kTopK:
      DispatchTopK(conn, AllocSlot(conn.get()), std::move(request),
                   std::move(trace), rx_ns);
      break;
    case MessageType::kUpdate: {
      PendingUpdate pending;
      pending.conn = conn;
      pending.seq = AllocSlot(conn.get());
      pending.rx_ns = rx_ns;
      pending.inserts = std::move(request.inserts);
      pending.removes = std::move(request.removes);
      pending_updates_.push_back(std::move(pending));
      if (pending_updates_.size() >= options_.update_batch) {
        FlushUpdates();
      } else if (flush_deadline_ns_ == 0) {
        // First parked update: the flush deadline is NOW, so the timerfd
        // (re-armed at the end of this round) wakes the loop immediately
        // and the next round flushes.
        flush_deadline_ns_ = runtime::NowNs();
      }
      break;
    }
    case MessageType::kStats: {
      // Answered inline on the loop thread — a pure read of atomics plus a
      // bounded ring copy, so it cannot block behind the worker pool.
      NetResponse resp;
      resp.type = MessageType::kStats;
      const uint32_t max_traces =
          std::min(request.stats_max_traces, kMaxStatsTraces);
      resp.stats = BuildWireStats(metrics_->Read(),
                                  engine_->tracer().Recent(max_traces));
      AnswerInline(conn, std::move(resp), rx_ns);
      break;
    }
    case MessageType::kRegister: {
      // Identity handshake, answered inline (no engine work): the peer
      // verifies partition geometry before trusting composed answers.
      NetResponse resp;
      resp.type = MessageType::kRegister;
      const runtime::EngineInfo info = engine_->info();
      resp.snapshot_version = info.snapshot_version;
      resp.worker_info = ToWireInfo(info);
      AnswerInline(conn, std::move(resp), rx_ns);
      break;
    }
    case MessageType::kHeartbeat: {
      // Echo the probe sequence inline; queries_total rides along so a
      // coordinator can watch worker progress without a stats scrape.
      NetResponse resp;
      resp.type = MessageType::kHeartbeat;
      resp.heartbeat_seq = request.heartbeat_seq;
      resp.heartbeat_queries = metrics_->Read().queries_total;
      AnswerInline(conn, std::move(resp), rx_ns);
      break;
    }
    case MessageType::kStatus: {
      NetResponse resp;
      resp.type = MessageType::kStatus;
      const runtime::EngineInfo info = engine_->info();
      resp.snapshot_version = info.snapshot_version;
      resp.worker_info = ToWireInfo(info);
      for (const runtime::WorkerStatus& w : engine_->Workers()) {
        WireWorkerStatus row;
        row.address = w.address;
        row.state = w.state;
        row.owned_begin = w.owned_begin;
        row.owned_end = w.owned_end;
        row.heartbeats = w.heartbeats;
        row.failures = w.failures;
        row.age_ms = w.age_ms;
        row.rtt_count = w.rtt.count;
        row.rtt_p50_ns = w.rtt.Percentile(0.50);
        row.rtt_p99_ns = w.rtt.Percentile(0.99);
        resp.workers.push_back(std::move(row));
      }
      const runtime::RecoveryInfo rec = engine_->recovery_info();
      resp.durability.flags = static_cast<uint8_t>(
          (rec.durable ? 1 : 0) | (rec.recovered ? 2 : 0) |
          (rec.wal_torn_tail ? 4 : 0));
      resp.durability.checkpoint_lsn = rec.checkpoint_lsn;
      resp.durability.last_lsn = rec.last_lsn;
      resp.durability.replayed_batches = rec.replayed_batches;
      resp.durability.recovery_ns = rec.recovery_ns;
      AnswerInline(conn, std::move(resp), rx_ns);
      break;
    }
    case MessageType::kBound: {
      // One round-1 bound sweep, dispatched to the engine's pool like the
      // read paths (inflight-accounted so Stop() outlives the callback).
      const uint64_t seq = AllocSlot(conn.get());
      BeginWork(1);
      engine_->TopKBoundSweepAsync(
          request.bound_k,
          [this, conn, seq, rx_ns](runtime::BoundSweepResult result) {
            NetResponse resp;
            resp.type = MessageType::kBound;
            resp.status = std::move(result.status);
            resp.snapshot_version = result.snapshot_version;
            resp.bounds = std::move(result.bounds);
            resp.bound_exacts = std::move(result.exacts);
            std::string bytes;
            EncodeResponse(resp, &bytes);
            Complete(conn, seq, std::move(bytes), rx_ns);
            EndWork();
          });
      break;
    }
    case MessageType::kSubscribe: {
      NetResponse resp;
      resp.type = MessageType::kSubscribe;
      if (request.sub_op == 1) {
        if (RemoveSubscription(conn.get(), request.sub_id)) {
          resp.sub_id = request.sub_id;
        } else {
          resp.status = Status::NotFound(
              "no subscription " + std::to_string(request.sub_id) +
              " on this connection");
        }
      } else if (request.sub_kind == SubscriptionKind::kSum &&
                 request.sub_facility >= engine_->info().num_facilities) {
        resp.status = Status::OutOfRange(
            "facility " + std::to_string(request.sub_facility) +
            " beyond the catalog");
      } else {
        resp.sub_id = AddSubscription(conn, request);
      }
      AnswerInline(conn, std::move(resp), rx_ns);
      break;
    }
    case MessageType::kError:
    case MessageType::kPush:
      // kPush is server→client only; DecodeRequest already rejected both,
      // so these arms are unreachable — kept for switch exhaustiveness.
      FailConnection(conn, MessageType::kError,
                     Status::InvalidArgument("not a request type"));
      break;
  }
}

template <typename Result>
void NetServer::DispatchBatch(
    const std::shared_ptr<Connection>& conn, uint64_t seq, MessageType type,
    size_t count,
    const std::function<runtime::QueryRequest(size_t)>& make_request,
    std::function<Result(runtime::QueryResponse&&)> extract,
    std::vector<Result> NetResponse::* results_field,
    runtime::TraceContextPtr trace, uint64_t rx_ns) {
  if (count == 0) {
    NetResponse header;
    header.type = type;
    header.snapshot_version = engine_->snapshot_version();
    std::string bytes;
    EncodeResponse(header, &bytes);
    Complete(conn, seq, std::move(bytes), rx_ns);
    if (trace) engine_->mutable_tracer()->Finish(*trace,
                                                 header.snapshot_version);
    return;
  }
  auto state = std::make_shared<FrameState<Result>>(count);
  BeginWork(count);
  for (size_t i = 0; i < count; ++i) {
    engine_->SubmitAsync(
        make_request(i), trace,
        [this, conn, seq, state, type, extract, results_field, trace, rx_ns,
         i](runtime::QueryResponse r) {
          RaiseVersion(&state->snapshot_version, r.snapshot_version);
          state->results[i] = extract(std::move(r));
          // acq_rel: the last decrementer acquires every slot write.
          if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            NetResponse resp;
            resp.type = type;
            resp.snapshot_version =
                state->snapshot_version.load(std::memory_order_relaxed);
            resp.*results_field = std::move(state->results);
            const uint64_t encode_t0 = trace ? runtime::NowNs() : 0;
            std::string bytes;
            EncodeResponse(resp, &bytes);
            if (trace) {
              trace->AddSpan("encode", -1, encode_t0, runtime::NowNs());
            }
            Complete(conn, seq, std::move(bytes), rx_ns);
            // The frame trace ends once its response is staged; the barrier
            // above ordered every sub-query's spans before this read.
            if (trace) {
              engine_->mutable_tracer()->Finish(*trace,
                                                resp.snapshot_version);
            }
          }
          EndWork();
        },
        rx_ns);
  }
}

void NetServer::DispatchSum(const std::shared_ptr<Connection>& conn,
                            uint64_t seq, NetRequest request,
                            runtime::TraceContextPtr trace, uint64_t rx_ns) {
  DispatchBatch<SumResult>(
      conn, seq, MessageType::kSum, request.facilities.size(),
      [&request](size_t i) {
        return runtime::QueryRequest::ServiceValue(request.facilities[i]);
      },
      [](runtime::QueryResponse&& r) {
        return SumResult{r.status.code(), r.value};
      },
      &NetResponse::sums, std::move(trace), rx_ns);
}

void NetServer::DispatchTopK(const std::shared_ptr<Connection>& conn,
                             uint64_t seq, NetRequest request,
                             runtime::TraceContextPtr trace, uint64_t rx_ns) {
  DispatchBatch<RankedResult>(
      conn, seq, MessageType::kTopK, request.ks.size(),
      [&request](size_t i) {
        return runtime::QueryRequest::TopK(request.ks[i]);
      },
      [](runtime::QueryResponse&& r) {
        return RankedResult{r.status.code(), std::move(r.ranked)};
      },
      &NetResponse::topks, std::move(trace), rx_ns);
}

void NetServer::FlushUpdates() {
  flush_deadline_ns_ = 0;  // everything parked is about to be applied
  if (pending_updates_.empty()) return;
  std::vector<PendingUpdate> pending;
  pending.swap(pending_updates_);

  runtime::UpdateBatch batch;
  std::vector<size_t> insert_counts;
  insert_counts.reserve(pending.size());
  for (PendingUpdate& p : pending) {
    insert_counts.push_back(p.inserts.size());
    for (auto& traj : p.inserts) batch.inserts.push_back(std::move(traj));
    batch.removes.insert(batch.removes.end(), p.removes.begin(),
                         p.removes.end());
  }
  // One forked publish for the whole batch (the --update-batch economics);
  // an all-empty batch skips the publish (and the coalescing accounting —
  // nothing was merged into a publish) but still answers every frame.
  std::vector<uint32_t> ids;
  const bool published = !batch.inserts.empty() || !batch.removes.empty();
  if (published) {
    ids = engine_->ApplyUpdates(batch);
    metrics_->AddNetBatchesCoalesced(pending.size() - 1);
  }
  const std::vector<uint64_t> generations = engine_->shard_generations();
  const uint64_t version = engine_->snapshot_version();
  // Standing queries react to the publish before its own responses are
  // staged or not at all — the generation comparison inside decides, per
  // subscription, whether this batch could have changed its answer.
  if (published) NotifySubscriptions(generations);
  size_t id_offset = 0;
  for (size_t i = 0; i < pending.size(); ++i) {
    NetResponse resp;
    resp.type = MessageType::kUpdate;
    resp.snapshot_version = version;
    resp.shard_generations = generations;
    resp.assigned_ids.assign(
        ids.begin() + static_cast<std::ptrdiff_t>(id_offset),
        ids.begin() + static_cast<std::ptrdiff_t>(id_offset +
                                                  insert_counts[i]));
    id_offset += insert_counts[i];
    std::string bytes;
    EncodeResponse(resp, &bytes);
    Complete(pending[i].conn, pending[i].seq, std::move(bytes),
             pending[i].rx_ns);
  }
}

void NetServer::Complete(const std::shared_ptr<Connection>& conn,
                         uint64_t seq, std::string frame_bytes,
                         uint64_t rx_ns) {
  // Decode-to-staged latency; writes drained later by the loop are not
  // counted (the histogram measures serving latency, not socket drain).
  if (rx_ns != 0) {
    const uint64_t now = runtime::NowNs();
    metrics_->RecordLatency(runtime::OpFamily::kNetFrame,
                            now > rx_ns ? now - rx_ns : 0);
  }
  // Responses honor the same frame cap requests do — a peer's assembler
  // would reject anything larger as unframeable. The request stays
  // answered (slot accounting intact), just with an error the client can
  // act on.
  if (frame_bytes.size() - kFrameHeaderBytes > options_.max_frame_bytes) {
    NetResponse err;
    err.type = MessageType::kError;
    err.status = Status::InvalidArgument(
        "response would exceed the frame cap (" +
        std::to_string(options_.max_frame_bytes) +
        " payload bytes) — split the request batch");
    frame_bytes.clear();
    EncodeResponse(err, &frame_bytes);
  }
  bool stage = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    TQ_CHECK(seq >= conn->base_seq &&
             seq - conn->base_seq < conn->fifo.size());
    Slot& slot = conn->fifo[seq - conn->base_seq];
    slot.ready = true;
    slot.bytes = std::move(frame_bytes);
    // Pump the ready prefix: pipelined responses leave in arrival order.
    uint64_t staged_bytes = 0;
    while (!conn->fifo.empty() && conn->fifo.front().ready) {
      staged_bytes += conn->fifo.front().bytes.size();
      conn->outbox += conn->fifo.front().bytes;
      conn->fifo.pop_front();
      ++conn->base_seq;
    }
    // A closed connection's outbox is never flushed (and was already
    // subtracted wholesale on close) — keep late completions off the gauge.
    if (!conn->closed) metrics_->AddNetOutboxBytes(staged_bytes);
    if (staged_bytes != 0 && !conn->closed && !conn->dirty) {
      conn->dirty = true;
      stage = true;
    }
  }
  if (stage) {
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty_.push_back(conn);
    }
    WakeLoop();
  }
}

void NetServer::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  size_t backlog = 0;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->dirty = false;
    if (conn->closed) return;  // raced with a close; fd may be reused
    while (conn->out_off < conn->outbox.size()) {
      const ssize_t n = ::send(conn->fd, conn->outbox.data() + conn->out_off,
                               conn->outbox.size() - conn->out_off,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        metrics_->AddNetBytesOut(static_cast<uint64_t>(n));
        metrics_->SubNetOutboxBytes(static_cast<uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // The peer's receive path is full. Arm EPOLLOUT to finish the
        // drain, and let the watermarks decide whether to keep reading
        // from a connection that is sitting on this much backlog.
        if (!conn->want_write) {
          conn->want_write = true;
          UpdateInterest(conn.get());
        }
        backlog = conn->outbox.size() - conn->out_off;
        lock.unlock();
        ReconsiderPause(conn, backlog);
        return;
      }
      lock.unlock();
      CloseConnection(conn);  // peer went away mid-response
      return;
    }
    conn->outbox.clear();
    conn->out_off = 0;
    if (conn->want_write) {
      conn->want_write = false;
      UpdateInterest(conn.get());
    }
    close_now = conn->closing && conn->fifo.empty();
  }
  if (close_now) {
    CloseConnection(conn);
    return;
  }
  ReconsiderPause(conn, 0);  // fully drained: resume a paused connection
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    // Whatever was still queued will never be sent: take it off the gauge.
    metrics_->SubNetOutboxBytes(conn->outbox.size() - conn->out_off);
  }
  DropConnectionSubscriptions(conn.get());
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_.erase(conn->fd);
}

void NetServer::FailConnection(const std::shared_ptr<Connection>& conn,
                               MessageType type, Status status) {
  NetResponse resp;
  resp.type = type;
  resp.status = std::move(status);
  std::string bytes;
  EncodeResponse(resp, &bytes);
  Complete(conn, AllocSlot(conn.get()), std::move(bytes));
  conn->closing = true;  // everything already pipelined still gets answered
  UpdateInterest(conn.get());
}

void NetServer::UpdateInterest(Connection* conn) {
  epoll_event ev{};
  ev.events = (conn->closing || conn->paused ? 0u
                                             : static_cast<uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::AnswerInline(const std::shared_ptr<Connection>& conn,
                             NetResponse&& resp, uint64_t rx_ns) {
  if (resp.snapshot_version == 0) {
    resp.snapshot_version = engine_->snapshot_version();
  }
  std::string bytes;
  EncodeResponse(resp, &bytes);
  Complete(conn, AllocSlot(conn.get()), std::move(bytes), rx_ns);
}

void NetServer::ReconsiderPause(const std::shared_ptr<Connection>& conn,
                                size_t backlog) {
  if (options_.outbox_high_bytes == 0) return;  // watermarks disabled
  if (!conn->paused && backlog >= options_.outbox_high_bytes) {
    // The peer has stopped draining: stop reading from it. Its already
    // pipelined frames keep completing into the outbox (bounded — the FIFO
    // holds only frames read before the pause), but no new frames enter.
    conn->paused = true;
    metrics_->AddNetPause();
    UpdateInterest(conn.get());
  } else if (conn->paused && backlog <= options_.outbox_low_bytes) {
    conn->paused = false;
    UpdateInterest(conn.get());
  }
}

void NetServer::BeginWork(size_t n) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_ += n;
  }
  queued_work_.fetch_add(n, std::memory_order_relaxed);
}

void NetServer::EndWork() {
  queued_work_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(inflight_mu_);
  if (--inflight_ == 0) inflight_cv_.notify_all();
}

size_t NetServer::active_subscriptions() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subs_.size();
}

uint64_t NetServer::AddSubscription(const std::shared_ptr<Connection>& conn,
                                    const NetRequest& request) {
  std::vector<uint64_t> gens = engine_->shard_generations();
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    id = next_sub_id_++;
    Subscription& sub = subs_[id];
    sub.id = id;
    sub.conn = conn;
    sub.kind = request.sub_kind;
    sub.facility = request.sub_facility;
    sub.k = request.sub_k;
    sub.last_gens = std::move(gens);
    sub.inflight = true;  // the initial evaluation, dispatched below
  }
  metrics_->AddSubRegistered();
  metrics_->AddSubsEvaluated(1);
  BeginWork(1);
  DispatchSubEval(id, request.sub_kind, request.sub_facility, request.sub_k,
                  conn);
  return id;
}

bool NetServer::RemoveSubscription(const Connection* conn, uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  auto it = subs_.find(sub_id);
  if (it == subs_.end() || it->second.conn.get() != conn) return false;
  // An evaluation still in flight finds the entry gone and drops its push.
  subs_.erase(it);
  return true;
}

void NetServer::DropConnectionSubscriptions(const Connection* conn) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.conn.get() == conn) {
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::NotifySubscriptions(
    const std::vector<uint64_t>& generations) {
  struct Eval {
    uint64_t id;
    SubscriptionKind kind;
    FacilityId facility;
    uint32_t k;
    std::shared_ptr<Connection> conn;
  };
  std::vector<Eval> evals;
  uint64_t skipped = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto& [id, sub] : subs_) {
      if (sub.last_gens == generations) {
        // No shard this subscription's answer depends on changed — and a
        // query reads every shard, so unchanged generations mean an
        // unchanged answer. Skip the evaluation entirely.
        ++skipped;
        continue;
      }
      if (sub.inflight) {
        // A publish landed mid-evaluation: coalesce into one follow-up
        // pass after the current one stages its push.
        sub.repeat = true;
        continue;
      }
      sub.last_gens = generations;
      sub.inflight = true;
      evals.push_back({id, sub.kind, sub.facility, sub.k, sub.conn});
    }
  }
  if (skipped != 0) metrics_->AddSubsSkipped(skipped);
  if (evals.empty()) return;
  metrics_->AddSubsEvaluated(evals.size());
  BeginWork(evals.size());
  for (Eval& e : evals) {
    DispatchSubEval(e.id, e.kind, e.facility, e.k, std::move(e.conn));
  }
}

void NetServer::DispatchSubEval(uint64_t sub_id, SubscriptionKind kind,
                                FacilityId facility, uint32_t k,
                                std::shared_ptr<Connection> conn) {
  const runtime::QueryRequest query =
      kind == SubscriptionKind::kSum
          ? runtime::QueryRequest::ServiceValue(facility)
          : runtime::QueryRequest::TopK(k);
  engine_->SubmitAsync(
      query, nullptr,
      [this, sub_id, kind, facility, k, conn](runtime::QueryResponse r) {
        // Assign the epoch first: a push that ends up dropped (slow
        // consumer at the high watermark) still consumes its number, and
        // the resulting gap is how the client learns it missed one.
        uint64_t epoch = 0;
        bool gone = false;
        {
          std::lock_guard<std::mutex> lock(subs_mu_);
          auto it = subs_.find(sub_id);
          if (it == subs_.end()) {
            gone = true;  // unsubscribed / connection closed mid-eval
          } else {
            epoch = ++it->second.epoch;
          }
        }
        if (!gone) {
          NetResponse resp;
          resp.type = MessageType::kPush;
          resp.snapshot_version = r.snapshot_version;
          resp.sub_id = sub_id;
          resp.push_epoch = epoch;
          resp.push_kind = kind;
          if (kind == SubscriptionKind::kSum) {
            resp.push_sum = SumResult{r.status.code(), r.value};
          } else {
            resp.push_topk =
                RankedResult{r.status.code(), std::move(r.ranked)};
          }
          std::string bytes;
          EncodeResponse(resp, &bytes);
          if (StagePush(conn, bytes)) metrics_->AddSubPushed();
        }
        // Only after the push is staged (or dropped) may a coalesced
        // follow-up run: one evaluation exists per subscription at a time,
        // so its pushes reach the outbox in epoch order.
        bool redispatch = false;
        if (!gone) {
          std::vector<uint64_t> gens = engine_->shard_generations();
          std::lock_guard<std::mutex> lock(subs_mu_);
          auto it = subs_.find(sub_id);
          if (it != subs_.end()) {
            if (it->second.repeat) {
              it->second.repeat = false;
              it->second.last_gens = std::move(gens);
              redispatch = true;  // inflight stays true across the hand-off
            } else {
              it->second.inflight = false;
            }
          }
        }
        if (redispatch) {
          metrics_->AddSubsEvaluated(1);
          BeginWork(1);  // before EndWork: inflight_ never dips to zero
          DispatchSubEval(sub_id, kind, facility, k, std::move(conn));
        }
        EndWork();
      },
      0);
}

bool NetServer::StagePush(const std::shared_ptr<Connection>& conn,
                          const std::string& frame_bytes) {
  bool stage = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return false;
    const size_t backlog = conn->outbox.size() - conn->out_off;
    if (options_.outbox_high_bytes != 0 &&
        backlog + frame_bytes.size() > options_.outbox_high_bytes) {
      // A subscriber that stopped reading does not get to grow the outbox
      // without bound. Read-side pause cannot help here (pushes are not
      // reads), so the frame is dropped — its epoch was already assigned,
      // and the gap tells the client to resynchronize.
      return false;
    }
    conn->outbox += frame_bytes;
    metrics_->AddNetOutboxBytes(frame_bytes.size());
    if (!conn->dirty) {
      conn->dirty = true;
      stage = true;
    }
  }
  if (stage) {
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty_.push_back(conn);
    }
    WakeLoop();
  }
  return true;
}

}  // namespace tq::net
