// Wire protocol of the network front-end: compact length-prefixed binary
// frames carrying BATCHES of requests, so one round-trip amortizes syscall
// and dispatch cost over many queries (the cctools catalog/worker protocol
// is the shape exemplar; the encoding here is fixed-width little-endian
// instead of text).
//
//   frame    := [u32 length][payload]         length = payload bytes
//   request  := version type ψ body           (client → server)
//   response := version type status version64 body   (server → client)
//
// One request frame yields exactly one response frame, and responses are
// written in request-arrival order per connection (pipelining: a client may
// send many frames before reading any response). Full byte layout, error
// codes and versioning rules are documented in docs/PROTOCOL.md — keep the
// two in sync.
//
// Everything here is transport-free: encode/decode over byte buffers, plus
// the incremental FrameAssembler both sides use to split a TCP stream into
// payloads. Decoders are bounds-checked and never trust a length field
// beyond the configured frame cap, so a malformed or hostile peer costs at
// most one frame's allocation.
#ifndef TQCOVER_NET_PROTOCOL_H_
#define TQCOVER_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "query/topk.h"
#include "service/facility_index.h"

namespace tq::net {

/// Bumped on any incompatible layout change; a server answers a version it
/// does not speak with kInvalidArgument and closes the connection.
inline constexpr uint8_t kProtocolVersion = 1;
/// Bytes of the [u32 length] frame header.
inline constexpr size_t kFrameHeaderBytes = 4;
/// Default cap on one frame's payload (both directions). A length field
/// above the cap is unrecoverable — the stream cannot be resynced — so the
/// connection is closed.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Frame types. kError only ever appears in responses (a request the server
/// could not decode still gets an answer, so pipelined clients never stall).
enum class MessageType : uint8_t {
  kError = 0,
  kSum = 1,     // batch of per-facility service-value queries
  kTopK = 2,    // batch of kMaxRRST queries
  kUpdate = 3,  // trajectory inserts + removes (a write batch)
  kStats = 4,   // metrics + latency histograms + recent traces introspection
};

/// One latency histogram summary inside a stats response — the wire form of
/// a runtime HistogramSnapshot (name = OpFamilyName; times in nanoseconds).
struct WireHistogram {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

/// One span of a wire trace; start/end are offsets from the trace start.
struct WireSpan {
  std::string name;
  int32_t shard = -1;  // -1 = not shard-specific
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// One finished query/frame trace inside a stats response — the wire form
/// of a runtime Trace.
struct WireTrace {
  std::string op;
  uint64_t detail = 0;
  uint64_t total_ns = 0;
  uint64_t snapshot_version = 0;
  uint64_t unix_ms = 0;
  uint32_t dropped_spans = 0;
  std::vector<WireSpan> spans;
};

/// Full payload of a kStats response: every registry counter by name (in
/// registry declaration order), every per-op latency histogram, and the
/// server's recent traces sorted slowest-first.
struct WireStats {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<WireHistogram> histograms;
  std::vector<WireTrace> traces;
};

/// Machine-parsable one-line JSON rendering of a scraped WireStats (the
/// `# json:` form `tqcover_cli stats` emits; CI parses it).
std::string WireStatsToJson(const WireStats& stats);

/// One decoded request frame. Exactly the fields of the frame's type are
/// populated; ψ = 0 means "serve with the engine's configured ψ", any other
/// value must match it exactly (the index is built for one ψ).
struct NetRequest {
  MessageType type = MessageType::kSum;
  double psi = 0.0;
  std::vector<FacilityId> facilities;       // kSum: one query per id
  std::vector<uint32_t> ks;                 // kTopK: one query per k
  /// kUpdate. Every trajectory must have ≥ 1 point (the shard router keys
  /// off the first point); DecodeRequest rejects empty ones.
  std::vector<std::vector<Point>> inserts;
  std::vector<uint32_t> removes;            // kUpdate: global trajectory ids
  /// kStats: cap on returned traces (the server additionally clamps).
  uint32_t stats_max_traces = 0;

  static NetRequest Sum(std::vector<FacilityId> facilities) {
    NetRequest r;
    r.type = MessageType::kSum;
    r.facilities = std::move(facilities);
    return r;
  }
  static NetRequest TopK(std::vector<uint32_t> ks) {
    NetRequest r;
    r.type = MessageType::kTopK;
    r.ks = std::move(ks);
    return r;
  }
  static NetRequest Update(std::vector<std::vector<Point>> inserts,
                           std::vector<uint32_t> removes) {
    NetRequest r;
    r.type = MessageType::kUpdate;
    r.inserts = std::move(inserts);
    r.removes = std::move(removes);
    return r;
  }
  static NetRequest Stats(uint32_t max_traces) {
    NetRequest r;
    r.type = MessageType::kStats;
    r.stats_max_traces = max_traces;
    return r;
  }
};

/// Per-query result inside a batched sum response. Individual queries can
/// fail (facility id out of range) without failing the frame.
struct SumResult {
  StatusCode code = StatusCode::kOk;
  double value = 0.0;
};

/// Per-query result inside a batched top-k response. (Named RankedResult to
/// stay distinct from tq::TopKResult, the in-process query result.)
struct RankedResult {
  StatusCode code = StatusCode::kOk;
  std::vector<RankedFacility> ranked;
};

/// One decoded response frame. `status` is the frame-level outcome; the
/// per-query vectors are populated only when it is OK.
struct NetResponse {
  MessageType type = MessageType::kError;
  Status status;
  /// Engine snapshot version the answers were computed against (the highest
  /// seen when sub-queries of one batch straddle a publish).
  uint64_t snapshot_version = 0;
  std::vector<SumResult> sums;                // kSum, frame order
  std::vector<RankedResult> topks;            // kTopK, frame order
  std::vector<uint64_t> shard_generations;    // kUpdate: post-publish gens
  std::vector<uint32_t> assigned_ids;         // kUpdate: ids for `inserts`
  WireStats stats;                            // kStats
};

/// Appends one whole frame (header + payload) for `request` to `*out`.
void EncodeRequest(const NetRequest& request, std::string* out);
/// Appends one whole frame (header + payload) for `response` to `*out`.
void EncodeResponse(const NetResponse& response, std::string* out);

/// Decodes a request payload (frame header already stripped). Returns
/// kInvalidArgument on wrong version, unknown type, or truncated body;
/// never reads out of bounds.
Status DecodeRequest(std::string_view payload, NetRequest* out);
/// Decodes a response payload (frame header already stripped).
Status DecodeResponse(std::string_view payload, NetResponse* out);

/// Incremental frame splitter over a byte stream. Feed() raw socket bytes,
/// then pop complete payloads with Next() until it reports kNeedMore.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Result {
    kFrame,     // one payload extracted; call Next() again
    kNeedMore,  // header or body incomplete; Feed() more bytes
    kBad,       // zero or oversized length — the stream cannot be resynced
  };

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  Result Next(std::string* payload);

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix; compacted between frames
  size_t max_frame_bytes_;
};

}  // namespace tq::net

#endif  // TQCOVER_NET_PROTOCOL_H_
