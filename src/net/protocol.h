// Wire protocol of the network front-end: compact length-prefixed binary
// frames carrying BATCHES of requests, so one round-trip amortizes syscall
// and dispatch cost over many queries (the cctools catalog/worker protocol
// is the shape exemplar; the encoding here is fixed-width little-endian
// instead of text).
//
//   frame    := [u32 length][payload]         length = payload bytes
//   request  := version type ψ body           (client → server)
//   response := version type status version64 body   (server → client)
//
// One request frame yields exactly one response frame, and responses are
// written in request-arrival order per connection (pipelining: a client may
// send many frames before reading any response). Full byte layout, error
// codes and versioning rules are documented in docs/PROTOCOL.md — keep the
// two in sync.
//
// Everything here is transport-free: encode/decode over byte buffers, plus
// the incremental FrameAssembler both sides use to split a TCP stream into
// payloads. Decoders are bounds-checked and never trust a length field
// beyond the configured frame cap, so a malformed or hostile peer costs at
// most one frame's allocation.
#ifndef TQCOVER_NET_PROTOCOL_H_
#define TQCOVER_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "query/topk.h"
#include "service/facility_index.h"

namespace tq::net {

/// Bumped on any incompatible layout change; a server answers a version it
/// does not speak with kInvalidArgument and closes the connection.
/// v2: kStatus responses carry a durability block after the worker table.
inline constexpr uint8_t kProtocolVersion = 2;
/// Bytes of the [u32 length] frame header.
inline constexpr size_t kFrameHeaderBytes = 4;
/// Default cap on one frame's payload (both directions). A length field
/// above the cap is unrecoverable — the stream cannot be resynced — so the
/// connection is closed.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Frame types. kError only ever appears in responses (a request the server
/// could not decode still gets an answer, so pipelined clients never stall).
enum class MessageType : uint8_t {
  kError = 0,
  kSum = 1,     // batch of per-facility service-value queries
  kTopK = 2,    // batch of kMaxRRST queries
  kUpdate = 3,  // trajectory inserts + removes (a write batch)
  kStats = 4,   // metrics + latency histograms + recent traces introspection
  // Coordinator/worker frames (the distributed serving layer; the cctools
  // work_queue master/worker registration+heartbeat protocol is the shape
  // exemplar).
  kRegister = 5,   // coordinator -> worker: identify yourself
  kHeartbeat = 6,  // coordinator -> worker: liveness probe (echoed seq)
  kBound = 7,      // round-1 top-k bound sweep over the worker's shards
  kStatus = 8,     // cluster status: self info + per-worker liveness table
  // Standing (continuous) queries — the protocol's first push-based frames.
  // Added ADDITIVELY (like kStats): the version byte did not bump because no
  // existing frame layout changed; an old server answers kSubscribe with
  // InvalidArgument (unknown type) and closes.
  kSubscribe = 9,  // register/remove a standing sum or top-k query
  kPush = 10,      // server -> client, UNSOLICITED: a re-evaluated standing
                   // query's fresh result (epoch-tagged for gap detection)
};

/// Kind of standing query a kSubscribe registers.
enum class SubscriptionKind : uint8_t {
  kSum = 0,   // one facility's service value
  kTopK = 1,  // a whole top-k ranking
};

/// One latency histogram summary inside a stats response — the wire form of
/// a runtime HistogramSnapshot (name = OpFamilyName; times in nanoseconds).
struct WireHistogram {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

/// One span of a wire trace; start/end are offsets from the trace start.
struct WireSpan {
  std::string name;
  int32_t shard = -1;  // -1 = not shard-specific
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// One finished query/frame trace inside a stats response — the wire form
/// of a runtime Trace.
struct WireTrace {
  std::string op;
  uint64_t detail = 0;
  uint64_t total_ns = 0;
  uint64_t snapshot_version = 0;
  uint64_t unix_ms = 0;
  uint32_t dropped_spans = 0;
  std::vector<WireSpan> spans;
};

/// Full payload of a kStats response: every registry counter by name (in
/// registry declaration order), every per-op latency histogram, and the
/// server's recent traces sorted slowest-first.
struct WireStats {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<WireHistogram> histograms;
  std::vector<WireTrace> traces;
};

/// Machine-parsable one-line JSON rendering of a scraped WireStats (the
/// `# json:` form `tqcover_cli stats` emits; CI parses it).
std::string WireStatsToJson(const WireStats& stats);

/// A serving process's identity, carried by kRegister and kStatus responses.
/// A worker owns the Z-order shard range [owned_begin, owned_end) of a
/// `num_shards`-way partition computed over the FULL user set — every peer
/// must agree on num_shards, psi, num_facilities and users_total, or their
/// per-shard answers are not composable.
struct WireWorkerInfo {
  uint32_t num_shards = 0;
  uint32_t owned_begin = 0;
  uint32_t owned_end = 0;  // == num_shards and begin == 0 for all-owning
  double psi = 0.0;
  uint32_t num_facilities = 0;
  uint64_t users_total = 0;
};

/// One worker's liveness row inside a coordinator's kStatus response.
struct WireWorkerStatus {
  std::string address;  // "host:port"
  uint8_t state = 0;    // runtime::WorkerRegistry::State numeric value
  uint32_t owned_begin = 0;
  uint32_t owned_end = 0;
  uint64_t heartbeats = 0;   // successful heartbeat round-trips
  uint64_t failures = 0;     // RPC failures observed against this worker
  uint64_t age_ms = 0;       // time since the last successful contact
  uint64_t rtt_count = 0;    // per-worker RTT histogram summary
  uint64_t rtt_p50_ns = 0;
  uint64_t rtt_p99_ns = 0;
};

/// Durability block of a kStatus response — the wire form of the engine's
/// storage::RecoveryInfo plus its live checkpoint LSN. All-zero when the
/// process serves without a data dir.
struct WireDurability {
  uint8_t flags = 0;  // bit0 durable, bit1 recovered, bit2 WAL tail was torn
  uint64_t checkpoint_lsn = 0;    // latest committed checkpoint (0 = none)
  uint64_t last_lsn = 0;          // current snapshot version
  uint64_t replayed_batches = 0;  // WAL records applied at startup
  uint64_t recovery_ns = 0;       // startup load + replay wall time

  bool durable() const { return flags & 1; }
  bool recovered() const { return flags & 2; }
  bool wal_torn_tail() const { return flags & 4; }
};

/// Machine-parsable one-line JSON for a kStatus scrape (`tqcover_cli status`
/// emits it as `# json:`; the CI distributed-smoke and crash-recovery jobs
/// parse it).
std::string WireStatusToJson(const WireWorkerInfo& self,
                             const std::vector<WireWorkerStatus>& workers,
                             const WireDurability& durability);

/// One decoded request frame. Exactly the fields of the frame's type are
/// populated; ψ = 0 means "serve with the engine's configured ψ", any other
/// value must match it exactly (the index is built for one ψ).
struct NetRequest {
  MessageType type = MessageType::kSum;
  double psi = 0.0;
  std::vector<FacilityId> facilities;       // kSum: one query per id
  std::vector<uint32_t> ks;                 // kTopK: one query per k
  /// kUpdate. Every trajectory must have ≥ 1 point (the shard router keys
  /// off the first point); DecodeRequest rejects empty ones.
  std::vector<std::vector<Point>> inserts;
  std::vector<uint32_t> removes;            // kUpdate: global trajectory ids
  /// kStats: cap on returned traces (the server additionally clamps).
  uint32_t stats_max_traces = 0;
  /// kBound: the k of the top-k query whose round-1 sweep this is.
  uint32_t bound_k = 0;
  /// kHeartbeat: caller-chosen sequence number, echoed by the response.
  uint64_t heartbeat_seq = 0;
  /// kSubscribe: 0 = subscribe (register a standing query), 1 = unsubscribe.
  uint8_t sub_op = 0;
  /// kSubscribe op 0: what to watch.
  SubscriptionKind sub_kind = SubscriptionKind::kSum;
  FacilityId sub_facility = 0;  // kind kSum: the facility to watch
  uint32_t sub_k = 0;           // kind kTopK: the ranking size
  /// kSubscribe op 1: the server-assigned id to remove.
  uint64_t sub_id = 0;

  static NetRequest Sum(std::vector<FacilityId> facilities) {
    NetRequest r;
    r.type = MessageType::kSum;
    r.facilities = std::move(facilities);
    return r;
  }
  static NetRequest TopK(std::vector<uint32_t> ks) {
    NetRequest r;
    r.type = MessageType::kTopK;
    r.ks = std::move(ks);
    return r;
  }
  static NetRequest Update(std::vector<std::vector<Point>> inserts,
                           std::vector<uint32_t> removes) {
    NetRequest r;
    r.type = MessageType::kUpdate;
    r.inserts = std::move(inserts);
    r.removes = std::move(removes);
    return r;
  }
  static NetRequest Stats(uint32_t max_traces) {
    NetRequest r;
    r.type = MessageType::kStats;
    r.stats_max_traces = max_traces;
    return r;
  }
  static NetRequest Register() {
    NetRequest r;
    r.type = MessageType::kRegister;
    return r;
  }
  static NetRequest Heartbeat(uint64_t seq) {
    NetRequest r;
    r.type = MessageType::kHeartbeat;
    r.heartbeat_seq = seq;
    return r;
  }
  static NetRequest Bound(uint32_t k) {
    NetRequest r;
    r.type = MessageType::kBound;
    r.bound_k = k;
    return r;
  }
  static NetRequest ClusterStatus() {
    NetRequest r;
    r.type = MessageType::kStatus;
    return r;
  }
  static NetRequest SubscribeSum(FacilityId facility) {
    NetRequest r;
    r.type = MessageType::kSubscribe;
    r.sub_op = 0;
    r.sub_kind = SubscriptionKind::kSum;
    r.sub_facility = facility;
    return r;
  }
  static NetRequest SubscribeTopK(uint32_t k) {
    NetRequest r;
    r.type = MessageType::kSubscribe;
    r.sub_op = 0;
    r.sub_kind = SubscriptionKind::kTopK;
    r.sub_k = k;
    return r;
  }
  static NetRequest Unsubscribe(uint64_t id) {
    NetRequest r;
    r.type = MessageType::kSubscribe;
    r.sub_op = 1;
    r.sub_id = id;
    return r;
  }
};

/// Per-query result inside a batched sum response. Individual queries can
/// fail (facility id out of range) without failing the frame.
struct SumResult {
  StatusCode code = StatusCode::kOk;
  double value = 0.0;
};

/// Per-query result inside a batched top-k response. (Named RankedResult to
/// stay distinct from tq::TopKResult, the in-process query result.)
struct RankedResult {
  StatusCode code = StatusCode::kOk;
  std::vector<RankedFacility> ranked;
};

/// One decoded response frame. `status` is the frame-level outcome; the
/// per-query vectors are populated only when it is OK.
struct NetResponse {
  MessageType type = MessageType::kError;
  Status status;
  /// Engine snapshot version the answers were computed against (the highest
  /// seen when sub-queries of one batch straddle a publish).
  uint64_t snapshot_version = 0;
  std::vector<SumResult> sums;                // kSum, frame order
  std::vector<RankedResult> topks;            // kTopK, frame order
  std::vector<uint64_t> shard_generations;    // kUpdate: post-publish gens
  std::vector<uint32_t> assigned_ids;         // kUpdate: ids for `inserts`
  WireStats stats;                            // kStats
  WireWorkerInfo worker_info;                 // kRegister, kStatus (self)
  std::vector<WireWorkerStatus> workers;      // kStatus (empty on workers)
  WireDurability durability;                  // kStatus
  /// kBound: per-facility upper bounds Σ_{owned s} UB_s(f), facility order.
  std::vector<double> bounds;
  /// kBound: facilities the worker settled exactly in its local rounds, as
  /// (facility id, Σ_{owned s} SO_s(f)) pairs.
  std::vector<std::pair<uint32_t, double>> bound_exacts;
  uint64_t heartbeat_seq = 0;      // kHeartbeat: echoed request seq
  uint64_t heartbeat_queries = 0;  // kHeartbeat: worker's queries_total
  /// kSubscribe: the subscription id (newly assigned on subscribe, the
  /// removed one echoed on unsubscribe). kPush: the subscription it answers.
  uint64_t sub_id = 0;
  /// kPush: per-subscription push sequence number, starting at 1 and
  /// incrementing by exactly 1 per evaluation — including evaluations whose
  /// push the server DROPPED because the connection sat at its outbox high
  /// watermark. A client that sees epoch N+2 after N therefore knows it
  /// missed a result (it read too slowly) and should re-issue the query
  /// fresh to resynchronize.
  uint64_t push_epoch = 0;
  SubscriptionKind push_kind = SubscriptionKind::kSum;  // kPush: result kind
  SumResult push_sum;       // kPush, kind kSum: the fresh service value
  RankedResult push_topk;   // kPush, kind kTopK: the fresh ranking
};

/// Appends one whole frame (header + payload) for `request` to `*out`.
void EncodeRequest(const NetRequest& request, std::string* out);

/// The BODY of a kUpdate request (no frame header, version, type, or ψ):
/// u32 insert count, then per trajectory u32 point count + f64 x/y pairs,
/// then u32 remove count + u32 global ids. This exact byte layout is also
/// the WAL record payload (storage/wal.h) — one codec, two consumers, so a
/// replayed batch is bit-identical to the frame that carried it.
void EncodeUpdateBody(const std::vector<std::vector<Point>>& inserts,
                      const std::vector<uint32_t>& removes, std::string* out);
/// Decodes one EncodeUpdateBody payload. Rejects empty trajectories and
/// trailing bytes; never reads out of bounds.
Status DecodeUpdateBody(std::string_view body,
                        std::vector<std::vector<Point>>* inserts,
                        std::vector<uint32_t>* removes);
/// Appends one whole frame (header + payload) for `response` to `*out`.
void EncodeResponse(const NetResponse& response, std::string* out);

/// Decodes a request payload (frame header already stripped). Returns
/// kInvalidArgument on wrong version, unknown type, or truncated body;
/// never reads out of bounds.
Status DecodeRequest(std::string_view payload, NetRequest* out);
/// Decodes a response payload (frame header already stripped).
Status DecodeResponse(std::string_view payload, NetResponse* out);

/// Incremental frame splitter over a byte stream. Feed() raw socket bytes,
/// then pop complete payloads with Next() until it reports kNeedMore.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Result {
    kFrame,     // one payload extracted; call Next() again
    kNeedMore,  // header or body incomplete; Feed() more bytes
    kBad,       // zero or oversized length — the stream cannot be resynced
  };

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  Result Next(std::string* payload);

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix; compacted between frames
  size_t max_frame_bytes_;
};

}  // namespace tq::net

#endif  // TQCOVER_NET_PROTOCOL_H_
