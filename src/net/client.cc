#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tq::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return Status::AlreadyExists("already connected");
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &addrs);
  if (rc != 0) {
    return Status::IOError("getaddrinfo " + host + ": " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype | SOCK_CLOEXEC,
                            a->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      ApplyTimeout();
      break;
    }
    last = Errno("connect");
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  return connected() ? Status::OK() : last;
}

void NetClient::set_timeout_ms(uint64_t ms) {
  timeout_ms_ = ms;
  if (connected()) ApplyTimeout();
}

void NetClient::ApplyTimeout() {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms_ / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms_ % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  sendbuf_.clear();
  frames_ = FrameAssembler();
  pending_ = 0;
  pushes_.clear();
  solicited_.clear();
  last_epoch_.clear();
  push_gaps_ = 0;
}

Status NetClient::Send(const NetRequest& request) {
  if (!connected()) return Status::InvalidArgument("not connected");
  EncodeRequest(request, &sendbuf_);
  ++pending_;
  return Status::OK();
}

Status NetClient::Flush() {
  if (!connected()) return Status::InvalidArgument("not connected");
  if (sendbuf_.empty()) return Status::OK();
  const Status st = WriteAll(sendbuf_.data(), sendbuf_.size());
  sendbuf_.clear();
  return st;
}

Status NetClient::Receive(NetResponse* response) {
  if (!connected()) return Status::InvalidArgument("not connected");
  // ReceivePush may have read past this response already.
  if (!solicited_.empty()) {
    *response = std::move(solicited_.front());
    solicited_.pop_front();
    --pending_;
    return Status::OK();
  }
  if (pending_ == 0) {
    return Status::InvalidArgument("no request in flight");
  }
  TQ_RETURN_NOT_OK(Flush());
  for (;;) {
    std::string payload;
    TQ_RETURN_NOT_OK(ReadFrame(&payload));
    NetResponse r;
    TQ_RETURN_NOT_OK(DecodeResponse(payload, &r));
    if (r.type == MessageType::kPush) {
      // Unsolicited frame riding between two solicited ones: buffer it
      // for ReceivePush and keep draining toward our response.
      NotePush(r);
      pushes_.push_back(std::move(r));
      continue;
    }
    --pending_;
    *response = std::move(r);
    return Status::OK();
  }
}

Status NetClient::ReceivePush(NetResponse* push) {
  if (!connected()) return Status::InvalidArgument("not connected");
  if (!pushes_.empty()) {
    *push = std::move(pushes_.front());
    pushes_.pop_front();
    return Status::OK();
  }
  TQ_RETURN_NOT_OK(Flush());
  for (;;) {
    std::string payload;
    TQ_RETURN_NOT_OK(ReadFrame(&payload));
    NetResponse r;
    TQ_RETURN_NOT_OK(DecodeResponse(payload, &r));
    if (r.type == MessageType::kPush) {
      NotePush(r);
      *push = std::move(r);
      return Status::OK();
    }
    if (pending_ == 0) {
      // Nothing was solicited, yet a non-push frame arrived: the stream
      // is out of agreement with our bookkeeping — fail loudly.
      return Status::IOError("unsolicited non-push response");
    }
    solicited_.push_back(std::move(r));
  }
}

void NetClient::NotePush(const NetResponse& push) {
  // Epochs start at 1, so the map's zero-initialized slot makes the first
  // push of a subscription expected exactly when its epoch is 1.
  uint64_t& last = last_epoch_[push.sub_id];
  if (push.push_epoch != last + 1) ++push_gaps_;
  if (push.push_epoch > last) last = push.push_epoch;
}

Status NetClient::Sum(const std::vector<FacilityId>& facilities,
                      NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::Sum(facilities)));
  return Receive(response);
}

Status NetClient::TopK(const std::vector<uint32_t>& ks,
                       NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::TopK(ks)));
  return Receive(response);
}

Status NetClient::Update(std::vector<std::vector<Point>> inserts,
                         std::vector<uint32_t> removes,
                         NetResponse* response) {
  TQ_RETURN_NOT_OK(
      Send(NetRequest::Update(std::move(inserts), std::move(removes))));
  return Receive(response);
}

Status NetClient::Stats(uint32_t max_traces, NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::Stats(max_traces)));
  return Receive(response);
}

Status NetClient::Register(NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::Register()));
  return Receive(response);
}

Status NetClient::Heartbeat(uint64_t seq, NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::Heartbeat(seq)));
  return Receive(response);
}

Status NetClient::Bound(uint32_t k, NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::Bound(k)));
  return Receive(response);
}

Status NetClient::ClusterStatus(NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::ClusterStatus()));
  return Receive(response);
}

Status NetClient::SubscribeSum(FacilityId facility, NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::SubscribeSum(facility)));
  return Receive(response);
}

Status NetClient::SubscribeTopK(uint32_t k, NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::SubscribeTopK(k)));
  return Receive(response);
}

Status NetClient::Unsubscribe(uint64_t sub_id, NetResponse* response) {
  TQ_RETURN_NOT_OK(Send(NetRequest::Unsubscribe(sub_id)));
  return Receive(response);
}

Status NetClient::WriteAll(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status NetClient::ReadFrame(std::string* payload) {
  for (;;) {
    switch (frames_.Next(payload)) {
      case FrameAssembler::Result::kFrame:
        return Status::OK();
      case FrameAssembler::Result::kBad:
        return Status::IOError("unframeable response stream");
      case FrameAssembler::Result::kNeedMore:
        break;
    }
    char buf[64 << 10];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    frames_.Feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace tq::net
